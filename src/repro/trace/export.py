"""Trace exporters: JSONL archives and Chrome ``trace_event`` JSON.

JSONL is the canonical on-disk form (one meta line, then one event per
line, keys sorted) — byte-stable for a deterministic run, which is what
the golden-trace regression tests diff. The Chrome format loads into
``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_: one
track per rank, complete (``"ph": "X"``) slices for spans, and flow
arrows from each send to its matching recv.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.trace.events import MASTER, Trace, TraceEvent

__all__ = ["to_jsonl", "from_jsonl", "to_chrome", "chrome_events"]

#: Simulated seconds are microseconds in Chrome's ``ts``/``dur`` fields.
_US = 1e6


def to_jsonl(trace: Trace, path: Union[str, Path, None] = None) -> str:
    """Serialize ``trace`` to JSONL; optionally write it to ``path``."""
    lines = [json.dumps({"type": "meta", **trace.meta}, sort_keys=True)]
    for event in trace.events:
        lines.append(json.dumps({"type": "event", **event.to_dict()}, sort_keys=True))
    payload = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(payload)
    return payload


def from_jsonl(source: Union[str, Path]) -> Trace:
    """Rebuild a :class:`Trace` from a JSONL document or file path."""
    text = source.read_text() if isinstance(source, Path) else source
    trace: Optional[Trace] = None
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.pop("type", None)
        if kind == "meta":
            if trace is not None:
                raise ValueError(f"line {lineno}: duplicate meta record")
            trace = Trace(meta=record)
        elif kind == "event":
            if trace is None:
                trace = Trace()
            trace.add(TraceEvent.from_dict(record))
        else:
            raise ValueError(f"line {lineno}: unknown record type {kind!r}")
    if trace is None:
        raise ValueError("empty trace document")
    return trace


def _tid(rank: int) -> int:
    """Chrome thread ids must be non-negative: master gets 0, rank j gets j+1."""
    return 0 if rank == MASTER else rank + 1


def chrome_events(trace: Trace) -> List[Dict[str, Any]]:
    """The ``traceEvents`` array for one trace."""
    out: List[Dict[str, Any]] = []
    pid = 0
    for rank in trace.ranks():
        out.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": _tid(rank),
            "args": {"name": "master (CPU)" if rank == MASTER else f"rank {rank}"},
        })
    recv_index = {}
    for i, e in enumerate(trace.events):
        if e.kind == "recv":
            recv_index.setdefault(e.channel(), i)
    for i, e in enumerate(trace.events):
        name = e.op or e.kind
        args: Dict[str, Any] = {"kind": e.kind}
        if e.peer is not None:
            args["peer"] = e.peer
        if e.kind in ("send", "recv"):
            args.update(tag=e.tag, seq=e.seq, bytes=e.nbytes)
        if e.round >= 0:
            args["round"] = e.round
        if e.iteration >= 0:
            args["iteration"] = e.iteration
        if e.kind in ("update", "service") and e.value:
            args["value"] = e.value
        base = {"name": name, "cat": e.kind, "pid": pid, "tid": _tid(e.rank), "args": args}
        if e.kind in ("fault", "mark"):
            out.append({**base, "ph": "i", "ts": e.t0 * _US, "s": "t"})
            continue
        out.append({**base, "ph": "X", "ts": e.t0 * _US, "dur": max(e.duration * _US, 0.001)})
        # Flow arrow from a send slice to its matching recv slice.
        if e.kind == "send" and e.channel() in recv_index:
            r = trace.events[recv_index[e.channel()]]
            flow_id = f"{e.rank}-{e.peer}-{e.tag}-{e.seq}-{i}"
            out.append({"name": name, "cat": "msg", "ph": "s", "id": flow_id,
                        "pid": pid, "tid": _tid(e.rank), "ts": e.t0 * _US})
            out.append({"name": name, "cat": "msg", "ph": "f", "bp": "e", "id": flow_id,
                        "pid": pid, "tid": _tid(r.rank), "ts": r.t1 * _US})
    return out


def to_chrome(trace: Trace, path: Union[str, Path, None] = None) -> str:
    """Serialize ``trace`` to Chrome/Perfetto JSON; optionally write it."""
    doc = {
        "traceEvents": chrome_events(trace),
        "displayTimeUnit": "ms",
        "otherData": dict(trace.meta),
    }
    payload = json.dumps(doc, indent=1)
    if path is not None:
        Path(path).write_text(payload)
    return payload
