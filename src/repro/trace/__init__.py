"""repro.trace — structured, zero-overhead-when-off communication tracing.

- :mod:`repro.trace.events` — the :class:`TraceEvent` / :class:`Trace` model;
- :mod:`repro.trace.metrics` — derived quantities (message counts, bytes,
  comm/compute ratio, overlap fraction, critical path, staleness);
- :mod:`repro.trace.export` — JSONL archives and Chrome/Perfetto JSON;
- :mod:`repro.trace.schedule` — expand simulated collectives into their
  per-message binomial-tree structure;
- :mod:`repro.trace.check` — executable structural invariants shared by
  the harness and the test suite.
"""

from repro.trace.check import check_all, InvariantViolation
from repro.trace.events import EVENT_KINDS, MASTER, Trace, TraceEvent
from repro.trace.export import from_jsonl, to_chrome, to_jsonl
from repro.trace.metrics import summarize, transport_stats

__all__ = [
    "EVENT_KINDS",
    "MASTER",
    "Trace",
    "TraceEvent",
    "InvariantViolation",
    "check_all",
    "from_jsonl",
    "to_chrome",
    "to_jsonl",
    "summarize",
    "transport_stats",
]
