"""Structured communication tracing: the event model.

The paper's headline claims are statements about *communication
structure* — how many messages move, in how many rounds, overlapping
what. A :class:`Trace` is the per-run record that makes those claims
checkable: every send/recv, every collective, every compute/staging
phase, and every injected fault becomes one typed :class:`TraceEvent`
with a simulated-time (or wall-time, for the in-process runtime) span.

Zero overhead when off: trainers and the runtime hold ``trace = None``
on healthy hot paths and guard every emission with a single ``is not
None`` test — no event objects, no list appends, no string formatting
are executed unless tracing was requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["MASTER", "EVENT_KINDS", "TraceEvent", "Trace"]

#: Rank id of the master / host CPU in traces (workers are 0..P-1).
MASTER = -1

#: The closed set of event kinds a trace may contain.
EVENT_KINDS = (
    "send",  # point-to-point message leaves `rank` for `peer`
    "recv",  # point-to-point message from `peer` consumed by `rank`
    "collective",  # one whole collective phase (op: tree-reduce, tree-bcast, ...)
    "compute",  # forward/backward pass on `rank`
    "staging",  # host -> device batch copy (cpu-gpu data)
    "update",  # weight update (op: gpu-update, cpu-update, elastic-update)
    "service",  # master serving one request (async parameter server)
    "fault",  # injected/detected fault (op: drop, delay, lost, crash, ...)
    "mark",  # free-form instant annotation
)


@dataclass(frozen=True)
class TraceEvent:
    """One traced happening: a span ``[t0, t1]`` on one rank.

    ``peer``/``tag``/``seq`` identify point-to-point messages (a send and
    its matching recv share ``(source, dest, tag, seq)``); ``round`` is the
    collective round index a message belongs to; ``value`` carries one
    scalar payload (staleness for elastic updates, arrival time for
    service events).
    """

    kind: str
    rank: int
    t0: float
    t1: float
    op: str = ""
    peer: Optional[int] = None
    tag: int = 0
    nbytes: int = 0
    seq: int = -1
    round: int = -1
    iteration: int = -1
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}; expected one of {EVENT_KINDS}")
        if self.t1 < self.t0:
            raise ValueError(f"event span ends before it starts: [{self.t0}, {self.t1}]")

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def channel(self) -> Tuple[int, int, int, int]:
        """The (source, dest, tag, seq) identity of a p2p message."""
        if self.kind == "send":
            return (self.rank, self.peer if self.peer is not None else MASTER, self.tag, self.seq)
        if self.kind == "recv":
            return (self.peer if self.peer is not None else MASTER, self.rank, self.tag, self.seq)
        raise ValueError(f"{self.kind!r} events have no p2p channel")

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


class Trace:
    """An append-only, thread-safe event log plus run metadata.

    ``meta`` records what produced the trace (method name, rank count,
    packed flag, ...) so invariant checks can pick the right assertions
    without side-channel arguments. Emission helpers exist for every
    kind so call sites stay one line; all of them funnel through
    :meth:`add`, whose lock makes the real-thread runtime safe.
    """

    def __init__(self, meta: Optional[Dict[str, Any]] = None) -> None:
        self.meta: Dict[str, Any] = dict(meta or {})
        self.events: List[TraceEvent] = []
        self._lock = threading.Lock()

    # -- emission ----------------------------------------------------------
    def add(self, event: TraceEvent) -> None:
        with self._lock:
            self.events.append(event)

    def send(
        self, rank: int, peer: int, t0: float, t1: float, *,
        tag: int = 0, nbytes: int = 0, seq: int = -1, op: str = "",
        round: int = -1, iteration: int = -1,
    ) -> None:
        self.add(TraceEvent("send", rank, t0, t1, op=op, peer=peer, tag=tag,
                            nbytes=nbytes, seq=seq, round=round, iteration=iteration))

    def recv(
        self, rank: int, peer: int, t0: float, t1: float, *,
        tag: int = 0, nbytes: int = 0, seq: int = -1, op: str = "",
        round: int = -1, iteration: int = -1,
    ) -> None:
        self.add(TraceEvent("recv", rank, t0, t1, op=op, peer=peer, tag=tag,
                            nbytes=nbytes, seq=seq, round=round, iteration=iteration))

    def span(
        self, kind: str, rank: int, t0: float, t1: float, *,
        op: str = "", nbytes: int = 0, iteration: int = -1, value: float = 0.0,
    ) -> None:
        self.add(TraceEvent(kind, rank, t0, t1, op=op, nbytes=nbytes,
                            iteration=iteration, value=value))

    def fault(
        self, rank: int, at: float, op: str, *,
        peer: Optional[int] = None, tag: int = 0, seq: int = -1, iteration: int = -1,
    ) -> None:
        self.add(TraceEvent("fault", rank, at, at, op=op, peer=peer, tag=tag,
                            seq=seq, iteration=iteration))

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(list(self.events))

    def by_kind(self, *kinds: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind in kinds]

    def sends(self, op: Optional[str] = None) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "send" and (op is None or e.op == op)]

    def recvs(self, op: Optional[str] = None) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "recv" and (op is None or e.op == op)]

    def iterations(self) -> List[int]:
        """Sorted distinct iteration indices that emitted any event."""
        return sorted({e.iteration for e in self.events if e.iteration >= 0})

    def ranks(self) -> List[int]:
        return sorted({e.rank for e in self.events})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(method={self.meta.get('method')!r}, events={len(self.events)})"
