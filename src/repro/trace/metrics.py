"""Derived metrics over a :class:`repro.trace.Trace`.

These are the quantities the paper's structural claims quote: per-rank
message counts and byte volumes (Theta(P) round-robin vs Theta(log P)
tree rounds), the comm/compute ratio (the 87% -> 14% figure, now
measured from the trace instead of trusted from an accumulator), the
overlap fraction (Sync EASGD3's hidden communication), the critical
path through the happens-before graph, and staleness statistics for
elastic updates (the quantity asynchronous convergence analyses bound).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.events import Trace

__all__ = [
    "message_counts",
    "bytes_by_rank",
    "round_count",
    "comm_seconds",
    "compute_seconds",
    "comm_compute_ratio",
    "overlap_fraction",
    "critical_path_seconds",
    "staleness_stats",
    "transport_stats",
    "summarize",
]

#: Kinds whose spans count as communication time.
COMM_KINDS = ("send", "recv", "collective")
#: Kinds whose spans count as computation time.
COMPUTE_KINDS = ("compute", "staging", "update", "service")


def message_counts(trace: Trace, op: Optional[str] = None) -> Dict[int, int]:
    """Number of point-to-point sends per source rank."""
    counts: Dict[int, int] = {}
    for e in trace.sends(op):
        counts[e.rank] = counts.get(e.rank, 0) + 1
    return counts


def bytes_by_rank(trace: Trace, op: Optional[str] = None) -> Dict[int, int]:
    """Bytes sent per source rank."""
    out: Dict[int, int] = {}
    for e in trace.sends(op):
        out[e.rank] = out.get(e.rank, 0) + e.nbytes
    return out


def round_count(trace: Trace, op: str, iteration: Optional[int] = None) -> int:
    """Distinct collective rounds the sends of ``op`` used.

    A round is one level of the binomial tree — all its messages move
    concurrently, so the number of *rounds* (not messages) is what the
    Theta(log P) latency claim counts.
    """
    rounds = {
        (e.iteration, e.round)
        for e in trace.sends(op)
        if e.round >= 0 and (iteration is None or e.iteration == iteration)
    }
    return len(rounds)


def _merge(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of intervals as a sorted, disjoint list."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for a, b in intervals[1:]:
        c, d = merged[-1]
        if a > d:
            merged.append((a, b))
        else:
            merged[-1] = (c, max(b, d))
    return merged


def _merged_length(intervals: List[Tuple[float, float]]) -> float:
    """Total length of the union of intervals."""
    return sum(b - a for a, b in _merge(intervals))


def _intervals(trace: Trace, kinds: Sequence[str]) -> List[Tuple[float, float]]:
    return [(e.t0, e.t1) for e in trace.events if e.kind in kinds and e.t1 > e.t0]


def comm_seconds(trace: Trace) -> float:
    """Union length of all communication spans (overlaps counted once)."""
    return _merged_length(_intervals(trace, COMM_KINDS))


def compute_seconds(trace: Trace) -> float:
    """Union length of all computation spans (overlaps counted once)."""
    return _merged_length(_intervals(trace, COMPUTE_KINDS))


def comm_compute_ratio(trace: Trace) -> float:
    """comm / (comm + compute), both measured as span unions."""
    comm = comm_seconds(trace)
    comp = compute_seconds(trace)
    return comm / (comm + comp) if comm + comp > 0 else 0.0


def overlap_fraction(trace: Trace) -> float:
    """Fraction of communication time hidden under compute/staging.

    Sync EASGD3's design point: its GPU-GPU parameter traffic runs
    concurrently with data staging + forward/backward, so this fraction
    is strictly positive for it and ~0 for the serial variants.
    """
    comm = _merge(_intervals(trace, COMM_KINDS))
    comp = _merge(_intervals(trace, ("compute", "staging")))
    total_comm = sum(b - a for a, b in comm)
    if total_comm == 0.0:
        return 0.0
    hidden = 0.0
    for a, b in comm:
        for c, d in comp:
            if c >= b:
                break
            lo, hi = max(a, c), min(b, d)
            if hi > lo:
                hidden += hi - lo
    return hidden / total_comm


def critical_path_seconds(trace: Trace) -> float:
    """Longest chain of span durations through the happens-before graph.

    Edges: program order on each rank (events sorted by start time) and
    message order (each send precedes its matching recv). The result is
    the serial latency a perfectly parallel machine could not beat —
    overlap shows up as critical path < sum of all durations.
    """
    evs = [e for e in trace.events if e.kind in COMM_KINDS + COMPUTE_KINDS]
    order = sorted(range(len(evs)), key=lambda i: (evs[i].t0, evs[i].t1))
    finish: List[float] = [0.0] * len(evs)  # chain length ending at event i
    last_on_rank: Dict[int, float] = {}
    send_chain: Dict[Tuple[int, int, int, int], float] = {}
    best = 0.0
    for i in order:
        e = evs[i]
        start = last_on_rank.get(e.rank, 0.0)
        if e.kind == "recv":
            start = max(start, send_chain.get(e.channel(), 0.0))
        finish[i] = start + e.duration
        last_on_rank[e.rank] = finish[i]
        if e.kind == "send":
            send_chain[e.channel()] = finish[i]
        best = max(best, finish[i])
    return best


#: Update-span ops whose ``value`` carries the applied staleness.
STALENESS_OPS = ("elastic-update", "ps-apply")


def staleness_stats(trace: Trace) -> Dict[str, float]:
    """Mean/max staleness carried by applied parameter-server updates.

    Covers the elastic families' ``elastic-update`` spans and the
    non-elastic zoo's ``ps-apply`` spans (DOWNPOUR/ADAG); rejected
    contributions never emit an update span, so these statistics are over
    *applied* updates — the quantity a :class:`repro.engine.ps
    .StalenessBound` with the reject policy guarantees stays under tau.
    """
    vals = [e.value for e in trace.by_kind("update") if e.op in STALENESS_OPS]
    if not vals:
        return {"mean": 0.0, "max": 0.0, "count": 0.0}
    return {"mean": sum(vals) / len(vals), "max": max(vals), "count": float(len(vals))}


def transport_stats(trace: Trace) -> Dict[str, float]:
    """Aggregate the transport counters the process backend marks.

    The shm transport emits one ``mark`` event per rank per counter with
    ``op="transport/<counter>"`` (messages routed through slot rings vs
    the pickle queue, bytes memcpy'd in/out, descriptor bytes on the
    wire, ring allocations). This sums them across ranks and stamps which
    transport the run used (``meta["transport"]``; 0 = queue, 1 = shm).
    Untraced or thread-backend runs yield all-zero counters.
    """
    totals: Dict[str, float] = {}
    prefix = "transport/"
    for e in trace.by_kind("mark"):
        if e.op.startswith(prefix):
            key = e.op[len(prefix):]
            totals[key] = totals.get(key, 0.0) + e.value
    totals["shm"] = 1.0 if trace.meta.get("transport") == "shm" else 0.0
    return totals


def summarize(trace: Trace) -> Dict[str, float]:
    """The flat numeric digest the results schema archives."""
    sends = trace.sends()
    digest = {
        "events": float(len(trace)),
        "messages": float(len(sends)),
        "bytes": float(sum(e.nbytes for e in sends)),
        "comm_seconds": comm_seconds(trace),
        "compute_seconds": compute_seconds(trace),
        "comm_compute_ratio": comm_compute_ratio(trace),
        "overlap_fraction": overlap_fraction(trace),
        "critical_path_seconds": critical_path_seconds(trace),
        "faults": float(len(trace.by_kind("fault"))),
    }
    for key, val in transport_stats(trace).items():
        digest[f"transport_{key}"] = val
    return digest
