"""Reusable structural invariants over communication traces.

Every claim the paper makes about communication *shape* becomes an
executable check here: the binomial tree moves at most P*ceil(log2 P)
point-to-point messages in at most ceil(log2 P) rounds per collective,
packed mode sends exactly one buffer per edge, Sync EASGD3's
communication overlaps its staging/compute spans, the FCFS parameter
server serves strictly in arrival order, and no message vanishes
without a fault event owning the loss. The harness and the test suite
call the same functions, so a perf PR that silently changes the
protocol fails loudly instead of drifting.

Checks raise :class:`InvariantViolation` (an ``AssertionError``
subclass, so plain pytest reporting applies) with the offending
iteration/edge named.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.trace import metrics
from repro.trace.events import Trace

__all__ = [
    "InvariantViolation",
    "check_message_conservation",
    "check_tree_message_bound",
    "check_tree_round_bound",
    "check_ring_message_bound",
    "check_ring_round_bound",
    "check_ring_bytes_per_rank",
    "check_flat_exchange_shape",
    "check_packed_single_message",
    "check_overlap",
    "check_no_overlap",
    "check_fcfs_service",
    "check_update_staleness_bound",
    "check_gossip_pairing",
    "check_serving_no_overlap",
    "check_serving_batch_cap",
    "check_serving_staleness_bound",
    "check_serving_publish_monotone",
    "check_all",
]

#: Fault ops that legitimately account for an unmatched send.
_LOSS_OPS = ("drop", "lost", "give-up", "dead")

#: Ops that mark messages belonging to a tree collective.
TREE_OPS = ("tree-reduce", "tree-bcast")

#: Ops that mark messages belonging to a sharded ring allreduce phase.
RING_OPS = ("ring-reduce-scatter", "ring-allgather")


class InvariantViolation(AssertionError):
    """A structural claim about the communication schedule is false."""


def _log2_ceil(p: int) -> int:
    return int(math.ceil(math.log2(p))) if p > 1 else 0


def _ranks(trace: Trace) -> int:
    p = trace.meta.get("ranks")
    if not p:
        raise InvariantViolation("trace meta lacks a 'ranks' count")
    return int(p)


def check_message_conservation(trace: Trace) -> None:
    """Every sent channel is either received or accounted for by a fault.

    A *channel* is a (source, dest, tag, seq) identity; retransmissions
    share one channel, so a message that was dropped twice and then
    delivered still conserves. Receives with no matching send are always
    violations (a message cannot appear from nowhere).
    """
    sent: Set[Tuple[int, int, int, int]] = {e.channel() for e in trace.sends()}
    received: Set[Tuple[int, int, int, int]] = {e.channel() for e in trace.recvs()}
    lossy: Set[Tuple[Optional[int], Optional[int], int, int]] = {
        (e.rank, e.peer, e.tag, e.seq)
        for e in trace.by_kind("fault")
        if e.op in _LOSS_OPS
    }
    ghost = received - sent
    if ghost:
        raise InvariantViolation(
            f"{len(ghost)} received channel(s) were never sent, e.g. {sorted(ghost)[0]}"
        )
    for src, dst, tag, seq in sorted(sent - received):
        if (src, dst, tag, seq) in lossy:
            continue
        raise InvariantViolation(
            f"send ({src} -> {dst}, tag={tag}, seq={seq}) has no matching recv "
            "and no fault event accounting for the loss"
        )


def _sends_by_iteration(trace: Trace, ops: Tuple[str, ...]) -> Dict[Tuple[int, str], List]:
    groups: Dict[Tuple[int, str], List] = {}
    for e in trace.sends():
        if e.op in ops:
            groups.setdefault((e.iteration, e.op), []).append(e)
    return groups


def check_tree_message_bound(trace: Trace, p: Optional[int] = None) -> None:
    """Each tree collective moves at most P*ceil(log2 P) p2p messages.

    (The schedule actually needs only P-1 edges; the paper's bound is the
    per-round-times-rounds ceiling, which also holds for per-layer mode
    once message multiplicity is divided out.)
    """
    p = p or _ranks(trace)
    bound = max(p * _log2_ceil(p), 1)
    mult = max(int(trace.meta.get("messages_per_exchange", 1)), 1)
    for (iteration, op), sends in sorted(_sends_by_iteration(trace, TREE_OPS).items()):
        edges = {(e.rank, e.peer) for e in sends}
        if len(edges) > bound:
            raise InvariantViolation(
                f"iteration {iteration}: {op} used {len(edges)} edges > "
                f"bound P*ceil(log2 P) = {bound} for P={p}"
            )
        if len(sends) > bound * mult:
            raise InvariantViolation(
                f"iteration {iteration}: {op} sent {len(sends)} messages > "
                f"{bound} * {mult} for P={p}"
            )


def check_tree_round_bound(trace: Trace, p: Optional[int] = None) -> None:
    """Each tree collective finishes in at most ceil(log2 P) rounds —
    the Theta(log P) latency claim Sync EASGD rests on."""
    p = p or _ranks(trace)
    bound = _log2_ceil(p)
    for (iteration, op), sends in sorted(_sends_by_iteration(trace, TREE_OPS).items()):
        rounds = {e.round for e in sends}
        if len(rounds) > max(bound, 1) or any(r < 0 for r in rounds):
            raise InvariantViolation(
                f"iteration {iteration}: {op} used {len(rounds)} rounds > "
                f"ceil(log2 {p}) = {bound}"
            )


def check_ring_message_bound(trace: Trace, p: Optional[int] = None) -> None:
    """Each ring phase moves at most P*(P-1) p2p messages.

    Reduce-scatter and allgather each pair every ordered (src, dst)
    couple exactly once, so a phase that exceeds P(P-1) messages — or
    reuses an edge — is no longer the sharded direct-exchange schedule.
    """
    p = p or _ranks(trace)
    bound = max(p * (p - 1), 1)
    for (iteration, op), sends in sorted(_sends_by_iteration(trace, RING_OPS).items()):
        edges = {(e.rank, e.peer) for e in sends}
        if len(sends) > bound:
            raise InvariantViolation(
                f"iteration {iteration}: {op} sent {len(sends)} messages > "
                f"bound P*(P-1) = {bound} for P={p}"
            )
        if len(edges) != len(sends):
            raise InvariantViolation(
                f"iteration {iteration}: {op} reused an edge "
                f"({len(sends)} messages over {len(edges)} edges)"
            )


def check_ring_round_bound(trace: Trace, p: Optional[int] = None) -> None:
    """Each ring phase finishes in at most P-1 rounds (2(P-1) total) —
    the latency the ring trades for its Theta(1) per-rank bandwidth."""
    p = p or _ranks(trace)
    bound = max(p - 1, 1)
    for (iteration, op), sends in sorted(_sends_by_iteration(trace, RING_OPS).items()):
        rounds = {e.round for e in sends}
        if len(rounds) > bound or any(r < 0 for r in rounds):
            raise InvariantViolation(
                f"iteration {iteration}: {op} used {len(rounds)} rounds > "
                f"P-1 = {bound} for P={p}"
            )


def check_ring_bytes_per_rank(trace: Trace, p: Optional[int] = None,
                              itemsize: int = 8) -> None:
    """Every rank's ring egress is at most 2*(P-1)*(n//P + itemsize + 1).

    This is the Theta(1)-bandwidth-per-rank conservation claim: the
    buffer size n is recovered from the collective's own total traffic
    (both phases together move exactly 2*(P-1)*n wire bytes), and no
    single rank may ship more than P-1 shards per phase, each at most
    one element over the even n/P split. A rank that forwarded whole
    buffers (the naive hop-by-hop ring) blows through the cap.
    """
    p = p or _ranks(trace)
    if p <= 1:
        return
    per_rank: Dict[Tuple[int, int], int] = {}
    totals: Dict[int, int] = {}
    for e in trace.sends():
        if e.op in RING_OPS:
            per_rank[(e.iteration, e.rank)] = per_rank.get((e.iteration, e.rank), 0) + e.nbytes
            totals[e.iteration] = totals.get(e.iteration, 0) + e.nbytes
    for (iteration, rank), sent in sorted(per_rank.items()):
        n = totals[iteration] // (2 * (p - 1))
        cap = 2 * (p - 1) * (n // p + itemsize + 1)
        if sent > cap:
            raise InvariantViolation(
                f"iteration {iteration}: rank {rank} shipped {sent} ring bytes > "
                f"per-rank cap {cap} for n={n}, P={p}"
            )


def check_flat_exchange_shape(trace: Trace) -> None:
    """Round-robin EASGD: one worker per iteration, 2 transfers with it.

    Over any window of P iterations this is Theta(P) sequential
    exchanges — the master-bound pattern Sync EASGD's tree eliminates.
    """
    mult = max(int(trace.meta.get("messages_per_exchange", 1)), 1)
    groups = _sends_by_iteration(trace, ("round-robin",))
    if not groups:
        raise InvariantViolation("no round-robin sends in trace")
    for (iteration, _), sends in sorted(groups.items()):
        workers = {e.rank for e in sends} | {e.peer for e in sends}
        workers.discard(None)
        if len(workers) != 2:
            raise InvariantViolation(
                f"iteration {iteration}: round-robin touched ranks {sorted(workers)}; "
                "expected exactly master + one worker"
            )
        if len(sends) != 2 * mult:
            raise InvariantViolation(
                f"iteration {iteration}: {len(sends)} round-robin messages; "
                f"expected 2 transfers x {mult} buffer(s)"
            )


def check_packed_single_message(trace: Trace) -> None:
    """Packed mode: every (edge, round) of every exchange is ONE buffer.

    This is Section 5.2's single-message claim; per-layer mode trips it
    because each blob becomes its own message on the same edge.
    """
    counts: Dict[Tuple[int, str, int, Optional[int], int], int] = {}
    for e in trace.sends():
        if e.op in TREE_OPS + RING_OPS + ("round-robin", "ps-request", "ps-reply",
                                          "gossip-exchange"):
            key = (e.iteration, e.op, e.rank, e.peer, e.round)
            counts[key] = counts.get(key, 0) + 1
    for key, n in sorted(counts.items()):
        if n != 1:
            iteration, op, src, dst, rnd = key
            raise InvariantViolation(
                f"iteration {iteration}: {op} edge {src}->{dst} round {rnd} "
                f"carried {n} messages; packed mode sends exactly one buffer"
            )


def check_overlap(trace: Trace, min_fraction: float = 0.0) -> None:
    """Communication spans overlap staging/compute spans (EASGD3)."""
    frac = metrics.overlap_fraction(trace)
    if frac <= min_fraction:
        raise InvariantViolation(
            f"overlap fraction {frac:.4f} <= {min_fraction} — communication "
            "is not hidden under staging/compute"
        )


def check_no_overlap(trace: Trace, tolerance: float = 1e-9) -> None:
    """Serial variants: communication strictly outside compute/staging."""
    frac = metrics.overlap_fraction(trace)
    if frac > tolerance:
        raise InvariantViolation(
            f"overlap fraction {frac:.4f} > {tolerance} in a serial schedule"
        )


def check_fcfs_service(trace: Trace) -> None:
    """A locked master serves requests in arrival order (FCFS).

    Service events carry their request's arrival instant in ``value``;
    sorting by service start must leave arrivals non-decreasing.
    """
    served = sorted(trace.by_kind("service"), key=lambda e: (e.t0, e.t1))
    for prev, cur in zip(served, served[1:]):
        if cur.value < prev.value - 1e-12:
            raise InvariantViolation(
                f"service at t={cur.t0:.6g} (arrival {cur.value:.6g}) overtook "
                f"service at t={prev.t0:.6g} (arrival {prev.value:.6g}) — not FCFS"
            )
        if cur.t0 < prev.t1 - 1e-12:
            raise InvariantViolation(
                "service spans overlap under a locked master: "
                f"[{prev.t0:.6g},{prev.t1:.6g}] vs [{cur.t0:.6g},{cur.t1:.6g}]"
            )


def check_update_staleness_bound(trace: Trace, tau: Optional[int] = None) -> None:
    """No applied parameter-server update was staler than ``tau``.

    Applied updates carry their staleness in the ``value`` of the
    per-exchange "update" span (``elastic-update`` / ``ps-apply`` ops);
    the bound comes from ``meta['staleness_bound']`` unless given. This is
    the trace-level face of :class:`repro.engine.ps.StalenessBound` with
    the reject policy — rejected contributions emit a ``stale-reject``
    fault instead of an update span, so every update span must obey tau.
    """
    if tau is None:
        raw = trace.meta.get("staleness_bound")
        if raw is None:
            raise InvariantViolation("trace meta lacks a 'staleness_bound'")
        tau = int(raw)
    for e in trace.by_kind("update"):
        if e.op in metrics.STALENESS_OPS and e.value > tau:
            raise InvariantViolation(
                f"update at t={e.t0:.6g} on rank {e.rank} applied staleness "
                f"{e.value:.0f} > bound tau={tau}"
            )


def check_gossip_pairing(trace: Trace, p: Optional[int] = None) -> None:
    """Gossip exchanges follow the deterministic tournament schedule.

    Per iteration: every exchange edge must be one of that round's
    scheduled pairs (:func:`repro.comm.topology.gossip_pairs`), each
    direction of a pair appears at most once, and both directions appear
    together (pairwise averaging is symmetric). Ranks outside any pair
    (byes, crashed peers) exchange nothing.
    """
    from repro.comm.topology import gossip_pairs

    p = p or _ranks(trace)
    by_iter: Dict[int, Set[Tuple[int, int]]] = {}
    for e in trace.sends():
        if e.op == "gossip-exchange":
            edges = by_iter.setdefault(e.iteration, set())
            if (e.rank, e.peer) in edges:
                raise InvariantViolation(
                    f"iteration {e.iteration}: duplicate gossip edge "
                    f"{e.rank}->{e.peer}"
                )
            edges.add((e.rank, e.peer))
    for iteration, edges in sorted(by_iter.items()):
        scheduled = set(gossip_pairs(iteration, p))
        for a, b in sorted(edges):
            if (min(a, b), max(a, b)) not in scheduled:
                raise InvariantViolation(
                    f"iteration {iteration}: gossip edge {a}->{b} is not in "
                    f"the round's schedule {sorted(scheduled)}"
                )
            if (b, a) not in edges:
                raise InvariantViolation(
                    f"iteration {iteration}: gossip edge {a}->{b} has no "
                    "reverse direction — pairwise averaging must be symmetric"
                )


def _serving_batches(trace: Trace) -> List:
    return sorted(
        (e for e in trace.by_kind("service") if e.op == "serving/batch"),
        key=lambda e: (e.t0, e.t1),
    )


def check_serving_no_overlap(trace: Trace) -> None:
    """One server thread owns the replica: batch spans never overlap."""
    batches = _serving_batches(trace)
    for prev, cur in zip(batches, batches[1:]):
        if cur.t0 < prev.t1 - 1e-9:
            raise InvariantViolation(
                "serving batches overlap under a single server: "
                f"[{prev.t0:.6g},{prev.t1:.6g}] vs [{cur.t0:.6g},{cur.t1:.6g}]"
            )


def check_serving_batch_cap(trace: Trace, cap: Optional[int] = None) -> None:
    """No forward pass exceeds the micro-batcher's admission cap.

    Batch size rides in ``round``; the cap comes from ``meta['batch_cap']``
    unless given explicitly.
    """
    cap = cap or int(trace.meta.get("batch_cap", 0))
    if cap <= 0:
        raise InvariantViolation("trace meta lacks a 'batch_cap'")
    for e in _serving_batches(trace):
        if e.round > cap:
            raise InvariantViolation(
                f"serving batch at t={e.t0:.6g} packed {e.round} requests > "
                f"batch_cap {cap}"
            )
        if e.round < 1:
            raise InvariantViolation(
                f"serving batch at t={e.t0:.6g} records size {e.round} < 1"
            )


def check_serving_staleness_bound(trace: Trace, bound: Optional[int] = None) -> None:
    """No batch was served from weights older than ``max_staleness_steps``.

    Staleness (training steps the served snapshot lagged the trainer
    heartbeat) rides in ``value``.  The bound is only enforceable up to
    the publish cadence — with ``publish_every > 1`` the freshest
    available snapshot may itself exceed the bound, so the allowance
    widens by the thinning.
    """
    if bound is None:
        raw = trace.meta.get("max_staleness_steps")
        if raw is None:
            raise InvariantViolation("trace meta lacks a 'max_staleness_steps'")
        bound = int(raw)
    allow = bound + max(int(trace.meta.get("publish_every", 1)) - 1, 0)
    for e in _serving_batches(trace):
        if e.value > allow:
            raise InvariantViolation(
                f"serving batch at t={e.t0:.6g} served staleness {e.value:.0f} > "
                f"bound {bound} (+{allow - bound} publish thinning)"
            )


def check_serving_publish_monotone(trace: Trace) -> None:
    """Snapshot publishes advance: versions strictly, steps never backward."""
    marks = [e for e in trace.by_kind("mark") if e.op == "serving/publish"]
    marks.sort(key=lambda e: e.value)
    for prev, cur in zip(marks, marks[1:]):
        if cur.value == prev.value:
            raise InvariantViolation(
                f"two publishes share version {cur.value:.0f}"
            )
        if cur.iteration < prev.iteration:
            raise InvariantViolation(
                f"publish version {cur.value:.0f} (step {cur.iteration}) is older "
                f"than version {prev.value:.0f} (step {prev.iteration})"
            )


def check_all(trace: Trace) -> List[str]:
    """Run every invariant the trace's metadata declares applicable.

    Returns the names of the checks that ran (and passed); raises
    :class:`InvariantViolation` on the first failure. The dispatch keys
    off ``meta['pattern']`` — "tree", "ring", "round-robin", "ps", or
    "serving" — which the trainers (and the serving front-end) stamp when
    they create the trace.
    """
    ran: List[str] = []

    def run(name: str, fn, *args, **kwargs) -> None:
        fn(*args, **kwargs)
        ran.append(name)

    run("message-conservation", check_message_conservation, trace)
    pattern = trace.meta.get("pattern")
    if pattern == "tree":
        run("tree-message-bound", check_tree_message_bound, trace)
        run("tree-round-bound", check_tree_round_bound, trace)
        if trace.meta.get("packed"):
            run("packed-single-message", check_packed_single_message, trace)
        variant = trace.meta.get("variant")
        if variant == 3 or trace.meta.get("overlapped"):
            run("comm-compute-overlap", check_overlap, trace)
        elif variant in (1, 2):
            run("serial-no-overlap", check_no_overlap, trace)
    elif pattern == "ring":
        run("ring-message-bound", check_ring_message_bound, trace)
        run("ring-round-bound", check_ring_round_bound, trace)
        run("ring-bytes-per-rank", check_ring_bytes_per_rank, trace)
        # Barriers and weight broadcasts still ride the tree schedule even
        # when the allreduce is a ring; hold them to the tree bounds too.
        run("tree-message-bound", check_tree_message_bound, trace)
        run("tree-round-bound", check_tree_round_bound, trace)
        if trace.meta.get("packed"):
            run("packed-single-message", check_packed_single_message, trace)
    elif pattern == "round-robin":
        run("flat-exchange-shape", check_flat_exchange_shape, trace)
        if trace.meta.get("packed"):
            run("packed-single-message", check_packed_single_message, trace)
    elif pattern == "ps":
        if not trace.meta.get("lock_free"):
            run("fcfs-service", check_fcfs_service, trace)
        if (trace.meta.get("staleness_bound") is not None
                and trace.meta.get("staleness_policy", "reject") == "reject"):
            run("update-staleness-bound", check_update_staleness_bound, trace)
    elif pattern == "gossip":
        run("gossip-pairing", check_gossip_pairing, trace)
        if trace.meta.get("packed"):
            run("packed-single-message", check_packed_single_message, trace)
    elif pattern == "serving":
        run("serving-no-overlap", check_serving_no_overlap, trace)
        run("serving-publish-monotone", check_serving_publish_monotone, trace)
        if trace.meta.get("batch_cap"):
            run("serving-batch-cap", check_serving_batch_cap, trace)
        if trace.meta.get("max_staleness_steps") is not None:
            run("serving-staleness-bound", check_serving_staleness_bound, trace)
    return ran
