"""Emit the per-message structure of simulated collective phases.

The simulated trainers charge a closed-form time for a whole tree
reduce/broadcast; for the trace we expand that phase back into the
individual point-to-point messages of the binomial-tree schedule (the
same recursive-halving edge order as :func:`repro.comm.collectives
.tree_reduce`), each stamped with its round index and an even share of
the phase's simulated span. The message *structure* is therefore exact
— P-1 messages in ceil(log2 P) rounds — while the per-hop times are
the uniform model the cost functions already assume.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.trace.events import MASTER, Trace

__all__ = ["tree_edge_rounds", "emit_tree_phase", "emit_ring_allreduce", "emit_p2p"]


def tree_edge_rounds(p: int) -> List[List[Tuple[int, int]]]:
    """Binomial-tree broadcast edges grouped by round.

    Round k has every relative rank ``i < 2**k`` forward to ``i + 2**k``
    — the grouping behind :func:`repro.comm.collectives.tree_bcast_order`,
    kept per-round here because the trace records round indices.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    rounds: List[List[Tuple[int, int]]] = []
    have = 1
    while have < p:
        rounds.append([(src, src + have) for src in range(min(have, p - have))])
        have *= 2
    return rounds


def emit_tree_phase(
    trace: Trace,
    op: str,
    ranks: Sequence[int],
    t0: float,
    t1: float,
    *,
    nbytes: int,
    messages_per_edge: int = 1,
    tag: int = 0,
    iteration: int = -1,
    reduce: bool = False,
) -> None:
    """Record one tree collective: a phase span plus its p2p messages.

    ``ranks`` lists the participating worker ids in tree order (position
    0 is the root — after a fault-driven rebuild this is the survivor
    list). A broadcast walks the edge rounds root-down; ``reduce=True``
    walks them leaves-up with the edges flipped. ``messages_per_edge``
    models packed (1) vs per-layer (L) buffers; ``nbytes`` is the total
    per edge, split evenly across its messages.
    """
    p = len(ranks)
    rounds = tree_edge_rounds(p)
    trace.span("collective", MASTER, t0, t1, op=op, nbytes=nbytes * max(p - 1, 0),
               iteration=iteration)
    if not rounds:
        return
    per_round = (t1 - t0) / len(rounds)
    schedule = rounds
    if reduce:
        schedule = [[(dst, src) for src, dst in edges] for edges in reversed(rounds)]
    per_msg_bytes = nbytes // messages_per_edge if messages_per_edge else 0
    for r, edges in enumerate(schedule):
        r0 = t0 + r * per_round
        r1 = r0 + per_round
        for src_rel, dst_rel in edges:
            src, dst = ranks[src_rel], ranks[dst_rel]
            for m in range(messages_per_edge):
                seq = r * messages_per_edge + m
                trace.send(src, dst, r0, r1, tag=tag, nbytes=per_msg_bytes,
                           seq=seq, op=op, round=r, iteration=iteration)
                trace.recv(dst, src, r0, r1, tag=tag, nbytes=per_msg_bytes,
                           seq=seq, op=op, round=r, iteration=iteration)


def emit_ring_allreduce(
    trace: Trace,
    ranks: Sequence[int],
    t0: float,
    t1: float,
    *,
    nbytes: int,
    tag: int = 0,
    iteration: int = -1,
) -> None:
    """Record one sharded ring allreduce: reduce-scatter then allgather.

    Mirrors the runtime schedule of :meth:`repro.comm.runtime
    .RankContextBase._ring_allreduce` without importing it (trace/ must
    stay import-free of comm/): the buffer splits into P nearly-equal
    shards at byte bounds ``(nbytes * s) // P``; in reduce-scatter round
    k every rank sends its version of shard ``(i + k) % P`` to that
    shard's owner, and in allgather round k every owner forwards its
    reduced shard to rank ``(i + k) % P``. Both phases move P(P-1)
    messages in P-1 rounds each — 2(P-1) equal-time rounds overall —
    and every rank ships Theta(nbytes / P) per round, the constant
    per-rank bandwidth that lets the ring win at large P. Allgather
    seq numbers continue after the reduce-scatter's so every
    (src, dst, tag, seq) channel stays unique within the collective.
    """
    p = len(ranks)
    trace.span("collective", MASTER, t0, t1, op="ring-allreduce",
               nbytes=2 * nbytes * max(p - 1, 0), iteration=iteration)
    if p <= 1:
        return
    bounds = [(nbytes * s) // p for s in range(p + 1)]
    shard = [bounds[s + 1] - bounds[s] for s in range(p)]
    per_round = (t1 - t0) / (2 * (p - 1))
    for phase, op in enumerate(("ring-reduce-scatter", "ring-allgather")):
        for k in range(1, p):
            r0 = t0 + (phase * (p - 1) + k - 1) * per_round
            r1 = r0 + per_round
            for i in range(p):
                j = (i + k) % p
                src, dst = ranks[i], ranks[j]
                nb = shard[j] if op == "ring-reduce-scatter" else shard[i]
                seq = phase * (p - 1) + k - 1
                trace.send(src, dst, r0, r1, tag=tag, nbytes=nb,
                           seq=seq, op=op, round=k - 1, iteration=iteration)
                trace.recv(dst, src, r0, r1, tag=tag, nbytes=nb,
                           seq=seq, op=op, round=k - 1, iteration=iteration)


def emit_p2p(
    trace: Trace,
    src: int,
    dst: int,
    t0: float,
    t1: float,
    *,
    op: str,
    nbytes: int,
    messages: int = 1,
    tag: int = 0,
    seq: int = 0,
    iteration: int = -1,
) -> None:
    """Record one logical transfer as ``messages`` send/recv pairs.

    The round-robin and parameter-server patterns move whole models in
    one hop; ``messages > 1`` is the unpacked per-layer scheme (each
    blob its own message, same span, consecutive seq numbers).
    """
    per_msg_bytes = nbytes // messages if messages else 0
    for m in range(messages):
        trace.send(src, dst, t0, t1, tag=tag, nbytes=per_msg_bytes,
                   seq=seq * messages + m, op=op, iteration=iteration)
        trace.recv(dst, src, t0, t1, tag=tag, nbytes=per_msg_bytes,
                   seq=seq * messages + m, op=op, iteration=iteration)
