"""repro — reproduction of "Scaling Deep Learning on GPU and Knights
Landing clusters" (You, Buluç, Demmel; SC'17).

Subpackages
-----------
``repro.nn``
    From-scratch NumPy DNN framework with a packed contiguous parameter
    buffer (the Section 5.2 single-layer layout).
``repro.data``
    Deterministic synthetic datasets with MNIST/CIFAR/ImageNet geometry.
``repro.optim``
    SGD, momentum SGD, and the EASGD update equations (Eqs 1-6).
``repro.comm``
    Alpha-beta cost model (Table 2), message packing, tree collectives.
``repro.cluster``
    Simulated devices (K80, M40, KNL, host CPU), platforms, event queue.
``repro.algorithms``
    All nine training algorithms of Sections 3, 5 and 6.
``repro.knl``
    KNL chip model, Section 6.2 chip partitioning, Algorithm 4 trainer.
``repro.hogwild``
    Real threaded lock-free training on shared NumPy weights.
``repro.faults``
    Deterministic fault schedules (crash/straggler/drop) + recovery.
``repro.durability``
    Crash-safe versioned checkpoints with bit-identical resume.
``repro.scaling``
    Table 4 weak-scaling models (ours vs Intel-Caffe-like).
``repro.harness``
    Experiment runners and table/figure regenerators.

Quick start::

    from repro.data import make_mnist_like
    from repro.nn import build_lenet
    from repro.algorithms import TrainerConfig
    from repro.harness import ExperimentSpec, run_method

    train, test = make_mnist_like(seed=0)
    spec = ExperimentSpec(train, test, build_lenet).normalize()
    result = run_method(spec, "sync-easgd3", iterations=200)
    print(result.final_accuracy, result.sim_time)
"""

from repro.algorithms import ALGORITHMS, make_trainer, TrainerConfig
from repro.cluster import CostModel, GpuPlatform, KnlPlatform
from repro.comm.runtime import DeadlockError
from repro.durability import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointManager,
    CheckpointMismatchError,
    NoCheckpointError,
)
from repro.faults import AllWorkersCrashedError, FaultError, FaultLog, FaultPlan
from repro.harness import ExperimentSpec, run_method, run_methods

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ALGORITHMS",
    "TrainerConfig",
    "make_trainer",
    "CostModel",
    "GpuPlatform",
    "KnlPlatform",
    "ExperimentSpec",
    "run_method",
    "run_methods",
    "FaultPlan",
    "FaultLog",
    "FaultError",
    "AllWorkersCrashedError",
    "DeadlockError",
    "CheckpointManager",
    "CheckpointError",
    "CheckpointCorruptionError",
    "CheckpointMismatchError",
    "NoCheckpointError",
]
