"""Name -> trainer-factory registry used by the harness and benchmarks.

Keys match the method names of Figures 8-9 plus the cluster-scale trainers
(Algorithm 4 / Section 7). Each factory has the uniform signature
``(network, train_set, test_set, platform, config, cost_model)`` where
``platform`` is the harness-built :class:`repro.cluster.GpuPlatform`; the
cluster entries adapt it into the platform type their trainer simulates
(one KNL node, or one single-GPU cluster node, per requested worker).

:data:`ALGORITHM_INFO` carries the presentation metadata (family,
synchronisation style, paper section) behind ``repro --list-algorithms``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict

from repro.algorithms.async_ps import (
    AsyncEASGDTrainer,
    AsyncMEASGDTrainer,
    AsyncMSGDTrainer,
    AsyncSGDTrainer,
    HogwildEASGDTrainer,
    HogwildSGDTrainer,
)
from repro.algorithms.base import BaseTrainer
from repro.algorithms.original_easgd import OriginalEASGDTrainer
from repro.algorithms.ps_zoo import (
    AdagTrainer,
    BoundedAsyncEasgdTrainer,
    DownpourTrainer,
    EamsgdTrainer,
    GossipSGDTrainer,
)
from repro.algorithms.sync_easgd import SyncEASGDTrainer
from repro.algorithms.sync_sgd import SyncSGDTrainer

__all__ = ["ALGORITHMS", "ALGORITHM_INFO", "AlgorithmInfo", "make_trainer"]


def _make_knl_sync_easgd(network, train_set, test_set, platform, config,
                         cost_model=None, **kwargs) -> BaseTrainer:
    """Adapt the harness GpuPlatform into ``num_gpus`` KNL nodes."""
    from repro.cluster.platform import KnlPlatform
    from repro.knl.trainer import KnlSyncEASGDTrainer

    knl = KnlPlatform(num_nodes=platform.num_gpus, seed=platform.seed)
    return KnlSyncEASGDTrainer(
        network, train_set, test_set, knl, config, cost_model, **kwargs
    )


def _make_cluster_sync_easgd(network, train_set, test_set, platform, config,
                             cost_model=None, **kwargs) -> BaseTrainer:
    """Adapt the harness GpuPlatform into ``num_gpus`` single-GPU nodes."""
    from repro.algorithms.multinode import ClusterSyncEASGDTrainer
    from repro.cluster.multinode import GpuClusterPlatform

    cluster = GpuClusterPlatform(
        num_nodes=platform.num_gpus, gpus_per_node=1, seed=platform.seed
    )
    return ClusterSyncEASGDTrainer(
        network, train_set, test_set, cluster, config, cost_model, **kwargs
    )


ALGORITHMS: Dict[str, Callable[..., BaseTrainer]] = {
    # existing methods (baselines the paper compares against)
    "original-easgd": partial(OriginalEASGDTrainer, overlapped=True),
    "original-easgd*": partial(OriginalEASGDTrainer, overlapped=False),
    "async-sgd": AsyncSGDTrainer,
    "async-msgd": AsyncMSGDTrainer,
    "hogwild-sgd": HogwildSGDTrainer,
    "sync-sgd": SyncSGDTrainer,
    "sync-sgd-unpacked": partial(SyncSGDTrainer, packed=False),
    # the paper's methods
    "async-easgd": AsyncEASGDTrainer,
    "async-measgd": AsyncMEASGDTrainer,
    "hogwild-easgd": HogwildEASGDTrainer,
    "sync-easgd1": partial(SyncEASGDTrainer, variant=1),
    "sync-easgd2": partial(SyncEASGDTrainer, variant=2),
    "sync-easgd3": partial(SyncEASGDTrainer, variant=3),
    "sync-easgd": partial(SyncEASGDTrainer, variant=3),  # the headline method
    # cluster-scale trainers (platform adapted from the harness GpuPlatform)
    "knl-sync-easgd": _make_knl_sync_easgd,
    "cluster-sync-easgd": _make_cluster_sync_easgd,
    # the parameter-server zoo (the PS protocol layer's new families)
    "downpour": DownpourTrainer,
    "adag": AdagTrainer,
    "eamsgd": EamsgdTrainer,
    "gossip-sgd": GossipSGDTrainer,
    "bounded-async-easgd": BoundedAsyncEasgdTrainer,
}


@dataclass(frozen=True)
class AlgorithmInfo:
    """Presentation metadata for one registry entry."""

    family: str  # which trainer family implements it
    sync: str  # "sync" or "async"
    section: str  # where the paper (or cited work) introduces/measures it
    family_class: str = "centered"  # "centered" (a real center) or "decentralized"
    staleness: str = "none (bulk-sync)"  # the family's staleness semantics
    backends: str = "threads, processes"  # engine backends the family runs on


ALGORITHM_INFO: Dict[str, AlgorithmInfo] = {
    "original-easgd": AlgorithmInfo(
        "round-robin EASGD", "sync", "Alg 1, Table 3"),
    "original-easgd*": AlgorithmInfo(
        "round-robin EASGD", "sync", "Alg 1, Table 3"),
    "async-sgd": AlgorithmInfo(
        "parameter server", "async", "Sec 3.1", staleness="unbounded"),
    "async-msgd": AlgorithmInfo(
        "parameter server", "async", "Sec 3.1, Eqs 3-4", staleness="unbounded"),
    "hogwild-sgd": AlgorithmInfo(
        "parameter server", "async", "Sec 3.2", staleness="unbounded"),
    "sync-sgd": AlgorithmInfo(
        "allreduce SGD", "sync", "Sec 5.2, Fig 10"),
    "sync-sgd-unpacked": AlgorithmInfo(
        "allreduce SGD", "sync", "Sec 5.2, Fig 10"),
    "async-easgd": AlgorithmInfo(
        "parameter server", "async", "Sec 5.1, Eqs 1-2", staleness="unbounded"),
    "async-measgd": AlgorithmInfo(
        "parameter server", "async", "Sec 5.1, Eqs 5-6", staleness="unbounded"),
    "hogwild-easgd": AlgorithmInfo(
        "parameter server", "async", "Sec 5.1", staleness="unbounded"),
    "sync-easgd1": AlgorithmInfo("tree EASGD", "sync", "Sec 6.1, Alg 2"),
    "sync-easgd2": AlgorithmInfo("tree EASGD", "sync", "Sec 6.1, Alg 3"),
    "sync-easgd3": AlgorithmInfo("tree EASGD", "sync", "Sec 6.1, Alg 3+overlap"),
    "sync-easgd": AlgorithmInfo("tree EASGD", "sync", "Sec 6.1, Alg 3+overlap"),
    "knl-sync-easgd": AlgorithmInfo("KNL cluster", "sync", "Sec 6.2, Alg 4"),
    "cluster-sync-easgd": AlgorithmInfo("GPU cluster", "sync", "Sec 7, Table 4"),
    "downpour": AlgorithmInfo(
        "parameter server", "async", "Dean et al. 2012",
        staleness="unbounded"),
    "adag": AlgorithmInfo(
        "parameter server", "async", "accumulated-gradient ASGD",
        staleness="unbounded"),
    "eamsgd": AlgorithmInfo(
        "parameter server", "async", "Zhang et al. 2015, Eqs 5-6",
        staleness="unbounded"),
    "gossip-sgd": AlgorithmInfo(
        "gossip", "sync", "Jin et al. 2016",
        family_class="decentralized", staleness="none (pairwise)"),
    "bounded-async-easgd": AlgorithmInfo(
        "parameter server", "async", "bounded-delay EASGD",
        staleness="bounded: tau (reject/clip)"),
}


def make_trainer(name: str, *args, **kwargs) -> BaseTrainer:
    """Instantiate a registered trainer by method name."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    return factory(*args, **kwargs)
