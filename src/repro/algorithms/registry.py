"""Name -> trainer-factory registry used by the harness and benchmarks.

Keys match the method names of Figures 8-9. Each factory has the uniform
signature ``(network, train_set, test_set, platform, config, cost_model)``.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict

from repro.algorithms.async_ps import (
    AsyncEASGDTrainer,
    AsyncMEASGDTrainer,
    AsyncMSGDTrainer,
    AsyncSGDTrainer,
    HogwildEASGDTrainer,
    HogwildSGDTrainer,
)
from repro.algorithms.base import BaseTrainer
from repro.algorithms.original_easgd import OriginalEASGDTrainer
from repro.algorithms.sync_easgd import SyncEASGDTrainer
from repro.algorithms.sync_sgd import SyncSGDTrainer

__all__ = ["ALGORITHMS", "make_trainer"]

ALGORITHMS: Dict[str, Callable[..., BaseTrainer]] = {
    # existing methods (baselines the paper compares against)
    "original-easgd": partial(OriginalEASGDTrainer, overlapped=True),
    "original-easgd*": partial(OriginalEASGDTrainer, overlapped=False),
    "async-sgd": AsyncSGDTrainer,
    "async-msgd": AsyncMSGDTrainer,
    "hogwild-sgd": HogwildSGDTrainer,
    "sync-sgd": SyncSGDTrainer,
    "sync-sgd-unpacked": partial(SyncSGDTrainer, packed=False),
    # the paper's methods
    "async-easgd": AsyncEASGDTrainer,
    "async-measgd": AsyncMEASGDTrainer,
    "hogwild-easgd": HogwildEASGDTrainer,
    "sync-easgd1": partial(SyncEASGDTrainer, variant=1),
    "sync-easgd2": partial(SyncEASGDTrainer, variant=2),
    "sync-easgd3": partial(SyncEASGDTrainer, variant=3),
    "sync-easgd": partial(SyncEASGDTrainer, variant=3),  # the headline method
}


def make_trainer(name: str, *args, **kwargs) -> BaseTrainer:
    """Instantiate a registered trainer by method name."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    return factory(*args, **kwargs)
