"""The classic parameter-server zoo on the engine's PS protocol layer.

Five families beyond the paper's own methods, each a thin store/rule
pairing over the shared machinery (:mod:`repro.engine.ps` for the
numerics seam, :class:`repro.algorithms.async_ps._AsyncPSBase` for the
asynchronous discrete-event simulation, :class:`repro.engine.
ClockStepStrategy` for the synchronous gossip rounds):

- **DOWNPOUR SGD** (Dean et al., NIPS 2012): workers run ``local_steps``
  plain SGD steps between exchanges, push the raw weight delta
  ``W - anchor``, and pull fresh center weights.
- **ADAG** (accumulated-gradient asynchronous SGD): workers step locally
  while accumulating the raw gradients; the server applies the
  accumulated gradient normalized by the worker count.
- **EAMSGD** (Zhang, Choromanska & LeCun, NIPS 2015): momentum SGD runs
  entirely on the worker between exchanges (Eqs 5-6's local half); the
  exchange itself is purely elastic — the server folds Eq 2, the worker
  relaxes toward the replied center.
- **Gossip SGD** (Jin et al. / Blot et al. style): no center at all.
  Each round every worker takes one local SGD step, then deterministic
  tournament pairs (:func:`repro.comm.topology.gossip_pairs`) average
  pairwise; the consensus mean stands in for the center at evaluation.
- **Bounded-async EASGD**: Async EASGD under a first-class
  :class:`repro.engine.ps.StalenessBound` — contributions staler than
  ``tau`` master versions are rejected (worker resyncs) or clipped, and
  the bound is stamped into the trace meta so the
  ``update-staleness-bound`` invariant enforces it structurally.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.async_ps import AsyncEASGDTrainer, _AsyncPSBase
from repro.algorithms.base import BaseTrainer, TrainerConfig
from repro.cluster.cost import CostModel
from repro.cluster.platform import GpuPlatform
from repro.comm.topology import gossip_pairs
from repro.data.dataset import Dataset
from repro.engine.compute import jittered_fwdbwd
from repro.engine.faults import SyncFaultTracker
from repro.engine.ps import (
    AccumGradWorkerRule,
    AdagServerStore,
    CenterStore,
    DeltaServerStore,
    ElasticCenterStore,
    ElasticPullWorkerRule,
    FreshPullWorkerRule,
    GossipStore,
    LocalSgdWorkerRule,
    StalenessBound,
    WorkerRule,
)
from repro.engine.strategy import ClockStepStrategy
from repro.faults import FaultLog, FaultPlan
from repro.nn.network import Network

__all__ = [
    "DownpourTrainer",
    "AdagTrainer",
    "EamsgdTrainer",
    "GossipSGDTrainer",
    "BoundedAsyncEasgdTrainer",
]


class DownpourTrainer(_AsyncPSBase):
    """DOWNPOUR SGD: local SGD bursts, raw weight-delta pushes, fresh pulls."""

    name = "DOWNPOUR SGD"
    update_op = "ps-apply"

    def __init__(self, *args, local_steps: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if local_steps < 1:
            raise ValueError("local_steps must be >= 1")
        self.batches_per_exchange = local_steps

    def _init_states(self, g: int, init: np.ndarray) -> None:
        super()._init_states(g, init)
        #: The center snapshot each worker last pulled; the pushed delta is
        #: measured against it, so concurrent pushes compose additively.
        self.anchor: List[np.ndarray] = [init.copy() for _ in range(g)]

    def _make_store(self, g: int) -> CenterStore:
        return DeltaServerStore().bind(self.master)

    def _make_rule(self) -> WorkerRule:
        return LocalSgdWorkerRule()

    def _local_compute(self, j: int, sampler) -> float:
        w = self.worker_w[j]
        loss = 0.0
        for _ in range(self.batches_per_exchange):
            images, labels = sampler.next_batch()
            self.net.set_params(w)
            loss = self.net.gradient(images, labels, self.loss)
            self.rule.local_step(w, self.net.grads, self.hyper.lr)
        return loss

    def _interaction(self, j: int, grad: np.ndarray, scale: float = 1.0) -> None:
        self.store.push(self.rule.delta(self.worker_w[j], self.anchor[j]), scale)
        self.worker_w[j][...] = self.master  # pull fresh, re-anchor
        self.anchor[j][...] = self.master

    def _resync(self, j: int) -> None:
        super()._resync(j)
        self.anchor[j][...] = self.master

    def _trace_meta(self) -> Dict:
        return {"local_steps": self.batches_per_exchange}

    def _family_arrays(self) -> Dict[str, np.ndarray]:
        return {f"anchor-{j}": self.anchor[j] for j in range(len(self.anchor))}


class AdagTrainer(_AsyncPSBase):
    """ADAG: accumulate gradients while stepping locally; server applies /P."""

    name = "ADAG"
    update_op = "ps-apply"

    def __init__(self, *args, local_steps: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if local_steps < 1:
            raise ValueError("local_steps must be >= 1")
        self.batches_per_exchange = local_steps

    def _init_states(self, g: int, init: np.ndarray) -> None:
        super()._init_states(g, init)
        self.acc: List[np.ndarray] = [np.zeros_like(init) for _ in range(g)]

    def _make_store(self, g: int) -> CenterStore:
        return AdagServerStore(self.hyper.lr, g).bind(self.master)

    def _make_rule(self) -> WorkerRule:
        return AccumGradWorkerRule()

    def _local_compute(self, j: int, sampler) -> float:
        w, acc = self.worker_w[j], self.acc[j]
        loss = 0.0
        for _ in range(self.batches_per_exchange):
            images, labels = sampler.next_batch()
            self.net.set_params(w)
            loss = self.net.gradient(images, labels, self.loss)
            self.rule.local_step(w, acc, self.net.grads, self.hyper.lr)
        return loss

    def _interaction(self, j: int, grad: np.ndarray, scale: float = 1.0) -> None:
        self.store.push(self.acc[j], scale)
        self.acc[j][...] = 0.0
        self.worker_w[j][...] = self.master  # pull fresh

    def _resync(self, j: int) -> None:
        super()._resync(j)
        self.acc[j][...] = 0.0

    def _trace_meta(self) -> Dict:
        return {"local_steps": self.batches_per_exchange}

    def _family_arrays(self) -> Dict[str, np.ndarray]:
        return {f"acc-{j}": self.acc[j] for j in range(len(self.acc))}


class EamsgdTrainer(_AsyncPSBase):
    """EAMSGD: local momentum SGD between purely-elastic exchanges (Eqs 5-6)."""

    name = "EAMSGD"
    elastic = True
    momentum = True
    update_op = "elastic-update"

    def __init__(self, *args, local_steps: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if local_steps < 1:
            raise ValueError("local_steps must be >= 1")
        self.batches_per_exchange = local_steps

    def _make_store(self, g: int) -> ElasticCenterStore:
        return ElasticCenterStore(self.hyper).bind(self.master)

    def _make_rule(self) -> WorkerRule:
        return ElasticPullWorkerRule()

    def _local_compute(self, j: int, sampler) -> float:
        w, v = self.worker_w[j], self.worker_v[j]
        loss = 0.0
        for _ in range(self.batches_per_exchange):
            images, labels = sampler.next_batch()
            self.net.set_params(w)
            loss = self.net.gradient(images, labels, self.loss)
            v *= self.hyper.mu
            v -= self.hyper.lr * self.net.grads
            w += v
        return loss

    def _interaction(self, j: int, grad: np.ndarray, scale: float = 1.0) -> None:
        # The gradient work already happened locally; the exchange is the
        # elastic pair only — Eq 2 on the server, the elastic pull on the
        # worker.
        wbar_t = self.store.exchange(self.worker_w[j], scale)
        self.rule.apply(self.worker_w[j], wbar_t, self.hyper, scale)

    def _trace_meta(self) -> Dict:
        return {"local_steps": self.batches_per_exchange}


class BoundedAsyncEasgdTrainer(AsyncEASGDTrainer):
    """Async EASGD under a hard staleness bound (reject or clip policy)."""

    name = "Bounded Async EASGD"

    def __init__(self, *args, tau: Optional[int] = None,
                 staleness_policy: str = "reject", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if tau is None:
            # Default: twice the worker count's natural pipelining depth.
            # With P workers round-robining an FCFS master, healthy
            # staleness is ~P-1; 2(P-1) only trips under real stragglers.
            tau = 2 * max(self.platform.num_gpus - 1, 1)
        self.bound = StalenessBound(int(tau), staleness_policy)

    def _admit(self, staleness: int) -> Tuple[str, float]:
        return self.bound.admit(staleness)

    def _trace_meta(self) -> Dict:
        return {
            "staleness_bound": self.bound.tau,
            "staleness_policy": self.bound.policy,
        }

    def _family_state(self) -> Dict:
        return self.bound.state_dict()

    def _load_family_state(self, state: Dict) -> None:
        if state:
            self.bound.load_state_dict(state)

    def _family_extras(self) -> Dict[str, float]:
        return self.bound.extras()


class _GossipStep(ClockStepStrategy):
    """One gossip round: local SGD everywhere, tournament pairs average."""

    def __init__(self, trainer: "GossipSGDTrainer") -> None:
        self.trainer = trainer

    def begin(self, pipeline) -> None:
        tr = self.trainer
        g = self.g = tr.platform.num_gpus
        cfg = tr.config
        init = tr.net.get_params()
        self.replicas: List[np.ndarray] = [init.copy() for _ in range(g)]
        self.consensus = init.copy()
        self.samplers = [tr.make_sampler(("worker", j)) for j in range(g)]
        self.store = GossipStore().bind_replicas(self.replicas)
        self.stage_t = tr.platform.stage_batch_time(tr.cost, cfg.batch_size)
        self.exch_t = tr.platform.gpu_gpu_param_time(tr.cost, packed=True)
        self.upd_t = tr.platform.gpu_update_time(tr.cost)
        plan_msgs = tr.platform.param_plan(tr.cost, packed=True)
        self.nb = plan_msgs.total_bytes
        tr.make_trace(
            g,
            pattern="gossip",
            packed=True,
            messages_per_exchange=1,
        )
        log = tr.fault_log = FaultLog()
        self.tracker = SyncFaultTracker(
            tr.faults, log, g, tr.name,
            rejoin_note="re-pulled consensus mean",
            restore=self._restore,
        )

    def _restore(self, j: int) -> None:
        """A rejoiner adopts the current consensus mean (its checkpoint)."""
        self.replicas[j][...] = self.consensus

    def step(self, pipeline, t: int) -> float:
        tr = self.trainer
        cfg = tr.config
        live = self.tracker.prologue(pipeline, t)
        live_set = set(live)

        # Local SGD step on every live replica.
        losses = []
        for j in live:
            images, labels = self.samplers[j].next_batch()
            tr.net.set_params(self.replicas[j])
            losses.append(tr.net.gradient(images, labels, tr.loss))
            self.replicas[j] -= cfg.lr * tr.net.grads
        self.last_loss = float(np.mean(losses))

        # Deterministic tournament pairing; pairs with a dead peer skip.
        pairs = [
            (a, b) for a, b in gossip_pairs(t, self.g)
            if a in live_set and b in live_set
        ]
        for a, b in pairs:
            self.store.mix(a, b)
        self.store.consensus_into(self.consensus, live)

        # --- simulated time & trace ------------------------------------
        fwdbwd_each = jittered_fwdbwd(
            tr.platform, tr.cost, cfg.batch_size, live, tr.faults,
            pipeline.sim_time,
        )
        fwdbwd_max = max(fwdbwd_each)
        exch = self.exch_t if pairs else 0.0
        iter_time = self.stage_t + fwdbwd_max + exch + self.upd_t
        breakdown = pipeline.breakdown
        breakdown.add("cpu-gpu data", self.stage_t)
        breakdown.add("for/backward", fwdbwd_max)
        breakdown.add("gpu-gpu para", exch)
        breakdown.add("gpu update", self.upd_t)

        trace = tr.trace
        if trace is not None:
            T = pipeline.sim_time
            t_stage = T + self.stage_t
            t_comp = t_stage + fwdbwd_max
            t_done = t_comp + exch
            for j, fwd in zip(live, fwdbwd_each):
                trace.span("staging", j, T, t_stage, op="cpu-gpu-data", iteration=t)
                trace.span("compute", j, t_stage, t_stage + fwd, op="fwd-bwd",
                           iteration=t)
            for a, b in pairs:
                for src, dst in ((a, b), (b, a)):
                    trace.send(src, dst, t_comp, t_done, tag=0, nbytes=self.nb,
                               seq=t, op="gossip-exchange", iteration=t)
                    trace.recv(dst, src, t_comp, t_done, tag=0, nbytes=self.nb,
                               seq=t, op="gossip-exchange", iteration=t)
                for j in (a, b):
                    trace.span("update", j, t_done, t_done + self.upd_t,
                               op="gossip-avg", iteration=t)
        return iter_time

    def eval_params(self) -> np.ndarray:
        return self.consensus

    def state_dict(self) -> Dict:
        arrays = {"consensus": self.consensus}
        for j, w in enumerate(self.replicas):
            arrays[f"replica-{j}"] = w
        return {
            "arrays": arrays,
            "meta": {
                "last_loss": self.last_loss,
                "samplers": [s.get_state() for s in self.samplers],
                "tracker": self.tracker.state_dict(),
            },
        }

    def load_state_dict(self, state: Dict) -> None:
        arrays, meta = state["arrays"], state["meta"]
        self.consensus[...] = arrays["consensus"]
        for j, w in enumerate(self.replicas):
            w[...] = arrays[f"replica-{j}"]
        for sampler, st in zip(self.samplers, meta["samplers"]):
            sampler.set_state(st)
        self.last_loss = meta["last_loss"]
        self.tracker.load_state_dict(meta["tracker"])

    def extras(self) -> Dict[str, float]:
        if self.trainer.faults is None:
            return {}
        return {"degraded_rounds": float(self.tracker.degraded_rounds)}


class GossipSGDTrainer(BaseTrainer):
    """Decentralized gossip SGD: pairwise averaging, no parameter server."""

    name = "Gossip SGD"

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        platform: GpuPlatform,
        config: TrainerConfig,
        cost_model: Optional[CostModel] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if faults is not None:
            faults.validate(platform.num_gpus)
        super().__init__(network, train_set, test_set, config, cost_model, faults=faults)
        self.platform = platform

    def make_step(self) -> _GossipStep:
        return _GossipStep(self)
