"""Sync EASGD (Algorithms 2-4): tree-reduction EASGD, three codesign steps.

All three variants run *identical numerics* — per iteration every worker
computes a gradient, the workers' weights are tree-reduced, the workers
apply Eq 1 against the broadcast Wbar_t, and the master applies Eq 2. They
differ only in where the center lives and what overlaps, i.e. in simulated
time (Section 6.1):

- **variant 1** (Algorithm 2): center on the CPU; tree bcast/reduce over
  the CPU<->GPU link; packed single-message transfers (Section 5.2).
- **variant 2** (Algorithm 3): center on GPU1; tree bcast/reduce over the
  GPU<->GPU switch; the CPU<->GPU parameter traffic disappears.
- **variant 3** (Algorithm 3 + overlap): the GPU<->GPU communication
  (steps 11-12) overlaps the data staging + forward/backward critical path
  (steps 7-10) — they are independent, since Eq 2 needs only W_j^t and
  Eq 1 needs only Wbar_t, both available at iteration start.

That the three variants produce bit-identical weight trajectories while
their clocks strictly improve is the paper's determinism + speedup story,
and is asserted by the integration tests.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.algorithms.base import (
    BaseTrainer,
    RunResult,
    TimeBreakdown,
    TrainRecord,
    TrainerConfig,
)
from repro.cluster.cost import CostModel
from repro.cluster.platform import GpuPlatform
from repro.comm.collectives import tree_reduce
from repro.data.dataset import Dataset
from repro.faults import AllWorkersCrashedError, FaultLog, FaultPlan
from repro.nn.network import Network
from repro.optim.easgd import EASGDHyper, elastic_worker_update
from repro.trace.events import MASTER
from repro.trace.schedule import emit_tree_phase

__all__ = ["SyncEASGDTrainer"]


class SyncEASGDTrainer(BaseTrainer):
    """Sync EASGD1/2/3 — deterministic tree-reduction EASGD."""

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        platform: GpuPlatform,
        config: TrainerConfig,
        cost_model: Optional[CostModel] = None,
        variant: int = 3,
        packed: bool = True,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if faults is not None:
            faults.validate(platform.num_gpus)
        super().__init__(network, train_set, test_set, config, cost_model, faults=faults)
        if variant not in (1, 2, 3):
            raise ValueError("variant must be 1, 2, or 3")
        self.platform = platform
        self.variant = variant
        self.packed = packed
        self.name = f"Sync EASGD{variant}"
        self.hyper = EASGDHyper(lr=config.lr, rho=config.rho, mu=config.mu)
        self.hyper.validate_sync(platform.num_gpus if hasattr(platform, 'num_gpus') else platform.num_nodes)

    def _emit_iteration(
        self, trace, t: int, T: float, live: List[int], fwdbwd_each: List[float],
        stage_t: float, bcast_t: float, reduce_t: float,
        gpu_upd_t: float, cpu_upd_t: float, iter_time: float, plan_msgs,
    ) -> None:
        """Expand one iteration into its traced timeline.

        Variants 1/2 are strictly serial: staging, broadcast, compute,
        reduce, updates. Variant 3 runs both tree phases concurrently
        with the staging+compute path (the overlap the paper's speedup
        comes from), with updates at the iteration tail. The tree is
        drawn over the live ranks (root = ``live[0]`` after a rebuild);
        variant 1's extra CPU residency is a link-cost matter already
        folded into ``bcast_t``/``reduce_t``.
        """
        nbytes = plan_msgs.total_bytes
        mult = plan_msgs.num_messages
        fwd_max = max(fwdbwd_each)
        if self.variant == 3:
            for j, fwd in zip(live, fwdbwd_each):
                trace.span("staging", j, T, T + stage_t, op="cpu-gpu-data", iteration=t)
                trace.span("compute", j, T + stage_t, T + stage_t + fwd,
                           op="fwd-bwd", iteration=t)
            emit_tree_phase(trace, "tree-reduce", live, T, T + reduce_t,
                            nbytes=nbytes, messages_per_edge=mult, tag=102,
                            iteration=t, reduce=True)
            emit_tree_phase(trace, "tree-bcast", live, T + reduce_t,
                            T + reduce_t + bcast_t, nbytes=nbytes,
                            messages_per_edge=mult, tag=101, iteration=t)
            u0 = T + iter_time - 2.0 * gpu_upd_t
            for j in live:
                trace.span("update", j, u0, u0 + gpu_upd_t, op="gpu-update", iteration=t)
            trace.span("update", live[0], u0 + gpu_upd_t, u0 + 2.0 * gpu_upd_t,
                       op="gpu-update", iteration=t)
            return
        # Serial variants: each phase waits for the previous one.
        t_stage = T + stage_t
        t_bcast = t_stage + bcast_t
        t_comp = t_bcast + fwd_max
        t_red = t_comp + reduce_t
        for j, fwd in zip(live, fwdbwd_each):
            trace.span("staging", j, T, t_stage, op="cpu-gpu-data", iteration=t)
            trace.span("compute", j, t_bcast, t_bcast + fwd, op="fwd-bwd", iteration=t)
        emit_tree_phase(trace, "tree-bcast", live, t_stage, t_bcast,
                        nbytes=nbytes, messages_per_edge=mult, tag=101, iteration=t)
        emit_tree_phase(trace, "tree-reduce", live, t_comp, t_red,
                        nbytes=nbytes, messages_per_edge=mult, tag=102,
                        iteration=t, reduce=True)
        for j in live:
            trace.span("update", j, t_red, t_red + gpu_upd_t, op="gpu-update", iteration=t)
        if self.variant == 1:
            trace.span("update", MASTER, t_red + gpu_upd_t,
                       t_red + gpu_upd_t + cpu_upd_t, op="cpu-update", iteration=t)
        else:
            trace.span("update", live[0], t_red + gpu_upd_t,
                       t_red + 2.0 * gpu_upd_t, op="gpu-update", iteration=t)

    def train(self, iterations: int) -> RunResult:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        g = self.platform.num_gpus
        cfg = self.config

        center = self.net.get_params()
        workers: List[np.ndarray] = [center.copy() for _ in range(g)]
        samplers = [self.make_sampler(("worker", j)) for j in range(g)]

        breakdown = TimeBreakdown()
        records: List[TrainRecord] = []
        sim_time = 0.0
        last_loss = float("nan")

        # Constant per-iteration costs.
        stage_t = self.platform.stage_batch_time(self.cost, cfg.batch_size)
        gpu_upd_t = self.platform.gpu_update_time(self.cost)
        cpu_upd_t = self.platform.cpu_update_time(self.cost)
        if self.variant == 1:
            param_traffic = "cpu-gpu para"
        else:
            param_traffic = "gpu-gpu para"
        bcast_t = self.platform.tree_bcast_time(self.cost, param_traffic, self.packed)
        reduce_t = self.platform.tree_reduce_time(self.cost, param_traffic, self.packed)

        plan_msgs = self.platform.param_plan(self.cost, packed=self.packed)
        trace = self.make_trace(
            g,
            pattern="tree",
            variant=self.variant,
            packed=self.packed,
            overlapped=self.variant == 3,
            messages_per_exchange=plan_msgs.num_messages,
        )

        # Fault machinery: a crash removes a rank from the reduction tree
        # (the tree is rebuilt over survivors instead of deadlocking); a
        # rejoining rank re-pulls the elastic center before re-entering.
        plan = self.faults
        log = self.fault_log = FaultLog()
        currently_dead: set = set()
        tree_size = g
        degraded_rounds = 0
        rebuilds = 0

        for t in range(1, iterations + 1):
            live = list(range(g))
            if plan is not None:
                live = [j for j in range(g) if not plan.is_dead(j, sim_time)]
                for j in range(g):
                    if j not in live and j not in currently_dead:
                        currently_dead.add(j)
                        log.record(plan.crash_time(j), "crash", f"worker {j}", "fail-stop")
                        if trace is not None:
                            trace.fault(j, sim_time, "crash", iteration=t)
                    elif j in live and j in currently_dead:
                        currently_dead.discard(j)
                        workers[j][...] = center  # recovery: restore from center
                        log.record(sim_time, "rejoin", f"worker {j}", "re-pulled elastic center")
                        if trace is not None:
                            trace.fault(j, sim_time, "rejoin", iteration=t)
                if not live:
                    raise AllWorkersCrashedError(
                        f"all {g} workers crashed by t={sim_time:.4g}s "
                        f"(iteration {t}; fault log: {log.summary()})"
                    )
                if len(live) != tree_size:
                    tree_size = len(live)
                    rebuilds += 1
                    log.record(
                        sim_time, "tree-rebuild", self.name,
                        f"binomial tree over {tree_size} of {g} ranks",
                    )
                    if trace is not None:
                        trace.fault(MASTER, sim_time, "tree-rebuild", iteration=t)
                    bcast_t = self.platform.tree_bcast_time(
                        self.cost, param_traffic, self.packed, ranks=tree_size
                    )
                    reduce_t = self.platform.tree_reduce_time(
                        self.cost, param_traffic, self.packed, ranks=tree_size
                    )
                if len(live) < g:
                    degraded_rounds += 1
                    breakdown.mark_degraded()
            g_live = len(live)

            # --- numerics (identical across variants) -----------------------
            grads: List[np.ndarray] = []
            for j in live:
                images, labels = samplers[j].next_batch()
                self.net.set_params(workers[j])
                last_loss = self.net.gradient(images, labels, self.loss)
                grads.append(self.net.grads.copy())

            sum_w = tree_reduce([workers[j] for j in live])  # step 3: tree sum
            center_t = center  # Eq 1/Eq 2 both read the pre-update center
            for i, j in enumerate(live):  # step 4: Eq 1 on every live GPU
                elastic_worker_update(workers[j], grads[i], center_t, self.hyper)
            # step 5: Eq 2 — in place, reading the pre-update value once.
            center += self.hyper.alpha * (sum_w - g_live * center)

            # --- simulated time ---------------------------------------------
            fwdbwd_each = [
                self.platform.fwdbwd_time(self.cost, cfg.batch_size, worker=j)
                * (plan.slowdown(j, sim_time) if plan is not None else 1.0)
                for j in live
            ]
            fwdbwd_max = max(fwdbwd_each)
            if self.variant == 1:
                # Serial: stage, bcast, compute, reduce, GPU update, CPU update.
                iter_time = stage_t + bcast_t + fwdbwd_max + reduce_t + gpu_upd_t + cpu_upd_t
                breakdown.add("cpu-gpu data", stage_t)
                breakdown.add("cpu-gpu para", bcast_t + reduce_t)
                breakdown.add("for/backward", fwdbwd_max)
                breakdown.add("gpu update", gpu_upd_t)
                breakdown.add("cpu update", cpu_upd_t)
            elif self.variant == 2:
                # Center on GPU1: switch traffic; GPU1 also applies Eq 2.
                upd = 2.0 * gpu_upd_t
                iter_time = stage_t + bcast_t + fwdbwd_max + reduce_t + upd
                breakdown.add("cpu-gpu data", stage_t)
                breakdown.add("gpu-gpu para", bcast_t + reduce_t)
                breakdown.add("for/backward", fwdbwd_max)
                breakdown.add("gpu update", upd)
            else:
                # Variant 3: GPU-GPU comm overlaps the stage+compute path.
                comm = bcast_t + reduce_t
                hidden = cfg.overlap_efficiency * min(comm, stage_t + fwdbwd_max)
                visible_comm = comm - hidden
                upd = 2.0 * gpu_upd_t
                iter_time = stage_t + fwdbwd_max + visible_comm + upd
                breakdown.add("cpu-gpu data", stage_t)
                breakdown.add("gpu-gpu para", visible_comm)
                breakdown.add("for/backward", fwdbwd_max)
                breakdown.add("gpu update", upd)

            if trace is not None:
                self._emit_iteration(
                    trace, t, sim_time, live, fwdbwd_each,
                    stage_t, bcast_t, reduce_t, gpu_upd_t, cpu_upd_t,
                    iter_time, plan_msgs,
                )

            sim_time += iter_time

            if t % cfg.eval_every == 0 or t == iterations:
                acc = self.evaluate_params(center)
                records.append(TrainRecord(t, sim_time, last_loss, acc))
                if self.should_stop(acc):
                    break

        extras = {}
        if plan is not None:
            extras = {
                "degraded_rounds": float(degraded_rounds),
                "tree_rebuilds": float(rebuilds),
            }
        final_acc = records[-1].test_accuracy if records else 0.0
        return RunResult(
            method=self.name,
            records=records,
            breakdown=breakdown,
            iterations=records[-1].iteration if records else 0,
            sim_time=sim_time,
            final_accuracy=final_acc,
            extras=extras,
            fault_log=log if plan is not None else None,
            trace=trace,
        )
