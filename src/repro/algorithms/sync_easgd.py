"""Sync EASGD (Algorithms 2-4): tree-reduction EASGD, three codesign steps.

All three variants run *identical numerics* — per iteration every worker
computes a gradient, the workers' weights are tree-reduced, the workers
apply Eq 1 against the broadcast Wbar_t, and the master applies Eq 2. They
differ only in where the center lives and what overlaps, i.e. in simulated
time (Section 6.1):

- **variant 1** (Algorithm 2): center on the CPU; tree bcast/reduce over
  the CPU<->GPU link; packed single-message transfers (Section 5.2).
- **variant 2** (Algorithm 3): center on GPU1; tree bcast/reduce over the
  GPU<->GPU switch; the CPU<->GPU parameter traffic disappears.
- **variant 3** (Algorithm 3 + overlap): the GPU<->GPU communication
  (steps 11-12) overlaps the data staging + forward/backward critical path
  (steps 7-10) — they are independent, since Eq 2 needs only W_j^t and
  Eq 1 needs only Wbar_t, both available at iteration start.

That the three variants produce bit-identical weight trajectories while
their clocks strictly improve is the paper's determinism + speedup story,
and is asserted by the integration tests.

The step structure (loop, clock, eval snapshots) lives in
:mod:`repro.engine`; this module contributes the family's strategy
objects: the shared :class:`~repro.engine.SyncElasticUpdate` rule and the
variant-aware tree :class:`~repro.engine.CommStrategy`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import BaseTrainer, TrainerConfig
from repro.cluster.cost import CostModel
from repro.cluster.platform import GpuPlatform
from repro.data.dataset import Dataset
from repro.engine.compute import gather_gradients, jittered_fwdbwd
from repro.engine.faults import SyncFaultTracker
from repro.engine.strategy import (
    ClockStepStrategy,
    CommStrategy,
    SyncElasticUpdate,
)
from repro.faults import FaultLog, FaultPlan
from repro.nn.network import Network
from repro.optim.easgd import EASGDHyper
from repro.trace.events import MASTER
from repro.trace.schedule import emit_tree_phase

__all__ = ["SyncEASGDTrainer"]


class _TreeEasgdComm(CommStrategy):
    """Variant-aware tree communication: per-iteration cost + trace spans."""

    def __init__(self, trainer: "SyncEASGDTrainer") -> None:
        tr = trainer
        cfg = tr.config
        self.variant = tr.variant
        self.overlap_efficiency = cfg.overlap_efficiency
        # Constant per-iteration costs.
        self.stage_t = tr.platform.stage_batch_time(tr.cost, cfg.batch_size)
        self.gpu_upd_t = tr.platform.gpu_update_time(tr.cost)
        self.cpu_upd_t = tr.platform.cpu_update_time(tr.cost)
        if self.variant == 1:
            self.param_traffic = "cpu-gpu para"
        else:
            self.param_traffic = "gpu-gpu para"
        self._platform, self._cost, self._packed = tr.platform, tr.cost, tr.packed
        self.bcast_t = tr.platform.tree_bcast_time(tr.cost, self.param_traffic, tr.packed)
        self.reduce_t = tr.platform.tree_reduce_time(tr.cost, self.param_traffic, tr.packed)
        self.plan_msgs = tr.platform.param_plan(tr.cost, packed=tr.packed)

    def retime(self, ranks: int) -> None:
        """Re-cost the tree phases after a rebuild over the survivors."""
        self.bcast_t = self._platform.tree_bcast_time(
            self._cost, self.param_traffic, self._packed, ranks=ranks
        )
        self.reduce_t = self._platform.tree_reduce_time(
            self._cost, self.param_traffic, self._packed, ranks=ranks
        )

    def charge(self, pipeline, t: int, live: List[int],
               fwdbwd_each: List[float]) -> float:
        breakdown = pipeline.breakdown
        fwdbwd_max = max(fwdbwd_each)
        if self.variant == 1:
            # Serial: stage, bcast, compute, reduce, GPU update, CPU update.
            iter_time = (self.stage_t + self.bcast_t + fwdbwd_max + self.reduce_t
                         + self.gpu_upd_t + self.cpu_upd_t)
            breakdown.add("cpu-gpu data", self.stage_t)
            breakdown.add("cpu-gpu para", self.bcast_t + self.reduce_t)
            breakdown.add("for/backward", fwdbwd_max)
            breakdown.add("gpu update", self.gpu_upd_t)
            breakdown.add("cpu update", self.cpu_upd_t)
        elif self.variant == 2:
            # Center on GPU1: switch traffic; GPU1 also applies Eq 2.
            upd = 2.0 * self.gpu_upd_t
            iter_time = self.stage_t + self.bcast_t + fwdbwd_max + self.reduce_t + upd
            breakdown.add("cpu-gpu data", self.stage_t)
            breakdown.add("gpu-gpu para", self.bcast_t + self.reduce_t)
            breakdown.add("for/backward", fwdbwd_max)
            breakdown.add("gpu update", upd)
        else:
            # Variant 3: GPU-GPU comm overlaps the stage+compute path.
            comm = self.bcast_t + self.reduce_t
            hidden = self.overlap_efficiency * min(comm, self.stage_t + fwdbwd_max)
            visible_comm = comm - hidden
            upd = 2.0 * self.gpu_upd_t
            iter_time = self.stage_t + fwdbwd_max + visible_comm + upd
            breakdown.add("cpu-gpu data", self.stage_t)
            breakdown.add("gpu-gpu para", visible_comm)
            breakdown.add("for/backward", fwdbwd_max)
            breakdown.add("gpu update", upd)
        return iter_time

    def emit(self, trace, t: int, T: float, live: List[int],
             fwdbwd_each: List[float], iter_time: float) -> None:
        """Expand one iteration into its traced timeline.

        Variants 1/2 are strictly serial: staging, broadcast, compute,
        reduce, updates. Variant 3 runs both tree phases concurrently
        with the staging+compute path (the overlap the paper's speedup
        comes from), with updates at the iteration tail. The tree is
        drawn over the live ranks (root = ``live[0]`` after a rebuild);
        variant 1's extra CPU residency is a link-cost matter already
        folded into ``bcast_t``/``reduce_t``.
        """
        stage_t, bcast_t, reduce_t = self.stage_t, self.bcast_t, self.reduce_t
        gpu_upd_t, cpu_upd_t = self.gpu_upd_t, self.cpu_upd_t
        nbytes = self.plan_msgs.total_bytes
        mult = self.plan_msgs.num_messages
        if self.variant == 3:
            for j, fwd in zip(live, fwdbwd_each):
                trace.span("staging", j, T, T + stage_t, op="cpu-gpu-data", iteration=t)
                trace.span("compute", j, T + stage_t, T + stage_t + fwd,
                           op="fwd-bwd", iteration=t)
            emit_tree_phase(trace, "tree-reduce", live, T, T + reduce_t,
                            nbytes=nbytes, messages_per_edge=mult, tag=102,
                            iteration=t, reduce=True)
            emit_tree_phase(trace, "tree-bcast", live, T + reduce_t,
                            T + reduce_t + bcast_t, nbytes=nbytes,
                            messages_per_edge=mult, tag=101, iteration=t)
            u0 = T + iter_time - 2.0 * gpu_upd_t
            for j in live:
                trace.span("update", j, u0, u0 + gpu_upd_t, op="gpu-update", iteration=t)
            trace.span("update", live[0], u0 + gpu_upd_t, u0 + 2.0 * gpu_upd_t,
                       op="gpu-update", iteration=t)
            return
        # Serial variants: each phase waits for the previous one.
        fwd_max = max(fwdbwd_each)
        t_stage = T + stage_t
        t_bcast = t_stage + bcast_t
        t_comp = t_bcast + fwd_max
        t_red = t_comp + reduce_t
        for j, fwd in zip(live, fwdbwd_each):
            trace.span("staging", j, T, t_stage, op="cpu-gpu-data", iteration=t)
            trace.span("compute", j, t_bcast, t_bcast + fwd, op="fwd-bwd", iteration=t)
        emit_tree_phase(trace, "tree-bcast", live, t_stage, t_bcast,
                        nbytes=nbytes, messages_per_edge=mult, tag=101, iteration=t)
        emit_tree_phase(trace, "tree-reduce", live, t_comp, t_red,
                        nbytes=nbytes, messages_per_edge=mult, tag=102,
                        iteration=t, reduce=True)
        for j in live:
            trace.span("update", j, t_red, t_red + gpu_upd_t, op="gpu-update", iteration=t)
        if self.variant == 1:
            trace.span("update", MASTER, t_red + gpu_upd_t,
                       t_red + gpu_upd_t + cpu_upd_t, op="cpu-update", iteration=t)
        else:
            trace.span("update", live[0], t_red + gpu_upd_t,
                       t_red + 2.0 * gpu_upd_t, op="gpu-update", iteration=t)


class _SyncEasgdStep(ClockStepStrategy):
    """One Sync EASGD iteration: gather, tree-elastic update, charge, trace."""

    def __init__(self, trainer: "SyncEASGDTrainer") -> None:
        self.trainer = trainer

    def begin(self, pipeline) -> None:
        tr = self.trainer
        g = tr.platform.num_gpus
        self.center = tr.net.get_params()
        self.workers: List[np.ndarray] = [self.center.copy() for _ in range(g)]
        self.samplers = [tr.make_sampler(("worker", j)) for j in range(g)]
        self.update = SyncElasticUpdate(tr.hyper)
        self.comm = _TreeEasgdComm(tr)
        tr.make_trace(
            g,
            pattern="tree",
            variant=tr.variant,
            packed=tr.packed,
            overlapped=tr.variant == 3,
            messages_per_exchange=self.comm.plan_msgs.num_messages,
        )
        # Fault machinery: a crash removes a rank from the reduction tree
        # (the tree is rebuilt over survivors instead of deadlocking); a
        # rejoining rank re-pulls the elastic center before re-entering.
        log = tr.fault_log = FaultLog()
        self.tracker = SyncFaultTracker(
            tr.faults, log, g, tr.name,
            restore=lambda j: self.workers[j].__setitem__(..., self.center),
            on_resize=self.comm.retime,
            resize_label="binomial tree",
        )

    def step(self, pipeline, t: int) -> float:
        tr = self.trainer
        live = self.tracker.prologue(pipeline, t)

        # --- numerics (identical across variants) -----------------------
        grads, losses = gather_gradients(tr, self.samplers, live, weights=self.workers)
        self.last_loss = losses[-1]
        self.update.apply(self.center, self.workers, grads, live)

        # --- simulated time ---------------------------------------------
        fwdbwd_each = jittered_fwdbwd(
            tr.platform, tr.cost, tr.config.batch_size, live, tr.faults,
            pipeline.sim_time,
        )
        iter_time = self.comm.charge(pipeline, t, live, fwdbwd_each)
        if tr.trace is not None:
            self.comm.emit(tr.trace, t, pipeline.sim_time, live, fwdbwd_each, iter_time)
        return iter_time

    def eval_params(self) -> np.ndarray:
        return self.center

    def state_dict(self) -> Dict:
        arrays = {"center": self.center}
        for j, w in enumerate(self.workers):
            arrays[f"worker-{j}"] = w
        return {
            "arrays": arrays,
            "meta": {
                "last_loss": self.last_loss,
                "samplers": [s.get_state() for s in self.samplers],
                "tracker": self.tracker.state_dict(),
            },
        }

    def load_state_dict(self, state: Dict) -> None:
        arrays, meta = state["arrays"], state["meta"]
        self.center[:] = arrays["center"]
        for j, w in enumerate(self.workers):
            w[:] = arrays[f"worker-{j}"]
        for sampler, st in zip(self.samplers, meta["samplers"]):
            sampler.set_state(st)
        self.last_loss = meta["last_loss"]
        # Restoring the tracker re-fires comm.retime if the saved run was
        # mid-degradation, so the rebuilt tree is costed for the survivors.
        self.tracker.load_state_dict(meta["tracker"])

    def extras(self) -> Dict[str, float]:
        if self.trainer.faults is None:
            return {}
        return {
            "degraded_rounds": float(self.tracker.degraded_rounds),
            "tree_rebuilds": float(self.tracker.rebuilds),
        }


class SyncEASGDTrainer(BaseTrainer):
    """Sync EASGD1/2/3 — deterministic tree-reduction EASGD."""

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        platform: GpuPlatform,
        config: TrainerConfig,
        cost_model: Optional[CostModel] = None,
        variant: int = 3,
        packed: bool = True,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if faults is not None:
            faults.validate(platform.num_gpus)
        super().__init__(network, train_set, test_set, config, cost_model, faults=faults)
        if variant not in (1, 2, 3):
            raise ValueError("variant must be 1, 2, or 3")
        self.platform = platform
        self.variant = variant
        self.packed = packed
        self.name = f"Sync EASGD{variant}"
        self.hyper = EASGDHyper(lr=config.lr, rho=config.rho, mu=config.mu)
        self.hyper.validate_sync(platform.num_gpus if hasattr(platform, 'num_gpus') else platform.num_nodes)

    def make_step(self) -> _SyncEasgdStep:
        return _SyncEasgdStep(self)
