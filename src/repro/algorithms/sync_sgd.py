"""Synchronous data-parallel SGD with tree allreduce.

The workhorse for the single-layer (packed) communication study of
Figure 10: per iteration every worker computes a gradient at the shared
weights, gradients are tree-reduced, and the averaged gradient is applied
everywhere. The ``packed`` flag switches between one message carrying all
layers and one message per parameter blob — the only difference Figure 10
measures.

``quantize_bits`` enables the paper's reserved future-work direction
(Section 3.4: low-precision gradient communication a la 1-bit SGD): each
worker's gradient is stochastically quantized to the given width before
the reduction, and the collective's byte volume shrinks proportionally.
It trades trajectory fidelity for bandwidth — the ablation benchmark
measures both sides.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.algorithms.base import (
    BaseTrainer,
    RunResult,
    TimeBreakdown,
    TrainRecord,
    TrainerConfig,
)
from repro.cluster.cost import CostModel
from repro.cluster.platform import GpuPlatform
from repro.comm.collectives import tree_reduce, tree_rounds
from repro.data.dataset import Dataset
from repro.faults import AllWorkersCrashedError, FaultLog, FaultPlan
from repro.nn.network import Network
from repro.optim.quantize import quantize_gradient
from repro.trace.events import MASTER
from repro.trace.schedule import emit_tree_phase
from repro.util.rng import spawn_rng

__all__ = ["SyncSGDTrainer"]


class SyncSGDTrainer(BaseTrainer):
    """Tree-allreduce synchronous SGD (the paper's Sync SGD, Figure 10)."""

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        platform: GpuPlatform,
        config: TrainerConfig,
        cost_model: Optional[CostModel] = None,
        packed: bool = True,
        param_traffic: str = "gpu-gpu para",
        quantize_bits: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if faults is not None:
            faults.validate(platform.num_gpus)
        super().__init__(network, train_set, test_set, config, cost_model, faults=faults)
        if quantize_bits is not None and not 1 <= quantize_bits <= 16:
            raise ValueError("quantize_bits must be in [1, 16]")
        self.platform = platform
        self.packed = packed
        self.param_traffic = param_traffic
        self.quantize_bits = quantize_bits
        suffix = "packed" if packed else "per-layer"
        if quantize_bits is not None:
            suffix += f", {quantize_bits}-bit"
        self.name = f"Sync SGD ({suffix})"
        self._quant_rng = spawn_rng(config.seed, "grad-quantize") if quantize_bits else None

    def train(self, iterations: int) -> RunResult:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        g = self.platform.num_gpus
        cfg = self.config

        weights = self.net.get_params()
        samplers = [self.make_sampler(("worker", j)) for j in range(g)]

        breakdown = TimeBreakdown()
        records: List[TrainRecord] = []
        sim_time = 0.0
        last_loss = float("nan")

        stage_t = self.platform.stage_batch_time(self.cost, cfg.batch_size)
        gpu_upd_t = self.platform.gpu_update_time(self.cost)
        bcast_t = self.platform.tree_bcast_time(self.cost, self.param_traffic, self.packed)
        reduce_t = self.platform.tree_reduce_time(self.cost, self.param_traffic, self.packed)
        if self.quantize_bits is not None:
            # Low-precision wire format: the latency (alpha) terms stay, the
            # byte volume scales with the bit width.
            shrink = self.quantize_bits / 32.0
            plan = self.platform.param_plan(self.cost, self.packed)
            link = self.platform.topology.link_for(self.param_traffic)
            full_bytes_time = link.beta * plan.total_bytes
            hops = tree_rounds(g)
            saved = hops * full_bytes_time * (1.0 - shrink)
            bcast_t = max(bcast_t - saved, hops * link.alpha * plan.num_messages)
            reduce_t = max(reduce_t - saved, hops * link.alpha * plan.num_messages)
        comm_part = "gpu-gpu para" if self.param_traffic == "gpu-gpu para" else "cpu-gpu para"

        plan_msgs = self.platform.param_plan(self.cost, self.packed)
        wire_bytes = plan_msgs.total_bytes
        if self.quantize_bits is not None:
            wire_bytes = int(wire_bytes * self.quantize_bits / 32.0)
        trace = self.make_trace(
            g,
            pattern="tree",
            packed=self.packed,
            messages_per_exchange=plan_msgs.num_messages,
            quantize_bits=self.quantize_bits or 0,
        )

        plan = self.faults
        log = self.fault_log = FaultLog()
        currently_dead: set = set()
        tree_size = g
        degraded_rounds = 0
        full_bcast_t, full_reduce_t = bcast_t, reduce_t

        self.net.set_params(weights)
        for t in range(1, iterations + 1):
            live = list(range(g))
            if plan is not None:
                live = [j for j in range(g) if not plan.is_dead(j, sim_time)]
                for j in range(g):
                    if j not in live and j not in currently_dead:
                        currently_dead.add(j)
                        log.record(plan.crash_time(j), "crash", f"worker {j}", "fail-stop")
                        if trace is not None:
                            trace.fault(j, sim_time, "crash", iteration=t)
                    elif j in live and j in currently_dead:
                        currently_dead.discard(j)
                        log.record(sim_time, "rejoin", f"worker {j}", "re-entered allreduce group")
                        if trace is not None:
                            trace.fault(j, sim_time, "rejoin", iteration=t)
                if not live:
                    raise AllWorkersCrashedError(
                        f"all {g} workers crashed by t={sim_time:.4g}s "
                        f"(iteration {t}; fault log: {log.summary()})"
                    )
                if len(live) != tree_size:
                    tree_size = len(live)
                    log.record(
                        sim_time, "tree-rebuild", self.name,
                        f"allreduce tree over {tree_size} of {g} ranks",
                    )
                    if trace is not None:
                        trace.fault(MASTER, sim_time, "tree-rebuild", iteration=t)
                    # Tree depth shrinks with the group; per-hop cost (incl.
                    # any quantized-width adjustment) is unchanged.
                    depth_ratio = tree_rounds(tree_size) / max(tree_rounds(g), 1)
                    bcast_t = full_bcast_t * depth_ratio
                    reduce_t = full_reduce_t * depth_ratio
                if len(live) < g:
                    degraded_rounds += 1
                    breakdown.mark_degraded()
            g_live = len(live)

            grads: List[np.ndarray] = []
            losses = []
            for j in live:
                images, labels = samplers[j].next_batch()
                losses.append(self.net.gradient(images, labels, self.loss))
                grads.append(self.net.grads.copy())
            last_loss = float(np.mean(losses))
            if self.quantize_bits is not None:
                grads = [
                    quantize_gradient(grad, self.quantize_bits, self._quant_rng)[0]
                    for grad in grads
                ]
            mean_grad = tree_reduce(grads) / g_live
            weights -= cfg.lr * mean_grad
            self.net.set_params(weights)

            fwdbwd_each = [
                self.platform.fwdbwd_time(self.cost, cfg.batch_size, worker=j)
                * (plan.slowdown(j, sim_time) if plan is not None else 1.0)
                for j in live
            ]
            fwdbwd_max = max(fwdbwd_each)
            iter_time = stage_t + fwdbwd_max + reduce_t + bcast_t + gpu_upd_t
            breakdown.add("cpu-gpu data", stage_t)
            breakdown.add(comm_part, reduce_t + bcast_t)
            breakdown.add("for/backward", fwdbwd_max)
            breakdown.add("gpu update", gpu_upd_t)

            if trace is not None:
                # Serial timeline: stage, compute, gradient tree-reduce,
                # weight tree-bcast, local update.
                t_stage = sim_time + stage_t
                t_comp = t_stage + fwdbwd_max
                t_red = t_comp + reduce_t
                t_bc = t_red + bcast_t
                for j, fwd in zip(live, fwdbwd_each):
                    trace.span("staging", j, sim_time, t_stage, op="cpu-gpu-data",
                               iteration=t)
                    trace.span("compute", j, t_stage, t_stage + fwd, op="fwd-bwd",
                               iteration=t)
                emit_tree_phase(trace, "tree-reduce", live, t_comp, t_red,
                                nbytes=wire_bytes, messages_per_edge=plan_msgs.num_messages,
                                tag=102, iteration=t, reduce=True)
                emit_tree_phase(trace, "tree-bcast", live, t_red, t_bc,
                                nbytes=wire_bytes, messages_per_edge=plan_msgs.num_messages,
                                tag=101, iteration=t)
                for j in live:
                    trace.span("update", j, t_bc, t_bc + gpu_upd_t, op="gpu-update",
                               iteration=t)

            sim_time += iter_time

            if t % cfg.eval_every == 0 or t == iterations:
                acc = self.evaluate_params(weights)
                records.append(TrainRecord(t, sim_time, last_loss, acc))
                if self.should_stop(acc):
                    break

        extras = {}
        if plan is not None:
            extras = {"degraded_rounds": float(degraded_rounds)}
        final_acc = records[-1].test_accuracy if records else 0.0
        return RunResult(
            method=self.name,
            records=records,
            breakdown=breakdown,
            iterations=records[-1].iteration if records else 0,
            sim_time=sim_time,
            final_accuracy=final_acc,
            extras=extras,
            fault_log=log if plan is not None else None,
            trace=trace,
        )
