"""Synchronous data-parallel SGD with tree allreduce.

The workhorse for the single-layer (packed) communication study of
Figure 10: per iteration every worker computes a gradient at the shared
weights, gradients are tree-reduced, and the averaged gradient is applied
everywhere. The ``packed`` flag switches between one message carrying all
layers and one message per parameter blob — the only difference Figure 10
measures.

``quantize_bits`` enables the paper's reserved future-work direction
(Section 3.4: low-precision gradient communication a la 1-bit SGD): each
worker's gradient is stochastically quantized to the given width before
the reduction, and the collective's byte volume shrinks proportionally.
It trades trajectory fidelity for bandwidth — the ablation benchmark
measures both sides.

The loop lives in :mod:`repro.engine`; this module contributes the
allreduce step strategy built on the shared
:class:`~repro.engine.MeanGradientUpdate` rule.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import BaseTrainer, TrainerConfig
from repro.cluster.cost import CostModel
from repro.cluster.platform import GpuPlatform
from repro.comm.collectives import ring_allreduce_cost, tree_rounds, validate_collective
from repro.data.dataset import Dataset
from repro.engine.compute import gather_gradients, jittered_fwdbwd
from repro.engine.faults import SyncFaultTracker
from repro.engine.strategy import (
    ClockStepStrategy,
    CommStrategy,
    MeanGradientUpdate,
)
from repro.faults import FaultLog, FaultPlan
from repro.nn.network import Network
from repro.optim.quantize import quantize_gradient
from repro.trace.schedule import emit_ring_allreduce, emit_tree_phase
from repro.util.rng import spawn_rng

__all__ = ["SyncSGDTrainer"]


class _AllreduceComm(CommStrategy):
    """Allreduce cost/trace model: tree or sharded ring, optionally quantized.

    The tree costs reduce + bcast as two Theta(log P) phases; the ring
    costs one reduce-scatter + allgather pass — 2(P-1) steps of n/P-byte
    shards (:func:`repro.comm.collectives.ring_allreduce_cost`), the
    bandwidth-optimal schedule the process backend implements for real.
    """

    def __init__(self, trainer: "SyncSGDTrainer") -> None:
        tr = trainer
        cfg = tr.config
        g = tr.platform.num_gpus
        self.stage_t = tr.platform.stage_batch_time(tr.cost, cfg.batch_size)
        self.gpu_upd_t = tr.platform.gpu_update_time(tr.cost)
        self.bcast_t = tr.platform.tree_bcast_time(tr.cost, tr.param_traffic, tr.packed)
        self.reduce_t = tr.platform.tree_reduce_time(tr.cost, tr.param_traffic, tr.packed)
        if tr.quantize_bits is not None:
            # Low-precision wire format: the latency (alpha) terms stay, the
            # byte volume scales with the bit width.
            shrink = tr.quantize_bits / 32.0
            plan = tr.platform.param_plan(tr.cost, tr.packed)
            link = tr.platform.topology.link_for(tr.param_traffic)
            full_bytes_time = link.beta * plan.total_bytes
            hops = tree_rounds(g)
            saved = hops * full_bytes_time * (1.0 - shrink)
            self.bcast_t = max(self.bcast_t - saved, hops * link.alpha * plan.num_messages)
            self.reduce_t = max(self.reduce_t - saved, hops * link.alpha * plan.num_messages)
        self.comm_part = (
            "gpu-gpu para" if tr.param_traffic == "gpu-gpu para" else "cpu-gpu para"
        )
        self.plan_msgs = tr.platform.param_plan(tr.cost, tr.packed)
        self.wire_bytes = self.plan_msgs.total_bytes
        if tr.quantize_bits is not None:
            self.wire_bytes = int(self.wire_bytes * tr.quantize_bits / 32.0)
        self.full_bcast_t, self.full_reduce_t = self.bcast_t, self.reduce_t
        self._full_ranks = g
        self.collective = tr.collective
        self._link = tr.platform.topology.link_for(tr.param_traffic)
        self.ring_t = (
            ring_allreduce_cost(self._link, self.wire_bytes, g)
            if self.collective == "ring" else 0.0
        )

    def comm_time(self) -> float:
        """The allreduce's charge on the iteration critical path."""
        if self.collective == "ring":
            return self.ring_t
        return self.reduce_t + self.bcast_t

    def retime(self, ranks: int) -> None:
        """Re-cost the collective for the surviving group.

        The tree shrinks its depth at unchanged per-hop cost (incl. any
        quantized-width adjustment); the ring re-shards the same buffer
        over the survivors — fewer, larger shards, 2(ranks-1) steps.
        """
        depth_ratio = tree_rounds(ranks) / max(tree_rounds(self._full_ranks), 1)
        self.bcast_t = self.full_bcast_t * depth_ratio
        self.reduce_t = self.full_reduce_t * depth_ratio
        if self.collective == "ring":
            self.ring_t = ring_allreduce_cost(self._link, self.wire_bytes, ranks)

    def charge(self, pipeline, t: int, live: List[int],
               fwdbwd_each: List[float]) -> float:
        fwdbwd_max = max(fwdbwd_each)
        comm_t = self.comm_time()
        iter_time = self.stage_t + fwdbwd_max + comm_t + self.gpu_upd_t
        breakdown = pipeline.breakdown
        breakdown.add("cpu-gpu data", self.stage_t)
        breakdown.add(self.comm_part, comm_t)
        breakdown.add("for/backward", fwdbwd_max)
        breakdown.add("gpu update", self.gpu_upd_t)
        return iter_time

    def emit(self, trace, t: int, T: float, live: List[int],
             fwdbwd_each: List[float], iter_time: float) -> None:
        # Serial timeline: stage, compute, allreduce (gradient tree-reduce
        # + weight tree-bcast, or one sharded ring pass), local update.
        fwdbwd_max = max(fwdbwd_each)
        t_stage = T + self.stage_t
        t_comp = t_stage + fwdbwd_max
        for j, fwd in zip(live, fwdbwd_each):
            trace.span("staging", j, T, t_stage, op="cpu-gpu-data", iteration=t)
            trace.span("compute", j, t_stage, t_stage + fwd, op="fwd-bwd", iteration=t)
        if self.collective == "ring":
            t_done = t_comp + self.ring_t
            emit_ring_allreduce(trace, live, t_comp, t_done,
                                nbytes=self.wire_bytes, tag=102, iteration=t)
        else:
            t_red = t_comp + self.reduce_t
            t_done = t_red + self.bcast_t
            emit_tree_phase(trace, "tree-reduce", live, t_comp, t_red,
                            nbytes=self.wire_bytes,
                            messages_per_edge=self.plan_msgs.num_messages,
                            tag=102, iteration=t, reduce=True)
            emit_tree_phase(trace, "tree-bcast", live, t_red, t_done,
                            nbytes=self.wire_bytes,
                            messages_per_edge=self.plan_msgs.num_messages,
                            tag=101, iteration=t)
        for j in live:
            trace.span("update", j, t_done, t_done + self.gpu_upd_t, op="gpu-update",
                       iteration=t)


class _SyncSgdStep(ClockStepStrategy):
    """One allreduce-SGD iteration: gather, quantize, mean-apply, charge."""

    def __init__(self, trainer: "SyncSGDTrainer") -> None:
        self.trainer = trainer

    def begin(self, pipeline) -> None:
        tr = self.trainer
        g = tr.platform.num_gpus
        self.weights = tr.net.get_params()
        self.samplers = [tr.make_sampler(("worker", j)) for j in range(g)]
        self.update = MeanGradientUpdate(tr.config.lr)
        self.comm = _AllreduceComm(tr)
        tr.make_trace(
            g,
            pattern=tr.collective,  # "tree" or "ring" — picks the invariants
            packed=tr.packed,
            messages_per_exchange=self.comm.plan_msgs.num_messages,
            quantize_bits=tr.quantize_bits or 0,
        )
        log = tr.fault_log = FaultLog()
        self.tracker = SyncFaultTracker(
            tr.faults, log, g, tr.name,
            rejoin_note="re-entered allreduce group",
            on_resize=self.comm.retime,
            resize_label=f"allreduce {tr.collective}",
        )
        tr.net.set_params(self.weights)

    def step(self, pipeline, t: int) -> float:
        tr = self.trainer
        live = self.tracker.prologue(pipeline, t)

        grads, losses = gather_gradients(tr, self.samplers, live)
        self.last_loss = float(np.mean(losses))
        if tr.quantize_bits is not None:
            grads = [
                quantize_gradient(grad, tr.quantize_bits, tr._quant_rng)[0]
                for grad in grads
            ]
        self.update.apply(tr.net, self.weights, grads, len(live))

        fwdbwd_each = jittered_fwdbwd(
            tr.platform, tr.cost, tr.config.batch_size, live, tr.faults,
            pipeline.sim_time,
        )
        iter_time = self.comm.charge(pipeline, t, live, fwdbwd_each)
        if tr.trace is not None:
            self.comm.emit(tr.trace, t, pipeline.sim_time, live, fwdbwd_each, iter_time)
        return iter_time

    def eval_params(self) -> np.ndarray:
        return self.weights

    def state_dict(self) -> Dict:
        tr = self.trainer
        meta = {
            "last_loss": self.last_loss,
            "samplers": [s.get_state() for s in self.samplers],
            "tracker": self.tracker.state_dict(),
            "quant_rng": (
                tr._quant_rng.bit_generator.state
                if tr._quant_rng is not None else None
            ),
        }
        return {"arrays": {"weights": self.weights}, "meta": meta}

    def load_state_dict(self, state: Dict) -> None:
        tr = self.trainer
        meta = state["meta"]
        self.weights[:] = state["arrays"]["weights"]
        tr.net.set_params(self.weights)
        for sampler, st in zip(self.samplers, meta["samplers"]):
            sampler.set_state(st)
        self.last_loss = meta["last_loss"]
        self.tracker.load_state_dict(meta["tracker"])
        if meta["quant_rng"] is not None:
            tr._quant_rng.bit_generator.state = meta["quant_rng"]

    def extras(self) -> Dict[str, float]:
        if self.trainer.faults is None:
            return {}
        return {"degraded_rounds": float(self.tracker.degraded_rounds)}


class SyncSGDTrainer(BaseTrainer):
    """Tree-allreduce synchronous SGD (the paper's Sync SGD, Figure 10)."""

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        platform: GpuPlatform,
        config: TrainerConfig,
        cost_model: Optional[CostModel] = None,
        packed: bool = True,
        param_traffic: str = "gpu-gpu para",
        quantize_bits: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
        collective: Optional[str] = None,
    ) -> None:
        if faults is not None:
            faults.validate(platform.num_gpus)
        super().__init__(network, train_set, test_set, config, cost_model, faults=faults)
        if quantize_bits is not None and not 1 <= quantize_bits <= 16:
            raise ValueError("quantize_bits must be in [1, 16]")
        self.platform = platform
        self.packed = packed
        self.param_traffic = param_traffic
        self.quantize_bits = quantize_bits
        self.collective = validate_collective(
            collective if collective is not None else config.collective
        )
        if self.collective == "ring" and not packed:
            raise ValueError("the ring allreduce ships one packed buffer; use packed=True")
        suffix = "packed" if packed else "per-layer"
        if self.collective == "ring":
            suffix += ", ring"
        if quantize_bits is not None:
            suffix += f", {quantize_bits}-bit"
        self.name = f"Sync SGD ({suffix})"
        self._quant_rng = spawn_rng(config.seed, "grad-quantize") if quantize_bits else None

    def make_step(self) -> _SyncSgdStep:
        return _SyncSgdStep(self)
