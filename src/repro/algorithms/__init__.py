"""The paper's distributed training algorithms (Sections 3, 5, 6).

Existing methods reproduced as baselines: Original EASGD (round-robin,
Algorithm 1), Async SGD (parameter server), Async MSGD, Hogwild SGD.
The paper's methods: Async EASGD, Async MEASGD, Hogwild EASGD, and
Sync EASGD1/2/3 (Algorithms 2-4), plus Sync SGD for the packed-layer study.
"""

from repro.algorithms.async_ps import (
    AsyncEASGDTrainer,
    AsyncMEASGDTrainer,
    AsyncMSGDTrainer,
    AsyncSGDTrainer,
    HogwildEASGDTrainer,
    HogwildSGDTrainer,
)
from repro.algorithms.base import RunResult, TimeBreakdown, TrainerConfig, TrainRecord
from repro.algorithms.mpi_async_easgd import MpiAsyncEasgdResult, run_mpi_async_easgd
from repro.algorithms.mpi_easgd import MpiEasgdResult, run_mpi_sync_easgd
from repro.algorithms.mpi_sgd import MpiSgdResult, run_mpi_sync_sgd
from repro.algorithms.multinode import ClusterSyncEASGDTrainer
from repro.algorithms.original_easgd import OriginalEASGDTrainer
from repro.algorithms.registry import ALGORITHM_INFO, AlgorithmInfo, ALGORITHMS, make_trainer
from repro.algorithms.sync_easgd import SyncEASGDTrainer
from repro.algorithms.sync_sgd import SyncSGDTrainer

__all__ = [
    "TrainerConfig",
    "TrainRecord",
    "RunResult",
    "TimeBreakdown",
    "OriginalEASGDTrainer",
    "SyncEASGDTrainer",
    "SyncSGDTrainer",
    "AsyncSGDTrainer",
    "AsyncMSGDTrainer",
    "HogwildSGDTrainer",
    "AsyncEASGDTrainer",
    "AsyncMEASGDTrainer",
    "HogwildEASGDTrainer",
    "ClusterSyncEASGDTrainer",
    "MpiSgdResult",
    "run_mpi_sync_sgd",
    "MpiEasgdResult",
    "run_mpi_sync_easgd",
    "MpiAsyncEasgdResult",
    "run_mpi_async_easgd",
    "ALGORITHM_INFO",
    "ALGORITHMS",
    "AlgorithmInfo",

    "make_trainer",
]
