"""Sync SGD over the rank runtimes (threads or processes).

The message-passing twin of :class:`repro.algorithms.sync_sgd
.SyncSGDTrainer`: per iteration every rank computes a gradient at the
shared weights, gradients are tree-allreduced, and the averaged gradient
is applied identically everywhere. Every floating-point expression below
mirrors the simulated trainer line for line —
``tree_reduce(grads) / P`` then ``weights -= lr * mean`` with the same
float64 intermediate from the Python-float learning rate — and the
runtime's ``allreduce`` reproduces :func:`repro.comm.collectives
.tree_reduce`'s association order, so for dropout-free models the final
weights are *bit-identical* to the simulator's (and, because both
backends run this same rank program, bit-identical between ``threads``
and ``processes``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from repro.comm.backend import make_communicator
from repro.comm.runtime import RankContextBase
from repro.data.dataset import Dataset
from repro.data.loader import BatchSampler
from repro.engine.rank_loop import rank_steps
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Network
from repro.trace.events import Trace

__all__ = ["MpiSgdResult", "run_mpi_sync_sgd"]


@dataclass
class MpiSgdResult:
    """Outcome of one message-passing Sync SGD run."""

    weights: np.ndarray  # the shared final weights (identical on every rank)
    mean_losses: List[float]  # per-iteration loss averaged over ranks (rank 0)


def _rank_main(
    ctx: RankContextBase,
    template: Network,
    train_set: Dataset,
    iterations: int,
    batch_size: int,
    lr: float,
    seed: int,
):
    net = template.clone(name=f"sgd-rank{ctx.rank}")
    weights = template.get_params()
    sampler = BatchSampler(train_set, batch_size, seed, name=("worker", ctx.rank))
    loss = SoftmaxCrossEntropy()
    mean_losses: List[float] = []
    # The packed send buffer, reused every step. On the shm-backed ring
    # this is the rank's collective-arena contribution row: gradients are
    # packed straight into shared memory and the allreduce skips its
    # staging copy. Elsewhere it is an ordinary private buffer (reuse is
    # safe either way — the collective copies, or owns the row protocol).
    buf = ctx.collective_buffer(weights.size + 1)

    for _t in rank_steps(ctx, iterations):
        images, labels = sampler.next_batch()
        net.set_params(weights)
        batch_loss = net.gradient(images, labels, loss)

        # allreduce == tree_reduce association + bcast of the root's sum
        # (or the sharded ring, whose shard-wise folds reproduce the same
        # association), so every rank applies the bit-identical averaged
        # gradient. The scalar batch loss piggybacks as one extra element:
        # elementwise summation leaves the gradient entries untouched, and
        # the iteration stays a single packed buffer per tree edge (the
        # invariant check_packed_single_message enforces). ``view=True``
        # lets the shm ring hand back a zero-copy window on the shared
        # result row — read before the next collective, never written.
        buf[:-1] = net.grads
        buf[-1] = np.float32(batch_loss)
        total = ctx.allreduce(buf, view=True)
        mean_grad = total[:-1] / ctx.size
        weights -= lr * mean_grad

        if ctx.rank == 0:
            mean_losses.append(float(total[-1] / ctx.size))

    return weights, mean_losses


def run_mpi_sync_sgd(
    network: Network,
    train_set: Dataset,
    ranks: int,
    iterations: int,
    batch_size: int = 32,
    lr: float = 0.05,
    seed: int = 0,
    timeout: float = 120.0,
    trace: Optional[Trace] = None,
    backend: str = "threads",
    transport: Optional[str] = None,
    collective: str = "tree",
    wire_dtype: str = "float32",
    chunk_elems: Optional[int] = None,
    pool: Optional[Any] = None,
) -> MpiSgdResult:
    """Run synchronous data-parallel SGD across ``ranks`` real workers.

    ``transport`` picks the process backend's byte path (``"shm"`` or
    ``"queue"``; ``None`` = backend default) and ``collective`` the
    allreduce schedule (``"tree"`` or ``"ring"``) — wall-clock only, the
    weights are bit-identical either way. ``wire_dtype="float16"`` halves
    the on-fabric bytes but rounds them (approximate weights);
    ``chunk_elems`` pipelines the tree reduce's edges in fixed-size
    chunks (bit-exact, but no longer one packed message per edge).
    ``pool`` dispatches the process backend to a persistent
    :class:`repro.pool.WorkerPool` instead of forking per call.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if ranks <= 0:
        raise ValueError("ranks must be positive")
    if lr <= 0:
        raise ValueError("lr must be positive")

    chunked = chunk_elems is not None and chunk_elems > 0
    if trace is not None:
        trace.meta.setdefault("method", "MPI Sync SGD")
        trace.meta.setdefault("pattern", collective)
        trace.meta.setdefault("packed", not chunked)
        trace.meta.setdefault("messages_per_exchange", 1)
    comm = make_communicator(
        ranks, backend=backend, timeout=timeout, trace=trace, transport=transport,
        collective=collective, wire_dtype=wire_dtype, chunk_elems=chunk_elems,
        pool=pool,
    )
    try:
        results = comm.run(
            _rank_main, network, train_set, iterations, batch_size, lr, seed
        )
    finally:
        comm.close()
    return MpiSgdResult(weights=results[0][0], mean_losses=results[0][1])
