"""Sync EASGD on a multi-node multi-GPU cluster.

The paper's acknowledgements mention a "multi-node multi-GPU EASGD with
less global communication overhead"; the artifact's ``mpi_easgd`` code runs
Sync EASGD over MPI across nodes. This trainer composes Algorithm 3 with
the hierarchical collective of :class:`repro.cluster.multinode.
GpuClusterPlatform`: per iteration every GPU in the cluster computes a
gradient, worker weights are reduced within each node and allreduced
across nodes, and the EASGD updates are applied exactly as in Sync EASGD3
(including the compute/communication overlap).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.algorithms.base import (
    BaseTrainer,
    RunResult,
    TimeBreakdown,
    TrainRecord,
    TrainerConfig,
)
from repro.cluster.cost import CostModel
from repro.cluster.multinode import GpuClusterPlatform
from repro.comm.collectives import tree_reduce
from repro.data.dataset import Dataset
from repro.nn.network import Network
from repro.optim.easgd import EASGDHyper, elastic_worker_update

__all__ = ["ClusterSyncEASGDTrainer"]


class ClusterSyncEASGDTrainer(BaseTrainer):
    """Hierarchical Sync EASGD across nodes x GPUs workers."""

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        platform: GpuClusterPlatform,
        config: TrainerConfig,
        cost_model: Optional[CostModel] = None,
        allreduce: str = "tree",
        packed: bool = True,
        overlap: bool = True,
    ) -> None:
        super().__init__(network, train_set, test_set, config, cost_model)
        if allreduce not in ("tree", "ring"):
            raise ValueError("allreduce must be 'tree' or 'ring'")
        self.platform = platform
        self.allreduce = allreduce
        self.packed = packed
        self.overlap = overlap
        self.name = (
            f"Cluster Sync EASGD ({platform.num_nodes}x{platform.gpus_per_node}, "
            f"{allreduce})"
        )
        self.hyper = EASGDHyper(lr=config.lr, rho=config.rho, mu=config.mu)
        self.hyper.validate_sync(platform.num_workers)

    def iteration_time(self) -> float:
        """Per-iteration simulated seconds (jitter-free expectation)."""
        cfg = self.config
        stage = self.platform.stage_batch_time(self.cost, cfg.batch_size)
        fwdbwd = self.platform.fwdbwd_time(self.cost, cfg.batch_size, worker=0, jittered=False)
        comm = self.platform.hierarchical_allreduce_time(self.cost, self.allreduce, self.packed)
        upd = 2.0 * self.platform.gpu_update_time(self.cost)
        if self.overlap:
            hidden = cfg.overlap_efficiency * min(comm, stage + fwdbwd)
            return stage + fwdbwd + (comm - hidden) + upd
        return stage + fwdbwd + comm + upd

    def train(self, iterations: int) -> RunResult:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        w = self.platform.num_workers
        cfg = self.config

        center = self.net.get_params()
        workers: List[np.ndarray] = [center.copy() for _ in range(w)]
        samplers = [self.make_sampler(("cluster-worker", j)) for j in range(w)]

        breakdown = TimeBreakdown()
        records: List[TrainRecord] = []
        sim_time = 0.0
        last_loss = float("nan")

        stage_t = self.platform.stage_batch_time(self.cost, cfg.batch_size)
        comm_t = self.platform.hierarchical_allreduce_time(self.cost, self.allreduce, self.packed)
        upd_t = 2.0 * self.platform.gpu_update_time(self.cost)

        for t in range(1, iterations + 1):
            grads: List[np.ndarray] = []
            for j in range(w):
                images, labels = samplers[j].next_batch()
                self.net.set_params(workers[j])
                last_loss = self.net.gradient(images, labels, self.loss)
                grads.append(self.net.grads.copy())

            sum_w = tree_reduce(workers)
            for j in range(w):
                elastic_worker_update(workers[j], grads[j], center, self.hyper)
            center += self.hyper.alpha * (sum_w - w * center)

            fwdbwd_max = max(
                self.platform.fwdbwd_time(self.cost, cfg.batch_size, worker=j)
                for j in range(w)
            )
            if self.overlap:
                hidden = cfg.overlap_efficiency * min(comm_t, stage_t + fwdbwd_max)
                visible_comm = comm_t - hidden
            else:
                visible_comm = comm_t
            breakdown.add("cpu-gpu data", stage_t)
            breakdown.add("for/backward", fwdbwd_max)
            breakdown.add("gpu-gpu para", visible_comm)
            breakdown.add("gpu update", upd_t)
            sim_time += stage_t + fwdbwd_max + visible_comm + upd_t

            if t % cfg.eval_every == 0 or t == iterations:
                acc = self.evaluate_params(center)
                records.append(TrainRecord(t, sim_time, last_loss, acc))
                if self.should_stop(acc):
                    break

        final_acc = records[-1].test_accuracy if records else 0.0
        return RunResult(
            method=self.name,
            records=records,
            breakdown=breakdown,
            iterations=records[-1].iteration if records else 0,
            sim_time=sim_time,
            final_accuracy=final_acc,
        )
