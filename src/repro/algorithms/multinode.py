"""Sync EASGD on a multi-node multi-GPU cluster.

The paper's acknowledgements mention a "multi-node multi-GPU EASGD with
less global communication overhead"; the artifact's ``mpi_easgd`` code runs
Sync EASGD over MPI across nodes. This trainer composes Algorithm 3 with
the hierarchical collective of :class:`repro.cluster.multinode.
GpuClusterPlatform`: per iteration every GPU in the cluster computes a
gradient, worker weights are reduced within each node and allreduced
across nodes, and the EASGD updates are applied exactly as in Sync EASGD3
(including the compute/communication overlap).

The loop is the shared :class:`repro.engine.StepPipeline`; the family
contributes a clock step built on the same
:class:`~repro.engine.SyncElasticUpdate` rule as Sync EASGD3.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import BaseTrainer, TrainerConfig
from repro.cluster.cost import CostModel
from repro.cluster.multinode import GpuClusterPlatform
from repro.data.dataset import Dataset
from repro.engine.compute import gather_gradients, jittered_fwdbwd
from repro.engine.strategy import ClockStepStrategy, SyncElasticUpdate
from repro.nn.network import Network
from repro.optim.easgd import EASGDHyper

__all__ = ["ClusterSyncEASGDTrainer"]


class _ClusterSyncEasgdStep(ClockStepStrategy):
    """One hierarchical Sync EASGD iteration across nodes x GPUs."""

    def __init__(self, trainer: "ClusterSyncEASGDTrainer") -> None:
        self.trainer = trainer

    def begin(self, pipeline) -> None:
        tr = self.trainer
        w = tr.platform.num_workers
        cfg = tr.config
        self.center = tr.net.get_params()
        self.workers: List[np.ndarray] = [self.center.copy() for _ in range(w)]
        self.samplers = [tr.make_sampler(("cluster-worker", j)) for j in range(w)]
        self.update = SyncElasticUpdate(tr.hyper)
        self.live = list(range(w))
        self.stage_t = tr.platform.stage_batch_time(tr.cost, cfg.batch_size)
        self.comm_t = tr.platform.hierarchical_allreduce_time(
            tr.cost, tr.allreduce, tr.packed
        )
        self.upd_t = 2.0 * tr.platform.gpu_update_time(tr.cost)

    def step(self, pipeline, t: int) -> float:
        tr = self.trainer
        cfg = tr.config
        grads, losses = gather_gradients(tr, self.samplers, self.live,
                                         weights=self.workers)
        self.last_loss = losses[-1]
        self.update.apply(self.center, self.workers, grads, self.live)

        fwdbwd_max = max(jittered_fwdbwd(
            tr.platform, tr.cost, cfg.batch_size, self.live, None,
            pipeline.sim_time,
        ))
        if tr.overlap:
            hidden = cfg.overlap_efficiency * min(self.comm_t, self.stage_t + fwdbwd_max)
            visible_comm = self.comm_t - hidden
        else:
            visible_comm = self.comm_t
        breakdown = pipeline.breakdown
        breakdown.add("cpu-gpu data", self.stage_t)
        breakdown.add("for/backward", fwdbwd_max)
        breakdown.add("gpu-gpu para", visible_comm)
        breakdown.add("gpu update", self.upd_t)
        return self.stage_t + fwdbwd_max + visible_comm + self.upd_t

    def eval_params(self) -> np.ndarray:
        return self.center

    def state_dict(self) -> Dict:
        arrays = {"center": self.center}
        for j, w in enumerate(self.workers):
            arrays[f"worker-{j}"] = w
        return {
            "arrays": arrays,
            "meta": {
                "last_loss": self.last_loss,
                "samplers": [s.get_state() for s in self.samplers],
            },
        }

    def load_state_dict(self, state: Dict) -> None:
        arrays, meta = state["arrays"], state["meta"]
        self.center[:] = arrays["center"]
        for j, w in enumerate(self.workers):
            w[:] = arrays[f"worker-{j}"]
        for sampler, st in zip(self.samplers, meta["samplers"]):
            sampler.set_state(st)
        self.last_loss = meta["last_loss"]


class ClusterSyncEASGDTrainer(BaseTrainer):
    """Hierarchical Sync EASGD across nodes x GPUs workers."""

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        platform: GpuClusterPlatform,
        config: TrainerConfig,
        cost_model: Optional[CostModel] = None,
        allreduce: str = "tree",
        packed: bool = True,
        overlap: bool = True,
    ) -> None:
        super().__init__(network, train_set, test_set, config, cost_model)
        if allreduce not in ("tree", "ring"):
            raise ValueError("allreduce must be 'tree' or 'ring'")
        self.platform = platform
        self.allreduce = allreduce
        self.packed = packed
        self.overlap = overlap
        self.name = (
            f"Cluster Sync EASGD ({platform.num_nodes}x{platform.gpus_per_node}, "
            f"{allreduce})"
        )
        self.hyper = EASGDHyper(lr=config.lr, rho=config.rho, mu=config.mu)
        self.hyper.validate_sync(platform.num_workers)

    def iteration_time(self) -> float:
        """Per-iteration simulated seconds (jitter-free expectation)."""
        cfg = self.config
        stage = self.platform.stage_batch_time(self.cost, cfg.batch_size)
        fwdbwd = self.platform.fwdbwd_time(self.cost, cfg.batch_size, worker=0, jittered=False)
        comm = self.platform.hierarchical_allreduce_time(self.cost, self.allreduce, self.packed)
        upd = 2.0 * self.platform.gpu_update_time(self.cost)
        if self.overlap:
            hidden = cfg.overlap_efficiency * min(comm, stage + fwdbwd)
            return stage + fwdbwd + (comm - hidden) + upd
        return stage + fwdbwd + comm + upd

    def make_step(self) -> _ClusterSyncEasgdStep:
        return _ClusterSyncEasgdStep(self)
