"""Shared trainer machinery: config, metrics records, time breakdown.

Every trainer runs *real numerics* (the actual update equations on real
NumPy weights, real batches, real test accuracy) while charging a simulated
clock through a :class:`repro.cluster.platform.GpuPlatform`. A run yields a
:class:`RunResult`: the accuracy-vs-simulated-time trajectory (Figures 6/8),
the per-part time breakdown (Table 3 / Figure 11), and totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.cost import CostModel
from repro.data.dataset import Dataset
from repro.data.loader import BatchSampler
from repro.faults import FaultLog, FaultPlan
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Network
from repro.trace.events import Trace

__all__ = [
    "TrainerConfig",
    "TrainRecord",
    "TimeBreakdown",
    "RunResult",
    "BaseTrainer",
    "BREAKDOWN_PARTS",
    "COMM_PARTS",
]

#: Table 3's eight time-consuming parts, minus I/O and initialization which
#: the paper ignores ("they only cost a tiny percent of time").
BREAKDOWN_PARTS = (
    "gpu-gpu para",
    "cpu-gpu data",
    "cpu-gpu para",
    "for/backward",
    "gpu update",
    "cpu update",
)

#: The parts the paper counts as communication when quoting "87% -> 14%".
COMM_PARTS = ("gpu-gpu para", "cpu-gpu data", "cpu-gpu para")


@dataclass
class TrainerConfig:
    """Hyperparameters shared by all trainers.

    ``lr * rho`` is the elastic step (must be in (0,1), checked by
    :class:`repro.optim.easgd.EASGDHyper`). ``eval_every``/``eval_samples``
    control how often and on how much of the test set accuracy snapshots are
    taken along the trajectory.
    """

    batch_size: int = 64
    lr: float = 0.05
    rho: float = 2.0
    mu: float = 0.9
    seed: int = 0
    eval_every: int = 50
    eval_samples: int = 512
    overlap_efficiency: float = 0.7  # fraction of overlappable comm actually hidden
    #: Record a structured communication trace (repro.trace) for the run.
    #: Off by default: the hot path then allocates no TraceEvent at all.
    trace: bool = False
    #: Execution substrate for runners that move real messages ("threads"
    #: or "processes"). Simulated trainers ignore it; the message-passing
    #: ports, the KNL chip-partition trainer, and the Hogwild runner
    #: dispatch on it. Numerics are backend-invariant by construction.
    backend: str = "threads"
    #: Message transport for the process backend: "shm" (zero-copy slot
    #: rings) or "queue" (pickle through pipes). None keeps each backend's
    #: own default; the thread backend passes by reference regardless.
    #: Like ``backend``, this changes wall-clock behaviour, never bits.
    transport: Optional[str] = None
    #: Allreduce schedule for the collective runners and the simulated
    #: cost models: "tree" (binomial, Theta(log P) latency) or "ring"
    #: (sharded reduce-scatter + allgather, Theta(1) per-rank bandwidth).
    #: With a float32 wire both schedules are bit-identical by design.
    collective: str = "tree"
    #: On-fabric array format for the message runners: "float32" (exact)
    #: or "float16" (half the wire bytes; reductions still accumulate in
    #: float32). The only knob here that is allowed to change numerics.
    wire_dtype: str = "float32"
    #: Durable runs (repro.durability): save a crash-safe checkpoint of the
    #: full pipeline state every N completed steps (0 = off). Requires
    #: ``checkpoint_dir``. Like tracing, this never changes run numerics.
    checkpoint_every: int = 0
    #: Directory holding the run's versioned checkpoint store.
    checkpoint_dir: Optional[str] = None
    #: Retention: how many newest checkpoint versions survive pruning.
    checkpoint_keep: int = 3

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.eval_every <= 0:
            raise ValueError("eval_every must be positive")
        if self.eval_samples <= 0:
            raise ValueError("eval_samples must be positive")
        if not 0.0 <= self.overlap_efficiency <= 1.0:
            raise ValueError("overlap_efficiency must be in [0, 1]")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if self.checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be at least 1")
        if self.checkpoint_every > 0 and self.checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        # Late import: repro.comm.backend imports nothing from algorithms,
        # but keeping the dependency one-way at module load is cheap.
        from repro.comm.backend import (
            validate_backend,
            validate_collective,
            validate_transport,
            validate_wire_dtype,
        )

        validate_backend(self.backend)
        if self.transport is not None:
            validate_transport(self.transport)
        validate_collective(self.collective)
        validate_wire_dtype(self.wire_dtype)


@dataclass(frozen=True)
class TrainRecord:
    """One trajectory point: state of the run at a simulated instant."""

    iteration: int
    sim_time: float
    train_loss: float
    test_accuracy: float

    @property
    def error_rate(self) -> float:
        """Figure 8's benchmark: 1 - accuracy."""
        return 1.0 - self.test_accuracy


class TimeBreakdown:
    """Accumulator for Table 3's per-part simulated seconds.

    ``degraded_rounds`` counts iterations executed in degraded mode (some
    worker dead, evicted, or retransmitting) — it is bookkeeping next to,
    not inside, the per-part seconds so Table 3 renderings are unchanged.
    """

    def __init__(self) -> None:
        self.parts: Dict[str, float] = {p: 0.0 for p in BREAKDOWN_PARTS}
        self.degraded_rounds: int = 0

    def mark_degraded(self, rounds: int = 1) -> None:
        """Count ``rounds`` iterations that ran with a degraded worker pool."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        self.degraded_rounds += rounds

    def add(self, part: str, seconds: float) -> None:
        if part not in self.parts:
            raise KeyError(f"unknown breakdown part {part!r}; expected one of {BREAKDOWN_PARTS}")
        if seconds < 0:
            raise ValueError("cannot add negative time")
        self.parts[part] += seconds

    @property
    def total(self) -> float:
        return sum(self.parts.values())

    @property
    def comm_seconds(self) -> float:
        return sum(self.parts[p] for p in COMM_PARTS)

    @property
    def comm_ratio(self) -> float:
        """Fraction of total time spent in communication (the 87% -> 14% figure)."""
        total = self.total
        return self.comm_seconds / total if total > 0 else 0.0

    def fractions(self) -> Dict[str, float]:
        total = self.total
        if total <= 0:
            return {p: 0.0 for p in self.parts}
        return {p: v / total for p, v in self.parts.items()}


@dataclass
class RunResult:
    """Everything one training run produced."""

    method: str
    records: List[TrainRecord]
    breakdown: TimeBreakdown
    iterations: int
    sim_time: float
    final_accuracy: float
    reached_target: Optional[bool] = None
    extras: Dict[str, float] = field(default_factory=dict)
    #: Structured record of every injected/detected fault event, present
    #: when the run executed under a :class:`repro.faults.FaultPlan`.
    fault_log: Optional[FaultLog] = None
    #: Per-message communication trace, present when the run was configured
    #: with ``TrainerConfig(trace=True)``.
    trace: Optional[Trace] = None
    #: Execution substrate that produced the run, set by runners that move
    #: real messages ("threads" / "processes"); None for simulated runs.
    backend: Optional[str] = None

    def time_to_accuracy(self, target: float) -> Optional[float]:
        """Simulated seconds until test accuracy first reached ``target``."""
        for rec in self.records:
            if rec.test_accuracy >= target:
                return rec.sim_time
        return None

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, accuracies) arrays for plotting accuracy vs time."""
        times = np.array([r.sim_time for r in self.records])
        accs = np.array([r.test_accuracy for r in self.records])
        return times, accs


class BaseTrainer:
    """Common state: datasets, the evaluation network, metric recording.

    Subclasses implement ``make_step()``, returning the step strategy the
    shared :class:`repro.engine.StepPipeline` drives. ``train_to_accuracy``
    wraps ``train`` for the Table 3 protocol ("same accuracy 98.8%"): run
    until a target accuracy is reached or the iteration cap hits.
    """

    name = "base"

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        config: TrainerConfig,
        cost_model: Optional[CostModel] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.net = network
        self.train_set = train_set
        self.test_set = test_set
        self.config = config
        self.cost = cost_model or CostModel.from_network(network)
        self.loss = SoftmaxCrossEntropy()
        #: The fault schedule this trainer runs under (None = healthy run).
        self.faults = faults
        #: Refreshed at the start of every ``train()`` call so per-run logs
        #: from identical plans compare equal.
        self.fault_log = FaultLog()
        #: Refreshed per ``train()`` call when ``config.trace`` is on.
        self.trace: Optional[Trace] = None

        n_eval = min(config.eval_samples, len(test_set))
        self._eval_images = test_set.images[:n_eval]
        self._eval_labels = test_set.labels[:n_eval]
        #: When set, training loops stop at the first evaluation point whose
        #: accuracy reaches this value (the Table 3 protocol).
        self._stop_accuracy: Optional[float] = None

    # -- helpers for subclasses ------------------------------------------------
    def make_trace(self, ranks: int, **meta) -> Optional[Trace]:
        """A fresh per-run trace, or None when tracing is off.

        Subclasses call this at the top of ``train()`` and stamp the
        metadata the invariant checks dispatch on (``pattern``, ``packed``,
        ``variant``, ...). The None return is the zero-overhead contract:
        every emission site guards on it.
        """
        if not self.config.trace:
            self.trace = None
            return None
        trace = Trace(meta={"method": self.name, "ranks": ranks, "clock": "simulated", **meta})
        self.trace = trace
        return trace

    def make_sampler(self, consumer: object) -> BatchSampler:
        """Independent seeded sampler for one worker/master."""
        return BatchSampler(
            self.train_set, self.config.batch_size, self.config.seed, name=consumer
        )

    def evaluate_params(self, params: np.ndarray) -> float:
        """Test accuracy of a packed parameter vector (inference mode)."""
        saved = self.net.get_params()
        self.net.set_params(params)
        acc = self.net.evaluate(self._eval_images, self._eval_labels)
        self.net.set_params(saved)
        return acc

    def should_stop(self, accuracy: float) -> bool:
        """Early-stop predicate trainers consult at every evaluation point."""
        return self._stop_accuracy is not None and accuracy >= self._stop_accuracy

    # -- public API --------------------------------------------------------------
    def make_step(self):
        """The family's step strategy (see :mod:`repro.engine.strategy`)."""
        raise NotImplementedError

    def train(self, iterations: int, resume: bool = False,
              snapshotter=None) -> RunResult:
        """Run ``iterations`` steps through the shared step pipeline.

        All step sequencing (the loop, the clock, eval snapshots, result
        assembly) lives in :mod:`repro.engine`; subclasses contribute only
        their step strategy via :meth:`make_step`. With ``resume=True``
        the run continues from the newest valid checkpoint under
        ``config.checkpoint_dir`` instead of from scratch, bit-identically
        to a run that was never interrupted. ``snapshotter`` attaches a
        serving-tier publisher (see :mod:`repro.serving`).
        """
        # Late import: repro.engine depends on this module's dataclasses.
        from repro.engine import run_training

        return run_training(self, iterations, resume=resume,
                            snapshotter=snapshotter)

    def train_to_accuracy(
        self, target: float, max_iterations: int, chunk: Optional[int] = None
    ) -> RunResult:
        """Run until test accuracy >= target (checked at trajectory points).

        Training stops at the first evaluation point that meets the target
        (the paper's "time to the same accuracy" protocol); ``reached_target``
        records whether it happened within ``max_iterations``.
        """
        self._stop_accuracy = target
        try:
            result = self.train(max_iterations)
        finally:
            self._stop_accuracy = None
        hit_time = result.time_to_accuracy(target)
        if hit_time is None:
            result.reached_target = False
            return result
        result.reached_target = True
        for rec in result.records:
            if rec.test_accuracy >= target:
                result.sim_time = rec.sim_time
                result.iterations = rec.iteration
                result.final_accuracy = rec.test_accuracy
                break
        # Scale the breakdown down to the truncated window so comm ratios
        # refer to the time actually needed to reach the target.
        if result.breakdown.total > 0 and result.sim_time < result.breakdown.total:
            scale = result.sim_time / result.breakdown.total
            for part in result.breakdown.parts:
                result.breakdown.parts[part] *= scale
        return result
