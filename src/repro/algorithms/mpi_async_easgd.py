"""Async EASGD over the rank runtimes (the artifact's ``mpi_easgd -a`` port).

The message-passing twin of :class:`repro.algorithms.async_ps
.AsyncEASGDTrainer`: rank 0 is the master holding the elastic center; every
other rank is a worker that computes on its *local* weights and exchanges
with the master once per iteration via an explicit request/reply pair —
the worker sends ``(loss, W^j_t)``, the master replies the pre-update
center ``Wbar_t`` and then folds the worker's weights in with the
single-worker Eq 2 step (Algorithm 1 line 14).

The master serves workers in deterministic round-robin order (worker 1,
2, ..., P-1, then around again), so the interleaving — and therefore the
final weights — is reproducible and bit-identical across backends
(``threads`` vs ``processes``) and transports (``queue`` vs ``shm``).
This trades the wall-clock freedom of a first-come-first-served master
for determinism; the simulated :class:`AsyncEASGDTrainer` covers the
contention behaviour, this port covers the real message path.

Hot-loop allocations are arena-backed: the worker's gradient copy and its
request snapshot live in a :class:`repro.comm.arena.BufferArena` and are
reused every iteration. The request/reply sequencing makes snapshot reuse
safe even when the thread backend passes it by reference: the master
consumes the snapshot *before* replying, and the worker cannot overwrite
it until the reply arrives. The master's ``Wbar_t`` reply is deliberately
a fresh copy — the worker keeps that reference after the reply, so the
master must never mutate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from repro.comm.arena import BufferArena
from repro.comm.backend import make_communicator
from repro.comm.runtime import RankContextBase
from repro.data.dataset import Dataset
from repro.data.loader import BatchSampler
from repro.engine.rank_loop import rank_steps
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Network
from repro.optim.easgd import EASGDHyper, elastic_center_update_single, elastic_worker_update
from repro.trace.events import Trace

__all__ = ["MpiAsyncEasgdResult", "run_mpi_async_easgd"]

#: Wire tags for the request/reply pair (clear of the collective strides).
TAG_W = 7  # worker -> master: (batch loss, worker weights)
TAG_C = 8  # master -> worker: pre-update center Wbar_t


@dataclass
class MpiAsyncEasgdResult:
    """Outcome of one message-passing Async EASGD run."""

    center: np.ndarray
    worker_weights: List[np.ndarray]  # final W^j per worker rank (1..P-1)
    center_history: List[np.ndarray]  # center snapshot per round (master)
    mean_losses: List[float]  # per-round batch loss averaged over workers


def _master_main(
    ctx: RankContextBase,
    center: np.ndarray,
    iterations: int,
    hyper: EASGDHyper,
    record_history: bool,
):
    """Rank 0: serve one request per worker per round, round-robin."""
    history: List[np.ndarray] = []
    mean_losses: List[float] = []
    trace = ctx.trace
    for t in rank_steps(ctx, iterations):
        loss_sum = 0.0
        for j in range(1, ctx.size):
            batch_loss, w_j = ctx.recv(source=j, tag=TAG_W)
            t0 = ctx._elapsed() if trace is not None else 0.0
            loss_sum += float(batch_loss)
            # Reply the pre-update center (step 1 of the interaction), but
            # only after Eq 2 consumed w_j: under the thread backend w_j
            # aliases the worker's arena snapshot, which the worker is free
            # to overwrite as soon as the reply lands.
            wbar_t = center.copy()
            elastic_center_update_single(center, w_j, hyper)
            ctx.send(wbar_t, dest=j, tag=TAG_C)
            if trace is not None:
                # value = when the request reached the serial master: the
                # FCFS invariant checks service order against it.
                trace.span(
                    "service", ctx.rank, t0, ctx._elapsed(),
                    op="easgd-interaction", nbytes=w_j.nbytes, iteration=t,
                    value=t0,
                )
        mean_losses.append(loss_sum / (ctx.size - 1))
        if record_history:
            history.append(center.copy())
    return center, history, mean_losses


def _worker_main(
    ctx: RankContextBase,
    template: Network,
    train_set: Dataset,
    iterations: int,
    batch_size: int,
    hyper: EASGDHyper,
    seed: int,
):
    """Ranks 1..P-1: compute on local weights, exchange with the master."""
    net = template.clone(name=f"async-rank{ctx.rank}")
    local = template.get_params()
    sampler = BatchSampler(train_set, batch_size, seed, name=("worker", ctx.rank))
    loss = SoftmaxCrossEntropy()
    arena = BufferArena()

    for _t in rank_steps(ctx, iterations):
        images, labels = sampler.next_batch()
        net.set_params(local)
        batch_loss = net.gradient(images, labels, loss)
        grad = arena.fill("grad", net.grads)

        snap = arena.fill("wsnap", local)  # request payload, reused per step
        ctx.send((np.float32(batch_loss), snap), dest=0, tag=TAG_W)
        wbar_t = ctx.recv(source=0, tag=TAG_C)
        elastic_worker_update(local, grad, wbar_t, hyper)  # Eq 1

    return local


def _rank_main(ctx: RankContextBase, template, train_set, iterations,
               batch_size, hyper, seed, record_history):
    if ctx.rank == 0:
        center = template.get_params()  # master starts from W, like workers
        return _master_main(ctx, center, iterations, hyper, record_history)
    return _worker_main(ctx, template, train_set, iterations, batch_size, hyper, seed)


def run_mpi_async_easgd(
    network: Network,
    train_set: Dataset,
    ranks: int,
    iterations: int,
    batch_size: int = 32,
    lr: float = 0.05,
    rho: float = 2.0,
    seed: int = 0,
    record_history: bool = False,
    timeout: float = 120.0,
    trace: Optional[Trace] = None,
    backend: str = "threads",
    transport: Optional[str] = None,
    pool: Optional[Any] = None,
) -> MpiAsyncEasgdResult:
    """Run Async EASGD across ``ranks`` real threads or processes.

    ``ranks`` counts the master: ``ranks - 1`` workers train. The master's
    round-robin service makes the schedule deterministic, so the returned
    weights are bit-identical across backends and transports for a fixed
    seed. ``transport`` picks the process backend's byte path (``"shm"``
    or ``"queue"``; ``None`` = backend default). ``pool`` dispatches the
    process backend to a persistent :class:`repro.pool.WorkerPool`
    instead of forking per call (amortized spin-up, identical bits).
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if ranks < 2:
        raise ValueError("need at least 2 ranks (one master, one worker)")
    hyper = EASGDHyper(lr=lr, rho=rho)

    if trace is not None:
        trace.meta.setdefault("method", "MPI Async EASGD")
        trace.meta.setdefault("pattern", "ps")
        trace.meta.setdefault("lock_free", False)
        trace.meta.setdefault("service", "round-robin")
    comm = make_communicator(
        ranks, backend=backend, timeout=timeout, trace=trace, transport=transport,
        pool=pool,
    )
    try:
        results = comm.run(
            _rank_main, network, train_set, iterations, batch_size, hyper, seed,
            record_history,
        )
    finally:
        comm.close()
    center, history, mean_losses = results[0]
    worker_weights = list(results[1:])
    return MpiAsyncEasgdResult(
        center=center,
        worker_weights=worker_weights,
        center_history=history,
        mean_losses=mean_losses,
    )
