"""Sync EASGD over the in-process MPI-style runtime (the artifact's
``mpi_easgd`` port).

Unlike the simulated trainers, this version runs *actual message passing*:
one thread per rank, each with its own network replica, exchanging weights
through :class:`repro.comm.runtime.InProcessCommunicator` with the same
binomial-tree schedules the simulator costs. Rank 0 doubles as the master
holding the center weight (Algorithm 4's "master: KNL1" pattern).

Because the collectives reproduce :func:`repro.comm.collectives
.tree_reduce`'s association order and the samplers use the same seed
derivation as :class:`repro.algorithms.sync_easgd.SyncEASGDTrainer`, the
weight trajectory is *bit-identical* to the simulated trainer's — the
cross-validation test in ``tests/test_mpi_runtime.py`` asserts exactly
that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from repro.comm.arena import BufferArena
from repro.comm.backend import make_communicator
from repro.comm.runtime import RankContextBase
from repro.data.dataset import Dataset
from repro.data.loader import BatchSampler
from repro.engine.rank_loop import rank_steps
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Network
from repro.optim.easgd import EASGDHyper, elastic_worker_update
from repro.trace.events import Trace

__all__ = ["MpiEasgdResult", "run_mpi_sync_easgd"]


@dataclass
class MpiEasgdResult:
    """Outcome of one message-passing run."""

    center: np.ndarray
    worker_weights: List[np.ndarray]
    center_history: List[np.ndarray]  # center snapshot per iteration (rank 0)


def _rank_main(
    ctx: RankContextBase,
    template: Network,
    train_set: Dataset,
    iterations: int,
    batch_size: int,
    hyper: EASGDHyper,
    seed: int,
    record_history: bool,
    variant: int,
):
    """The per-rank program: compute, allreduce weights, elastic updates."""
    net = template.clone(name=f"mpi-rank{ctx.rank}")
    local = template.get_params()  # all replicas start from W (Alg 4 line 6)
    center = local.copy() if ctx.rank == 0 else None
    sampler = BatchSampler(train_set, batch_size, seed, name=("worker", ctx.rank))
    loss = SoftmaxCrossEntropy()
    history: List[np.ndarray] = []
    arena = BufferArena()  # hot-loop scratch: gradient copy + staged batches

    # Sync EASGD3 overlaps communication with data staging (the paper's
    # 87% -> 14% comm-overhead move). Here that means drawing the *next*
    # batch into pre-registered arena buffers right before this rank blocks
    # in the tree reduce: the memcpy runs while the rest of the tree is
    # still combining partial sums. One draw per iteration in the same
    # stream order as the eager form, so the trajectory stays bit-identical.
    overlap = variant == 3
    if overlap:
        img_buf = arena.get(
            "images", (batch_size,) + train_set.images.shape[1:], train_set.images.dtype
        )
        lbl_buf = arena.get(
            "labels", (batch_size,) + train_set.labels.shape[1:], train_set.labels.dtype
        )
        sampler.next_batch_into(img_buf, lbl_buf)  # batch for t=1, staged eagerly

    for t in rank_steps(ctx, iterations):
        if overlap:
            images, labels = img_buf, lbl_buf
        else:
            images, labels = sampler.next_batch()
        net.set_params(local)
        net.gradient(images, labels, loss)
        grad = arena.fill("grad", net.grads)

        # The gradient pass is done with the current batch, so its buffers
        # are free: stage iteration t+1 now, before blocking in the reduce.
        if overlap and t < iterations:
            t0 = ctx._elapsed() if ctx.trace is not None else 0.0
            sampler.next_batch_into(img_buf, lbl_buf)
            if ctx.trace is not None:
                ctx.trace.span(
                    "staging", ctx.rank, t0, ctx._elapsed(),
                    op="prefetch-batch", nbytes=img_buf.nbytes + lbl_buf.nbytes,
                    iteration=t,
                )

        # Step 12-13 of Algorithm 4: master needs sum of W_j^t; every worker
        # needs Wbar_t. One tree reduce + one tree bcast.
        sum_w = ctx.reduce(local, root=0)
        if ctx.rank == 0:
            wbar_t = center.copy()
        else:
            wbar_t = None
        wbar_t = ctx.bcast(wbar_t, root=0)

        elastic_worker_update(local, grad, wbar_t, hyper)  # Eq 1, every rank
        if ctx.rank == 0:  # Eq 2 at the master
            center += hyper.alpha * (sum_w - ctx.size * center)
            if record_history:
                history.append(center.copy())

    return local, center, history


def run_mpi_sync_easgd(
    network: Network,
    train_set: Dataset,
    ranks: int,
    iterations: int,
    batch_size: int = 32,
    lr: float = 0.05,
    rho: float = 2.0,
    seed: int = 0,
    record_history: bool = False,
    timeout: float = 120.0,
    trace: Optional[Trace] = None,
    backend: str = "threads",
    variant: int = 3,
    transport: Optional[str] = None,
    wire_dtype: str = "float32",
    chunk_elems: Optional[int] = None,
    pool: Optional[Any] = None,
) -> MpiEasgdResult:
    """Run Sync EASGD across ``ranks`` real threads or processes.

    ``backend`` selects the execution substrate (``"threads"`` or
    ``"processes"``); both run the identical rank program over identical
    binomial trees, so the returned weights are bit-equal across backends.

    ``transport`` picks how the process backend moves message bytes —
    ``"shm"`` (zero-copy slot rings) or ``"queue"`` (pickle through
    pipes); ``None`` keeps the backend's default. Transports change only
    how bytes travel, never their values, so results are bit-identical
    across transports too. ``chunk_elems`` pipelines the reduce/bcast
    edges in fixed-size chunks (also bit-exact, but the packed
    single-message invariant no longer applies); ``wire_dtype="float16"``
    halves the wire bytes at the cost of rounded weights — the only knob
    here that changes numerics. ``pool`` attaches the process backend to
    a persistent :class:`repro.pool.WorkerPool`: the rank program is
    dispatched to long-lived pre-forked workers instead of freshly
    forked ones — amortized spin-up, bit-identical weights.

    ``variant`` labels which Sync EASGD flavour (1, 2, or 3) this run
    stands in for. The paper's variants differ in *system* behaviour
    (per-layer vs packed messages, overlap) but share one set of update
    equations — the simulated trainers' weight trajectories are already
    variant-independent, so one message-passing schedule serves all
    three; the stamp rides on the trace metadata.

    Pass a :class:`repro.trace.Trace` to record every point-to-point
    message the runtime actually moves (wall-clock spans, per-round
    stamps) — the trace the structural invariants in
    :mod:`repro.trace.check` verify against the simulator's claims.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if variant not in (1, 2, 3):
        raise ValueError(f"variant must be 1, 2, or 3, got {variant}")
    hyper = EASGDHyper(lr=lr, rho=rho)
    hyper.validate_sync(ranks)

    if trace is not None:
        trace.meta.setdefault("method", f"MPI Sync EASGD{variant}")
        # NOT meta["variant"]: that key dispatches the simulator's
        # overlap invariants, which need compute spans the runtime
        # doesn't emit. The variant label is informational here.
        trace.meta.setdefault("easgd_variant", variant)
        trace.meta.setdefault("pattern", "tree")
        trace.meta.setdefault("packed", chunk_elems is None or chunk_elems <= 0)
        trace.meta.setdefault("messages_per_exchange", 1)
    comm = make_communicator(
        ranks, backend=backend, timeout=timeout, trace=trace, transport=transport,
        wire_dtype=wire_dtype, chunk_elems=chunk_elems, pool=pool,
    )
    try:
        results = comm.run(
            _rank_main, network, train_set, iterations, batch_size, hyper, seed,
            record_history, variant,
        )
    finally:
        comm.close()
    worker_weights = [r[0] for r in results]
    center = results[0][1]
    history = results[0][2]
    assert center is not None
    return MpiEasgdResult(center=center, worker_weights=worker_weights, center_history=history)
