"""Original EASGD (Algorithm 1) — the paper's baseline.

Round-robin schedule: at iteration t only worker ``j = t mod G`` interacts
with the master. The master sends the center weight Wbar down, receives the
worker's local weight W_j back, the worker applies Eq 1 on its GPU, and the
CPU applies the single-worker Eq 2. All parameter traffic crosses the
CPU<->GPU link *per blob* (the pre-Section-5.2 unpacked scheme), which is
what makes this method communication-bound (Table 3: 87%).

Two timing variants, as in Table 3:
- ``overlapped=False`` -> "Original EASGD*": strictly serial parts.
- ``overlapped=True``  -> "Original EASGD": forward/backward hides under the
  CPU<->GPU parameter transfers; only the residue is visible compute.

The loop itself lives in :mod:`repro.engine`; this module contributes the
round-robin step strategy and its point-to-point communication model.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import BaseTrainer, TrainerConfig
from repro.cluster.cost import CostModel
from repro.cluster.platform import GpuPlatform
from repro.data.dataset import Dataset
from repro.engine.faults import SyncFaultTracker
from repro.engine.strategy import ClockStepStrategy, CommStrategy
from repro.faults import FaultLog, FaultPlan
from repro.nn.network import Network
from repro.optim.easgd import EASGDHyper, elastic_center_update_single, elastic_worker_update
from repro.trace.events import MASTER
from repro.trace.schedule import emit_p2p

__all__ = ["OriginalEASGDTrainer"]


class _RoundRobinComm(CommStrategy):
    """Per-blob CPU<->GPU point-to-point exchange with one worker per step."""

    def __init__(self, trainer: "OriginalEASGDTrainer") -> None:
        tr = trainer
        cfg = tr.config
        self.overlapped = tr.overlapped
        self.stage_t = tr.platform.stage_batch_time(tr.cost, cfg.batch_size)
        self.param_oneway = tr.platform.cpu_gpu_param_time(tr.cost, packed=tr.packed)
        self.gpu_upd_t = tr.platform.gpu_update_time(tr.cost)
        self.cpu_upd_t = tr.platform.cpu_update_time(tr.cost)
        # Lines 13 and 14 run on different devices (GPU_j vs CPU), so the
        # two weight updates overlap; only the GPU residue is visible.
        self.visible_gpu_upd = max(
            0.0, self.gpu_upd_t - cfg.overlap_efficiency * self.cpu_upd_t
        )
        self.plan_msgs = tr.platform.param_plan(tr.cost, packed=tr.packed)

    def charge(self, pipeline, t: int, j: int, fwdbwd: float) -> float:
        param_comm = 2.0 * self.param_oneway  # send Wbar down, fetch W_j up
        if self.overlapped:
            # The pass pipelines fully under the (longer) weight
            # transfers; only the part of compute that outlasts the
            # transfer remains visible (Table 3 measures 3% residue).
            visible_fwd = max(0.0, fwdbwd - param_comm)
        else:
            visible_fwd = fwdbwd
        breakdown = pipeline.breakdown
        breakdown.add("cpu-gpu data", self.stage_t)
        breakdown.add("cpu-gpu para", param_comm)
        breakdown.add("for/backward", visible_fwd)
        breakdown.add("gpu update", self.visible_gpu_upd)
        breakdown.add("cpu update", self.cpu_upd_t)
        return self.stage_t + param_comm + visible_fwd + self.visible_gpu_upd + self.cpu_upd_t

    def emit(self, trace, t: int, T: float, j: int, fwdbwd: float,
             visible_fwd: float) -> None:
        # Reconstruct the iteration's timeline: staging, then the two
        # CPU<->GPU transfers (compute hides under them when
        # overlapped), then the visible update residues.
        t_stage = T + self.stage_t
        t_down = t_stage + self.param_oneway
        t_up = t_down + self.param_oneway
        trace.span("staging", j, T, t_stage, op="cpu-gpu-data", iteration=t)
        emit_p2p(trace, MASTER, j, t_stage, t_down, op="round-robin",
                 nbytes=self.plan_msgs.total_bytes,
                 messages=self.plan_msgs.num_messages, tag=1, seq=t, iteration=t)
        emit_p2p(trace, j, MASTER, t_down, t_up, op="round-robin",
                 nbytes=self.plan_msgs.total_bytes,
                 messages=self.plan_msgs.num_messages, tag=2, seq=t, iteration=t)
        c0 = t_stage if self.overlapped else t_up
        trace.span("compute", j, c0, c0 + fwdbwd, op="fwd-bwd", iteration=t)
        u0 = t_up + visible_fwd
        trace.span("update", j, u0, u0 + self.visible_gpu_upd, op="gpu-update",
                   iteration=t)
        trace.span("update", MASTER, u0 + self.visible_gpu_upd,
                   u0 + self.visible_gpu_upd + self.cpu_upd_t, op="cpu-update",
                   iteration=t)


class _OriginalEasgdStep(ClockStepStrategy):
    """One round-robin iteration: single-worker exchange, Eq 1, Eq 2."""

    def __init__(self, trainer: "OriginalEASGDTrainer") -> None:
        self.trainer = trainer

    def begin(self, pipeline) -> None:
        tr = self.trainer
        g = self.g = tr.platform.num_gpus
        # Algorithm 1 lines 3-5: per-GPU local weights and the CPU center,
        # all copies of the same initialization.
        self.center = tr.net.get_params()
        self.workers: List[np.ndarray] = [self.center.copy() for _ in range(g)]
        self.samplers = [tr.make_sampler(("worker", j)) for j in range(g)]
        self.comm = _RoundRobinComm(tr)
        tr.make_trace(
            g,
            pattern="round-robin",
            packed=tr.packed,
            overlapped=tr.overlapped,
            messages_per_exchange=self.comm.plan_msgs.num_messages,
        )
        log = tr.fault_log = FaultLog()
        self.tracker = SyncFaultTracker(
            tr.faults, log, g, tr.name,
            restore=lambda k: self.workers[k].__setitem__(..., self.center),
        )

    def step(self, pipeline, t: int) -> float:
        tr = self.trainer
        live = self.tracker.prologue(pipeline, t)
        j = (t - 1) % self.g  # Algorithm 1 line 7 (0-based)
        # Round-robin over survivors: the master skips dead ranks
        # instead of blocking on a reply that will never come.
        while j not in live:
            j = (j + 1) % self.g

        # --- numerics -------------------------------------------------
        images, labels = self.samplers[j].next_batch()
        tr.net.set_params(self.workers[j])
        self.last_loss = tr.net.gradient(images, labels, tr.loss)
        w_before = self.workers[j].copy()  # W_j^t as fetched by the CPU (line 12)
        # line 13: GPU applies Eq 1 against the Wbar it was sent.
        elastic_worker_update(self.workers[j], tr.net.grads, self.center, tr.hyper)
        # line 14: CPU applies the single-worker Eq 2 with W_j^t.
        elastic_center_update_single(self.center, w_before, tr.hyper)

        # --- simulated time --------------------------------------------
        fwdbwd = tr.platform.fwdbwd_time(tr.cost, tr.config.batch_size, worker=j)
        if tr.faults is not None:
            fwdbwd *= tr.faults.slowdown(j, pipeline.sim_time)  # straggler inflation
        iter_time = self.comm.charge(pipeline, t, j, fwdbwd)
        if tr.trace is not None:
            visible_fwd = (max(0.0, fwdbwd - 2.0 * self.comm.param_oneway)
                           if tr.overlapped else fwdbwd)
            self.comm.emit(tr.trace, t, pipeline.sim_time, j, fwdbwd, visible_fwd)
        return iter_time

    def eval_params(self) -> np.ndarray:
        return self.center

    def state_dict(self) -> Dict:
        arrays = {"center": self.center}
        for j, w in enumerate(self.workers):
            arrays[f"worker-{j}"] = w
        return {
            "arrays": arrays,
            "meta": {
                "last_loss": self.last_loss,
                "samplers": [s.get_state() for s in self.samplers],
                "tracker": self.tracker.state_dict(),
            },
        }

    def load_state_dict(self, state: Dict) -> None:
        arrays, meta = state["arrays"], state["meta"]
        self.center[:] = arrays["center"]
        for j, w in enumerate(self.workers):
            w[:] = arrays[f"worker-{j}"]
        for sampler, st in zip(self.samplers, meta["samplers"]):
            sampler.set_state(st)
        self.last_loss = meta["last_loss"]
        self.tracker.load_state_dict(meta["tracker"])

    def extras(self) -> Dict[str, float]:
        if self.trainer.faults is None:
            return {}
        return {
            "degraded_rounds": float(self.tracker.degraded_rounds),
            "workers_rejoined": float(self.tracker.rejoined),
        }


class OriginalEASGDTrainer(BaseTrainer):
    """Algorithm 1 with real numerics and round-robin simulated timing."""

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        platform: GpuPlatform,
        config: TrainerConfig,
        cost_model: Optional[CostModel] = None,
        overlapped: bool = True,
        packed: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if faults is not None:
            faults.validate(platform.num_gpus)
        super().__init__(network, train_set, test_set, config, cost_model, faults=faults)
        self.platform = platform
        self.overlapped = overlapped
        self.packed = packed  # the original implementation sends per-blob
        self.name = "Original EASGD" if overlapped else "Original EASGD*"
        self.hyper = EASGDHyper(lr=config.lr, rho=config.rho, mu=config.mu)

    def make_step(self) -> _OriginalEasgdStep:
        return _OriginalEasgdStep(self)
