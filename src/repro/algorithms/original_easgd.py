"""Original EASGD (Algorithm 1) — the paper's baseline.

Round-robin schedule: at iteration t only worker ``j = t mod G`` interacts
with the master. The master sends the center weight Wbar down, receives the
worker's local weight W_j back, the worker applies Eq 1 on its GPU, and the
CPU applies the single-worker Eq 2. All parameter traffic crosses the
CPU<->GPU link *per blob* (the pre-Section-5.2 unpacked scheme), which is
what makes this method communication-bound (Table 3: 87%).

Two timing variants, as in Table 3:
- ``overlapped=False`` -> "Original EASGD*": strictly serial parts.
- ``overlapped=True``  -> "Original EASGD": forward/backward hides under the
  CPU<->GPU parameter transfers; only the residue is visible compute.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.algorithms.base import (
    BaseTrainer,
    RunResult,
    TimeBreakdown,
    TrainRecord,
    TrainerConfig,
)
from repro.cluster.cost import CostModel
from repro.cluster.platform import GpuPlatform
from repro.data.dataset import Dataset
from repro.faults import AllWorkersCrashedError, FaultLog, FaultPlan
from repro.nn.network import Network
from repro.optim.easgd import (
    EASGDHyper,
    elastic_center_update_single,
    elastic_worker_update,
)
from repro.trace.events import MASTER
from repro.trace.schedule import emit_p2p

__all__ = ["OriginalEASGDTrainer"]


class OriginalEASGDTrainer(BaseTrainer):
    """Algorithm 1 with real numerics and round-robin simulated timing."""

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        platform: GpuPlatform,
        config: TrainerConfig,
        cost_model: Optional[CostModel] = None,
        overlapped: bool = True,
        packed: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if faults is not None:
            faults.validate(platform.num_gpus)
        super().__init__(network, train_set, test_set, config, cost_model, faults=faults)
        self.platform = platform
        self.overlapped = overlapped
        self.packed = packed  # the original implementation sends per-blob
        self.name = "Original EASGD" if overlapped else "Original EASGD*"
        self.hyper = EASGDHyper(lr=config.lr, rho=config.rho, mu=config.mu)

    def train(self, iterations: int) -> RunResult:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        g = self.platform.num_gpus
        cfg = self.config

        # Algorithm 1 lines 3-5: per-GPU local weights and the CPU center,
        # all copies of the same initialization.
        center = self.net.get_params()
        workers: List[np.ndarray] = [center.copy() for _ in range(g)]
        samplers = [self.make_sampler(("worker", j)) for j in range(g)]

        breakdown = TimeBreakdown()
        records: List[TrainRecord] = []
        sim_time = 0.0
        last_loss = float("nan")

        # Per-iteration constant costs.
        stage_t = self.platform.stage_batch_time(self.cost, cfg.batch_size)
        param_oneway = self.platform.cpu_gpu_param_time(self.cost, packed=self.packed)
        gpu_upd_t = self.platform.gpu_update_time(self.cost)
        cpu_upd_t = self.platform.cpu_update_time(self.cost)

        plan_msgs = self.platform.param_plan(self.cost, packed=self.packed)
        trace = self.make_trace(
            g,
            pattern="round-robin",
            packed=self.packed,
            overlapped=self.overlapped,
            messages_per_exchange=plan_msgs.num_messages,
        )

        plan = self.faults
        log = self.fault_log = FaultLog()
        currently_dead: set = set()
        degraded_rounds = 0
        rejoined = 0

        for t in range(1, iterations + 1):
            j = (t - 1) % g  # Algorithm 1 line 7 (0-based)
            if plan is not None:
                for k in range(g):
                    if plan.is_dead(k, sim_time) and k not in currently_dead:
                        currently_dead.add(k)
                        log.record(plan.crash_time(k), "crash", f"worker {k}", "fail-stop")
                        if trace is not None:
                            trace.fault(k, sim_time, "crash", iteration=t)
                    elif not plan.is_dead(k, sim_time) and k in currently_dead:
                        currently_dead.discard(k)
                        workers[k][...] = center  # recovery: restore from center
                        rejoined += 1
                        log.record(sim_time, "rejoin", f"worker {k}", "re-pulled elastic center")
                        if trace is not None:
                            trace.fault(k, sim_time, "rejoin", iteration=t)
                if len(currently_dead) == g:
                    raise AllWorkersCrashedError(
                        f"all {g} workers crashed by t={sim_time:.4g}s "
                        f"(iteration {t}; fault log: {log.summary()})"
                    )
                # Round-robin over survivors: the master skips dead ranks
                # instead of blocking on a reply that will never come.
                while j in currently_dead:
                    j = (j + 1) % g
                if currently_dead:
                    degraded_rounds += 1
                    breakdown.mark_degraded()

            # --- numerics -------------------------------------------------
            images, labels = samplers[j].next_batch()
            self.net.set_params(workers[j])
            last_loss = self.net.gradient(images, labels, self.loss)
            w_before = workers[j].copy()  # W_j^t as fetched by the CPU (line 12)
            # line 13: GPU applies Eq 1 against the Wbar it was sent.
            elastic_worker_update(workers[j], self.net.grads, center, self.hyper)
            # line 14: CPU applies the single-worker Eq 2 with W_j^t.
            elastic_center_update_single(center, w_before, self.hyper)

            # --- simulated time --------------------------------------------
            fwdbwd = self.platform.fwdbwd_time(self.cost, cfg.batch_size, worker=j)
            if plan is not None:
                fwdbwd *= plan.slowdown(j, sim_time)  # straggler/stall inflation
            param_comm = 2.0 * param_oneway  # send Wbar down, fetch W_j up
            if self.overlapped:
                # The pass pipelines fully under the (longer) weight
                # transfers; only the part of compute that outlasts the
                # transfer remains visible (Table 3 measures 3% residue).
                visible_fwd = max(0.0, fwdbwd - param_comm)
            else:
                visible_fwd = fwdbwd
            # Lines 13 and 14 run on different devices (GPU_j vs CPU), so the
            # two weight updates overlap; only the GPU residue is visible.
            visible_gpu_upd = max(
                0.0, gpu_upd_t - cfg.overlap_efficiency * cpu_upd_t
            )
            breakdown.add("cpu-gpu data", stage_t)
            breakdown.add("cpu-gpu para", param_comm)
            breakdown.add("for/backward", visible_fwd)
            breakdown.add("gpu update", visible_gpu_upd)
            breakdown.add("cpu update", cpu_upd_t)

            if trace is not None:
                # Reconstruct the iteration's timeline: staging, then the two
                # CPU<->GPU transfers (compute hides under them when
                # overlapped), then the visible update residues.
                t_stage = sim_time + stage_t
                t_down = t_stage + param_oneway
                t_up = t_down + param_oneway
                trace.span("staging", j, sim_time, t_stage, op="cpu-gpu-data",
                           iteration=t)
                emit_p2p(trace, MASTER, j, t_stage, t_down, op="round-robin",
                         nbytes=plan_msgs.total_bytes,
                         messages=plan_msgs.num_messages, tag=1, seq=t, iteration=t)
                emit_p2p(trace, j, MASTER, t_down, t_up, op="round-robin",
                         nbytes=plan_msgs.total_bytes,
                         messages=plan_msgs.num_messages, tag=2, seq=t, iteration=t)
                c0 = t_stage if self.overlapped else t_up
                trace.span("compute", j, c0, c0 + fwdbwd, op="fwd-bwd", iteration=t)
                u0 = t_up + visible_fwd
                trace.span("update", j, u0, u0 + visible_gpu_upd, op="gpu-update",
                           iteration=t)
                trace.span("update", MASTER, u0 + visible_gpu_upd,
                           u0 + visible_gpu_upd + cpu_upd_t, op="cpu-update",
                           iteration=t)

            sim_time += stage_t + param_comm + visible_fwd + visible_gpu_upd + cpu_upd_t

            if t % cfg.eval_every == 0 or t == iterations:
                acc = self.evaluate_params(center)
                records.append(TrainRecord(t, sim_time, last_loss, acc))
                if self.should_stop(acc):
                    break

        extras = {}
        if plan is not None:
            extras = {
                "degraded_rounds": float(degraded_rounds),
                "workers_rejoined": float(rejoined),
            }
        final_acc = records[-1].test_accuracy if records else 0.0
        return RunResult(
            method=self.name,
            records=records,
            breakdown=breakdown,
            iterations=records[-1].iteration if records else 0,
            sim_time=sim_time,
            final_accuracy=final_acc,
            extras=extras,
            fault_log=log if plan is not None else None,
            trace=trace,
        )
