"""The parameter-server zoo over the rank runtimes (threads/processes).

The message-passing twins of the :mod:`repro.algorithms.ps_zoo` families.
Each is a deterministic rank program over
:func:`repro.comm.backend.make_communicator`, the same discipline as
:mod:`repro.algorithms.mpi_async_easgd`: rank 0 is the server holding the
center through the family's :class:`repro.engine.ps.CenterStore`, ranks
1..P-1 are workers that run ``local_steps`` batches per exchange and fold
the reply with the family's :class:`~repro.engine.ps.WorkerRule`. The
server serves workers in round-robin order, so the interleaving — and
therefore the final weights — is bit-identical across backends
(``threads`` vs ``processes``) and transports (``queue`` vs ``shm``).

Gossip has no server: all P ranks are peers, and each round they pair up
by the deterministic tournament schedule (:func:`repro.comm.topology.
gossip_pairs`) and average pairwise via an explicit send/recv exchange
(lower rank sends first, higher rank receives first — deadlock-free under
any buffering).

The bounded family threads a :class:`~repro.engine.ps.StalenessBound`
through the server: staleness is tracked with real master versions, and a
rejected worker's local progress is discarded in favour of a center
resync — the same semantics the simulated trainer implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.comm.backend import make_communicator
from repro.comm.runtime import RankContextBase
from repro.comm.topology import gossip_pairs
from repro.data.dataset import Dataset
from repro.data.loader import BatchSampler
from repro.engine.ps import (
    AdagServerStore,
    DeltaServerStore,
    ElasticCenterStore,
    ElasticPullWorkerRule,
    ElasticWorkerRule,
    StalenessBound,
)
from repro.engine.rank_loop import rank_steps
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Network
from repro.optim.easgd import EASGDHyper

__all__ = ["PS_RUNNER_METHODS", "MpiPsResult", "run_mpi_ps", "run_mpi_gossip"]

#: Wire tags for the request/reply pair (clear of the collective strides).
TAG_REQ = 11  # worker -> server: family payload
TAG_REP = 12  # server -> worker: family reply
TAG_GOSSIP = 13  # peer <-> peer pairwise exchange

#: Centered families this runner implements (gossip runs peer-to-peer).
PS_RUNNER_METHODS = ("downpour", "adag", "eamsgd", "bounded-async-easgd")


@dataclass
class MpiPsResult:
    """Outcome of one message-passing parameter-server-zoo run."""

    center: np.ndarray  # final center (gossip: the consensus mean)
    worker_weights: List[np.ndarray]  # final local weights per worker
    mean_losses: List[float]  # per-round batch loss averaged over workers
    extras: Dict[str, float] = field(default_factory=dict)


def _server_main(ctx: RankContextBase, method: str, center: np.ndarray,
                 iterations: int, hyper: EASGDHyper, tau: Optional[int]):
    """Rank 0: serve one exchange per worker per round, round-robin."""
    workers = ctx.size - 1
    if method == "downpour":
        store = DeltaServerStore().bind(center)
    elif method == "adag":
        store = AdagServerStore(hyper.lr, workers).bind(center)
    else:  # eamsgd / bounded-async-easgd share the elastic fold
        store = ElasticCenterStore(hyper).bind(center)
    bound = None
    if method == "bounded-async-easgd":
        bound = StalenessBound(2 * max(workers - 1, 1) if tau is None else tau)
    version = 0
    worker_version = [0] * (workers + 1)
    mean_losses: List[float] = []
    for _t in rank_steps(ctx, iterations):
        loss_sum = 0.0
        for j in range(1, ctx.size):
            batch_loss, payload = ctx.recv(source=j, tag=TAG_REQ)
            loss_sum += float(batch_loss)
            if bound is not None:
                verdict, _scale = bound.admit(version - worker_version[j])
                if verdict == "reject":
                    # Discard the contribution; the worker resyncs from the
                    # untouched center. No version bump — nothing landed.
                    worker_version[j] = version
                    ctx.send(("reject", center.copy()), dest=j, tag=TAG_REP)
                    continue
            if method in ("eamsgd", "bounded-async-easgd"):
                # Elastic exchange: reply the pre-fold center, then fold.
                # The payload may alias the worker's arena under the thread
                # backend, so fold before replying.
                reply = store.exchange(payload)
            else:
                # Delta/accumulated-gradient fold; reply the fresh center.
                store.push(payload)
                reply = center.copy()
            version += 1
            worker_version[j] = version
            ctx.send(("apply", reply), dest=j, tag=TAG_REP)
        mean_losses.append(loss_sum / workers)
    extras = bound.extras() if bound is not None else {}
    return center, mean_losses, extras


def _worker_main(ctx: RankContextBase, method: str, template: Network,
                 train_set: Dataset, iterations: int, batch_size: int,
                 local_steps: int, hyper: EASGDHyper, seed: int):
    """Ranks 1..P-1: local steps per exchange, family-specific payload."""
    net = template.clone(name=f"ps-rank{ctx.rank}")
    local = template.get_params()
    anchor = local.copy() if method == "downpour" else None
    acc = np.zeros_like(local) if method == "adag" else None
    velocity = np.zeros_like(local) if method == "eamsgd" else None
    elastic_rule = ElasticWorkerRule()
    pull_rule = ElasticPullWorkerRule()
    sampler = BatchSampler(train_set, batch_size, seed, name=("worker", ctx.rank))
    loss = SoftmaxCrossEntropy()

    for _t in rank_steps(ctx, iterations):
        batch_loss = 0.0
        for _s in range(local_steps):
            images, labels = sampler.next_batch()
            net.set_params(local)
            batch_loss = net.gradient(images, labels, loss)
            if method == "downpour":
                local -= hyper.lr * net.grads
            elif method == "adag":
                acc += net.grads
                local -= hyper.lr * net.grads
            elif method == "eamsgd":
                velocity *= hyper.mu
                velocity -= hyper.lr * net.grads
                local += velocity
            else:  # bounded-async-easgd: one gradient per exchange (Eq 1)
                break
        grad = net.grads.copy()

        if method == "downpour":
            payload = local - anchor
        elif method == "adag":
            payload = acc.copy()
        else:
            payload = local.copy()
        ctx.send((np.float32(batch_loss), payload), dest=0, tag=TAG_REQ)
        verdict, reply = ctx.recv(source=0, tag=TAG_REP)

        if verdict == "reject":
            local[...] = reply  # resync; local progress is discarded
            if velocity is not None:
                velocity[...] = 0.0
        elif method == "downpour":
            local[...] = reply
            anchor[...] = reply
        elif method == "adag":
            local[...] = reply
            acc[...] = 0.0
        elif method == "eamsgd":
            pull_rule.apply(local, reply, hyper)
        else:  # bounded-async-easgd
            elastic_rule.apply(local, grad, reply, hyper)
    return local


def _rank_main(ctx: RankContextBase, method, template, train_set, iterations,
               batch_size, local_steps, hyper, seed, tau):
    if ctx.rank == 0:
        center = template.get_params()
        return _server_main(ctx, method, center, iterations, hyper, tau)
    return _worker_main(ctx, method, template, train_set, iterations,
                        batch_size, local_steps, hyper, seed)


def run_mpi_ps(
    method: str,
    network: Network,
    train_set: Dataset,
    ranks: int,
    iterations: int,
    batch_size: int = 32,
    local_steps: int = 4,
    lr: float = 0.05,
    rho: float = 2.0,
    mu: float = 0.9,
    tau: Optional[int] = None,
    seed: int = 0,
    timeout: float = 120.0,
    backend: str = "threads",
    transport: Optional[str] = None,
    pool: Optional[Any] = None,
) -> MpiPsResult:
    """Run one centered zoo family across ``ranks`` real threads/processes.

    ``ranks`` counts the server: ``ranks - 1`` workers train. The server's
    round-robin service makes the schedule deterministic, so the returned
    weights are bit-identical across backends and transports for a fixed
    seed.
    """
    if method not in PS_RUNNER_METHODS:
        raise ValueError(f"method must be one of {PS_RUNNER_METHODS}, got {method!r}")
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if ranks < 2:
        raise ValueError("need at least 2 ranks (one server, one worker)")
    if local_steps < 1:
        raise ValueError("local_steps must be >= 1")
    hyper = EASGDHyper(lr=lr, rho=rho, mu=mu)

    comm = make_communicator(ranks, backend=backend, timeout=timeout,
                             transport=transport, pool=pool)
    try:
        results = comm.run(
            _rank_main, method, network, train_set, iterations, batch_size,
            local_steps, hyper, seed, tau,
        )
    finally:
        comm.close()
    center, mean_losses, extras = results[0]
    return MpiPsResult(
        center=center,
        worker_weights=list(results[1:]),
        mean_losses=mean_losses,
        extras=extras,
    )


def _gossip_rank_main(ctx: RankContextBase, template: Network,
                      train_set: Dataset, iterations: int, batch_size: int,
                      lr: float, seed: int):
    """All ranks are peers: local SGD step, then tournament-pair averaging."""
    net = template.clone(name=f"gossip-rank{ctx.rank}")
    local = template.get_params()
    sampler = BatchSampler(train_set, batch_size, seed, name=("worker", ctx.rank))
    loss = SoftmaxCrossEntropy()
    losses: List[float] = []

    for t in rank_steps(ctx, iterations):
        images, labels = sampler.next_batch()
        net.set_params(local)
        losses.append(float(net.gradient(images, labels, loss)))
        local -= lr * net.grads

        for a, b in gossip_pairs(t, ctx.size):
            if ctx.rank == a:  # lower rank sends first: deadlock-free
                ctx.send(local.copy(), dest=b, tag=TAG_GOSSIP)
                peer_w = ctx.recv(source=b, tag=TAG_GOSSIP)
            elif ctx.rank == b:
                peer_w = ctx.recv(source=a, tag=TAG_GOSSIP)
                ctx.send(local.copy(), dest=a, tag=TAG_GOSSIP)
            else:
                continue
            local[...] = 0.5 * (local + peer_w)
    return local, losses


def run_mpi_gossip(
    network: Network,
    train_set: Dataset,
    ranks: int,
    iterations: int,
    batch_size: int = 32,
    lr: float = 0.05,
    seed: int = 0,
    timeout: float = 120.0,
    backend: str = "threads",
    transport: Optional[str] = None,
    pool: Optional[Any] = None,
) -> MpiPsResult:
    """Run decentralized gossip SGD across ``ranks`` real threads/processes.

    All ranks train; the returned center is the consensus mean of the
    final replicas. The tournament pairing schedule is deterministic, so
    the result is bit-identical across backends and transports.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if ranks < 2:
        raise ValueError("need at least 2 ranks")
    comm = make_communicator(ranks, backend=backend, timeout=timeout,
                             transport=transport, pool=pool)
    try:
        results = comm.run(
            _gossip_rank_main, network, train_set, iterations, batch_size, lr, seed,
        )
    finally:
        comm.close()
    replicas = [r[0] for r in results]
    per_rank_losses = [r[1] for r in results]
    mean_losses = [
        float(np.mean([ranklosses[t] for ranklosses in per_rank_losses]))
        for t in range(iterations)
    ]
    consensus = np.mean(np.stack(replicas, axis=0), axis=0)
    return MpiPsResult(
        center=consensus,
        worker_weights=replicas,
        mean_losses=mean_losses,
    )
