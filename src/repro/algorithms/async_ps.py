"""Asynchronous parameter-server trainers (Sections 3.1, 3.2, 5.1).

Six methods share one discrete-event simulation; they differ along two
axes — update rule and master service discipline:

=================  ==================  =============================
method             master service      update rule
=================  ==================  =============================
Async SGD          FCFS with a lock    W <- W - eta dW (master)
Async MSGD         FCFS with a lock    momentum on the master
Hogwild SGD        lock-free           W <- W - eta dW (master)
Async EASGD        FCFS with a lock    Eq 2 (master), Eq 1 (worker)
Async MEASGD       FCFS with a lock    Eq 2 (master), Eqs 5-6 (worker)
Hogwild EASGD      lock-free           Eq 2 (master), Eq 1 (worker)
=================  ==================  =============================

The numerics of each family are expressed through the parameter-server
protocol layer (:mod:`repro.engine.ps`): a :class:`CenterStore` bound to
the master vector carries the server-side fold, a :class:`WorkerRule`
the worker-side reply fold. The same seam hosts the classic
parameter-server zoo in :mod:`repro.algorithms.ps_zoo` (DOWNPOUR, ADAG,
EAMSGD, staleness-bounded EASGD) — those subclasses override the
store/rule factories, the per-exchange local compute
(:meth:`_AsyncPSBase._local_compute`, ``batches_per_exchange`` local
batches per master exchange), and the staleness admission hook
(:meth:`_AsyncPSBase._admit`, backed by
:class:`repro.engine.ps.StalenessBound`).

Timing structure (the paper's design point in Section 5.1): an SGD worker
must *wait* for the master's reply before it can compute (its gradient is
taken at the weights the master returns), so its cycle is strictly serial.
An EASGD worker computes on its own local weights, so its forward/backward
pass overlaps the master exchange; only the elastic update (Eq 1) needs the
returned Wbar. Lock-free (Hogwild) service removes the master's queueing
delay. Events are processed in arrival order with deterministic
tie-breaking, so runs are reproducible for a fixed seed.

The event loop is driven by :class:`repro.engine.StepPipeline` through
the family's :class:`~repro.engine.EventStepStrategy`: only *some* events
complete a logical step (a worker-master interaction); rejoins, messages
from dead workers, dropped/retransmitted messages, and staleness-rejected
contributions merely mutate the simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import BaseTrainer, TrainerConfig
from repro.cluster.cost import CostModel
from repro.cluster.platform import GpuPlatform
from repro.cluster.simclock import EventQueue
from repro.data.dataset import Dataset
from repro.engine.ps import (
    CenterStore,
    ElasticCenterStore,
    ElasticMomentumWorkerRule,
    ElasticWorkerRule,
    FreshPullWorkerRule,
    SgdServerStore,
    WorkerRule,
)
from repro.engine.strategy import EventStepStrategy
from repro.faults import AllWorkersCrashedError, FaultLog, FaultPlan
from repro.nn.network import Network
from repro.optim.easgd import EASGDHyper
from repro.trace.events import MASTER

__all__ = [
    "AsyncSGDTrainer",
    "AsyncMSGDTrainer",
    "HogwildSGDTrainer",
    "AsyncEASGDTrainer",
    "AsyncMEASGDTrainer",
    "HogwildEASGDTrainer",
]


class _AsyncPSStep(EventStepStrategy):
    """The parameter-server discrete-event simulation, one event per advance."""

    def __init__(self, trainer: "_AsyncPSBase") -> None:
        self.trainer = trainer

    def begin(self, pipeline) -> None:
        tr = self.trainer
        g = self.g = tr.platform.num_gpus
        cfg = tr.config

        tr._init_states(g, tr.net.get_params())
        self.samplers = [tr.make_sampler(("worker", j)) for j in range(g)]

        #: Local batches per master exchange (1 for the per-step families;
        #: DOWNPOUR/ADAG/EAMSGD run several between pushes).
        self.batches = tr.batches_per_exchange
        self.stage_t = tr.platform.stage_batch_time(tr.cost, cfg.batch_size)
        self.oneway_t = tr.platform.cpu_gpu_param_time(tr.cost, packed=tr.packed)
        self.service_t = tr.platform.cpu_update_time(tr.cost)
        self.local_upd_t = tr.platform.gpu_update_time(tr.cost) if tr.elastic else 0.0

        plan_msgs = tr.platform.param_plan(tr.cost, packed=tr.packed)
        self.nb = plan_msgs.total_bytes
        tr.make_trace(
            g,
            pattern="ps",
            lock_free=tr.lock_free,
            elastic=tr.elastic,
            packed=tr.packed,
            messages_per_exchange=1,
            **tr._trace_meta(),
        )
        #: Request channels sent but not yet consumed/accounted; whatever
        #: is still here when the run ends becomes a "lost" fault event so
        #: conservation holds for truncated runs.
        self.inflight: set = set()

        plan = tr.faults
        self.log = tr.fault_log = FaultLog()
        self.queue = EventQueue()
        self.send_seq = [0] * g  # per-worker message sequence numbers
        self.retry_backoff = 2.0 * max(self.oneway_t, 1e-9)
        # Heartbeat-timeout eviction policy: a worker the master has not
        # heard from for ~25 healthy cycles is declared dead. The policy
        # only *detects* — dead workers already contribute nothing — but it
        # is what turns a silent loss into a logged, observable eviction.
        fwdbwd_base = tr.platform.fwdbwd_time(
            tr.cost, cfg.batch_size, worker=0, jittered=False
        )
        self.heartbeat = tr.heartbeat_timeout
        if self.heartbeat is None:
            self.heartbeat = 25.0 * (
                self.batches * (self.stage_t + fwdbwd_base)
                + 2.0 * self.oneway_t + self.service_t
            )

        self.master_free = 0.0
        self.waiting_total = 0.0
        self.dropped = 0
        self.msg_dropped = 0
        self.degraded_iters = 0
        self.rejoined = 0
        self.last_seen = [0.0] * g
        self.crash_logged: set = set()
        self.evicted: set = set()
        # Staleness instrumentation: how many master updates landed between
        # a worker's last sync and the application of its contribution —
        # the quantity asynchronous convergence analyses bound. The sums
        # cover *applied* updates; rejected/clipped admissions are counted
        # separately (stale_rejects/stale_clips and the trainer's bound).
        self.master_version = 0
        self.worker_version = [0] * g
        self.staleness_sum = 0
        self.staleness_max = 0
        self.stale_rejects = 0
        self.stale_clips = 0
        self.completed = 0
        self._breakdown = pipeline.breakdown

        for j in range(g):
            self._launch_cycle(j, 0.0)
        # Crashed workers with a scheduled rejoin re-enter via rejoin events.
        if plan is not None:
            for j in range(g):
                rejoin_at = plan.rejoin_time(j)
                if rejoin_at is not None:
                    self.queue.push(rejoin_at, ("rejoin", j))

    def _launch_cycle(self, j: int, start: float) -> None:
        """Schedule worker j's next master-arrival event."""
        tr = self.trainer
        plan = tr.faults
        trace = tr.trace
        fwdbwd = tr.platform.fwdbwd_time(tr.cost, tr.config.batch_size, worker=j)
        if plan is not None:
            fwdbwd *= plan.slowdown(j, start)  # straggler/stall inflation
        # Multi-batch families stage and compute batches_per_exchange times
        # per cycle; n == 1 reproduces the per-step timing exactly.
        stage_total = self.stage_t * self.batches
        fwd_total = fwdbwd * self.batches
        compute_done = start + stage_total + fwd_total
        if tr.elastic:
            # EASGD: the send does not wait for the pass (overlap).
            arrival = start + self.oneway_t
        else:
            # SGD: the gradient is what gets sent; pass first.
            arrival = compute_done + self.oneway_t
        seq = self.send_seq[j]
        self.send_seq[j] += 1
        delayed = False
        if plan is not None:
            lag = plan.delay_seconds(j, "master", 0, seq)
            if lag > 0.0:
                self.log.record(arrival, "delay", f"worker {j} -> master",
                                f"+{lag:.4g}s seq={seq}")
                arrival += lag
                delayed = True
        if trace is not None:
            trace.span("staging", j, start, start + stage_total, op="cpu-gpu-data")
            trace.span("compute", j, start + stage_total, compute_done, op="fwd-bwd")
            send_t0 = start if tr.elastic else compute_done
            trace.send(j, MASTER, send_t0, arrival, tag=0, nbytes=self.nb, seq=seq,
                       op="ps-request")
            self.inflight.add((j, seq))
            if delayed:
                trace.fault(j, arrival, "delay", peer=MASTER, seq=seq)
        self.queue.push(arrival, ("arrival", j, compute_done, fwd_total, seq, 0))

    # -- the event loop hooks --------------------------------------------------
    def pending(self) -> bool:
        return bool(self.queue)

    def advance(self, pipeline, t_next: int) -> bool:
        tr = self.trainer
        g = self.g
        plan = tr.faults
        trace = tr.trace
        log = self.log
        breakdown = pipeline.breakdown

        event = self.queue.pop()
        now = event.time
        if plan is not None:
            # Master-side failure detection: log crashes as they take
            # effect and evict workers silent for longer than the
            # heartbeat timeout.
            for k in range(g):
                if k in self.crash_logged or not plan.is_dead(k, now):
                    continue
                self.crash_logged.add(k)
                log.record(plan.crash_time(k), "crash", f"worker {k}", "fail-stop")
                if trace is not None:
                    trace.fault(k, plan.crash_time(k), "crash")
            for k in range(g):
                if k in self.evicted or not plan.is_dead(k, now):
                    continue
                if now - self.last_seen[k] > self.heartbeat:
                    self.evicted.add(k)
                    log.record(
                        now, "evict", f"worker {k}",
                        f"no heartbeat for > {self.heartbeat:.4g}s",
                    )
                    if trace is not None:
                        trace.fault(k, now, "evict")
        if event.payload[0] == "rejoin":
            j = event.payload[1]
            # Recovery: the worker restores by re-pulling the elastic
            # center (checkpoint = the master's Wbar), resetting its
            # velocity and staleness bookkeeping, then resumes cycling.
            tr._resync(j)
            self.worker_version[j] = self.master_version
            self.evicted.discard(j)
            self.last_seen[j] = now
            self.rejoined += 1
            log.record(now, "rejoin", f"worker {j}", "re-pulled elastic center")
            if trace is not None:
                trace.fault(j, now, "rejoin")
            self._launch_cycle(j, now)
            return False
        _, j, compute_done, fwdbwd, seq, attempt = event.payload
        arrival = now
        if plan is not None and plan.is_dead(j, arrival):
            self.dropped += 1  # fail-stop: the message never arrives
            if trace is not None:
                trace.fault(j, arrival, "dead", peer=MASTER, seq=seq)
                self.inflight.discard((j, seq))
            return False
        if plan is not None and plan.should_drop(j, "master", 0, seq, attempt):
            # Transient message loss: the worker retransmits with
            # exponential backoff; after max_send_retries it goes
            # silent (and will be evicted by the heartbeat policy).
            self.msg_dropped += 1
            log.record(arrival, "drop", f"worker {j} -> master",
                       f"seq={seq} attempt={attempt}")
            if trace is not None:
                trace.fault(j, arrival, "drop", peer=MASTER, seq=seq)
            if attempt + 1 > tr.max_send_retries:
                log.record(
                    arrival, "give-up", f"worker {j}",
                    f"seq={seq}: still dropped after {attempt + 1} attempts",
                )
                if trace is not None:
                    trace.fault(j, arrival, "give-up", peer=MASTER, seq=seq)
                    self.inflight.discard((j, seq))
                return False
            backoff = self.retry_backoff * (2 ** min(attempt, 6))
            breakdown.add("cpu-gpu para", self.oneway_t)  # the retransmission
            self.queue.push(
                arrival + backoff, ("arrival", j, compute_done, fwdbwd, seq, attempt + 1)
            )
            return False
        self.last_seen[j] = arrival
        if plan is not None and any(plan.is_dead(k, arrival) for k in range(g)):
            self.degraded_iters += 1
            breakdown.mark_degraded()

        if tr.lock_free:
            service_start = arrival
        else:
            service_start = max(arrival, self.master_free)
        service_done = service_start + self.service_t
        if not tr.lock_free:
            self.master_free = service_done
        self.waiting_total += service_start - arrival
        reply_at = service_done + self.oneway_t
        if tr.elastic:
            resume = max(reply_at, compute_done) + self.local_upd_t
        else:
            resume = reply_at

        # --- numerics: local pass(es) at the worker's current weights ---
        self.last_loss = tr._local_compute(j, self.samplers[j])
        staleness = self.master_version - self.worker_version[j]
        verdict, scale = tr._admit(staleness)
        if verdict == "reject":
            # Staler than the bound: the contribution is discarded and
            # the worker resyncs from the center — the local progress is
            # the price of the hard staleness guarantee. The master still
            # spent a service slot inspecting the request, so the event
            # charges like a served one but completes no step.
            tr._resync(j)
            self.worker_version[j] = self.master_version
            self.stale_rejects += 1
            pipeline.sim_time = max(pipeline.sim_time, service_done)
            if trace is not None:
                self.inflight.discard((j, seq))
                trace.recv(MASTER, j, arrival, service_start, tag=0, nbytes=self.nb,
                           seq=seq, op="ps-request")
                trace.span("service", MASTER, service_start, service_done,
                           op="ps-reject", value=arrival)
                trace.send(MASTER, j, service_done, reply_at, tag=1, nbytes=self.nb,
                           seq=seq, op="ps-reply")
                trace.recv(j, MASTER, reply_at, reply_at, tag=1, nbytes=self.nb,
                           seq=seq, op="ps-reply")
                trace.fault(j, service_done, "stale-reject", peer=MASTER, seq=seq)
            self._launch_cycle(j, resume)
            breakdown.add("cpu-gpu data", self.stage_t * self.batches)
            breakdown.add("cpu-gpu para", 2.0 * self.oneway_t)
            breakdown.add("for/backward", fwdbwd)
            breakdown.add("cpu update", self.service_t)
            if tr.elastic:
                breakdown.add("gpu update", self.local_upd_t)
            return False
        if verdict == "clip":
            self.stale_clips += 1
        self.staleness_sum += staleness
        self.staleness_max = max(self.staleness_max, staleness)
        tr._interaction(j, tr.net.grads, scale)
        self.master_version += 1
        self.worker_version[j] = self.master_version

        # --- bookkeeping -----------------------------------------------
        t = t_next
        self.completed = t
        pipeline.sim_time = max(pipeline.sim_time, service_done)

        if trace is not None:
            self.inflight.discard((j, seq))
            trace.recv(MASTER, j, arrival, service_start, tag=0, nbytes=self.nb,
                       seq=seq, op="ps-request", iteration=t)
            trace.span("service", MASTER, service_start, service_done,
                       op="ps-serve", iteration=t, value=arrival)
            trace.send(MASTER, j, service_done, reply_at, tag=1, nbytes=self.nb,
                       seq=seq, op="ps-reply", iteration=t)
            trace.recv(j, MASTER, reply_at, reply_at, tag=1, nbytes=self.nb,
                       seq=seq, op="ps-reply", iteration=t)
            if tr.update_op is not None:
                u0 = max(reply_at, compute_done)
                trace.span("update", j, u0, u0 + self.local_upd_t,
                           op=tr.update_op, iteration=t,
                           value=float(staleness))

        self._launch_cycle(j, resume)

        breakdown.add("cpu-gpu data", self.stage_t * self.batches)
        breakdown.add("cpu-gpu para", 2.0 * self.oneway_t)
        breakdown.add("for/backward", fwdbwd)
        breakdown.add("cpu update", self.service_t)
        if tr.elastic:
            breakdown.add("gpu update", self.local_upd_t)
        return True

    def on_drained(self, pipeline, t: int) -> None:
        if t == 0:
            # The queue drained before a single update was applied — every
            # worker crashed at (effectively) time zero. An empty run is a
            # setup error, not a data point.
            raise AllWorkersCrashedError(
                f"all {self.g} workers crashed before any master update was "
                f"applied (fault log: {self.log.summary()})"
            )

    def on_complete(self, pipeline, t: int) -> None:
        trace = self.trainer.trace
        if trace is not None:
            # Requests still in flight when the run ended never reached the
            # master; account for them so conservation checks stay true.
            for src, seq_lost in sorted(self.inflight):
                trace.fault(src, pipeline.sim_time, "lost", peer=MASTER, seq=seq_lost)

    def eval_params(self) -> np.ndarray:
        return self.trainer._eval_vector()

    def state_dict(self) -> Dict:
        tr = self.trainer
        arrays = {"master": tr.master, "master-v": tr.master_v}
        for j in range(self.g):
            arrays[f"worker-w-{j}"] = tr.worker_w[j]
            arrays[f"worker-v-{j}"] = tr.worker_v[j]
        arrays.update(tr._family_arrays())
        # Sets serialize sorted: their iteration order is insertion
        # history, which a resumed process must not inherit implicitly.
        meta = {
            "last_loss": self.last_loss,
            "samplers": [s.get_state() for s in self.samplers],
            "queue": self.queue.getstate(),
            "send_seq": list(self.send_seq),
            "inflight": sorted(self.inflight),
            "master_free": self.master_free,
            "waiting_total": self.waiting_total,
            "dropped": self.dropped,
            "msg_dropped": self.msg_dropped,
            "degraded_iters": self.degraded_iters,
            "rejoined": self.rejoined,
            "last_seen": list(self.last_seen),
            "crash_logged": sorted(self.crash_logged),
            "evicted": sorted(self.evicted),
            "master_version": self.master_version,
            "worker_version": list(self.worker_version),
            "staleness_sum": self.staleness_sum,
            "staleness_max": self.staleness_max,
            "stale_rejects": self.stale_rejects,
            "stale_clips": self.stale_clips,
            "family": tr._family_state(),
            "completed": self.completed,
        }
        return {"arrays": arrays, "meta": meta}

    def load_state_dict(self, state: Dict) -> None:
        tr = self.trainer
        arrays, meta = state["arrays"], state["meta"]
        tr.master[...] = arrays["master"]
        tr.master_v[...] = arrays["master-v"]
        for j in range(self.g):
            tr.worker_w[j][...] = arrays[f"worker-w-{j}"]
            tr.worker_v[j][...] = arrays[f"worker-v-{j}"]
        for name, arr in tr._family_arrays().items():
            arr[...] = arrays[name]
        for sampler, st in zip(self.samplers, meta["samplers"]):
            sampler.set_state(st)
        # The queue replaces everything begin() scheduled (initial cycles,
        # rejoin events): the saved stream already contains their successors.
        self.queue.setstate(meta["queue"])
        self.last_loss = meta["last_loss"]
        self.send_seq = [int(s) for s in meta["send_seq"]]
        self.inflight = {tuple(x) for x in meta["inflight"]}
        self.master_free = float(meta["master_free"])
        self.waiting_total = float(meta["waiting_total"])
        self.dropped = int(meta["dropped"])
        self.msg_dropped = int(meta["msg_dropped"])
        self.degraded_iters = int(meta["degraded_iters"])
        self.rejoined = int(meta["rejoined"])
        self.last_seen = [float(x) for x in meta["last_seen"]]
        self.crash_logged = set(meta["crash_logged"])
        self.evicted = set(meta["evicted"])
        self.master_version = int(meta["master_version"])
        self.worker_version = [int(v) for v in meta["worker_version"]]
        self.staleness_sum = int(meta["staleness_sum"])
        self.staleness_max = int(meta["staleness_max"])
        self.stale_rejects = int(meta.get("stale_rejects", 0))
        self.stale_clips = int(meta.get("stale_clips", 0))
        tr._load_family_state(meta.get("family", {}))
        self.completed = int(meta["completed"])

    def extras(self) -> Dict[str, float]:
        t = self.completed
        extras = {
            "master_wait_seconds": self.waiting_total,
            "failed_worker_events_dropped": float(self.dropped),
            "mean_staleness": self.staleness_sum / t if t else 0.0,
            "max_staleness": float(self.staleness_max),
        }
        extras.update(self.trainer._family_extras())
        if self.trainer.faults is not None:
            extras.update(
                {
                    "messages_dropped": float(self.msg_dropped),
                    "workers_evicted": float(len(self.evicted)),
                    "workers_rejoined": float(self.rejoined),
                    "degraded_iterations": float(self.degraded_iters),
                }
            )
        return extras


class _AsyncPSBase(BaseTrainer):
    """Shared DES machinery; subclasses pick the store/rule and flags."""

    name = "async-base"
    lock_free = False  # Hogwild variants override
    elastic = False  # EASGD variants override (enables compute/comm overlap)
    momentum = False
    packed = False  # existing async implementations send per-blob
    #: Local batches a worker runs between master exchanges (DOWNPOUR's
    #: push cadence, ADAG's accumulation window, EAMSGD's comm period).
    batches_per_exchange = 1
    #: Op stamped on the per-exchange "update" span carrying the applied
    #: staleness as its value; None suppresses the span (plain async SGD).
    update_op: Optional[str] = None

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        platform: GpuPlatform,
        config: TrainerConfig,
        cost_model: Optional[CostModel] = None,
        failures: Optional[Dict[int, float]] = None,
        faults: Optional[FaultPlan] = None,
        heartbeat_timeout: Optional[float] = None,
        max_send_retries: int = 20,
    ) -> None:
        """``faults`` is the full fault schedule (crash/rejoin, straggler,
        stall, message drop/delay — see :class:`repro.faults.FaultPlan`).
        This is the fault model behind the paper's "high fault-tolerance
        requirement on cloud systems" motivation — asynchronous masters
        keep making progress with the surviving workers, evict silent ones
        after ``heartbeat_timeout`` simulated seconds (default: auto-scaled
        to ~25 worker cycles), and let crashed workers rejoin by re-pulling
        the elastic center.

        ``failures`` is the legacy fail-stop shorthand: a map from worker
        index to the simulated instant it dies. It is converted to a
        crash-only :class:`FaultPlan`; passing both is an error."""
        self.failures: Dict[int, float] = dict(failures or {})
        if self.failures:
            if faults is not None:
                raise ValueError("pass either failures= (legacy) or faults=, not both")
            plan = FaultPlan(seed=config.seed)
            for worker, when in self.failures.items():
                if not isinstance(worker, int) or isinstance(worker, bool) or not (
                    0 <= worker < platform.num_gpus
                ):
                    raise ValueError(
                        f"failures[{worker!r}]: worker index must be in "
                        f"[0, {platform.num_gpus})"
                    )
                if when <= 0:
                    raise ValueError(
                        f"failures[{worker}] = {when!r}: failure time must be a "
                        "positive simulated instant"
                    )
                plan.crash(worker, when)
            faults = plan
        if faults is not None:
            faults.validate(platform.num_gpus)
        super().__init__(network, train_set, test_set, config, cost_model, faults=faults)
        self.platform = platform
        self.hyper = EASGDHyper(lr=config.lr, rho=config.rho, mu=config.mu)
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        self.heartbeat_timeout = heartbeat_timeout
        if max_send_retries < 0:
            raise ValueError("max_send_retries must be non-negative")
        self.max_send_retries = max_send_retries

    # -- numerics hooks ------------------------------------------------------
    def _init_states(self, g: int, init: np.ndarray) -> None:
        """Master weights, per-worker replicas/velocities, store + rule."""
        self.master = init.copy()
        self.worker_w: List[np.ndarray] = [init.copy() for _ in range(g)]
        self.worker_v: List[np.ndarray] = [np.zeros_like(init) for _ in range(g)]
        self.master_v = np.zeros_like(init)
        self.store = self._make_store(g)
        self.rule = self._make_rule()

    def _make_store(self, g: int) -> CenterStore:
        """The family's server-side store, bound to the master vector."""
        raise NotImplementedError

    def _make_rule(self) -> WorkerRule:
        """The family's worker-side reply-fold rule."""
        raise NotImplementedError

    def _local_compute(self, j: int, sampler) -> float:
        """Worker j's compute between exchanges; returns the last batch loss.

        The default is one gradient at the worker's current local weights
        (left in ``self.net.grads`` for :meth:`_interaction`); multi-batch
        families override and run ``batches_per_exchange`` local steps.
        """
        images, labels = sampler.next_batch()
        self.net.set_params(self.worker_w[j])
        return self.net.gradient(images, labels, self.loss)

    def _admit(self, staleness: int) -> Tuple[str, float]:
        """Staleness admission; the unbounded families apply everything."""
        return "apply", 1.0

    def _resync(self, j: int) -> None:
        """Restore worker j from the center (rejoin / staleness reject)."""
        self.worker_w[j][...] = self.master
        self.worker_v[j][...] = 0.0

    def _interaction(self, j: int, grad: np.ndarray, scale: float = 1.0) -> None:
        """Apply one worker-master exchange's updates (in arrival order)."""
        raise NotImplementedError

    def _eval_vector(self) -> np.ndarray:
        """The vector whose accuracy the trajectory tracks (master state)."""
        return self.master

    # -- family extension hooks (state/trace/extras) -------------------------
    def _trace_meta(self) -> Dict:
        """Extra trace metadata (e.g. the staleness bound the checks enforce)."""
        return {}

    def _family_arrays(self) -> Dict[str, np.ndarray]:
        """Extra per-run arrays to checkpoint (anchors, accumulators)."""
        return {}

    def _family_state(self) -> Dict:
        """Extra picklable family state to checkpoint (bound counters)."""
        return {}

    def _load_family_state(self, state: Dict) -> None:
        """Restore :meth:`_family_state`."""

    def _family_extras(self) -> Dict[str, float]:
        """Extra method-specific scalars for ``RunResult.extras``."""
        return {}

    def make_step(self) -> _AsyncPSStep:
        return _AsyncPSStep(self)


class AsyncSGDTrainer(_AsyncPSBase):
    """Parameter server / Async SGD (Dean et al.; paper Section 3.1)."""

    name = "Async SGD"

    def _make_store(self, g: int) -> CenterStore:
        return SgdServerStore(self.hyper.lr).bind(self.master)

    def _make_rule(self) -> WorkerRule:
        return FreshPullWorkerRule()

    def _interaction(self, j: int, grad: np.ndarray, scale: float = 1.0) -> None:
        self.store.push(grad, scale)
        self.rule.apply(self.worker_w[j], self.store.weights)  # reply: fresh weights


class AsyncMSGDTrainer(AsyncSGDTrainer):
    """Async SGD with master-side momentum (Equations 3-4)."""

    name = "Async MSGD"
    momentum = True

    def _make_store(self, g: int) -> CenterStore:
        return SgdServerStore(self.hyper.lr, self.hyper.mu).bind(
            self.master, self.master_v
        )


class HogwildSGDTrainer(AsyncSGDTrainer):
    """Async SGD without the master lock (Recht et al.; Section 3.2)."""

    name = "Hogwild SGD"
    lock_free = True


class AsyncEASGDTrainer(_AsyncPSBase):
    """The paper's Async EASGD: FCFS parameter server + elastic averaging."""

    name = "Async EASGD"
    elastic = True
    update_op = "elastic-update"

    def _make_store(self, g: int) -> ElasticCenterStore:
        return ElasticCenterStore(self.hyper).bind(self.master)

    def _make_rule(self) -> WorkerRule:
        return ElasticWorkerRule()

    def _interaction(self, j: int, grad: np.ndarray, scale: float = 1.0) -> None:
        # Step 1: the master replies the pre-fold center, then folds (Eq 2);
        # the worker applies Eq 1 against the replied Wbar_t.
        wbar_t = self.store.exchange(self.worker_w[j], scale)
        self.rule.apply(self.worker_w[j], grad, wbar_t, self.hyper, scale)


class AsyncMEASGDTrainer(AsyncEASGDTrainer):
    """The paper's Async MEASGD: elastic averaging + momentum (Eqs 5-6)."""

    name = "Async MEASGD"
    momentum = True

    def _make_rule(self) -> WorkerRule:
        return ElasticMomentumWorkerRule()

    def _interaction(self, j: int, grad: np.ndarray, scale: float = 1.0) -> None:
        wbar_t = self.store.exchange(self.worker_w[j], scale)
        self.rule.apply(self.worker_w[j], self.worker_v[j], grad, wbar_t, self.hyper)


class HogwildEASGDTrainer(AsyncEASGDTrainer):
    """The paper's Hogwild EASGD: elastic averaging, lock-free master."""

    name = "Hogwild EASGD"
    lock_free = True
