"""Simulated cluster hardware: device models, the simulated clock, and the
discrete-event engine that asynchronous trainers run on."""

from repro.cluster.devices import (
    DeviceModel,
    K80_HALF,
    M40,
    KNL_7250,
    XEON_E5_HOST,
    ComputeJitter,
)
from repro.cluster.simclock import SimClock, EventQueue, Event
from repro.cluster.platform import GpuPlatform, KnlPlatform
from repro.cluster.cost import CostModel, BWD_FLOPS_FACTOR
from repro.cluster.multinode import GpuClusterPlatform

__all__ = [
    "DeviceModel",
    "K80_HALF",
    "M40",
    "KNL_7250",
    "XEON_E5_HOST",
    "ComputeJitter",
    "SimClock",
    "EventQueue",
    "Event",
    "GpuPlatform",
    "KnlPlatform",
    "CostModel",
    "BWD_FLOPS_FACTOR",
    "GpuClusterPlatform",
]
