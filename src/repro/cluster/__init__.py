"""Simulated cluster hardware: device models, the simulated clock, and the
discrete-event engine that asynchronous trainers run on."""

from repro.cluster.cost import BWD_FLOPS_FACTOR, CostModel
from repro.cluster.devices import ComputeJitter, DeviceModel, K80_HALF, KNL_7250, M40, XEON_E5_HOST
from repro.cluster.multinode import GpuClusterPlatform
from repro.cluster.platform import GpuPlatform, KnlPlatform
from repro.cluster.simclock import Event, EventQueue, SimClock

__all__ = [
    "DeviceModel",
    "K80_HALF",
    "M40",
    "KNL_7250",
    "XEON_E5_HOST",
    "ComputeJitter",
    "SimClock",
    "EventQueue",
    "Event",
    "GpuPlatform",
    "KnlPlatform",
    "CostModel",
    "BWD_FLOPS_FACTOR",
    "GpuClusterPlatform",
]
