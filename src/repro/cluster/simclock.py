"""Simulated time: a monotonic clock and a deterministic event queue.

The asynchronous trainers are discrete-event simulations: each "worker
finished its pass" is an event; the master's service discipline (FCFS with a
lock, or lock-free) decides how arrivals turn into weight updates. Ties are
broken by an insertion sequence number so identical timestamps never make
the run order depend on heap internals — determinism is load-bearing for
the reproducibility tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import heapq
from typing import Any, List, Optional

__all__ = ["SimClock", "Event", "EventQueue"]


class SimClock:
    """A simulated clock that can only move forward."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock to absolute time ``t`` (must not go backward)."""
        if t < self._now:
            raise ValueError(f"clock cannot go backward: {t} < {self._now}")
        self._now = t

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        self._now += dt


@dataclass(frozen=True, order=True)
class Event:
    """A timestamped event; payload excluded from ordering."""

    time: float
    seq: int
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Min-heap of events with deterministic FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._next = 0

    def push(self, time: float, payload: Any = None) -> Event:
        """Schedule a payload at an absolute simulated time."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time, self._next, payload)
        self._next += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event (FIFO among ties)."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        return self._heap[0] if self._heap else None

    def getstate(self) -> dict:
        """Snapshot pending events and the tie-break counter position.

        The heap is stored as plain ``(time, seq, payload)`` tuples in
        heap order; payloads must themselves be picklable (every trainer
        payload is a tuple of ints/floats/strings).
        """
        return {
            "next": self._next,
            "heap": [(e.time, e.seq, e.payload) for e in self._heap],
        }

    def setstate(self, state: dict) -> None:
        """Restore a snapshot; subsequent pushes continue the sequence."""
        self._next = int(state["next"])
        self._heap = [Event(t, s, p) for (t, s, p) in state["heap"]]
        heapq.heapify(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
