"""CostModel: the bridge between real networks and paper-scale timing.

A trainer runs its numerics on a runnable mini network but may charge the
simulated clock for a *full-scale* model (e.g. train the mini LeNet while
costing the true 431 k-parameter LeNet, or cost VGG-19's 575 MB for the
weak-scaling table). ``CostModel.from_network`` derives costs from the
actual network (self-consistent mode); ``CostModel.from_spec`` takes them
from a :class:`repro.nn.spec.ModelSpec` (paper-scale mode). EXPERIMENTS.md
states which mode each experiment uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.nn.network import Network
from repro.nn.spec import ModelSpec

__all__ = ["CostModel", "BWD_FLOPS_FACTOR"]

#: Backward propagation costs roughly two forward passes (dX and dW GEMMs).
BWD_FLOPS_FACTOR = 2.0


@dataclass(frozen=True)
class CostModel:
    """Cost-relevant numbers of one model + input geometry."""

    name: str
    weight_bytes: int  # packed model size (one message)
    layer_bytes: Tuple[int, ...]  # per-layer message sizes (unpacked plan)
    flops_fwd_per_sample: float  # forward FLOPs per input sample
    sample_bytes: int  # bytes of one input sample (data staging)

    def __post_init__(self) -> None:
        if self.weight_bytes <= 0:
            raise ValueError("weight_bytes must be positive")
        if sum(self.layer_bytes) != self.weight_bytes:
            raise ValueError("layer_bytes must sum to weight_bytes")
        if self.flops_fwd_per_sample <= 0 or self.sample_bytes <= 0:
            raise ValueError("flops and sample size must be positive")

    def fwdbwd_flops(self, batch_size: int) -> float:
        """FLOPs for one forward+backward pass over a batch."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return (1.0 + BWD_FLOPS_FACTOR) * self.flops_fwd_per_sample * batch_size

    def batch_bytes(self, batch_size: int) -> int:
        """Bytes of one staged batch of samples."""
        return self.sample_bytes * batch_size

    @classmethod
    def from_network(cls, net: Network) -> "CostModel":
        """Self-consistent mode: cost exactly the runnable network.

        The unpacked plan sends one message per parameter tensor (weight and
        bias separately — Caffe-style per-blob transfers), so layer_bytes
        comes from the packed buffer's segment table.
        """
        layer_bytes = tuple(seg.nbytes for seg in net.segments)
        return cls(
            name=net.name,
            weight_bytes=net.nbytes,
            layer_bytes=layer_bytes,
            flops_fwd_per_sample=float(net.flops_per_sample()),
            sample_bytes=int(np.prod(net.input_shape)) * 4,
        )

    @classmethod
    def from_spec(cls, spec: ModelSpec) -> "CostModel":
        """Paper-scale mode: cost the full-size model of the spec table."""
        return cls(
            name=spec.name,
            weight_bytes=spec.nbytes,
            layer_bytes=tuple(spec.layer_messages()),
            flops_fwd_per_sample=float(spec.flops_per_sample),
            sample_bytes=int(np.prod(spec.input_shape)) * 4,
        )
