"""Multi-node GPU cluster platform (Artifact Description 10.4).

The paper's first system: 16 nodes, each with GPUs behind a PCIe switch,
connected by 56 Gbit/s FDR InfiniBand, with MPI + NCCL for communication.
Collectives are hierarchical: reduce within each node over the PCIe switch,
then across nodes over the fabric (tree or bandwidth-optimal ring), then
broadcast back down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cluster.cost import CostModel
from repro.cluster.devices import ComputeJitter, DeviceModel, K80_HALF, XEON_E5_HOST
from repro.comm.alphabeta import LinkModel, MELLANOX_FDR_56G
from repro.comm.collectives import ring_allreduce_cost, tree_bcast_cost, tree_reduce_cost
from repro.comm.topology import GpuNodeTopology

__all__ = ["GpuClusterPlatform"]


@dataclass
class GpuClusterPlatform:
    """``num_nodes`` multi-GPU nodes on an InfiniBand-class fabric."""

    num_nodes: int
    gpus_per_node: int
    gpu: DeviceModel = K80_HALF
    host: DeviceModel = XEON_E5_HOST
    network: LinkModel = MELLANOX_FDR_56G
    node_topology: GpuNodeTopology = None  # type: ignore[assignment]
    jitter_sigma: float = 0.08
    seed: int = 0
    _jitters: Dict[int, ComputeJitter] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0 or self.gpus_per_node <= 0:
            raise ValueError("node and GPU counts must be positive")
        if self.node_topology is None:
            self.node_topology = GpuNodeTopology(self.gpus_per_node)
        elif self.node_topology.num_gpus != self.gpus_per_node:
            raise ValueError("node topology GPU count disagrees with platform")

    @property
    def num_workers(self) -> int:
        """Total GPU count across the cluster (one worker per GPU)."""
        return self.num_nodes * self.gpus_per_node

    # -- compute ---------------------------------------------------------------
    def jitter_for(self, worker: int) -> ComputeJitter:
        """The worker's jitter stream (created on first use)."""
        jitter = self._jitters.get(worker)
        if jitter is None:
            jitter = ComputeJitter(self.seed, ("cluster-gpu", worker), self.jitter_sigma)
            self._jitters[worker] = jitter
        return jitter

    def fwdbwd_time(self, cost: CostModel, batch_size: int, worker: int, jittered: bool = True) -> float:
        """One pass on one GPU anywhere in the cluster."""
        base = self.gpu.compute_time(cost.fwdbwd_flops(batch_size))
        if not jittered or self.jitter_sigma == 0.0:
            return base
        return base * self.jitter_for(worker).sample()

    def stage_batch_time(self, cost: CostModel, batch_size: int) -> float:
        """Host -> GPU staging inside a node (concurrent across nodes)."""
        link = self.node_topology.link_for("cpu-gpu data")
        return link.cost(cost.batch_bytes(batch_size))

    def gpu_update_time(self, cost: CostModel) -> float:
        return self.gpu.update_time(3 * cost.weight_bytes)

    # -- hierarchical collectives -------------------------------------------------
    def _intra_hop(self, cost: CostModel, packed: bool) -> float:
        from repro.comm.packing import packed_plan, per_layer_plan

        plan = packed_plan(cost.layer_bytes) if packed else per_layer_plan(cost.layer_bytes)
        return plan.cost(self.node_topology.link_for("gpu-gpu para"))

    def intra_node_reduce_time(self, cost: CostModel, packed: bool = True) -> float:
        """Tree reduce among the GPUs of one node (all nodes concurrently)."""
        per_hop = self._intra_hop(cost, packed)
        return tree_reduce_cost(LinkModel("derived", per_hop, 0.0), 0, self.gpus_per_node)

    def intra_node_bcast_time(self, cost: CostModel, packed: bool = True) -> float:
        per_hop = self._intra_hop(cost, packed)
        return tree_bcast_cost(LinkModel("derived", per_hop, 0.0), 0, self.gpus_per_node)

    def inter_node_allreduce_time(
        self, cost: CostModel, algorithm: str = "tree", packed: bool = True
    ) -> float:
        """Allreduce of the packed weights across node leaders."""
        messages = 1 if packed else max(len(cost.layer_bytes), 1)
        if algorithm == "tree":
            per_hop = messages * self.network.alpha + cost.weight_bytes * self.network.beta
            link = LinkModel("derived", per_hop, 0.0)
            return tree_reduce_cost(link, 0, self.num_nodes) + tree_bcast_cost(
                link, 0, self.num_nodes
            )
        if algorithm == "ring":
            # Ring chunks the buffer: latency per step still pays the
            # per-message alphas of the plan.
            extra_alpha = (messages - 1) * self.network.alpha * 2 * max(self.num_nodes - 1, 0)
            return ring_allreduce_cost(self.network, cost.weight_bytes, self.num_nodes) + extra_alpha
        raise ValueError(f"unknown allreduce algorithm {algorithm!r}")

    def hierarchical_allreduce_time(
        self, cost: CostModel, algorithm: str = "tree", packed: bool = True
    ) -> float:
        """Full cluster weight allreduce: intra-reduce, inter-allreduce,
        intra-bcast. Intra-node phases run concurrently on every node."""
        return (
            self.intra_node_reduce_time(cost, packed)
            + self.inter_node_allreduce_time(cost, algorithm, packed)
            + self.intra_node_bcast_time(cost, packed)
        )
