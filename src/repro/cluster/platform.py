"""Platforms: the timing facade trainers charge simulated seconds against.

A :class:`GpuPlatform` mirrors the paper's multi-GPU node (host CPU + G GPUs
on a PCIe switch); a :class:`KnlPlatform` mirrors a KNL cluster on a Cray
Aries-class fabric. All methods return *seconds of simulated time*; the
trainers decide what overlaps with what (that is exactly where Sync EASGD1,
2, and 3 differ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cluster.cost import CostModel
from repro.cluster.devices import ComputeJitter, DeviceModel, K80_HALF, KNL_7250, XEON_E5_HOST
from repro.comm.alphabeta import LinkModel
from repro.comm.collectives import flat_sequential_cost, tree_bcast_cost, tree_reduce_cost
from repro.comm.packing import MessagePlan, packed_plan, per_layer_plan
from repro.comm.topology import GpuNodeTopology, KnlClusterTopology

__all__ = ["GpuPlatform", "KnlPlatform"]


@dataclass
class GpuPlatform:
    """Host + ``num_gpus`` GPUs; the platform of Algorithms 1-3."""

    num_gpus: int
    gpu: DeviceModel = K80_HALF
    host: DeviceModel = XEON_E5_HOST
    topology: GpuNodeTopology = None  # type: ignore[assignment]
    jitter_sigma: float = 0.08
    seed: int = 0
    _jitters: Dict[int, ComputeJitter] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        if self.topology is None:
            self.topology = GpuNodeTopology(self.num_gpus)
        elif self.topology.num_gpus != self.num_gpus:
            raise ValueError("topology GPU count disagrees with platform")

    # -- compute -----------------------------------------------------------
    def jitter_for(self, worker: int) -> ComputeJitter:
        """The worker's jitter stream (created on first use)."""
        jitter = self._jitters.get(worker)
        if jitter is None:
            jitter = ComputeJitter(self.seed, ("gpu", worker), self.jitter_sigma)
            self._jitters[worker] = jitter
        return jitter

    def fwdbwd_time(self, cost: CostModel, batch_size: int, worker: int, jittered: bool = True) -> float:
        """One forward+backward pass on one GPU, with per-worker jitter."""
        base = self.gpu.compute_time(cost.fwdbwd_flops(batch_size))
        if not jittered or self.jitter_sigma == 0.0:
            return base
        return base * self.jitter_for(worker).sample()

    def gpu_update_time(self, cost: CostModel) -> float:
        """Eq 1 on a GPU: stream read+write of the packed weights (3 passes)."""
        return self.gpu.update_time(3 * cost.weight_bytes)

    def cpu_update_time(self, cost: CostModel) -> float:
        """Eq 2 on the host: stream read+write of the packed weights."""
        return self.host.update_time(3 * cost.weight_bytes)

    # -- communication -------------------------------------------------------
    def stage_batch_time(self, cost: CostModel, batch_size: int) -> float:
        """Copy one batch of samples host -> GPU (cpu-gpu data traffic)."""
        link = self.topology.link_for("cpu-gpu data")
        return link.cost(cost.batch_bytes(batch_size))

    def param_plan(self, cost: CostModel, packed: bool = True) -> MessagePlan:
        """The message plan of one full-model exchange."""
        return packed_plan(cost.layer_bytes) if packed else per_layer_plan(cost.layer_bytes)

    def cpu_gpu_param_time(self, cost: CostModel, packed: bool = True) -> float:
        """One model transfer host <-> one GPU (cpu-gpu para traffic)."""
        link = self.topology.link_for("cpu-gpu para")
        return self.param_plan(cost, packed).cost(link)

    def gpu_gpu_param_time(self, cost: CostModel, packed: bool = True) -> float:
        """One model transfer GPU <-> GPU through the switch."""
        link = self.topology.link_for("gpu-gpu para")
        return self.param_plan(cost, packed).cost(link)

    def tree_bcast_time(
        self, cost: CostModel, link_traffic: str, packed: bool = True,
        ranks: Optional[int] = None,
    ) -> float:
        """Binomial-tree broadcast of the model to ``ranks`` GPUs (default:
        all of them; fewer after a fault-driven tree rebuild)."""
        link = self.topology.link_for(link_traffic)
        per_hop = self.param_plan(cost, packed).cost(link)
        return tree_bcast_cost(_unit_link(per_hop), 0, ranks or self.num_gpus)

    def tree_reduce_time(
        self, cost: CostModel, link_traffic: str, packed: bool = True,
        ranks: Optional[int] = None,
    ) -> float:
        """Binomial-tree reduction of ``ranks`` GPUs' models to the root
        (default: all of them; fewer after a fault-driven tree rebuild)."""
        link = self.topology.link_for(link_traffic)
        per_hop = self.param_plan(cost, packed).cost(link)
        return tree_reduce_cost(_unit_link(per_hop), 0, ranks or self.num_gpus)

    def flat_exchange_time(self, cost: CostModel, link_traffic: str, packed: bool = True) -> float:
        """P sequential model exchanges at the root (round-robin pattern)."""
        link = self.topology.link_for(link_traffic)
        per_msg = self.param_plan(cost, packed).cost(link)
        return flat_sequential_cost(_unit_link(per_msg), 0, self.num_gpus)


def _unit_link(per_message_cost: float) -> LinkModel:
    """A link whose every message costs exactly ``per_message_cost``.

    Lets the collective cost formulas (which take alpha-beta links) be reused
    when the per-hop cost already folds in a multi-message plan.
    """
    return LinkModel("derived", alpha=per_message_cost, beta=0.0)


@dataclass
class KnlPlatform:
    """``num_nodes`` self-hosted KNL nodes on one fabric (Algorithm 4)."""

    num_nodes: int
    node: DeviceModel = KNL_7250
    topology: KnlClusterTopology = None  # type: ignore[assignment]
    jitter_sigma: float = 0.05
    seed: int = 0
    _jitters: Dict[int, ComputeJitter] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.topology is None:
            self.topology = KnlClusterTopology(self.num_nodes)
        elif self.topology.num_nodes != self.num_nodes:
            raise ValueError("topology node count disagrees with platform")

    def jitter_for(self, worker: int) -> ComputeJitter:
        """The node's jitter stream (created on first use)."""
        jitter = self._jitters.get(worker)
        if jitter is None:
            jitter = ComputeJitter(self.seed, ("knl", worker), self.jitter_sigma)
            self._jitters[worker] = jitter
        return jitter

    def fwdbwd_time(self, cost: CostModel, batch_size: int, worker: int, jittered: bool = True) -> float:
        base = self.node.compute_time(cost.fwdbwd_flops(batch_size))
        if not jittered or self.jitter_sigma == 0.0:
            return base
        return base * self.jitter_for(worker).sample()

    def update_time(self, cost: CostModel) -> float:
        """Eq 1/Eq 2 on a KNL node (MCDRAM-speed streaming)."""
        return self.node.update_time(3 * cost.weight_bytes)

    def param_plan(self, cost: CostModel, packed: bool = True) -> MessagePlan:
        return packed_plan(cost.layer_bytes) if packed else per_layer_plan(cost.layer_bytes)

    def tree_bcast_time(self, cost: CostModel, packed: bool = True) -> float:
        link = self.topology.link_for("node-node para")
        per_hop = self.param_plan(cost, packed).cost(link)
        return tree_bcast_cost(_unit_link(per_hop), 0, self.num_nodes)

    def tree_reduce_time(self, cost: CostModel, packed: bool = True) -> float:
        link = self.topology.link_for("node-node para")
        per_hop = self.param_plan(cost, packed).cost(link)
        return tree_reduce_cost(_unit_link(per_hop), 0, self.num_nodes)

    def flat_exchange_time(self, cost: CostModel, packed: bool = True) -> float:
        link = self.topology.link_for("node-node para")
        per_msg = self.param_plan(cost, packed).cost(link)
        return flat_sequential_cost(_unit_link(per_msg), 0, self.num_nodes)
