"""Analytic device models for the simulated clock.

Compute time for a forward+backward pass is ``flops / (peak * efficiency)``;
weight-update time is ``bytes_touched / memory_bandwidth``. Peaks come from
the paper (KNL: 6 Tflops single precision; K80/M40 from vendor specs);
``efficiency`` captures that DNN kernels reach a fraction of peak (cuDNN on
small batches lands around a third). Worker asynchrony comes from
:class:`ComputeJitter` — seeded lognormal multipliers on each pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import spawn_rng

__all__ = [
    "DeviceModel",
    "K80_HALF",
    "M40",
    "KNL_7250",
    "XEON_E5_HOST",
    "ComputeJitter",
]


@dataclass(frozen=True)
class DeviceModel:
    """A compute device with a peak rate and memory bandwidth.

    ``kernel_overhead`` is the fixed launch/synchronization latency of one
    weight-update kernel (or the fused update loop on a CPU) — it dominates
    the GPU update of small models, which is why Table 3 shows a 4%-of-total
    GPU update for a 1.7 MB LeNet.
    """

    name: str
    peak_flops: float  # single-precision peak, flops/s
    mem_bandwidth: float  # bytes/s achieved by the streaming update kernel
    efficiency: float = 0.35  # achieved fraction of peak on DNN kernels
    kernel_overhead: float = 0.0  # fixed seconds per update invocation

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0:
            raise ValueError("rates must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if self.kernel_overhead < 0:
            raise ValueError("kernel_overhead must be non-negative")

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.efficiency

    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating-point operations."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return flops / self.effective_flops

    def update_time(self, nbytes: float) -> float:
        """Seconds for a streaming weight update touching ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.kernel_overhead + nbytes / self.mem_bandwidth


# One half of a Tesla K80 (the paper's 16-node cluster exposes K80 halves):
# 2.8 Tflops SP peak, 240 GB/s GDDR5. Efficiency is calibrated to Table 3's
# measured LeNet forward+backward (~6 ms on batch 64): small-kernel CNN
# layers achieve only a few percent of peak on Kepler-class GPUs.
K80_HALF = DeviceModel(
    "Tesla K80 (half)",
    peak_flops=2.8e12,
    mem_bandwidth=240e9,
    efficiency=0.055,
    kernel_overhead=400e-6,
)

# Tesla M40 (the paper's 4-node, 8-GPU system): 7 Tflops SP, 288 GB/s.
M40 = DeviceModel(
    "Tesla M40",
    peak_flops=7.0e12,
    mem_bandwidth=288e9,
    efficiency=0.08,
    kernel_overhead=300e-6,
)

# Xeon Phi 7250 (Cori KNL): 6 Tflops SP (paper Section 1), MCDRAM 475 GB/s
# measured STREAM (Section 2.1). Conv kernels via MKL reach a larger
# fraction of peak than tiny GPU kernels do.
KNL_7250 = DeviceModel(
    "Xeon Phi 7250 (KNL)",
    peak_flops=6.0e12,
    mem_bandwidth=475e9,
    efficiency=0.25,
    kernel_overhead=20e-6,
)

# Host CPU of the GPU nodes (E5-2680 v3-class). The update bandwidth is the
# *effective* rate of the single-threaded Eq-2 loop with temporaries (a few
# GB/s), calibrated to Table 3's cpu-update column, not the socket's STREAM
# number.
XEON_E5_HOST = DeviceModel(
    "Xeon E5 host",
    peak_flops=0.96e12,
    mem_bandwidth=8e9,
    efficiency=0.5,
    kernel_overhead=50e-6,
)


class ComputeJitter:
    """Per-worker multiplicative lognormal jitter on compute times.

    ``sigma = 0`` makes every pass take exactly the modeled time (used by
    the deterministic Sync algorithms); positive sigma staggers workers,
    which is what creates the FCFS/queueing dynamics of the async methods.
    """

    def __init__(self, seed: int, worker: object, sigma: float = 0.08) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma
        self._rng = spawn_rng(seed, "jitter", worker)

    def sample(self) -> float:
        """A multiplier with mean ~1 (exactly 1 when sigma == 0)."""
        if self.sigma == 0.0:
            return 1.0
        # mean-one lognormal: exp(N(-sigma^2/2, sigma))
        return float(np.exp(self._rng.normal(-0.5 * self.sigma**2, self.sigma)))

    def getstate(self) -> dict:
        """The stream position, for checkpoint/resume."""
        return self._rng.bit_generator.state

    def setstate(self, state: dict) -> None:
        self._rng.bit_generator.state = state
