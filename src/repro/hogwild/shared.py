"""The shared master weight store with optional locking.

``use_lock=True`` reproduces the classic parameter-server master (one
update at a time — Async SGD/EASGD semantics); ``use_lock=False`` is
Hogwild: concurrent in-place ``+=`` on the same buffer, racy at element
granularity and intentionally so.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext

import numpy as np

from repro.optim.easgd import EASGDHyper

__all__ = ["SharedWeights"]


class SharedWeights:
    """A flat float32 weight vector shared by worker threads."""

    def __init__(self, init: np.ndarray, use_lock: bool) -> None:
        self._weights = np.array(init, dtype=np.float32, copy=True)
        self.use_lock = use_lock
        self._lock = threading.Lock()
        self.update_count = 0  # approximate under races; exact with the lock

    def _guard(self):
        return self._lock if self.use_lock else nullcontext()

    @property
    def size(self) -> int:
        return int(self._weights.size)

    def snapshot(self) -> np.ndarray:
        """A copy of the current weights (may be mid-update when lock-free)."""
        with self._guard():
            return self._weights.copy()

    def sgd_update(self, grad: np.ndarray) -> None:
        """Hogwild/Async SGD master step: ``W -= grad_step`` in place."""
        with self._guard():
            self._weights -= grad
            self.update_count += 1

    def elastic_interaction(self, worker_weights: np.ndarray, hyper: EASGDHyper) -> np.ndarray:
        """One EASGD master exchange: fold the worker in (Eq 2, single term)
        and return the center the worker should elastic-pull toward.

        Lock-free mode reads and writes without exclusion — the Hogwild
        EASGD setting whose safety the paper proves for the convex case.
        """
        with self._guard():
            returned = self._weights.copy()
            self._weights += hyper.alpha * (worker_weights - self._weights)
            self.update_count += 1
        return returned
