"""The shared master weight store with optional locking.

``use_lock=True`` reproduces the classic parameter-server master (one
update at a time — Async SGD/EASGD semantics); ``use_lock=False`` is
Hogwild: concurrent in-place ``+=`` on the same buffer, racy at element
granularity and intentionally so.

``storage`` selects where the buffer lives:

- ``"local"`` (default): a process-private NumPy array guarded by a
  ``threading.Lock`` — the store for thread workers.
- ``"shared"``: a named POSIX shared-memory segment
  (:class:`repro.comm.mp_runtime.SharedFlatArray`) guarded by a
  ``multiprocessing.Lock``, with the update counter in a shared
  ``multiprocessing.Value`` — the store for forked process workers,
  which all map the same physical pages. This is the paper's actual
  memory model: Hogwild's lock-free ``+=`` races on real shared DRAM,
  not on a GIL-serialized heap object.

The surface is identical in both modes (``snapshot``/``sgd_update``/
``elastic_interaction``/``update_count``); shared mode additionally wants
a :meth:`close` when the store is done (owner side unlinks the segment).
"""

from __future__ import annotations

from contextlib import nullcontext
import multiprocessing
import threading

import numpy as np

from repro.optim.easgd import EASGDHyper

__all__ = ["SharedWeights"]


class SharedWeights:
    """A flat float32 weight vector shared by worker threads or processes."""

    def __init__(self, init: np.ndarray, use_lock: bool, storage: str = "local") -> None:
        if storage not in ("local", "shared"):
            raise ValueError(f"storage must be 'local' or 'shared', got {storage!r}")
        self.storage = storage
        self.use_lock = use_lock
        init = np.asarray(init)
        if storage == "shared":
            from repro.comm.mp_runtime import SharedFlatArray

            self._segment = SharedFlatArray.from_array(init)
            self._weights = self._segment.array
            self._lock = multiprocessing.Lock()
            # Raw (lockless) shared counter: exact under the lock, best-effort
            # without — the same contract the thread-local counter has.
            self._count = multiprocessing.Value("q", 0, lock=False)
        else:
            self._segment = None
            self._weights = np.array(init, dtype=np.float32, copy=True)
            self._lock = threading.Lock()
            self._count = 0

    def _guard(self):
        return self._lock if self.use_lock else nullcontext()

    @property
    def update_count(self) -> int:
        """Number of master updates applied (approximate under races)."""
        if self.storage == "shared":
            return int(self._count.value)
        return self._count

    def _bump(self) -> None:
        if self.storage == "shared":
            self._count.value += 1
        else:
            self._count += 1

    @property
    def size(self) -> int:
        return int(self._weights.size)

    @property
    def segment_name(self):
        """The shared-memory segment's system-wide name (None for local)."""
        return self._segment.name if self._segment is not None else None

    def snapshot(self) -> np.ndarray:
        """A copy of the current weights (may be mid-update when lock-free)."""
        with self._guard():
            return self._weights.copy()

    def snapshot_into(self, out: np.ndarray) -> np.ndarray:
        """:meth:`snapshot` into a caller-owned buffer (hot-loop form).

        Same read semantics, zero allocation — workers pair this with a
        :class:`repro.comm.arena.BufferArena` so per-step pulls stop
        churning the allocator.
        """
        with self._guard():
            np.copyto(out, self._weights)
        return out

    def sgd_update(self, grad: np.ndarray) -> None:
        """Hogwild/Async SGD master step: ``W -= grad_step`` in place."""
        with self._guard():
            self._weights -= grad
            self._bump()

    def elastic_interaction(
        self,
        worker_weights: np.ndarray,
        hyper: EASGDHyper,
        out: np.ndarray = None,
    ) -> np.ndarray:
        """One EASGD master exchange: fold the worker in (Eq 2, single term)
        and return the center the worker should elastic-pull toward.

        Lock-free mode reads and writes without exclusion — the Hogwild
        EASGD setting whose safety the paper proves for the convex case.

        ``out``, if given, receives the returned center (reusable across
        steps: the caller consumes it before the next exchange).
        """
        with self._guard():
            if out is None:
                returned = self._weights.copy()
            else:
                np.copyto(out, self._weights)
                returned = out
            self._weights += hyper.alpha * (worker_weights - self._weights)
            self._bump()
        return returned

    def close(self) -> None:
        """Release shared-memory resources (no-op for local storage).

        The creating process unlinks the segment; forked children that
        inherited the mapping merely drop their reference.
        """
        if self._segment is not None:
            self._weights = self._weights.copy()  # keep snapshots working
            self._segment.unlink()
            self._segment = None
