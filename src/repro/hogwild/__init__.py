"""Real shared-memory Hogwild (substrate S7).

The DES trainers in :mod:`repro.algorithms.async_ps` *model* lock-free
master service; this package *implements* it with actual Python threads
updating one shared NumPy weight vector (NumPy ufuncs release the GIL, so
updates genuinely interleave). Used to demonstrate that the lock-free
Hogwild EASGD update rule converges on real concurrent hardware, per the
paper's convergence claim (Section 5.1 and the proof appendix).
"""

from repro.hogwild.shared import SharedWeights
from repro.hogwild.threads import HogwildResult, HogwildRunner

__all__ = ["SharedWeights", "HogwildRunner", "HogwildResult"]
