"""Hogwild training on a shared weight vector (threads or processes).

Each worker owns a private network replica and batch sampler; the master
weights live in a :class:`repro.hogwild.shared.SharedWeights`. Two update
rules:

- ``"sgd"``: workers push gradient steps straight into the shared weights
  (Hogwild SGD, Recht et al.).
- ``"easgd"``: workers keep local weights, exchange elastically with the
  shared center (Hogwild EASGD, the paper's method).

This is wall-clock-real concurrency, not simulation: with ``use_lock=False``
the workers race on the shared buffer exactly as the paper's lock-free
master does. ``backend="threads"`` races Python threads on a heap array;
``backend="processes"`` forks real OS processes racing on a named
shared-memory segment — the same physical-memory picture as the paper's
multi-core masters, with no GIL serializing the ``+=``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import threading
import time
from typing import List, Tuple

import numpy as np

from repro.comm.arena import BufferArena
from repro.comm.backend import validate_backend
from repro.comm.runtime import MultiRankError
from repro.data.dataset import Dataset
from repro.data.loader import BatchSampler
from repro.engine.rank_loop import local_steps
from repro.hogwild.shared import SharedWeights
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Network
from repro.optim.easgd import EASGDHyper, elastic_worker_update

__all__ = ["HogwildResult", "HogwildRunner"]


@dataclass
class HogwildResult:
    """Outcome of one concurrent run."""

    final_weights: np.ndarray
    wall_seconds: float
    steps_per_worker: List[int]
    final_losses: List[float] = field(default_factory=list)
    backend: str = "threads"

    @property
    def total_steps(self) -> int:
        return sum(self.steps_per_worker)


class HogwildRunner:
    """Run ``num_workers`` workers for ``steps_per_worker`` updates each."""

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        num_workers: int,
        steps_per_worker: int,
        rule: str = "easgd",
        use_lock: bool = False,
        batch_size: int = 32,
        lr: float = 0.05,
        rho: float = 2.0,
        seed: int = 0,
        backend: str = "threads",
    ) -> None:
        if num_workers <= 0 or steps_per_worker <= 0:
            raise ValueError("workers and steps must be positive")
        if rule not in ("sgd", "easgd"):
            raise ValueError("rule must be 'sgd' or 'easgd'")
        validate_backend(backend)
        self.template = network
        self.train_set = train_set
        self.num_workers = num_workers
        self.steps_per_worker = steps_per_worker
        self.rule = rule
        self.use_lock = use_lock
        self.batch_size = batch_size
        self.hyper = EASGDHyper(lr=lr, rho=rho)
        self.seed = seed
        self.backend = backend

    def _worker_body(self, idx: int, shared: SharedWeights) -> Tuple[int, float]:
        """One worker's full run; returns (steps completed, last batch loss)."""
        net = self.template.clone(name=f"hogwild-w{idx}")
        local = shared.snapshot()
        sampler = BatchSampler(
            self.train_set, self.batch_size, self.seed, name=("hogwild", idx)
        )
        loss = SoftmaxCrossEntropy()
        # Per-worker scratch (scaled gradient, pulled center) reused every
        # step — the hot loop allocates nothing for the master exchange.
        arena = BufferArena()
        steps = 0
        last_loss = float("nan")
        for _ in local_steps(self.steps_per_worker):
            images, labels = sampler.next_batch()
            net.set_params(local)
            last_loss = net.gradient(images, labels, loss)
            if self.rule == "sgd":
                scaled = arena.get("scaled-grad", net.grads.shape, net.grads.dtype)
                np.multiply(net.grads, self.hyper.lr, out=scaled)
                shared.sgd_update(scaled)
                shared.snapshot_into(local)
            else:
                center = shared.elastic_interaction(
                    local, self.hyper,
                    out=arena.get("center", local.shape, local.dtype),
                )
                elastic_worker_update(local, net.grads, center, self.hyper)
            steps += 1
        return steps, last_loss

    def run(self) -> HogwildResult:
        if self.backend == "processes":
            return self._run_processes()
        return self._run_threads()

    def _run_threads(self) -> HogwildResult:
        shared = SharedWeights(self.template.get_params(), use_lock=self.use_lock)
        steps_done = [0] * self.num_workers
        last_loss = [float("nan")] * self.num_workers
        errors: List[Tuple[int, BaseException]] = []

        def worker(idx: int) -> None:
            try:
                steps_done[idx], last_loss[idx] = self._worker_body(idx, shared)
            except Exception as exc:  # surface thread failures to the caller
                errors.append((idx, exc))

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"hogwild-{i}")
            for i in range(self.num_workers)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start
        if errors:
            raise MultiRankError.aggregate(sorted(errors))

        return HogwildResult(
            final_weights=shared.snapshot(),
            wall_seconds=wall,
            steps_per_worker=steps_done,
            final_losses=last_loss,
            backend="threads",
        )

    def _run_processes(self) -> HogwildResult:
        """Fork ``num_workers`` processes racing on one shm segment.

        The forked children inherit the :class:`SharedWeights` object whose
        buffer is a named shared-memory mapping, so their lock-free ``+=``
        really interleave in physical memory. Step counts and losses travel
        back on a result queue; failures are aggregated across workers like
        the rank runtimes do.
        """
        import multiprocessing
        import queue as _queue

        from repro.comm.mp_runtime import (
            RemoteRankError,
            _shippable_exception,
            fork_available,
        )

        if not fork_available():
            raise RuntimeError(
                "backend='processes' requires the fork start method; "
                "use backend='threads' on this platform"
            )
        mp_ctx = multiprocessing.get_context("fork")
        shared = SharedWeights(
            self.template.get_params(), use_lock=self.use_lock, storage="shared"
        )
        results_q = mp_ctx.Queue()

        def child_main(idx: int) -> None:
            try:
                steps, loss_val = self._worker_body(idx, shared)
            except Exception as exc:
                results_q.put((idx, "err", _shippable_exception(idx, exc)))
            else:
                results_q.put((idx, "ok", (steps, float(loss_val))))

        procs = [
            mp_ctx.Process(target=child_main, args=(i,), name=f"hogwild-{i}")
            for i in range(self.num_workers)
        ]
        start = time.perf_counter()
        try:
            for p in procs:
                p.start()
            for p in procs:
                p.join()
            wall = time.perf_counter() - start

            steps_done = [0] * self.num_workers
            last_loss = [float("nan")] * self.num_workers
            seen = [False] * self.num_workers
            failures: List[Tuple[int, BaseException]] = []
            while True:
                try:
                    idx, status, payload = results_q.get_nowait()
                except _queue.Empty:
                    break
                seen[idx] = True
                if status == "ok":
                    steps_done[idx], last_loss[idx] = payload
                else:
                    failures.append((idx, payload))
            for idx, done in enumerate(seen):
                if not done:  # crashed before reporting (signal, hard exit)
                    failures.append(
                        (
                            idx,
                            RemoteRankError(
                                idx,
                                f"worker process exited with code {procs[idx].exitcode} "
                                "before reporting a result",
                            ),
                        )
                    )
            final = shared.snapshot()
        finally:
            for p in procs:
                if p.is_alive():  # pragma: no cover - hung-worker cleanup
                    p.terminate()
                    p.join(timeout=5.0)
            results_q.cancel_join_thread()
            results_q.close()
            shared.close()
        if failures:
            raise MultiRankError.aggregate(sorted(failures))

        return HogwildResult(
            final_weights=final,
            wall_seconds=wall,
            steps_per_worker=steps_done,
            final_losses=last_loss,
            backend="processes",
        )
