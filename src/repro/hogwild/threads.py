"""Threaded Hogwild training on a shared weight vector.

Each worker thread owns a private network replica and batch sampler; the
master weights live in a :class:`repro.hogwild.shared.SharedWeights`. Two
update rules:

- ``"sgd"``: workers push gradient steps straight into the shared weights
  (Hogwild SGD, Recht et al.).
- ``"easgd"``: workers keep local weights, exchange elastically with the
  shared center (Hogwild EASGD, the paper's method).

This is wall-clock-real concurrency, not simulation: with ``use_lock=False``
the threads race on the shared buffer exactly as the paper's lock-free
master does.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.data.loader import BatchSampler
from repro.hogwild.shared import SharedWeights
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Network
from repro.optim.easgd import EASGDHyper, elastic_worker_update

__all__ = ["HogwildResult", "HogwildRunner"]


@dataclass
class HogwildResult:
    """Outcome of one threaded run."""

    final_weights: np.ndarray
    wall_seconds: float
    steps_per_worker: List[int]
    final_losses: List[float] = field(default_factory=list)

    @property
    def total_steps(self) -> int:
        return sum(self.steps_per_worker)


class HogwildRunner:
    """Run ``num_workers`` threads for ``steps_per_worker`` updates each."""

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        num_workers: int,
        steps_per_worker: int,
        rule: str = "easgd",
        use_lock: bool = False,
        batch_size: int = 32,
        lr: float = 0.05,
        rho: float = 2.0,
        seed: int = 0,
    ) -> None:
        if num_workers <= 0 or steps_per_worker <= 0:
            raise ValueError("workers and steps must be positive")
        if rule not in ("sgd", "easgd"):
            raise ValueError("rule must be 'sgd' or 'easgd'")
        self.template = network
        self.train_set = train_set
        self.num_workers = num_workers
        self.steps_per_worker = steps_per_worker
        self.rule = rule
        self.use_lock = use_lock
        self.batch_size = batch_size
        self.hyper = EASGDHyper(lr=lr, rho=rho)
        self.seed = seed

    def _worker(
        self,
        idx: int,
        shared: SharedWeights,
        steps_done: List[int],
        last_loss: List[float],
        errors: List[BaseException],
    ) -> None:
        try:
            net = self.template.clone(name=f"hogwild-w{idx}")
            local = shared.snapshot()
            sampler = BatchSampler(
                self.train_set, self.batch_size, self.seed, name=("hogwild", idx)
            )
            loss = SoftmaxCrossEntropy()
            for _ in range(self.steps_per_worker):
                images, labels = sampler.next_batch()
                net.set_params(local)
                last_loss[idx] = net.gradient(images, labels, loss)
                if self.rule == "sgd":
                    shared.sgd_update(self.hyper.lr * net.grads)
                    local = shared.snapshot()
                else:
                    center = shared.elastic_interaction(local, self.hyper)
                    elastic_worker_update(local, net.grads, center, self.hyper)
                steps_done[idx] += 1
        except BaseException as exc:  # surface thread failures to the caller
            errors.append(exc)

    def run(self) -> HogwildResult:
        shared = SharedWeights(self.template.get_params(), use_lock=self.use_lock)
        steps_done = [0] * self.num_workers
        last_loss = [float("nan")] * self.num_workers
        errors: List[BaseException] = []

        threads = [
            threading.Thread(
                target=self._worker,
                args=(i, shared, steps_done, last_loss, errors),
                name=f"hogwild-{i}",
            )
            for i in range(self.num_workers)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start
        if errors:
            raise errors[0]

        return HogwildResult(
            final_weights=shared.snapshot(),
            wall_seconds=wall,
            steps_per_worker=steps_done,
            final_losses=last_loss,
        )
