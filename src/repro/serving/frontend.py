"""The serving front-end: queue, adaptive batcher, staleness enforcement.

One server thread owns the model replica.  Clients :meth:`submit`
requests from any thread; the server coalesces whatever has queued into
one packed forward pass under the adaptive policy of
:mod:`repro.serving.microbatch` (grow toward ``batch_cap`` while the
queue is dense, start no later than the oldest request's ``max_wait``
deadline).  Before each batch it settles which weights to serve:

- ``refresh_policy="fresh"`` — reload whenever a newer snapshot exists;
  staleness is then bounded by the snapshotter's publish cadence.
- ``refresh_policy="lazy"`` — serve the cached snapshot until its
  staleness (training steps behind the trainer heartbeat) exceeds
  ``max_staleness_steps``, then force a refresh.  This is the
  staleness-bounded regime: weight uploads cost a memcpy + ``set_params``
  per refresh, and the bound caps how much consistency that saving may
  burn.

Every batch emits a ``service`` trace event (``op="serving/batch"``,
``value`` = staleness served, ``round`` = batch size, ``iteration`` =
snapshot step) so the invariants in :mod:`repro.trace.check` can audit
the run: single-server batches never overlap, sizes never exceed the
cap, and served staleness never exceeds the bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
import threading
import time
from typing import Any, Callable, Deque, Dict, List, Optional

import numpy as np

from repro.serving.snapshot import SnapshotReader
from repro.trace.events import MASTER, Trace, TraceEvent

__all__ = ["ServedRequest", "ServeStats", "ServingFrontend"]


class ServedRequest:
    """One in-flight inference request (a minimal future)."""

    __slots__ = ("x", "arrival", "result", "step", "staleness", "finish", "_done")

    def __init__(self, x: np.ndarray, arrival: float) -> None:
        self.x = x
        self.arrival = arrival
        self.result: Optional[np.ndarray] = None
        self.step = -1  # snapshot step the response was computed from
        self.staleness = -1
        self.finish = float("nan")
        self._done = threading.Event()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def latency(self) -> float:
        return self.finish - self.arrival


@dataclass
class ServeStats:
    """Aggregate serving metrics (latencies in seconds)."""

    served: int = 0
    batches: int = 0
    refreshes: int = 0
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    mean_batch: float = 0.0
    max_batch: int = 0
    throughput: float = 0.0
    max_staleness: int = 0
    mean_staleness: float = 0.0
    latencies: List[float] = field(default_factory=list, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "served": self.served,
            "batches": self.batches,
            "refreshes": self.refreshes,
            "p50_latency_ms": self.p50_latency * 1e3,
            "p99_latency_ms": self.p99_latency * 1e3,
            "mean_batch": self.mean_batch,
            "max_batch": self.max_batch,
            "throughput_rps": self.throughput,
            "max_staleness": self.max_staleness,
            "mean_staleness": self.mean_staleness,
        }


class ServingFrontend:
    """Adaptive micro-batching server over one snapshot reader.

    ``predict`` maps a packed ``(B, d)`` input batch to outputs;
    ``load_params`` installs a packed weight vector into the replica the
    predictions run on (for a :class:`repro.nn.network.Network` clone,
    ``net.set_params``).  Use :meth:`for_network` for that common case.
    The replica must belong to the serving tier alone — never the live
    training network.
    """

    def __init__(
        self,
        predict: Callable[[np.ndarray], np.ndarray],
        load_params: Callable[[np.ndarray], None],
        reader: SnapshotReader,
        batch_cap: int = 8,
        max_wait: float = 0.002,
        max_staleness_steps: Optional[int] = None,
        refresh_policy: str = "fresh",
        trace: Optional[Trace] = None,
    ) -> None:
        if batch_cap < 1:
            raise ValueError("batch_cap must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        if refresh_policy not in ("fresh", "lazy"):
            raise ValueError(f"unknown refresh_policy {refresh_policy!r}")
        if max_staleness_steps is not None and max_staleness_steps < 0:
            raise ValueError("max_staleness_steps must be >= 0")
        self.predict = predict
        self.load_params = load_params
        self.reader = reader
        self.batch_cap = batch_cap
        self.max_wait = max_wait
        self.max_staleness_steps = max_staleness_steps
        self.refresh_policy = refresh_policy
        self.trace = trace
        self._queue: Deque[ServedRequest] = deque()
        self._cond = threading.Condition()
        self._stop = False
        self._thread: Optional[threading.Thread] = None
        self._t0 = time.monotonic()
        self._loaded_version = -1
        self._batch_sizes: List[int] = []
        self._staleness: List[int] = []
        self._finished: List[ServedRequest] = []

    @classmethod
    def for_network(cls, net: Any, reader: SnapshotReader, **kwargs: Any) -> "ServingFrontend":
        """A front-end serving from a dedicated :class:`Network` replica."""
        return cls(
            predict=lambda x: net.forward(x, training=False),
            load_params=net.set_params,
            reader=reader,
            **kwargs,
        )

    # -- weight freshness --------------------------------------------------
    def _settle_weights(self) -> int:
        """Apply the refresh policy; returns the staleness being served."""
        reader = self.reader
        stale = reader.staleness()
        must = reader.params is None or stale < 0
        if not must:
            if self.refresh_policy == "fresh":
                must = reader.has_new()
            elif self.max_staleness_steps is not None:
                must = stale > self.max_staleness_steps
        if must:
            reader.refresh()
        if reader.loaded_version != self._loaded_version:
            self.load_params(reader.params)
            self._loaded_version = reader.loaded_version
        return reader.staleness()

    # -- synchronous core (also used directly by tests) --------------------
    def serve_batch(self, requests: List[ServedRequest]) -> None:
        """Settle weights, run one packed forward pass, finish requests."""
        t0 = time.monotonic() - self._t0
        stale = self._settle_weights()
        step = self.reader.loaded_step
        x = np.stack([r.x for r in requests])
        y = self.predict(x)
        t1 = time.monotonic() - self._t0
        for k, req in enumerate(requests):
            req.result = np.asarray(y[k])
            req.step = step
            req.staleness = stale
            req.finish = t1
            req._done.set()
        self._batch_sizes.append(len(requests))
        self._staleness.append(stale)
        self._finished.extend(requests)
        if self.trace is not None:
            # seq = batch index, round = batch size, iteration = snapshot
            # step served, value = staleness in training steps.
            self.trace.add(TraceEvent(
                "service", MASTER, t0, t1, op="serving/batch",
                nbytes=int(x.nbytes), seq=len(self._batch_sizes) - 1,
                round=len(requests), iteration=step, value=float(stale),
            ))

    # -- threaded operation ------------------------------------------------
    def submit(self, x: np.ndarray) -> ServedRequest:
        """Enqueue one request; returns its future immediately."""
        req = ServedRequest(np.asarray(x), time.monotonic() - self._t0)
        with self._cond:
            if self._stop:
                raise RuntimeError("frontend is stopped")
            self._queue.append(req)
            self._cond.notify_all()
        return req

    def start(self) -> "ServingFrontend":
        if self._thread is not None:
            raise RuntimeError("frontend already started")
        self._thread = threading.Thread(target=self._serve_loop, name="serving-frontend")
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain the queue, then stop the server thread."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _serve_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait()
                if not self._queue:
                    return  # stopped and drained
                # Adaptive admission: grow toward the cap while requests
                # keep arriving, but start no later than the oldest
                # request's drain deadline.
                deadline = self._queue[0].arrival + self.max_wait
                while len(self._queue) < self.batch_cap and not self._stop:
                    wait = deadline - (time.monotonic() - self._t0)
                    if wait <= 0 or not self._cond.wait(wait):
                        break
                take = min(self.batch_cap, len(self._queue))
                batch = [self._queue.popleft() for _ in range(take)]
            self.serve_batch(batch)

    # -- reporting ---------------------------------------------------------
    def stats(self) -> ServeStats:
        """Aggregate metrics over everything served so far."""
        reqs = self._finished
        if not reqs:
            return ServeStats(refreshes=self.reader.refreshes)
        lat = np.array([r.latency for r in reqs], dtype=np.float64)
        first = min(r.arrival for r in reqs)
        last = max(r.finish for r in reqs)
        span = max(last - first, 1e-12)
        sizes = self._batch_sizes
        return ServeStats(
            served=len(reqs),
            batches=len(sizes),
            refreshes=self.reader.refreshes,
            p50_latency=float(np.percentile(lat, 50)),
            p99_latency=float(np.percentile(lat, 99)),
            mean_batch=float(np.mean(sizes)),
            max_batch=int(max(sizes)),
            throughput=len(reqs) / span,
            max_staleness=int(max(self._staleness)),
            mean_staleness=float(np.mean(self._staleness)),
            latencies=[float(v) for v in lat],
        )
