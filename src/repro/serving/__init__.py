"""Parameter-server serving tier: inference from live center weights.

The production half of the paper's story — training keeps running while
this package answers inference traffic from the freshest center weights:

- :mod:`repro.serving.snapshot` — :class:`ModelSnapshotter` publishes
  packed center weights into a seqlock-guarded double buffer;
  :class:`SnapshotReader` pulls torn-free, staleness-tagged copies.
- :mod:`repro.serving.microbatch` — the adaptive micro-batching policy,
  in pure deterministic form.
- :mod:`repro.serving.frontend` — the threaded request front-end with
  staleness-bounded weight refresh.
- :mod:`repro.serving.loadgen` — Poisson and on/off-bursty arrival
  processes with open- and closed-loop drivers.

See ``docs/serving.md`` for the architecture and staleness semantics.
"""

from repro.serving.frontend import ServedRequest, ServeStats, ServingFrontend
from repro.serving.loadgen import (
    ClosedLoopLoadGen,
    OpenLoopLoadGen,
    onoff_arrivals,
    poisson_arrivals,
)
from repro.serving.microbatch import (
    PlannedBatch,
    linear_service_time,
    plan_batches,
    plan_latencies,
)
from repro.serving.snapshot import ModelSnapshotter, SnapshotReader

__all__ = [
    "ModelSnapshotter",
    "SnapshotReader",
    "ServingFrontend",
    "ServedRequest",
    "ServeStats",
    "PlannedBatch",
    "plan_batches",
    "plan_latencies",
    "linear_service_time",
    "poisson_arrivals",
    "onoff_arrivals",
    "OpenLoopLoadGen",
    "ClosedLoopLoadGen",
]
