"""Load generation: arrival processes and closed/open-loop drivers.

Two arrival processes cover the traffic shapes the serving tier must
survive:

- **Poisson** — memoryless steady-state traffic at a target rate; the
  baseline every queueing result is stated against.
- **On/off bursty** — a Markov-modulated Poisson process alternating
  exponentially-distributed ON bursts (arrivals at ``rate_on``) with
  silent OFF gaps.  Bursts are what actually stress adaptive batching:
  the batcher must grow to the cap inside a burst and drain small
  batches at the latency deadline between bursts.

Two driver disciplines replay them against a live front-end:

- **Open loop** (:class:`OpenLoopLoadGen`) — arrivals fire on schedule
  regardless of completions, so queue depth is unbounded; this is the
  discipline that finds the saturation throughput.
- **Closed loop** (:class:`ClosedLoopLoadGen`) — N clients each wait for
  their response, think, and submit again, so offered load self-limits
  at ``clients / (latency + think)``; this is what "many concurrent
  users" actually looks like.

All randomness is seeded NumPy ``default_rng`` — a schedule is a pure
function of its parameters, so plans built on it are reproducible.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List

import numpy as np

__all__ = [
    "poisson_arrivals",
    "onoff_arrivals",
    "OpenLoopLoadGen",
    "ClosedLoopLoadGen",
]


def poisson_arrivals(n: int, rate: float, seed: int = 0) -> np.ndarray:
    """``n`` arrival times of a Poisson process at ``rate`` req/s."""
    if n < 0:
        raise ValueError("n must be >= 0")
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate, size=n))


def onoff_arrivals(
    n: int,
    rate_on: float,
    on_mean: float,
    off_mean: float,
    seed: int = 0,
) -> np.ndarray:
    """``n`` arrivals from an exponential ON/OFF burst process.

    ON periods (mean length ``on_mean`` seconds) carry Poisson arrivals
    at ``rate_on``; OFF periods (mean ``off_mean``) carry none.  The
    long-run average rate is ``rate_on * on_mean / (on_mean + off_mean)``.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if rate_on <= 0 or on_mean <= 0 or off_mean <= 0:
        raise ValueError("rate_on, on_mean and off_mean must be positive")
    rng = np.random.default_rng(seed)
    out: List[float] = []
    t = 0.0
    while len(out) < n:
        on_end = t + rng.exponential(on_mean)
        while len(out) < n:
            t += rng.exponential(1.0 / rate_on)
            if t > on_end:
                break
            out.append(t)
        t = on_end + rng.exponential(off_mean)
    return np.asarray(out[:n])


class OpenLoopLoadGen:
    """Replays an arrival schedule into a front-end on the wall clock.

    Arrivals are scheduled, not gated on completions — the generator
    never slows down because the server is behind, which is exactly the
    property that exposes saturation.  ``time_scale`` compresses or
    stretches the schedule (0.5 → twice as fast).
    """

    def __init__(self, arrivals: np.ndarray, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.arrivals = np.asarray(arrivals, dtype=np.float64) * time_scale

    def run(self, frontend: Any, make_request: Callable[[int], np.ndarray]) -> List[Any]:
        """Submit every request at its scheduled offset; wait for all."""
        start = time.monotonic()
        pending = []
        for i, at in enumerate(self.arrivals):
            delay = start + float(at) - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            pending.append(frontend.submit(make_request(i)))
        for p in pending:
            p.wait()
        return pending


class ClosedLoopLoadGen:
    """``clients`` synchronous users in a submit → wait → think loop.

    Each client thread issues ``requests_per_client`` requests; think
    times are exponential with mean ``think_mean`` (0 disables thinking,
    giving the classic latency-limited closed loop).
    """

    def __init__(
        self,
        clients: int,
        requests_per_client: int,
        think_mean: float = 0.0,
        seed: int = 0,
    ) -> None:
        if clients < 1 or requests_per_client < 1:
            raise ValueError("clients and requests_per_client must be >= 1")
        if think_mean < 0:
            raise ValueError("think_mean must be >= 0")
        self.clients = clients
        self.requests_per_client = requests_per_client
        self.think_mean = think_mean
        self.seed = seed

    def run(self, frontend: Any, make_request: Callable[[int], np.ndarray]) -> List[Any]:
        """Run all clients to completion; returns every finished request."""
        done: List[Any] = []
        done_lock = threading.Lock()
        errors: List[BaseException] = []

        def client(cid: int) -> None:
            rng = np.random.default_rng(self.seed + cid)
            try:
                for j in range(self.requests_per_client):
                    req = frontend.submit(make_request(cid * self.requests_per_client + j))
                    req.wait()
                    with done_lock:
                        done.append(req)
                    if self.think_mean > 0:
                        time.sleep(float(rng.exponential(self.think_mean)))
            except BaseException as exc:  # pragma: no cover - ferried to caller
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(c,), name=f"client-{c}")
            for c in range(self.clients)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if errors:
            raise errors[0]
        return done
