"""Publishing and reading torn-free, staleness-tagged weight snapshots.

The bridge between the training hot path and the serving tier.  EASGD's
center variable (Zhang, Choromanska & LeCun, arXiv:1412.6651) is designed
to be a consistent, always-available read point; :class:`ModelSnapshotter`
turns it into one mechanically by copying the packed center vector into a
:class:`~repro.comm.shm_transport.SeqlockBuffer` after training steps.
Publishing is one bounded memcpy plus four int64 stores — it never takes
a lock the training loop could block on, and readers never block the
writer.

:class:`SnapshotReader` is the serving-side counterpart: it caches the
last loaded snapshot and quantifies its **staleness** — how many training
steps the cached weights lag the trainer's heartbeat — which is the
quantity the front-end's ``max_staleness_steps`` bound is enforced
against (staleness-bounded reads in the sense of Elastic Consistency,
arXiv:2001.05918).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.comm.shm_transport import SeqlockBuffer
from repro.trace.events import MASTER, Trace

__all__ = ["ModelSnapshotter", "SnapshotReader"]


class ModelSnapshotter:
    """Publishes packed center weights for the serving tier.

    Attach one to a :class:`~repro.engine.pipeline.StepPipeline` (via
    ``pipeline.snapshotter``) and the engine calls :meth:`on_step` after
    every completed step.  ``publish_every`` thins full publishes; the
    per-step heartbeat (:meth:`SeqlockBuffer.mark_step`) always advances
    so readers can measure how far behind a cached snapshot is even
    between publishes.

    ``shared=True`` backs the buffer with named POSIX shm so serving
    processes in a different address space can attach by :attr:`name`;
    the default keeps it on the heap for in-process (thread) serving.
    """

    def __init__(
        self,
        elems: int,
        shared: bool = False,
        publish_every: int = 1,
        trace: Optional[Trace] = None,
    ) -> None:
        if publish_every < 1:
            raise ValueError("publish_every must be >= 1")
        self.buffer = SeqlockBuffer.create(elems, shared=shared)
        self.publish_every = publish_every
        self.publishes = 0
        self.trace = trace

    @property
    def name(self) -> Optional[str]:
        """Shm segment name for cross-process :meth:`SnapshotReader.attach`."""
        return self.buffer.name

    @property
    def elems(self) -> int:
        return self.buffer.elems

    def on_step(self, params: np.ndarray, step: int, sim_time: float = 0.0) -> None:
        """Engine hook: heartbeat every step, full publish at the cadence."""
        self.buffer.mark_step(step)
        if step % self.publish_every == 0:
            self.publish(params, step, sim_time)

    def publish(self, params: np.ndarray, step: int, sim_time: float = 0.0) -> int:
        """Copy ``params`` into the buffer as the step-``step`` snapshot."""
        version = self.buffer.publish(params, step)
        self.publishes += 1
        if self.trace is not None:
            self.trace.span(
                "mark", MASTER, sim_time, sim_time,
                op="serving/publish", iteration=step, value=float(version),
                nbytes=self.buffer.elems * 4,
            )
        return version

    def reader(self) -> "SnapshotReader":
        """An in-process reader over this snapshotter's buffer."""
        return SnapshotReader(self.buffer)

    def close(self, unlink: bool = False) -> None:
        self.buffer.close(unlink=unlink)


class SnapshotReader:
    """Caches the newest loaded snapshot and tracks its staleness.

    ``refresh()`` pulls a torn-free copy when (and only when) a newer
    version exists; ``staleness()`` is the number of training steps the
    cached weights lag the trainer's heartbeat.  One reader serves one
    front-end; readers are independent, so many can share a buffer.
    """

    def __init__(self, buffer: SeqlockBuffer) -> None:
        self.buffer = buffer
        self.params: Optional[np.ndarray] = None
        self.loaded_step = -1
        self.loaded_version = 0
        self.refreshes = 0
        self._owns_mapping = False

    @classmethod
    def attach(cls, name: str, elems: int) -> "SnapshotReader":
        """Attach to a shared snapshotter buffer from another process."""
        reader = cls(SeqlockBuffer.attach(name, elems))
        reader._owns_mapping = True
        return reader

    def has_new(self) -> bool:
        """Whether a newer snapshot than the cached one has been published."""
        return self.buffer.version > self.loaded_version

    def staleness(self) -> int:
        """Training steps the cached snapshot lags the trainer heartbeat.

        ``-1`` means nothing was ever loaded (infinitely stale); the
        front-end treats that as an unconditional refresh.
        """
        if self.loaded_step < 0:
            return -1
        return max(0, self.buffer.train_step - self.loaded_step)

    def refresh(self, force: bool = False) -> Tuple[np.ndarray, int, int]:
        """Load the newest snapshot if one exists; return the cached one.

        Returns ``(params, step, version)``.  ``force`` re-copies even at
        the same version (paranoia knob; the copy is torn-free either
        way).  Raises if nothing has ever been published.
        """
        if self.params is None or force or self.has_new():
            if self.buffer.version == 0:
                if self.params is None:
                    raise RuntimeError("no snapshot has been published yet")
            else:
                out = self.params if self.params is not None else None
                params, step, version = self.buffer.read(out=out)
                self.params = params
                self.loaded_step = step
                self.loaded_version = version
                self.refreshes += 1
        return self.params, self.loaded_step, self.loaded_version

    def close(self) -> None:
        """Release the buffer mapping if this reader attached it."""
        if self._owns_mapping:
            self.buffer.close()
