"""Adaptive micro-batching: the admission policy and its deterministic plan.

A serving front-end that runs one forward pass per request wastes the
packed-batch arithmetic the network is built around; one that always
waits for a full batch adds unbounded latency at low load.  Adaptive
micro-batching is the standard compromise: coalesce whatever has queued,
**start no later than the oldest request's latency deadline**, and let
the batch grow toward the cap only while the queue is dense.  Under load
the policy degenerates to full fixed-size batches (maximum throughput);
when idle it degenerates to batch-of-one at ``max_wait`` extra latency.

:func:`plan_batches` is the policy in pure form — arrivals in, batch
plan out, no clocks, no threads — so tests can assert exact batch
boundaries and the simulated latency distribution is reproducible
bit-for-bit from a seed.  The threaded front-end applies the same rule
against the wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

__all__ = ["PlannedBatch", "plan_batches", "plan_latencies", "linear_service_time"]


@dataclass(frozen=True)
class PlannedBatch:
    """One planned forward pass over ``indices`` into the arrival list."""

    indices: Tuple[int, ...]
    start: float
    finish: float

    @property
    def size(self) -> int:
        return len(self.indices)


def linear_service_time(fixed: float, per_item: float) -> Callable[[int], float]:
    """An affine batch cost model: ``fixed + per_item * batch_size``.

    The shape that makes micro-batching pay: the fixed term (kernel
    launch, weight refresh, Python dispatch) is amortized over the batch.
    """

    def service_time(batch_size: int) -> float:
        return fixed + per_item * batch_size

    return service_time


def plan_batches(
    arrivals: Sequence[float],
    batch_cap: int,
    max_wait: float,
    service_time: Callable[[int], float],
) -> List[PlannedBatch]:
    """Deterministic single-server adaptive-batching schedule.

    ``arrivals`` must be sorted ascending.  The server starts the next
    batch at::

        start = max(server_free, min(t_cap_filled, first_arrival + max_wait))

    i.e. as soon as the cap is reachable, no later than the oldest
    request's drain deadline, and never while busy — then admits every
    request that has arrived by ``start``, oldest first, up to the cap.
    Returns one :class:`PlannedBatch` per forward pass; per-request
    latency is ``batch.finish - arrivals[i]``.
    """
    if batch_cap < 1:
        raise ValueError("batch_cap must be >= 1")
    if max_wait < 0:
        raise ValueError("max_wait must be >= 0")
    n = len(arrivals)
    for j in range(1, n):
        if arrivals[j] < arrivals[j - 1]:
            raise ValueError("arrivals must be sorted ascending")
    plan: List[PlannedBatch] = []
    free = 0.0
    i = 0
    while i < n:
        first = arrivals[i]
        cap_at = arrivals[i + batch_cap - 1] if i + batch_cap - 1 < n else float("inf")
        start = max(free, min(cap_at, first + max_wait))
        batch = [i]
        i += 1
        while len(batch) < batch_cap and i < n and arrivals[i] <= start:
            batch.append(i)
            i += 1
        finish = start + service_time(len(batch))
        plan.append(PlannedBatch(tuple(batch), start, finish))
        free = finish
    return plan


def plan_latencies(
    arrivals: Sequence[float], plan: Sequence[PlannedBatch]
) -> List[float]:
    """Per-request latency (finish − arrival) implied by ``plan``."""
    out = [0.0] * len(arrivals)
    for batch in plan:
        for idx in batch.indices:
            out[idx] = batch.finish - arrivals[idx]
    return out
