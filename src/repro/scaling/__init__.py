"""Weak-scaling study (Section 7.1, Table 4, Figure 13) and the
Intel-Caffe-like behavioural baseline."""

from repro.scaling.baselines import intel_caffe_like, our_implementation
from repro.scaling.batch_size import batch_size_study, BatchPoint, blas_efficiency
from repro.scaling.weak_scaling import (
    CORES_PER_NODE,
    ScalingPoint,
    weak_scaling_sweep,
    WeakScalingModel,
)

__all__ = [
    "WeakScalingModel",
    "ScalingPoint",
    "weak_scaling_sweep",
    "CORES_PER_NODE",
    "our_implementation",
    "intel_caffe_like",
    "blas_efficiency",
    "BatchPoint",
    "batch_size_study",
]
