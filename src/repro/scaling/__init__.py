"""Weak-scaling study (Section 7.1, Table 4, Figure 13) and the
Intel-Caffe-like behavioural baseline."""

from repro.scaling.weak_scaling import (
    WeakScalingModel,
    ScalingPoint,
    weak_scaling_sweep,
    CORES_PER_NODE,
)
from repro.scaling.baselines import our_implementation, intel_caffe_like
from repro.scaling.batch_size import blas_efficiency, BatchPoint, batch_size_study

__all__ = [
    "WeakScalingModel",
    "ScalingPoint",
    "weak_scaling_sweep",
    "CORES_PER_NODE",
    "our_implementation",
    "intel_caffe_like",
    "blas_efficiency",
    "BatchPoint",
    "batch_size_study",
]
