"""The Table 4 weak-scaling model.

Protocol (Section 7.1): every node holds one full copy of the dataset and a
fixed per-node batch, so the global work per iteration grows with the node
count; a fixed iteration budget (GoogleNet: 300, VGG: 80) is timed at 1..64
nodes (68..4352 cores). Efficiency(P) = T(1) / T(P).

Per-iteration time at P nodes:

    T_iter(P) = compute * straggler(P) + allreduce(P)

- ``compute`` is calibrated so T_iter(1) matches the paper's measured
  single-node numbers (1533 s / 300 iters for GoogleNet, 1318 s / 80 for
  VGG) — our KNL device model is close but the paper's absolute numbers are
  authoritative for this table.
- ``straggler(P)``: a synchronous iteration waits for the slowest node.
  With per-node lognormal jitter sigma, E[max of P] ~ exp(sigma *
  sqrt(2 ln P)) — the classic extreme-value growth — so barriers cost more
  at scale even with perfect communication.
- ``allreduce(P)``: tree bcast + reduce of the packed weights over the
  fabric at an *effective* bandwidth (fabric injection discounted by
  protocol/pipelining overheads). The Intel Caffe baseline differs here:
  per-blob messages and no compute/communication overlap give it a ~2.8x
  worse effective bandwidth (see :mod:`repro.scaling.baselines`).
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import List, Sequence

from repro.comm.alphabeta import CRAY_ARIES, LinkModel
from repro.comm.collectives import tree_rounds
from repro.nn.spec import ModelSpec

__all__ = ["CORES_PER_NODE", "ScalingPoint", "WeakScalingModel", "weak_scaling_sweep"]

#: Cori KNL: 68 cores per node (Table 4's column headers are node * 68).
CORES_PER_NODE = 68


def straggler_factor(nodes: int, sigma: float) -> float:
    """Expected slowdown from waiting for the slowest of ``nodes`` nodes."""
    if nodes <= 0:
        raise ValueError("nodes must be positive")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if nodes == 1 or sigma == 0.0:
        return 1.0
    return math.exp(sigma * math.sqrt(2.0 * math.log(nodes)))


@dataclass(frozen=True)
class ScalingPoint:
    """One column of Table 4."""

    nodes: int
    cores: int
    total_seconds: float
    efficiency: float


@dataclass(frozen=True)
class WeakScalingModel:
    """A (model, implementation) pair's weak-scaling behaviour."""

    name: str
    spec: ModelSpec
    iterations: int  # the fixed iteration budget Table 4 times
    single_node_seconds: float  # measured T(1) for that budget (calibration)
    effective_beta: float  # seconds/byte the allreduce achieves
    message_count: int = 1  # 1 = packed; >1 = per-blob (Caffe-style)
    straggler_sigma: float = 0.03
    network: LinkModel = CRAY_ARIES

    def __post_init__(self) -> None:
        if self.iterations <= 0 or self.single_node_seconds <= 0:
            raise ValueError("iterations and single-node time must be positive")
        if self.effective_beta <= 0:
            raise ValueError("effective_beta must be positive")
        if self.message_count <= 0:
            raise ValueError("message_count must be positive")

    @property
    def compute_per_iter(self) -> float:
        """Single-node seconds per iteration (no communication at P=1)."""
        return self.single_node_seconds / self.iterations

    def allreduce_seconds(self, nodes: int) -> float:
        """Tree bcast + tree reduce of the weights across ``nodes``."""
        hops = tree_rounds(nodes)
        per_hop = (
            self.message_count * self.network.alpha
            + self.spec.nbytes * self.effective_beta
        )
        return 2.0 * hops * per_hop

    def iter_seconds(self, nodes: int) -> float:
        return (
            self.compute_per_iter * straggler_factor(nodes, self.straggler_sigma)
            + self.allreduce_seconds(nodes)
        )

    def total_seconds(self, nodes: int) -> float:
        return self.iterations * self.iter_seconds(nodes)

    def efficiency(self, nodes: int) -> float:
        return self.total_seconds(1) / self.total_seconds(nodes)

    def point(self, nodes: int) -> ScalingPoint:
        return ScalingPoint(
            nodes=nodes,
            cores=nodes * CORES_PER_NODE,
            total_seconds=self.total_seconds(nodes),
            efficiency=self.efficiency(nodes),
        )


def weak_scaling_sweep(
    model: WeakScalingModel, node_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64)
) -> List[ScalingPoint]:
    """Evaluate the model at Table 4's node counts (68 .. 4352 cores)."""
    return [model.point(n) for n in node_counts]
