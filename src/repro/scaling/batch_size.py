"""The impact of batch size (Section 7.2).

The paper's discussion: for small batches (32..1024), increasing the batch
speeds up DNN training "because larger batch size makes BLAS functions run
more efficiently"; beyond a threshold (~4096) it slows down because sharp
minima demand more epochs (Keskar et al.). Both effects are modeled /
measured here:

- **BLAS efficiency** is an analytic saturation curve: GEMMs on b-row
  matrices reach a fraction ``b / (b + b_half)`` of the device's large-
  batch throughput (calibration constant ``b_half``).
- **Epoch demand** is *measured*: real training of a mini network at each
  batch size until a target accuracy, counting samples consumed.

Time-to-accuracy = samples x seconds-per-sample(batch), which is U-shaped
in the batch size exactly as Section 7.2 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.cluster.cost import CostModel
from repro.cluster.devices import DeviceModel, K80_HALF
from repro.data.dataset import Dataset
from repro.data.loader import BatchSampler
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Network

__all__ = ["blas_efficiency", "BatchPoint", "batch_size_study"]


def blas_efficiency(batch_size: int, b_half: int = 64) -> float:
    """Fraction of large-batch GEMM throughput achieved at ``batch_size``.

    Saturating curve ``b / (b + b_half)``: at b = b_half the device runs at
    half its asymptotic rate; tiny batches are launch/latency bound.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if b_half <= 0:
        raise ValueError("b_half must be positive")
    return batch_size / (batch_size + b_half)


@dataclass(frozen=True)
class BatchPoint:
    """One batch size's measured outcome."""

    batch_size: int
    iterations: int
    samples: int
    reached: bool
    seconds_per_sample: float

    @property
    def sim_time(self) -> float:
        """Time-to-accuracy under the batch-dependent throughput model."""
        return self.samples * self.seconds_per_sample


def batch_size_study(
    model_builder: Callable[[], Network],
    train_set: Dataset,
    test_set: Dataset,
    batch_sizes: Sequence[int],
    target_accuracy: float,
    lr_scale: Callable[[int], float],
    cost_model: Optional[CostModel] = None,
    device: DeviceModel = K80_HALF,
    b_half: int = 64,
    max_samples: int = 2_000_000,
    eval_every_samples: int = 8_192,
    eval_samples: int = 512,
    seed: int = 0,
) -> List[BatchPoint]:
    """Measure samples-to-accuracy per batch size; model seconds/sample.

    ``lr_scale(batch)`` supplies the learning rate per batch size — the
    paper notes users "need to change learning rate and momentum at the
    same time" when scaling the batch (linear scaling is the usual rule).
    """
    if not batch_sizes:
        raise ValueError("need at least one batch size")
    if not 0.0 < target_accuracy <= 1.0:
        raise ValueError("target_accuracy must be in (0, 1]")

    points: List[BatchPoint] = []
    loss = SoftmaxCrossEntropy()
    n_eval = min(eval_samples, len(test_set))
    eval_x = test_set.images[:n_eval]
    eval_y = test_set.labels[:n_eval]

    for b in batch_sizes:
        net = model_builder()
        sampler = BatchSampler(train_set, b, seed, name=("batch-study", b))
        lr = lr_scale(b)
        samples = 0
        iterations = 0
        reached = False
        next_eval = eval_every_samples
        while samples < max_samples:
            images, labels = sampler.next_batch()
            net.gradient(images, labels, loss)
            net.params -= lr * net.grads
            samples += b
            iterations += 1
            if samples >= next_eval:
                next_eval += eval_every_samples
                if net.evaluate(eval_x, eval_y) >= target_accuracy:
                    reached = True
                    break

        cost = cost_model or CostModel.from_network(net)
        per_sample_flops = (cost.fwdbwd_flops(b) / b)
        seconds_per_sample = per_sample_flops / (
            device.effective_flops * blas_efficiency(b, b_half)
        )
        points.append(
            BatchPoint(
                batch_size=b,
                iterations=iterations,
                samples=samples,
                reached=reached,
                seconds_per_sample=seconds_per_sample,
            )
        )
    return points
