"""Weak-scaling baselines: our implementation vs an Intel-Caffe-like model.

The paper compares against Intel Caffe, "the state-of-the-art implementation
for both single-node and multi-node on Xeon and Xeon Phi platforms", with
*identical single-node performance* ("we have the same single-node
performance (baseline) with Intel Caffe"). The difference is purely in the
multi-node communication path:

- **ours** (Algorithm 4 + Section 5.2): one packed message per collective
  hop, compute/communication overlap -> high effective bandwidth.
- **Intel Caffe**: per-blob (layer-by-layer) messages and a blocking,
  non-overlapped allreduce -> ~2.8x worse effective bandwidth on the same
  fabric. The factor is calibrated so the modeled efficiencies land on the
  paper's measured 87% (GoogleNet) / 62% (VGG) at 2176 cores.

Both share the straggler term, since both are bulk-synchronous.
"""

from __future__ import annotations

from repro.nn.spec import ModelSpec
from repro.scaling.weak_scaling import WeakScalingModel

__all__ = [
    "OUR_EFFECTIVE_BETA",
    "CAFFE_EFFECTIVE_BETA",
    "our_implementation",
    "intel_caffe_like",
    "TABLE4_BUDGETS",
]

#: Effective seconds/byte of our packed, overlapped tree allreduce on Aries.
OUR_EFFECTIVE_BETA = 5.8e-10  # ~1.7 GB/s effective

#: Effective seconds/byte of the per-blob, blocking Intel Caffe allreduce.
CAFFE_EFFECTIVE_BETA = 1.6e-9  # ~0.6 GB/s effective

#: (iterations timed, measured single-node seconds) from Table 4's 68-core
#: column: GoogleNet 300 iters in 1533 s, VGG 80 iters in 1318 s.
TABLE4_BUDGETS = {
    "GoogleNet": (300, 1533.0),
    "VGG-19": (80, 1318.0),
}


def _budget(spec: ModelSpec) -> tuple:
    try:
        return TABLE4_BUDGETS[spec.name]
    except KeyError:
        raise KeyError(
            f"no Table 4 budget for {spec.name!r}; known: {sorted(TABLE4_BUDGETS)}"
        ) from None


def our_implementation(spec: ModelSpec, straggler_sigma: float = 0.03) -> WeakScalingModel:
    """Our Sync EASGD implementation's weak-scaling model for ``spec``."""
    iterations, single_node = _budget(spec)
    return WeakScalingModel(
        name=f"ours/{spec.name}",
        spec=spec,
        iterations=iterations,
        single_node_seconds=single_node,
        effective_beta=OUR_EFFECTIVE_BETA,
        message_count=1,
        straggler_sigma=straggler_sigma,
    )


def intel_caffe_like(spec: ModelSpec, straggler_sigma: float = 0.03) -> WeakScalingModel:
    """The Intel-Caffe-like baseline for ``spec`` (same single-node speed)."""
    iterations, single_node = _budget(spec)
    return WeakScalingModel(
        name=f"intel-caffe/{spec.name}",
        spec=spec,
        iterations=iterations,
        single_node_seconds=single_node,
        effective_beta=CAFFE_EFFECTIVE_BETA,
        message_count=len(spec.layer_messages()),
        straggler_sigma=straggler_sigma,
    )
