"""Deterministic random-number stream management.

Every stochastic component in the reproduction (data generators, weight
initialization, per-worker compute jitter, batch sampling) draws from a
named, seeded stream so that whole experiments are bit-reproducible — the
paper's Sync EASGD determinism claim is only testable if the substrate
itself is deterministic.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "spawn_rng", "RngStream"]


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a child seed from a root seed and a path of names.

    Uses BLAKE2 over the textual path so that seeds are stable across runs,
    Python versions, and process boundaries (unlike ``hash()``).
    """
    text = f"{root_seed}//" + "/".join(str(n) for n in names)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def spawn_rng(root_seed: int, *names: object) -> np.random.Generator:
    """Create an independent ``numpy.random.Generator`` for a named component."""
    return np.random.default_rng(derive_seed(root_seed, *names))


class RngStream:
    """A hierarchical RNG: ``stream.child("worker", 3)`` is an independent
    generator that is a pure function of (root seed, path).

    This gives each simulated worker/master/dataset its own stream, so
    reordering the construction of components does not perturb any of them.
    """

    def __init__(self, root_seed: int, *path: object) -> None:
        self.root_seed = int(root_seed)
        self.path = tuple(path)
        self.generator = spawn_rng(self.root_seed, *self.path)

    def child(self, *names: object) -> "RngStream":
        """Return an independent child stream at ``path + names``."""
        return RngStream(self.root_seed, *(self.path + names))

    def getstate(self) -> dict:
        """Snapshot the stream as a plain picklable dict.

        Captures identity (root seed + path) and the exact bit-generator
        position, so a restored stream emits the identical tail sequence.
        """
        return {
            "root_seed": self.root_seed,
            "path": [str(p) for p in self.path],
            "bit_generator": self.generator.bit_generator.state,
        }

    def setstate(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`getstate`.

        The stream's identity must match: restoring a different stream's
        position would silently entangle two supposedly independent
        streams, so it raises ``ValueError`` instead.
        """
        ours = [str(p) for p in self.path]
        if state["root_seed"] != self.root_seed or state["path"] != ours:
            raise ValueError(
                f"RNG state belongs to stream (seed={state['root_seed']}, "
                f"path={state['path']}), not (seed={self.root_seed}, path={ours})"
            )
        self.generator.bit_generator.state = state["bit_generator"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(seed={self.root_seed}, path={self.path!r})"
