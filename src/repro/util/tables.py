"""Minimal text-table renderer for paper-style table output.

The benchmark harness prints rows that mirror the paper's Tables 3 and 4;
this keeps that rendering in one place and testable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["TextTable"]


class TextTable:
    """Accumulate rows and render an aligned monospace table."""

    def __init__(self, headers: Sequence[str]) -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.headers: List[str] = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(row: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()

        lines = [fmt(self.headers), fmt(["-" * w for w in widths])]
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
