"""Human-readable formatting helpers used by the experiment harness output."""

from __future__ import annotations

__all__ = ["format_bytes", "format_seconds", "format_percent"]

_BYTE_UNITS = ["B", "KB", "MB", "GB", "TB"]


def format_bytes(n: float) -> str:
    """Render a byte count with a binary-ish unit, e.g. ``249.0 MB``."""
    value = float(n)
    for unit in _BYTE_UNITS:
        if abs(value) < 1024.0 or unit == _BYTE_UNITS[-1]:
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(t: float) -> str:
    """Render a duration: microseconds up to hours, matching paper-style rows."""
    if t < 1e-3:
        return f"{t * 1e6:.1f} us"
    if t < 1.0:
        return f"{t * 1e3:.1f} ms"
    if t < 120.0:
        return f"{t:.1f} s"
    if t < 7200.0:
        return f"{t / 60.0:.1f} min"
    return f"{t / 3600.0:.2f} h"


def format_percent(fraction: float) -> str:
    """Render a fraction in [0, 1] as a percentage string, e.g. ``87%``."""
    return f"{100.0 * fraction:.0f}%"
