"""Small shared utilities: seeded RNG streams, human formatting, text tables."""

from repro.util.rng import RngStream, spawn_rng, derive_seed
from repro.util.format import format_bytes, format_seconds, format_percent
from repro.util.tables import TextTable

__all__ = [
    "RngStream",
    "spawn_rng",
    "derive_seed",
    "format_bytes",
    "format_seconds",
    "format_percent",
    "TextTable",
]
