"""Small shared utilities: seeded RNG streams, human formatting, text tables."""

from repro.util.format import format_bytes, format_percent, format_seconds
from repro.util.rng import derive_seed, RngStream, spawn_rng
from repro.util.tables import TextTable

__all__ = [
    "RngStream",
    "spawn_rng",
    "derive_seed",
    "format_bytes",
    "format_seconds",
    "format_percent",
    "TextTable",
]
