"""Communication substrate: alpha-beta cost model, message packing plans,
tree collectives (real numerics + modeled cost), and platform topologies."""

from repro.comm.alphabeta import (
    CRAY_ARIES,
    INTEL_10GBE,
    INTEL_QDR_40G,
    LinkModel,
    MELLANOX_FDR_56G,
    PCIE_GEN3_X16,
    PCIE_SWITCH_P2P,
    TABLE2_NETWORKS,
)
from repro.comm.arena import BufferArena
from repro.comm.backend import BACKENDS, make_communicator, validate_backend
from repro.comm.collectives import (
    allreduce_cost,
    flat_sequential_cost,
    tree_bcast_cost,
    tree_bcast_order,
    tree_reduce,
    tree_reduce_cost,
)
from repro.comm.collectives import ring_allreduce, ring_allreduce_cost
from repro.comm.mp_runtime import (
    fork_available,
    MpRankContext,
    MultiprocessCommunicator,
    RemoteRankError,
    SharedFlatArray,
)
from repro.comm.packing import MessagePlan, packed_plan, per_layer_plan
from repro.comm.runtime import (
    COLLECTIVE_TAG_STRIDE,
    collective_wire_tags,
    DeadlockError,
    InProcessCommunicator,
    MultiRankError,
    RankContext,
)
from repro.comm.shm_transport import (
    RingBackpressureError,
    ShmSlotRef,
    ShmTransport,
    SlotRing,
    TRANSPORTS,
    validate_transport,
)
from repro.comm.topology import GpuNodeTopology, KnlClusterTopology

__all__ = [
    "LinkModel",
    "MELLANOX_FDR_56G",
    "INTEL_QDR_40G",
    "INTEL_10GBE",
    "PCIE_GEN3_X16",
    "PCIE_SWITCH_P2P",
    "CRAY_ARIES",
    "TABLE2_NETWORKS",
    "MessagePlan",
    "packed_plan",
    "per_layer_plan",
    "tree_reduce",
    "tree_bcast_order",
    "tree_reduce_cost",
    "tree_bcast_cost",
    "flat_sequential_cost",
    "allreduce_cost",
    "GpuNodeTopology",
    "KnlClusterTopology",
    "COLLECTIVE_TAG_STRIDE",
    "collective_wire_tags",
    "DeadlockError",
    "MultiRankError",
    "InProcessCommunicator",
    "RankContext",
    "MpRankContext",
    "MultiprocessCommunicator",
    "RemoteRankError",
    "SharedFlatArray",
    "fork_available",
    "BACKENDS",
    "TRANSPORTS",
    "BufferArena",
    "RingBackpressureError",
    "ShmSlotRef",
    "ShmTransport",
    "SlotRing",
    "make_communicator",
    "validate_backend",
    "validate_transport",
    "ring_allreduce",
    "ring_allreduce_cost",
]
