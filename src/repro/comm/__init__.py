"""Communication substrate: alpha-beta cost model, message packing plans,
tree collectives (real numerics + modeled cost), and platform topologies."""

from repro.comm.alphabeta import (
    LinkModel,
    MELLANOX_FDR_56G,
    INTEL_QDR_40G,
    INTEL_10GBE,
    PCIE_GEN3_X16,
    PCIE_SWITCH_P2P,
    CRAY_ARIES,
    TABLE2_NETWORKS,
)
from repro.comm.packing import MessagePlan, packed_plan, per_layer_plan
from repro.comm.collectives import (
    tree_reduce,
    tree_bcast_order,
    tree_reduce_cost,
    tree_bcast_cost,
    flat_sequential_cost,
    allreduce_cost,
)
from repro.comm.topology import GpuNodeTopology, KnlClusterTopology
from repro.comm.runtime import DeadlockError, InProcessCommunicator, RankContext
from repro.comm.collectives import ring_allreduce, ring_allreduce_cost

__all__ = [
    "LinkModel",
    "MELLANOX_FDR_56G",
    "INTEL_QDR_40G",
    "INTEL_10GBE",
    "PCIE_GEN3_X16",
    "PCIE_SWITCH_P2P",
    "CRAY_ARIES",
    "TABLE2_NETWORKS",
    "MessagePlan",
    "packed_plan",
    "per_layer_plan",
    "tree_reduce",
    "tree_bcast_order",
    "tree_reduce_cost",
    "tree_bcast_cost",
    "flat_sequential_cost",
    "allreduce_cost",
    "GpuNodeTopology",
    "KnlClusterTopology",
    "DeadlockError",
    "InProcessCommunicator",
    "RankContext",
    "ring_allreduce",
    "ring_allreduce_cost",
]
