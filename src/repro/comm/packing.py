"""Message plans: packed single-buffer vs per-layer communication (Sec 5.2).

Current deep-learning systems "allocate noncontiguous memory for different
layers... and conduct multiple rounds of communication for different layers";
the paper instead packs all layers into one contiguous buffer and sends one
message. A :class:`MessagePlan` is the list of message sizes one model
exchange requires; its cost on a link follows directly from alpha-beta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.comm.alphabeta import LinkModel

__all__ = ["MessagePlan", "packed_plan", "per_layer_plan", "chunked_plan"]


@dataclass(frozen=True)
class MessagePlan:
    """A sequence of message sizes implementing one weight exchange."""

    name: str
    sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("a message plan needs at least one message")
        if any(s < 0 for s in self.sizes):
            raise ValueError("message sizes must be non-negative")

    @property
    def total_bytes(self) -> int:
        return sum(self.sizes)

    @property
    def num_messages(self) -> int:
        return len(self.sizes)

    def cost(self, link: LinkModel) -> float:
        """Back-to-back transfer time: ``L * alpha + beta * total_bytes``."""
        return link.cost_many(self.sizes)


def packed_plan(layer_sizes: Sequence[int]) -> MessagePlan:
    """One message carrying every layer (the paper's optimized scheme)."""
    return MessagePlan("packed", (int(sum(layer_sizes)),))


def per_layer_plan(layer_sizes: Sequence[int]) -> MessagePlan:
    """One message per layer (the conventional scheme the paper replaces)."""
    return MessagePlan("per-layer", tuple(int(s) for s in layer_sizes))


def chunked_plan(layer_sizes: Sequence[int], chunk_bytes: int) -> MessagePlan:
    """The packed buffer split into fixed-size pipeline chunks.

    The wire plan of the chunked tree reduce (``chunk_elems``): same total
    bytes as :func:`packed_plan`, but ``ceil(total / chunk_bytes)``
    messages whose transfers can overlap the receive-side reduction. Its
    alpha-beta ``cost`` deliberately charges the *serial* chunk train —
    compare against :func:`repro.comm.pipelining.pipelined_hops_cost` to
    see what the overlap buys.
    """
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    total = int(sum(layer_sizes))
    if total == 0:
        return MessagePlan("chunked", (0,))
    full, rem = divmod(total, chunk_bytes)
    sizes = (chunk_bytes,) * full + ((rem,) if rem else ())
    return MessagePlan("chunked", sizes)
