"""The alpha-beta communication model (Section 5.2, Table 2).

Sending an n-byte message costs ``alpha + beta * n`` seconds, where alpha is
the per-message latency and beta the reciprocal bandwidth. The paper's
Table 2 lists measured constants for three InfiniBand-class networks; we add
PCIe and Cray Aries entries for the multi-GPU node and the Cori KNL cluster
(Artifact Description 10.4). beta << alpha for small messages, which is why
packing L layer messages into one (L*alpha -> alpha) wins — Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LinkModel",
    "MELLANOX_FDR_56G",
    "INTEL_QDR_40G",
    "INTEL_10GBE",
    "PCIE_GEN3_X16",
    "PCIE_SWITCH_P2P",
    "CRAY_ARIES",
    "MCDRAM_LINK",
    "DDR4_LINK",
    "TABLE2_NETWORKS",
]


@dataclass(frozen=True)
class LinkModel:
    """One communication link under the alpha-beta model."""

    name: str
    alpha: float  # latency, seconds per message
    beta: float  # reciprocal bandwidth, seconds per byte

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")

    def cost(self, nbytes: float) -> float:
        """Time to move one ``nbytes`` message across this link."""
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        return self.alpha + self.beta * nbytes

    def cost_many(self, sizes) -> float:
        """Time to move several messages back-to-back (no pipelining)."""
        total_bytes = 0.0
        count = 0
        for n in sizes:
            if n < 0:
                raise ValueError("message size must be non-negative")
            total_bytes += n
            count += 1
        return count * self.alpha + self.beta * total_bytes

    @property
    def bandwidth(self) -> float:
        """Asymptotic bandwidth in bytes/second."""
        return float("inf") if self.beta == 0 else 1.0 / self.beta


# --- Table 2 (measured by the paper) ----------------------------------------
MELLANOX_FDR_56G = LinkModel("Mellanox 56Gb/s FDR IB", alpha=0.7e-6, beta=0.2e-9)
INTEL_QDR_40G = LinkModel("Intel 40Gb/s QDR IB", alpha=1.2e-6, beta=0.3e-9)
INTEL_10GBE = LinkModel("Intel 10GbE NetEffect NE020", alpha=7.2e-6, beta=0.9e-9)

TABLE2_NETWORKS = (MELLANOX_FDR_56G, INTEL_QDR_40G, INTEL_10GBE)

# --- Platform links (calibration constants; not from Table 2) ---------------
# PCIe gen3 x16 host<->GPU: ~12 GB/s wire rate, but each cudaMemcpy of an
# unpinned weight tensor pays a large fixed driver/synchronization latency.
# alpha is calibrated so that the per-layer (16-message) LeNet weight
# exchange of Original EASGD costs ~7 ms/iteration — the value Table 3
# measures (86% of 8.2 ms) — which in turn is what makes packing layers
# into one message (Section 5.2, Figure 10) matter.
PCIE_GEN3_X16 = LinkModel("PCIe gen3 x16 (host-GPU)", alpha=420e-6, beta=1 / 12e9)

# Peer-to-peer through the 96-lane PCIe switch (GPU<->GPU, NCCL-style):
# lower per-message overhead, similar wire rate. Calibrated against the
# Sync EASGD2 row of Table 3 (gpu-gpu para = 16% of 8.2 ms).
PCIE_SWITCH_P2P = LinkModel("PCIe switch p2p (GPU-GPU)", alpha=200e-6, beta=1 / 10e9)

# Cray Aries (Cori): per-node injection ~10 GB/s, ~1.3 us latency.
CRAY_ARIES = LinkModel("Cray Aries (Cori)", alpha=1.3e-6, beta=0.1e-9)

# On-package memories of the KNL, expressed as links for the partitioning
# model (Section 6.2): moving a weight replica through MCDRAM vs DDR4.
MCDRAM_LINK = LinkModel("KNL MCDRAM", alpha=0.3e-6, beta=1 / 475e9)
DDR4_LINK = LinkModel("KNL DDR4", alpha=0.3e-6, beta=1 / 90e9)
