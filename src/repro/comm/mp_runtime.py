"""Multiprocess rank backend: OS processes + POSIX shared memory.

The threaded :class:`repro.comm.runtime.InProcessCommunicator` is the
right tool for semantics (deadlocks, schedules, bit-exact collectives) but
the wrong tool for *scaling measurements*: NumPy releases the GIL for big
kernels, yet the Python glue between kernels serializes, so thread-backed
"P workers" mostly measure scheduler behaviour. This module provides the
same rank API over real processes, which is what the paper's KNL
chip-partitioning experiments (Section 6.2, Figure 12) actually exercise:
independent cores with weight replicas in shared physical memory.

Design:

- :class:`MpRankContext` subclasses :class:`repro.comm.runtime.RankContextBase`,
  so fault-plan sends, selective receives, trace emission, and — critically —
  the binomial-tree collectives are *the same code* as the thread backend.
  Identical tree association means identical floating-point results:
  ``threads`` and ``processes`` runs of the sync algorithms are bit-equal.
- The fabric is one ``multiprocessing.Queue`` inbox per rank. Each child
  drains only its own inbox and keeps a per-``(source, tag)`` stash for
  selective receive; per-sender FIFO is preserved by the queue's feeder
  thread, matching the thread backend's mailbox semantics.
- Ranks are **forked**, never spawned: rank programs stay ordinary
  closures (no pickling of the target function), children inherit the
  communicator's monotonic epoch (``CLOCK_MONOTONIC`` is system-wide on
  Linux, so child timestamps are coherent with the parent's), and
  inherited :class:`SharedFlatArray` mappings need no reattachment.
- Results, trace events, and fault records travel back on a result queue:
  :class:`repro.trace.events.TraceEvent` and
  :class:`repro.faults.log.FaultRecord` are frozen picklable dataclasses,
  so the parent can merge per-rank logs into its own ``trace`` /
  ``fault_log`` and every existing :mod:`repro.trace.check` invariant
  applies unchanged.
- A child exception is shipped back pickled when possible, else as a
  :class:`RemoteRankError` carrying its repr; a child that dies without
  reporting (crash, ``os._exit``) is detected by exit code. Multiple
  failures aggregate through :meth:`MultiRankError.aggregate`, exactly as
  in the thread backend.

Shared memory: :class:`SharedFlatArray` wraps a named
``multiprocessing.shared_memory`` segment as a flat float32 NumPy array —
the unit of weight/gradient storage for the process-backed Hogwild store
(:class:`repro.hogwild.SharedWeights`) and the KNL chip-partition trainer.
"""

from __future__ import annotations

from collections import deque
import multiprocessing
from multiprocessing import shared_memory
import pickle
import queue as _queue
import time
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.comm.runtime import _DEFAULT_TIMEOUT, DeadlockError, MultiRankError, RankContextBase
from repro.comm.shm_transport import (
    DEFAULT_MIN_BYTES,
    DEFAULT_SLOTS,
    ShmSlotRef,
    ShmTransport,
    validate_transport,
)
from repro.faults import FaultLog, FaultPlan
from repro.trace.events import Trace, TraceEvent

__all__ = [
    "fork_available",
    "SharedFlatArray",
    "RemoteRankError",
    "MpRankContext",
    "MultiprocessCommunicator",
]

#: Extra parent-side patience beyond the rank timeout before declaring a
#: child hung: children normally report their own DeadlockError first.
_COLLECT_GRACE = 30.0


def fork_available() -> bool:
    """Whether the ``fork`` start method exists (POSIX yes, Windows no)."""
    return "fork" in multiprocessing.get_all_start_methods()


class SharedFlatArray:
    """A named shared-memory segment viewed as a flat NumPy array.

    The storage unit of the process backend: weight and gradient vectors
    live in one POSIX shared-memory segment each, and every process maps
    the same physical pages — a worker's in-place update is immediately
    visible to all others, which is precisely the Hogwild/chip-partition
    memory model. ``array`` is a zero-copy ``np.frombuffer`` view.

    ``dtype`` defaults to float32 (the packed-parameter convention every
    existing call site relies on); the KNL batch-staging path also stores
    int64 label vectors, so any fixed-width dtype is accepted.

    Lifecycle: the creating process owns the segment and should call
    :meth:`unlink` when done (``close`` releases only this mapping).
    Forked children inherit the mapping and need no attach; unrelated
    processes can :meth:`attach` by name.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        size: int,
        owner: bool,
        dtype: Any = np.float32,
    ) -> None:
        self._shm = shm
        self.size = int(size)
        self.owner = owner
        self.dtype = np.dtype(dtype)
        self.array: np.ndarray = np.frombuffer(shm.buf, dtype=self.dtype, count=self.size)

    @property
    def name(self) -> str:
        """The segment's system-wide name (attachable from any process)."""
        return self._shm.name

    @classmethod
    def create(
        cls, size: int, name: Optional[str] = None, dtype: Any = np.float32
    ) -> "SharedFlatArray":
        """Allocate a zero-filled segment of ``size`` ``dtype`` elements."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        dtype = np.dtype(dtype)
        shm = shared_memory.SharedMemory(create=True, size=dtype.itemsize * size, name=name)
        arr = cls(shm, size, owner=True, dtype=dtype)
        arr.array[:] = 0
        return arr

    @classmethod
    def from_array(
        cls,
        values: np.ndarray,
        name: Optional[str] = None,
        dtype: Any = np.float32,
    ) -> "SharedFlatArray":
        """Allocate a segment initialized with ``values`` (flattened, cast)."""
        values = np.asarray(values)
        arr = cls.create(int(values.size), name=name, dtype=dtype)
        arr.array[:] = values.reshape(-1).astype(arr.dtype, copy=False)
        return arr

    @classmethod
    def attach(cls, name: str, size: int, dtype: Any = np.float32) -> "SharedFlatArray":
        """Map an existing segment by name (non-owning)."""
        return cls(shared_memory.SharedMemory(name=name), size, owner=False, dtype=dtype)

    def close(self) -> None:
        """Release this process's mapping (the NumPy view dies with it)."""
        arr = self.__dict__.pop("array", None)
        del arr  # drop the exported buffer before closing the mapping
        try:
            self._shm.close()
        except BufferError:  # another live view pins the buffer; leave the mapping
            pass

    def unlink(self) -> None:
        """Destroy the segment system-wide (owner's responsibility)."""
        self.close()
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked elsewhere
                pass

    def __enter__(self) -> "SharedFlatArray":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedFlatArray(name={self.name!r}, size={self.size}, owner={self.owner})"


class RemoteRankError(RuntimeError):
    """A rank process failed in a way its exception could not describe
    across the process boundary: the original error was unpicklable, or
    the process died without reporting (killed, segfault, ``os._exit``).
    Carries the ``rank`` and the best available description."""

    def __init__(self, rank: int, message: str) -> None:
        self.rank = rank
        super().__init__(message)

    def __reduce__(self):
        return (RemoteRankError, (self.rank, self.args[0]))


def _shippable_exception(rank: int, exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a RemoteRankError."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RemoteRankError(rank, f"rank {rank} failed with unpicklable {exc!r}")


class MpRankContext(RankContextBase):
    """One rank's view of the multiprocess communicator.

    Lives entirely inside the forked child. Unlike the thread backend's
    shared communicator state, the fault log and trace are child-local —
    the parent merges them after the run — so no cross-process locking
    exists anywhere on the message path.

    ``transport`` (a :class:`repro.comm.shm_transport.ShmTransport`, or
    None for the plain pickle path) intercepts the fabric at exactly two
    points: ``_deliver`` stages large array payloads into a shared-memory
    slot ring and enqueues only the descriptor; ``_poll`` decodes
    descriptors the moment they come off the inbox — including ones
    stashed for other channels, so an unconsumed stash entry can never
    hold a ring slot hostage and backpressure a foreign channel.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        inboxes: List[Any],
        timeout: float,
        faults: Optional[FaultPlan],
        max_retries: int,
        retry_backoff: float,
        start_time: float,
        tracing: bool,
        transport: Optional[Any] = None,
    ) -> None:
        self.size = size
        self.timeout = timeout
        self.faults = faults
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.fault_log = FaultLog()
        self.trace: Optional[Trace] = Trace() if tracing else None
        self._inboxes = inboxes
        self._start = start_time
        self._transport = transport
        # Selective receive: messages for channels nobody asked about yet.
        self._stash: Dict[Tuple[int, int], Deque[Any]] = {}
        self._init_rank_state(rank)

    # -- fabric hooks -----------------------------------------------------------
    def _deliver(self, dest: int, tag: int, payload: Any) -> None:
        transport = self._transport
        if transport is not None:
            ref = transport.encode(dest, tag, payload)
            if ref is not None:
                payload = ref
        self._inboxes[dest].put((self.rank, tag, payload))

    def _decode(self, payload: Any) -> Any:
        """Materialize a slot-ring descriptor back into its payload."""
        if self._transport is not None and isinstance(payload, ShmSlotRef):
            return self._transport.decode(payload)
        return payload

    def _elapsed(self) -> float:
        # CLOCK_MONOTONIC is system-wide on Linux, so child timestamps are
        # directly comparable with the parent's (and each other's).
        return time.monotonic() - self._start

    def _poll(
        self, source: int, tag: int, on_retry: Optional[Callable[[int], None]]
    ) -> Any:
        wanted = (source, tag)
        stashed = self._stash.get(wanted)
        if stashed:
            return stashed.popleft()
        inbox = self._inboxes[self.rank]
        deadline = time.monotonic() + self.timeout
        wait = min(0.05, self.timeout)
        attempt = 0
        while True:
            remaining = deadline - time.monotonic()
            try:
                if remaining <= 0:
                    # Final drain: anything already at the wire still wins.
                    src, t, payload = inbox.get_nowait()
                else:
                    src, t, payload = inbox.get(timeout=min(wait, remaining))
            except _queue.Empty:
                if remaining <= 0:
                    raise DeadlockError(self.rank, source, tag, self.timeout) from None
                attempt += 1
                if on_retry is not None:
                    on_retry(attempt)
                wait = min(wait * 2.0, 2.0)
                continue
            if (src, t) == wanted:
                return self._decode(payload)
            # Decode *before* stashing: a descriptor parked here would pin
            # its ring slot and could backpressure-deadlock the sender.
            self._stash.setdefault((src, t), deque()).append(self._decode(payload))


class MultiprocessCommunicator:
    """Spawn ``size`` rank *processes* (forked) and run a function on each.

    Drop-in for :class:`repro.comm.runtime.InProcessCommunicator`: same
    constructor knobs, same ``run``/``close`` surface, same error
    semantics (single failure re-raised; several aggregated into a
    :class:`MultiRankError` naming every failing rank), same trace and
    fault-log population — events from all ranks are merged time-sorted
    into this object's ``trace`` and ``fault_log`` after each run.
    """

    backend = "processes"

    def __init__(
        self,
        size: int,
        timeout: float = _DEFAULT_TIMEOUT,
        faults: Optional[FaultPlan] = None,
        max_retries: int = 8,
        retry_backoff: float = 0.001,
        trace: Optional[Trace] = None,
        transport: str = "shm",
        shm_slots: int = DEFAULT_SLOTS,
        shm_min_bytes: int = DEFAULT_MIN_BYTES,
    ) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        validate_transport(transport)
        if shm_slots <= 0:
            raise ValueError("shm_slots must be positive")
        if not fork_available():
            raise RuntimeError(
                "the processes backend requires the 'fork' start method; "
                "use backend='threads' on this platform"
            )
        self.size = size
        self.timeout = timeout
        self.faults = faults
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        #: Message transport: "shm" (default) stages large array payloads
        #: through zero-copy slot rings; "queue" pickles every payload
        #: through the inbox pipes (the pre-transport behaviour). Numerics
        #: are transport-invariant by construction — only bytes move
        #: differently.
        self.transport = transport
        self.shm_slots = shm_slots
        self.shm_min_bytes = shm_min_bytes
        #: Per-run transport counters summed over ranks (shm_messages,
        #: queue_messages, bytes_copied_in/out, bytes_on_wire, ring_allocs);
        #: empty until a run completes under transport="shm".
        self.transport_stats: Dict[str, int] = {}
        self.trace = trace
        if trace is not None:
            trace.meta.setdefault("ranks", size)
            trace.meta.setdefault("clock", "wall")
            trace.meta.setdefault("backend", "processes")
            trace.meta.setdefault("transport", transport)
        self.fault_log = FaultLog()
        self._mp = multiprocessing.get_context("fork")
        self._start = time.monotonic()

    def _elapsed(self) -> float:
        """Wall seconds since the communicator was created."""
        return time.monotonic() - self._start

    def close(self) -> None:
        """Release fabric resources (queues are per-run; nothing persists)."""

    def run(self, fn: Callable[..., Any], *args: Any) -> List[Any]:
        """Execute ``fn(ctx, *args)`` on every rank; return per-rank results.

        ``fn`` and ``args`` are inherited by fork — closures over local
        state work; nothing is pickled on the way *in*. Return values
        travel back pickled; a rank whose result cannot be pickled fails
        with a :class:`RemoteRankError`.
        """
        if self.transport == "shm":
            # Spawn the resource tracker *before* forking: children then
            # inherit one shared tracker, so their ring registrations are
            # cleared by this parent's unlink instead of each child's
            # private tracker warning about "leaked" segments at exit.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        inboxes = [self._mp.Queue() for _ in range(self.size)]
        results_q = self._mp.Queue()
        tracing = self.trace is not None

        def child_main(rank: int) -> None:
            transport = (
                ShmTransport(
                    rank, self.size, slots=self.shm_slots,
                    min_bytes=self.shm_min_bytes, timeout=self.timeout,
                )
                if self.transport == "shm"
                else None
            )
            ctx = MpRankContext(
                rank, self.size, inboxes, self.timeout, self.faults,
                self.max_retries, self.retry_backoff, self._start, tracing,
                transport=transport,
            )
            status: str = "ok"
            payload: Any = None
            try:
                payload = fn(ctx, *args)
                try:
                    pickle.dumps(payload)
                except Exception as exc:
                    # A silently-dying queue feeder thread would otherwise
                    # turn an unpicklable result into a phantom crash.
                    status, payload = "err", RemoteRankError(
                        rank, f"rank {rank} returned an unpicklable result: {exc}"
                    )
            except BaseException as exc:
                status, payload = "err", _shippable_exception(rank, exc)
            ring_names: List[str] = []
            tstats: Dict[str, int] = {}
            if transport is not None:
                ring_names = transport.ring_names()
                tstats = dict(transport.stats)
                if ctx.trace is not None:
                    # One instant mark per counter: bytes-on-wire vs
                    # bytes-copied become first-class trace facts.
                    now = ctx._elapsed()
                    for key, val in tstats.items():
                        ctx.trace.span(
                            "mark", rank, now, now,
                            op=f"transport/{key}", value=float(val),
                        )
                # Close mappings only — the parent unlinks by name after
                # the run, so in-flight descriptors stay attachable.
                transport.close()
            events = list(ctx.trace.events) if ctx.trace is not None else []
            records = list(ctx.fault_log.records)
            results_q.put((rank, status, payload, events, records, ring_names, tstats))

        procs = [
            self._mp.Process(target=child_main, args=(r,), name=f"rank-{r}")
            for r in range(self.size)
        ]
        for p in procs:
            p.start()

        results: List[Any] = [None] * self.size
        failures: List[Tuple[int, BaseException]] = []
        events: List[TraceEvent] = []
        records = []
        segment_names: List[str] = []
        stats_total: Dict[str, int] = {}

        def collect(rank, status, payload, ev, recs, names, tstats) -> None:
            pending.discard(rank)
            events.extend(ev)
            records.extend(recs)
            segment_names.extend(names)
            for key, val in tstats.items():
                stats_total[key] = stats_total.get(key, 0) + int(val)
            if status == "ok":
                results[rank] = payload
            else:
                failures.append((rank, payload))

        pending = set(range(self.size))
        deadline = time.monotonic() + self.timeout + _COLLECT_GRACE
        try:
            while pending:
                try:
                    report = results_q.get(timeout=0.1)
                except _queue.Empty:
                    dead = [
                        r for r in pending
                        if not procs[r].is_alive() and procs[r].exitcode is not None
                    ]
                    for r in dead:
                        # Drain once more: the result may have been queued
                        # between the timeout and the liveness check.
                        try:
                            report = results_q.get(timeout=0.5)
                        except _queue.Empty:
                            pending.discard(r)
                            failures.append((r, RemoteRankError(
                                r,
                                f"rank {r} process died without reporting "
                                f"(exitcode {procs[r].exitcode})",
                            )))
                        else:
                            collect(*report)
                    if time.monotonic() > deadline:
                        for r in sorted(pending):
                            failures.append((r, RemoteRankError(
                                r, f"rank {r} hung past the collection deadline"
                            )))
                        pending.clear()
                    continue
                collect(*report)
        finally:
            for p in procs:
                p.join(timeout=5.0)
            for p in procs:
                if p.is_alive():  # pragma: no cover - hung-child cleanup
                    p.terminate()
                    p.join(timeout=5.0)
            for q in [*inboxes, results_q]:
                q.cancel_join_thread()
                q.close()
            # The parent, not the sending child, unlinks ring segments: a
            # rank may finish (and exit) while its last descriptor is still
            # in some inbox, so names must outlive every child.
            for name in segment_names:
                try:
                    seg = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:  # pragma: no cover - already gone
                    continue
                seg.unlink()
                seg.close()
        self.transport_stats = stats_total

        if self.trace is not None:
            for ev in sorted(events, key=lambda e: (e.t0, e.t1, e.rank)):
                self.trace.add(ev)
        for rec in sorted(records, key=lambda r: r.time):
            self.fault_log.record(rec.time, rec.kind, rec.subject, rec.detail)
        if failures:
            raise MultiRankError.aggregate(sorted(failures, key=lambda f: f[0]))
        return results
