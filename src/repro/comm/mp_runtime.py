"""Multiprocess rank backend: OS processes + POSIX shared memory.

The threaded :class:`repro.comm.runtime.InProcessCommunicator` is the
right tool for semantics (deadlocks, schedules, bit-exact collectives) but
the wrong tool for *scaling measurements*: NumPy releases the GIL for big
kernels, yet the Python glue between kernels serializes, so thread-backed
"P workers" mostly measure scheduler behaviour. This module provides the
same rank API over real processes, which is what the paper's KNL
chip-partitioning experiments (Section 6.2, Figure 12) actually exercise:
independent cores with weight replicas in shared physical memory.

Design:

- :class:`MpRankContext` subclasses :class:`repro.comm.runtime.RankContextBase`,
  so fault-plan sends, selective receives, trace emission, and — critically —
  the binomial-tree collectives are *the same code* as the thread backend.
  Identical tree association means identical floating-point results:
  ``threads`` and ``processes`` runs of the sync algorithms are bit-equal.
- The fabric is one ``multiprocessing.Queue`` inbox per rank. Each child
  drains only its own inbox and keeps a per-``(source, tag)`` stash for
  selective receive; per-sender FIFO is preserved by the queue's feeder
  thread, matching the thread backend's mailbox semantics.
- Ranks are **forked**, never spawned: rank programs stay ordinary
  closures (no pickling of the target function), children inherit the
  communicator's monotonic epoch (``CLOCK_MONOTONIC`` is system-wide on
  Linux, so child timestamps are coherent with the parent's), and
  inherited :class:`SharedFlatArray` mappings need no reattachment.
- Results, trace events, and fault records travel back on a result queue:
  :class:`repro.trace.events.TraceEvent` and
  :class:`repro.faults.log.FaultRecord` are frozen picklable dataclasses,
  so the parent can merge per-rank logs into its own ``trace`` /
  ``fault_log`` and every existing :mod:`repro.trace.check` invariant
  applies unchanged.
- A child exception is shipped back pickled when possible, else as a
  :class:`RemoteRankError` carrying its repr; a child that dies without
  reporting (crash, ``os._exit``) is detected by exit code. Multiple
  failures aggregate through :meth:`MultiRankError.aggregate`, exactly as
  in the thread backend.

Shared memory: :class:`SharedFlatArray` wraps a named
``multiprocessing.shared_memory`` segment as a flat float32 NumPy array —
the unit of weight/gradient storage for the process-backed Hogwild store
(:class:`repro.hogwild.SharedWeights`) and the KNL chip-partition trainer.
"""

from __future__ import annotations

from collections import deque
import multiprocessing
from multiprocessing import shared_memory
import os
import pickle
import queue as _queue
import time
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.collectives import (
    shard_bounds,
    tree_reduce_into,
    validate_collective,
)
from repro.comm.runtime import (
    _DEFAULT_TIMEOUT,
    COLLECTIVE_TAG_STRIDE,
    DeadlockError,
    MultiRankError,
    RankContextBase,
)
from repro.comm.shm_lifecycle import (
    adopt_owner_pid,
    reap_stale_segments,
    register_segment,
    segment_name,
    unregister_segment,
)
from repro.comm.shm_transport import (
    CollectiveArena,
    DEFAULT_MIN_BYTES,
    DEFAULT_SLOTS,
    ShmSlotRef,
    ShmTransport,
    validate_transport,
)
from repro.faults import FaultLog, FaultPlan
from repro.optim.quantize import validate_wire_dtype
from repro.trace.events import Trace, TraceEvent

__all__ = [
    "fork_available",
    "SharedFlatArray",
    "RemoteRankError",
    "MpRankContext",
    "MultiprocessCommunicator",
    "run_rank_program",
    "emit_transport_marks",
]

#: Extra parent-side patience beyond the rank timeout before declaring a
#: child hung: children normally report their own DeadlockError first.
_COLLECT_GRACE = 30.0


def fork_available() -> bool:
    """Whether the ``fork`` start method exists (POSIX yes, Windows no)."""
    return "fork" in multiprocessing.get_all_start_methods()


class SharedFlatArray:
    """A named shared-memory segment viewed as a flat NumPy array.

    The storage unit of the process backend: weight and gradient vectors
    live in one POSIX shared-memory segment each, and every process maps
    the same physical pages — a worker's in-place update is immediately
    visible to all others, which is precisely the Hogwild/chip-partition
    memory model. ``array`` is a zero-copy ``np.frombuffer`` view.

    ``dtype`` defaults to float32 (the packed-parameter convention every
    existing call site relies on); the KNL batch-staging path also stores
    int64 label vectors, so any fixed-width dtype is accepted.

    Lifecycle: the creating process owns the segment and should call
    :meth:`unlink` when done (``close`` releases only this mapping).
    Forked children inherit the mapping and need no attach; unrelated
    processes can :meth:`attach` by name.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        size: int,
        owner: bool,
        dtype: Any = np.float32,
    ) -> None:
        self._shm = shm
        self.size = int(size)
        self.owner = owner
        self.dtype = np.dtype(dtype)
        self.array: np.ndarray = np.frombuffer(shm.buf, dtype=self.dtype, count=self.size)

    @property
    def name(self) -> str:
        """The segment's system-wide name (attachable from any process)."""
        return self._shm.name

    @classmethod
    def create(
        cls, size: int, name: Optional[str] = None, dtype: Any = np.float32
    ) -> "SharedFlatArray":
        """Allocate a zero-filled segment of ``size`` ``dtype`` elements."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        dtype = np.dtype(dtype)
        if name is None:
            # Lifecycle-tracked: the pid-stamped name lets a later run reap
            # this segment if the creator dies before any unlink path runs.
            name = segment_name("flat")
        shm = shared_memory.SharedMemory(create=True, size=dtype.itemsize * size, name=name)
        register_segment(shm.name)
        arr = cls(shm, size, owner=True, dtype=dtype)
        arr.array[:] = 0
        return arr

    @classmethod
    def from_array(
        cls,
        values: np.ndarray,
        name: Optional[str] = None,
        dtype: Any = np.float32,
    ) -> "SharedFlatArray":
        """Allocate a segment initialized with ``values`` (flattened, cast)."""
        values = np.asarray(values)
        arr = cls.create(int(values.size), name=name, dtype=dtype)
        arr.array[:] = values.reshape(-1).astype(arr.dtype, copy=False)
        return arr

    @classmethod
    def attach(cls, name: str, size: int, dtype: Any = np.float32) -> "SharedFlatArray":
        """Map an existing segment by name (non-owning)."""
        return cls(shared_memory.SharedMemory(name=name), size, owner=False, dtype=dtype)

    def close(self) -> None:
        """Release this process's mapping (the NumPy view dies with it)."""
        arr = self.__dict__.pop("array", None)
        del arr  # drop the exported buffer before closing the mapping
        try:
            self._shm.close()
        except BufferError:  # another live view pins the buffer; leave the mapping
            pass

    def unlink(self) -> None:
        """Destroy the segment system-wide (owner's responsibility)."""
        self.close()
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked elsewhere
                pass
            unregister_segment(self._shm.name)

    def __enter__(self) -> "SharedFlatArray":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedFlatArray(name={self.name!r}, size={self.size}, owner={self.owner})"


class RemoteRankError(RuntimeError):
    """A rank process failed in a way its exception could not describe
    across the process boundary: the original error was unpicklable, or
    the process died without reporting (killed, segfault, ``os._exit``).
    Carries the ``rank`` and the best available description."""

    def __init__(self, rank: int, message: str) -> None:
        self.rank = rank
        super().__init__(message)

    def __reduce__(self):
        return (RemoteRankError, (self.rank, self.args[0]))


def _shippable_exception(rank: int, exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a RemoteRankError."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RemoteRankError(rank, f"rank {rank} failed with unpicklable {exc!r}")


def run_rank_program(
    ctx: "MpRankContext", fn: Callable[..., Any], args: Tuple[Any, ...]
) -> Tuple[str, Any]:
    """Run ``fn(ctx, *args)`` and normalize the outcome for shipping.

    Returns ``("ok", result)`` or ``("err", exception)`` where the
    exception is guaranteed to survive the queue back to the parent — the
    one rank-execution contract shared by the one-shot fork path and the
    persistent :class:`repro.pool.WorkerPool` dispatch loop.
    """
    status: str = "ok"
    payload: Any = None
    try:
        payload = fn(ctx, *args)
        try:
            pickle.dumps(payload)
        except Exception as exc:
            # A silently-dying queue feeder thread would otherwise turn
            # an unpicklable result into a phantom crash.
            status, payload = "err", RemoteRankError(
                ctx.rank, f"rank {ctx.rank} returned an unpicklable result: {exc}"
            )
    except BaseException as exc:
        status, payload = "err", _shippable_exception(ctx.rank, exc)
    return status, payload


def emit_transport_marks(ctx: "MpRankContext", tstats: Dict[str, int]) -> None:
    """One instant mark per transport counter: bytes-on-wire vs
    bytes-copied become first-class trace facts."""
    if ctx.trace is None:
        return
    now = ctx._elapsed()
    for key, val in tstats.items():
        ctx.trace.span("mark", ctx.rank, now, now, op=f"transport/{key}", value=float(val))


class MpRankContext(RankContextBase):
    """One rank's view of the multiprocess communicator.

    Lives entirely inside the forked child. Unlike the thread backend's
    shared communicator state, the fault log and trace are child-local —
    the parent merges them after the run — so no cross-process locking
    exists anywhere on the message path.

    ``transport`` (a :class:`repro.comm.shm_transport.ShmTransport`, or
    None for the plain pickle path) intercepts the fabric at exactly two
    points: ``_deliver`` stages large array payloads into a shared-memory
    slot ring and enqueues only the descriptor; ``_poll`` decodes
    descriptors the moment they come off the inbox — including ones
    stashed for other channels, so an unconsumed stash entry can never
    hold a ring slot hostage and backpressure a foreign channel.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        inboxes: List[Any],
        timeout: float,
        faults: Optional[FaultPlan],
        max_retries: int,
        retry_backoff: float,
        start_time: float,
        tracing: bool,
        transport: Optional[Any] = None,
        collective: str = "tree",
        wire_dtype: str = "float32",
        chunk_elems: Optional[int] = None,
        coll_prefix: Optional[str] = None,
        arena_cache: Optional[Dict[str, CollectiveArena]] = None,
    ) -> None:
        self.size = size
        self.timeout = timeout
        self.faults = faults
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.collective = collective
        self.wire_dtype = wire_dtype
        self.chunk_elems = chunk_elems
        self.fault_log = FaultLog()
        self.trace: Optional[Trace] = Trace() if tracing else None
        self._inboxes = inboxes
        self._start = start_time
        self._transport = transport
        self._coll_prefix = coll_prefix or segment_name("coll")
        #: Collective arenas keyed by (tag, elems); shared across ranks by
        #: name, created lazily on the first ring allreduce of that shape.
        self._arenas: Dict[Tuple[int, int], CollectiveArena] = {}
        #: Cross-cell arena reuse (the pool path): a by-name cache owned
        #: by the long-lived worker, consulted before creating a segment.
        #: Cached arenas outlive this context — ``arena_names`` and
        #: ``close_arenas`` then leave them alone (the pool unlinks at
        #: shutdown), so consecutive cells recycle one mapping.
        self._arena_cache = arena_cache
        #: Receiver-side seq counters for manually-emitted arena trace
        #: events (mirrors the sender's ``_next_seq`` discipline).
        self._recv_seq: Dict[Tuple[int, int], int] = {}
        # Zero-copy receive plumbing for the in-place reduce fold.
        self._view_ok = False
        self._pending_release: Optional[Callable[[], None]] = None
        # Selective receive: messages for channels nobody asked about yet.
        self._stash: Dict[Tuple[int, int], Deque[Any]] = {}
        self._init_rank_state(rank)

    # -- fabric hooks -----------------------------------------------------------
    def _deliver(self, dest: int, tag: int, payload: Any) -> None:
        transport = self._transport
        if transport is not None:
            ref = transport.encode(dest, tag, payload)
            if ref is not None:
                payload = ref
        self._inboxes[dest].put((self.rank, tag, payload))

    def _decode(self, payload: Any, view: bool = False) -> Any:
        """Materialize a slot-ring descriptor back into its payload.

        ``view=True`` (only ever set for the channel actually being
        polled, never for stashed foreign messages) defers the private
        copy: the payload's arrays view slot memory and the slot stays
        claimed until the stored ``_pending_release`` runs.
        """
        if self._transport is not None and isinstance(payload, ShmSlotRef):
            if view:
                obj, release = self._transport.decode_view(payload)
                self._pending_release = release
                return obj
            return self._transport.decode(payload)
        return payload

    def _recv_add(self, acc: np.ndarray, source: int, tag: int) -> None:
        """In-place fold with the receive-side copy eliminated.

        Over the shm transport the incoming buffer is read *directly from
        the ring slot* into ``np.add`` — the reduce-only consumer never
        materializes a private copy of the operand. The slot is handed
        back to the sender only after the fold completes.
        """
        if self._transport is None:
            super()._recv_add(acc, source, tag)
            return
        self._view_ok = True
        try:
            np.add(acc, self._wire_in(self.recv(source, tag)), out=acc)
        finally:
            self._view_ok = False
            release, self._pending_release = self._pending_release, None
            if release is not None:
                release()

    def _elapsed(self) -> float:
        # CLOCK_MONOTONIC is system-wide on Linux, so child timestamps are
        # directly comparable with the parent's (and each other's).
        return time.monotonic() - self._start

    def _poll(
        self, source: int, tag: int, on_retry: Optional[Callable[[int], None]]
    ) -> Any:
        wanted = (source, tag)
        stashed = self._stash.get(wanted)
        if stashed:
            return stashed.popleft()
        inbox = self._inboxes[self.rank]
        deadline = time.monotonic() + self.timeout
        wait = min(0.05, self.timeout)
        attempt = 0
        while True:
            remaining = deadline - time.monotonic()
            try:
                if remaining <= 0:
                    # Final drain: anything already at the wire still wins.
                    src, t, payload = inbox.get_nowait()
                else:
                    src, t, payload = inbox.get(timeout=min(wait, remaining))
            except _queue.Empty:
                if remaining <= 0:
                    raise DeadlockError(self.rank, source, tag, self.timeout) from None
                attempt += 1
                if on_retry is not None:
                    on_retry(attempt)
                wait = min(wait * 2.0, 2.0)
                continue
            if (src, t) == wanted:
                return self._decode(payload, view=self._view_ok)
            # Decode *before* stashing: a descriptor parked here would pin
            # its ring slot and could backpressure-deadlock the sender.
            self._stash.setdefault((src, t), deque()).append(self._decode(payload))

    # -- collective arena (the shm ring allreduce fast path) ---------------------
    def _arena_for(self, tag: int, elems: int) -> CollectiveArena:
        key = (tag, elems)
        arena = self._arenas.get(key)
        if arena is None:
            name = f"{self._coll_prefix}-t{tag}-n{elems}"
            cache = self._arena_cache
            if cache is not None:
                arena = cache.get(name)
            if arena is None:
                arena = CollectiveArena.create_or_attach(
                    name, self.size, elems, self.wire_dtype, timeout=self.timeout
                )
                if cache is not None:
                    cache[name] = arena
            self._arenas[key] = arena
        return arena

    def arena_names(self) -> List[str]:
        """Arena segment names this rank mapped (for parent-side unlink).

        Empty under an arena cache: cached mappings belong to the pool
        worker and must survive this cell."""
        if self._arena_cache is not None:
            return []
        return [arena.name for arena in self._arenas.values()]

    def close_arenas(self) -> None:
        """Drop this rank's arena mappings (the parent unlinks by name).

        No-op under an arena cache — the pool recycles the mappings."""
        if self._arena_cache is None:
            for arena in self._arenas.values():
                arena.close()
        self._arenas.clear()

    def _next_recv_seq(self, source: int, tag: int) -> int:
        key = (source, tag)
        seq = self._recv_seq.get(key, 0)
        self._recv_seq[key] = seq + 1
        return seq

    def _arena_msg(self, kind: str, peer: int, tag: int, nbytes: int, rnd: int) -> None:
        """One manually-emitted trace event for an arena-phase message.

        The arena moves bulk bytes through shared rows, not through
        ``send``/``recv``, so the trace events that keep the ring's
        structure checkable (P(P-1) messages per phase, shard-sized
        nbytes, per-channel seq) are emitted by hand with the *logical*
        chunk size — byte accounting is identical to the generic
        message-passing ring schedule.
        """
        trace = self.trace
        if trace is None:
            return
        now = self._elapsed()
        if kind == "send":
            trace.send(self.rank, peer, now, now, tag=tag, nbytes=nbytes,
                       seq=self._next_seq(peer, tag), op=self._trace_op,
                       round=rnd, iteration=self.trace_iteration)
        else:
            trace.recv(self.rank, peer, now, now, tag=tag, nbytes=nbytes,
                       seq=self._next_recv_seq(peer, tag), op=self._trace_op,
                       round=rnd, iteration=self.trace_iteration)

    def collective_buffer(self, elems: int, tag: int = 103) -> np.ndarray:
        """The arena contribution row, when one will back the allreduce.

        A caller that computes its contribution straight into this row
        skips the staging copy in :meth:`_ring_allreduce` — gradients are
        then *born* in shared memory. Falls back to a private buffer
        whenever the arena path would not engage (tree collective, queue
        transport, float16 wire, or a buffer too small to shard).
        """
        if (
            self._transport is not None
            and self.collective == "ring"
            and self.wire_dtype == "float32"
            and self.faults is None
            and self.size > 1
            and elems >= self.size
        ):
            row = self._arena_for(tag, int(elems)).rows[self.rank]
            row[:] = 0.0
            return row
        return super().collective_buffer(elems, tag)

    def _ring_allreduce(self, arr: np.ndarray, tag: int, view: bool = False) -> np.ndarray:
        """Sharded ring allreduce with the bulk bytes never leaving shm.

        Same logical schedule (and bit-identical association) as the
        generic message ring, but the data plane is a
        :class:`~repro.comm.shm_transport.CollectiveArena`:

        1. stage the contribution into this rank's arena row (skipped
           when the caller already computed into it via
           :meth:`collective_buffer`);
        2. *reduce-scatter*: send a ready token to every peer, collect
           theirs, then tree-reduce the P row slices of our owner shard
           straight into the shared result row — in place in shm;
        3. *allgather*: send a done token to every peer, collect theirs,
           then read the fully-assembled result row.

        Reuse safety (single-generation rows): a rank re-enters this
        method (and may overwrite its row) only after collecting *all*
        P-1 done tokens, and a done token is sent only after its owner
        finished reading every row — so no row is overwritten while any
        reader is mid-reduce. The result row for round t+1 is rewritten
        only after every rank has sent its round-t+1 ready token, i.e.
        after every rank returned from round t — which is exactly the
        documented validity window of a ``view=True`` result.
        """
        transport = self._transport
        if transport is None:
            # Queue transport: fall back to the generic message-passing ring.
            return super()._ring_allreduce(arr, tag, view=view)
        t0 = self._elapsed()
        prev_op = self._trace_op
        p, r = self.size, self.rank
        rs_tag = tag + 6 * COLLECTIVE_TAG_STRIDE
        ag_tag = tag + 7 * COLLECTIVE_TAG_STRIDE
        flat = arr.reshape(-1)
        n = flat.size
        arena = self._arena_for(tag, n)
        bounds = shard_bounds(n, p)
        wire_item = arena.rows[0].dtype.itemsize

        def shard_nbytes(s: int) -> int:
            return (bounds[s + 1] - bounds[s]) * wire_item

        # 1. Stage our contribution (no-op when it was born in the row).
        row = arena.rows[r]
        if not np.shares_memory(row, flat):
            np.copyto(row, flat, casting="same_kind")

        # 2. Reduce-scatter: ready tokens out, ready tokens in, then the
        #    in-shm owner reduce. Logically rank r ships shard (r+k)%p's
        #    chunk to its owner in step k — the trace records that.
        self._trace_op = "ring-reduce-scatter"
        for k in range(1, p):
            dest = (r + k) % p
            self._deliver(dest, rs_tag, r)
            self._arena_msg("send", dest, rs_tag, shard_nbytes(dest), k - 1)
        lo, hi = bounds[r], bounds[r + 1]
        for k in range(1, p):
            src = (r - k) % p
            self._poll(src, rs_tag, None)
            self._arena_msg("recv", src, rs_tag, shard_nbytes(r), k - 1)
        if hi > lo:
            cols: Sequence[np.ndarray] = [arena.rows[q][lo:hi] for q in range(p)]
            if self.wire_dtype != "float32":
                cols = [c.astype(np.float32) for c in cols]
            tree_reduce_into(cols, arena.result[lo:hi])

        # 3. Allgather: done tokens out, done tokens in, result is ready.
        self._trace_op = "ring-allgather"
        for k in range(1, p):
            dest = (r + k) % p
            self._deliver(dest, ag_tag, r)
            self._arena_msg("send", dest, ag_tag, shard_nbytes(r), k - 1)
        for k in range(1, p):
            src = (r - k) % p
            self._poll(src, ag_tag, None)
            self._arena_msg("recv", src, ag_tag, shard_nbytes(src), k - 1)
        self._trace_op, self._trace_round = prev_op, -1
        self._collective_span("ring-allreduce", t0)
        if view:
            result = arena.result.view()
            result.flags.writeable = False
            return result.reshape(arr.shape)
        return arena.result.reshape(arr.shape).copy()


class MultiprocessCommunicator:
    """Spawn ``size`` rank *processes* (forked) and run a function on each.

    Drop-in for :class:`repro.comm.runtime.InProcessCommunicator`: same
    constructor knobs, same ``run``/``close`` surface, same error
    semantics (single failure re-raised; several aggregated into a
    :class:`MultiRankError` naming every failing rank), same trace and
    fault-log population — events from all ranks are merged time-sorted
    into this object's ``trace`` and ``fault_log`` after each run.
    """

    backend = "processes"

    def __init__(
        self,
        size: int,
        timeout: float = _DEFAULT_TIMEOUT,
        faults: Optional[FaultPlan] = None,
        max_retries: int = 8,
        retry_backoff: float = 0.001,
        trace: Optional[Trace] = None,
        transport: str = "shm",
        shm_slots: int = DEFAULT_SLOTS,
        shm_min_bytes: int = DEFAULT_MIN_BYTES,
        collective: str = "tree",
        wire_dtype: str = "float32",
        chunk_elems: Optional[int] = None,
        pin_cpus: Any = "auto",
        pool: Optional[Any] = None,
    ) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        validate_transport(transport)
        validate_collective(collective)
        validate_wire_dtype(wire_dtype)
        if chunk_elems is not None and chunk_elems <= 0:
            raise ValueError("chunk_elems must be positive")
        if shm_slots <= 0:
            raise ValueError("shm_slots must be positive")
        if not fork_available():
            raise RuntimeError(
                "the processes backend requires the 'fork' start method; "
                "use backend='threads' on this platform"
            )
        self.size = size
        self.timeout = timeout
        self.faults = faults
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        #: Allreduce schedule ("tree"/"ring") and on-fabric array format
        #: ("float32"/"float16") — see RankContextBase for semantics.
        self.collective = collective
        self.wire_dtype = wire_dtype
        self.chunk_elems = chunk_elems
        #: Rank->CPU pinning: "auto" pins rank i to core i (mod cores) only
        #: when at least ``size`` cores are available; True forces pinning
        #: even oversubscribed; None/False disables.
        self.pin_cpus = pin_cpus
        #: Message transport: "shm" (default) stages large array payloads
        #: through zero-copy slot rings; "queue" pickles every payload
        #: through the inbox pipes (the pre-transport behaviour). Numerics
        #: are transport-invariant by construction — only bytes move
        #: differently.
        self.transport = transport
        self.shm_slots = shm_slots
        self.shm_min_bytes = shm_min_bytes
        #: Per-run transport counters summed over ranks (shm_messages,
        #: queue_messages, bytes_copied_in/out, bytes_on_wire, ring_allocs);
        #: empty until a run completes under transport="shm".
        self.transport_stats: Dict[str, int] = {}
        self.trace = trace
        if trace is not None:
            trace.meta.setdefault("ranks", size)
            trace.meta.setdefault("clock", "wall")
            trace.meta.setdefault("backend", "processes")
            trace.meta.setdefault("transport", transport)
            trace.meta.setdefault("collective", collective)
            trace.meta.setdefault("wire_dtype", wire_dtype)
        self.fault_log = FaultLog()
        #: The reuse path: when a :class:`repro.pool.WorkerPool` is
        #: attached, ``run`` dispatches the rank program to its long-lived
        #: forked workers (amortized fork, recycled slot rings and
        #: collective arenas) instead of forking fresh ranks per call.
        #: Numerics are identical by construction — the pool workers run
        #: the same :class:`MpRankContext` code over the same fabric.
        self._pool = pool
        if pool is not None:
            if size > pool.size:
                raise ValueError(
                    f"cell needs {size} ranks but the pool holds only {pool.size}"
                )
            if pool.backend != "processes":
                raise ValueError("MultiprocessCommunicator requires a processes pool")
        self._mp = multiprocessing.get_context("fork")
        self._start = time.monotonic()

    def _pin_plan(self) -> Optional[List[int]]:
        """The CPU list ranks pin to, or None when pinning is off/impossible."""
        if not self.pin_cpus or not hasattr(os, "sched_getaffinity"):
            return None
        cpus = sorted(os.sched_getaffinity(0))
        if not cpus:
            return None
        if self.pin_cpus == "auto" and len(cpus) < self.size:
            # Oversubscribed: exclusive cores don't exist, and pinning
            # several ranks to one core would serialize them outright.
            return None
        return cpus

    def _elapsed(self) -> float:
        """Wall seconds since the communicator was created."""
        return time.monotonic() - self._start

    def close(self) -> None:
        """Release fabric resources (queues are per-run; nothing persists)."""

    def run(self, fn: Callable[..., Any], *args: Any) -> List[Any]:
        """Execute ``fn(ctx, *args)`` on every rank; return per-rank results.

        ``fn`` and ``args`` are inherited by fork — closures over local
        state work; nothing is pickled on the way *in*. Return values
        travel back pickled; a rank whose result cannot be pickled fails
        with a :class:`RemoteRankError`.

        With an attached pool the call is dispatched to its persistent
        workers instead (``fn`` must then be a module-level function and
        ``args`` picklable — fork inheritance does not apply to work
        items submitted after the pool forked).
        """
        if self._pool is not None:
            return self._run_pooled(fn, args)
        if self.transport == "shm":
            # Spawn the resource tracker *before* forking: children then
            # inherit one shared tracker, so their ring registrations are
            # cleared by this parent's unlink instead of each child's
            # private tracker warning about "leaked" segments at exit.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        # Post-mortem for earlier runs that died by signal: their atexit
        # sweeps never fired, but their pids are in the segment names.
        reap_stale_segments()
        # Segments created anywhere in this run's process tree carry this
        # (top-level) pid, so the reaper only fires once the run is dead.
        adopt_owner_pid()
        inboxes = [self._mp.Queue() for _ in range(self.size)]
        results_q = self._mp.Queue()
        tracing = self.trace is not None
        # Generated pre-fork so every child derives identical arena names.
        coll_prefix = segment_name("coll")
        pin_plan = self._pin_plan()

        def child_main(rank: int) -> None:
            if pin_plan is not None:
                try:
                    os.sched_setaffinity(0, {pin_plan[rank % len(pin_plan)]})
                except OSError:  # pragma: no cover - cgroup/permission quirk
                    pass
            transport = (
                ShmTransport(
                    rank, self.size, slots=self.shm_slots,
                    min_bytes=self.shm_min_bytes, timeout=self.timeout,
                )
                if self.transport == "shm"
                else None
            )
            ctx = MpRankContext(
                rank, self.size, inboxes, self.timeout, self.faults,
                self.max_retries, self.retry_backoff, self._start, tracing,
                transport=transport, collective=self.collective,
                wire_dtype=self.wire_dtype, chunk_elems=self.chunk_elems,
                coll_prefix=coll_prefix,
            )
            status, payload = run_rank_program(ctx, fn, args)
            ring_names: List[str] = ctx.arena_names()
            ctx.close_arenas()
            tstats: Dict[str, int] = {}
            if transport is not None:
                ring_names += transport.ring_names()
                tstats = dict(transport.stats)
                emit_transport_marks(ctx, tstats)
                # Close mappings only — the parent unlinks by name after
                # the run, so in-flight descriptors stay attachable.
                transport.close()
            events = list(ctx.trace.events) if ctx.trace is not None else []
            records = list(ctx.fault_log.records)
            # Reported names become the parent's to unlink — drop them from
            # this child's registry so its atexit sweep can't destroy
            # segments other ranks may still hold descriptors into.
            for name in ring_names:
                unregister_segment(name)
            results_q.put((rank, status, payload, events, records, ring_names, tstats))

        procs = [
            self._mp.Process(target=child_main, args=(r,), name=f"rank-{r}")
            for r in range(self.size)
        ]
        for p in procs:
            p.start()

        results: List[Any] = [None] * self.size
        failures: List[Tuple[int, BaseException]] = []
        events: List[TraceEvent] = []
        records = []
        segment_names: List[str] = []
        stats_total: Dict[str, int] = {}

        def collect(rank, status, payload, ev, recs, names, tstats) -> None:
            pending.discard(rank)
            events.extend(ev)
            records.extend(recs)
            segment_names.extend(names)
            for key, val in tstats.items():
                stats_total[key] = stats_total.get(key, 0) + int(val)
            if status == "ok":
                results[rank] = payload
            else:
                failures.append((rank, payload))

        pending = set(range(self.size))
        deadline = time.monotonic() + self.timeout + _COLLECT_GRACE
        try:
            while pending:
                try:
                    report = results_q.get(timeout=0.1)
                except _queue.Empty:
                    dead = [
                        r for r in pending
                        if not procs[r].is_alive() and procs[r].exitcode is not None
                    ]
                    for r in dead:
                        # Drain once more: the result may have been queued
                        # between the timeout and the liveness check.
                        try:
                            report = results_q.get(timeout=0.5)
                        except _queue.Empty:
                            pending.discard(r)
                            failures.append((r, RemoteRankError(
                                r,
                                f"rank {r} process died without reporting "
                                f"(exitcode {procs[r].exitcode})",
                            )))
                        else:
                            collect(*report)
                    if time.monotonic() > deadline:
                        for r in sorted(pending):
                            failures.append((r, RemoteRankError(
                                r, f"rank {r} hung past the collection deadline"
                            )))
                        pending.clear()
                    continue
                collect(*report)
        finally:
            for p in procs:
                p.join(timeout=5.0)
            for p in procs:
                if p.is_alive():  # pragma: no cover - hung-child cleanup
                    p.terminate()
                    p.join(timeout=5.0)
            for q in [*inboxes, results_q]:
                q.cancel_join_thread()
                q.close()
            # The parent, not the sending child, unlinks ring segments: a
            # rank may finish (and exit) while its last descriptor is still
            # in some inbox, so names must outlive every child.
            for name in segment_names:
                try:
                    seg = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:  # pragma: no cover - already gone
                    continue
                seg.unlink()
                seg.close()
        self.transport_stats = stats_total

        if self.trace is not None:
            for ev in sorted(events, key=lambda e: (e.t0, e.t1, e.rank)):
                self.trace.add(ev)
        for rec in sorted(records, key=lambda r: r.time):
            self.fault_log.record(rec.time, rec.kind, rec.subject, rec.detail)
        if failures:
            raise MultiRankError.aggregate(sorted(failures, key=lambda f: f[0]))
        return results

    def _run_pooled(self, fn: Callable[..., Any], args: Tuple[Any, ...]) -> List[Any]:
        """Dispatch the rank program to the attached persistent pool.

        Same observable surface as the fork path: traces and fault
        records merge into this communicator (timestamped against *this*
        communicator's epoch, which the workers honour per job), transport
        counters land in ``transport_stats``, and failures aggregate into
        the identical :class:`MultiRankError` shape.
        """
        job = self._pool.submit(
            self.size, fn, *args,
            tracing=self.trace is not None,
            faults=self.faults,
            timeout=self.timeout,
            max_retries=self.max_retries,
            retry_backoff=self.retry_backoff,
            transport=self.transport,
            collective=self.collective,
            wire_dtype=self.wire_dtype,
            chunk_elems=self.chunk_elems,
            start_time=self._start,
        )
        job.wait()
        self.transport_stats = dict(job.transport_stats)
        if self.trace is not None:
            for ev in sorted(job.events, key=lambda e: (e.t0, e.t1, e.rank)):
                self.trace.add(ev)
        for rec in sorted(job.records, key=lambda r: r.time):
            self.fault_log.record(rec.time, rec.kind, rec.subject, rec.detail)
        if job.failures:
            raise MultiRankError.aggregate(sorted(job.failures, key=lambda f: f[0]))
        return list(job.results)
