"""Platform topologies: which link carries which traffic class.

Mirrors the paper's two experimental systems (Artifact Description 10.4):
a multi-GPU node whose GPUs hang off a PCIe switch with the host CPU, and a
KNL cluster on a Cray Aries fabric. Trainers never touch raw LinkModels;
they ask the topology for the link of a traffic class, which keeps the
Table 3 breakdown categories (cpu-gpu data, cpu-gpu para, gpu-gpu para)
honest by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.alphabeta import CRAY_ARIES, LinkModel, PCIE_GEN3_X16, PCIE_SWITCH_P2P

__all__ = ["GpuNodeTopology", "KnlClusterTopology"]


@dataclass(frozen=True)
class GpuNodeTopology:
    """One multi-GPU node: host CPU + ``num_gpus`` GPUs on a PCIe switch."""

    num_gpus: int
    cpu_gpu: LinkModel = PCIE_GEN3_X16
    gpu_gpu: LinkModel = PCIE_SWITCH_P2P

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError("num_gpus must be positive")

    def link_for(self, traffic: str) -> LinkModel:
        """Resolve a traffic class to its link.

        ``cpu-gpu data``  — staging a batch of samples host -> GPU;
        ``cpu-gpu para``  — weights host <-> GPU (Algorithms 1-2);
        ``gpu-gpu para``  — weights GPU <-> GPU via the switch (Algorithm 3).
        """
        if traffic in ("cpu-gpu data", "cpu-gpu para"):
            return self.cpu_gpu
        if traffic == "gpu-gpu para":
            return self.gpu_gpu
        raise KeyError(f"unknown traffic class {traffic!r}")


@dataclass(frozen=True)
class KnlClusterTopology:
    """A cluster of self-hosted KNL nodes on a Cray Aries-style fabric."""

    num_nodes: int
    network: LinkModel = CRAY_ARIES

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")

    def link_for(self, traffic: str) -> LinkModel:
        """KNL nodes are self-hosted: all inter-node traffic is one fabric."""
        if traffic in ("node-node para", "node-node data"):
            return self.network
        raise KeyError(f"unknown traffic class {traffic!r}")
