"""Platform topologies: which link carries which traffic class.

Mirrors the paper's two experimental systems (Artifact Description 10.4):
a multi-GPU node whose GPUs hang off a PCIe switch with the host CPU, and a
KNL cluster on a Cray Aries fabric. Trainers never touch raw LinkModels;
they ask the topology for the link of a traffic class, which keeps the
Table 3 breakdown categories (cpu-gpu data, cpu-gpu para, gpu-gpu para)
honest by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.comm.alphabeta import CRAY_ARIES, LinkModel, PCIE_GEN3_X16, PCIE_SWITCH_P2P

__all__ = [
    "GpuNodeTopology",
    "KnlClusterTopology",
    "gossip_pairs",
    "ring_neighbors",
    "ring_edges",
]


def ring_neighbors(rank: int, p: int) -> Tuple[int, int]:
    """``(predecessor, successor)`` of ``rank`` on the logical P-ring.

    The neighbour map of the ring collective's step-1 edges; the sharded
    schedule also uses the longer chords (rank -> rank+k), but locality
    analyses and the trace checks reason in terms of this base ring.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if not 0 <= rank < p:
        raise ValueError(f"rank {rank} out of range for size {p}")
    return ((rank - 1) % p, (rank + 1) % p)


def ring_edges(p: int) -> List[Tuple[int, int]]:
    """The P directed edges of the logical ring, in rank order.

    Degenerates to an empty list for P=1 (a self-loop carries no traffic).
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if p == 1:
        return []
    return [(r, (r + 1) % p) for r in range(p)]


def gossip_pairs(round_index: int, p: int) -> List[Tuple[int, int]]:
    """Deterministic peer pairing for gossip round ``round_index``.

    The circle (round-robin tournament) schedule: rank ``p-1`` stays
    seated, the rest rotate one seat per round, and opposite seats pair
    up. Every unordered pair meets exactly once per ``p-1`` rounds (for
    even P; odd P adds a phantom seat, so one rank sits out — a bye —
    each round and the period is P). Pairs come back sorted, each as
    ``(low, high)``, so traces and checks agree on edge identity.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if round_index < 0:
        raise ValueError("round_index must be non-negative")
    if p == 1:
        return []
    n = p + (p % 2)  # phantom seat gives odd P its bye
    m = n - 1
    seats = [n - 1] + [(i + round_index) % m for i in range(m)]
    pairs = []
    for i in range(n // 2):
        a, b = seats[i], seats[n - 1 - i]
        if a >= p or b >= p:
            continue  # the phantom's partner sits out this round
        pairs.append((min(a, b), max(a, b)))
    pairs.sort()
    return pairs


@dataclass(frozen=True)
class GpuNodeTopology:
    """One multi-GPU node: host CPU + ``num_gpus`` GPUs on a PCIe switch."""

    num_gpus: int
    cpu_gpu: LinkModel = PCIE_GEN3_X16
    gpu_gpu: LinkModel = PCIE_SWITCH_P2P

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError("num_gpus must be positive")

    def link_for(self, traffic: str) -> LinkModel:
        """Resolve a traffic class to its link.

        ``cpu-gpu data``  — staging a batch of samples host -> GPU;
        ``cpu-gpu para``  — weights host <-> GPU (Algorithms 1-2);
        ``gpu-gpu para``  — weights GPU <-> GPU via the switch (Algorithm 3).
        """
        if traffic in ("cpu-gpu data", "cpu-gpu para"):
            return self.cpu_gpu
        if traffic == "gpu-gpu para":
            return self.gpu_gpu
        raise KeyError(f"unknown traffic class {traffic!r}")


@dataclass(frozen=True)
class KnlClusterTopology:
    """A cluster of self-hosted KNL nodes on a Cray Aries-style fabric."""

    num_nodes: int
    network: LinkModel = CRAY_ARIES

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")

    def link_for(self, traffic: str) -> LinkModel:
        """KNL nodes are self-hosted: all inter-node traffic is one fabric."""
        if traffic in ("node-node para", "node-node data"):
            return self.network
        raise KeyError(f"unknown traffic class {traffic!r}")
