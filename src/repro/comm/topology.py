"""Platform topologies: which link carries which traffic class.

Mirrors the paper's two experimental systems (Artifact Description 10.4):
a multi-GPU node whose GPUs hang off a PCIe switch with the host CPU, and a
KNL cluster on a Cray Aries fabric. Trainers never touch raw LinkModels;
they ask the topology for the link of a traffic class, which keeps the
Table 3 breakdown categories (cpu-gpu data, cpu-gpu para, gpu-gpu para)
honest by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.comm.alphabeta import CRAY_ARIES, LinkModel, PCIE_GEN3_X16, PCIE_SWITCH_P2P

__all__ = ["GpuNodeTopology", "KnlClusterTopology", "ring_neighbors", "ring_edges"]


def ring_neighbors(rank: int, p: int) -> Tuple[int, int]:
    """``(predecessor, successor)`` of ``rank`` on the logical P-ring.

    The neighbour map of the ring collective's step-1 edges; the sharded
    schedule also uses the longer chords (rank -> rank+k), but locality
    analyses and the trace checks reason in terms of this base ring.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if not 0 <= rank < p:
        raise ValueError(f"rank {rank} out of range for size {p}")
    return ((rank - 1) % p, (rank + 1) % p)


def ring_edges(p: int) -> List[Tuple[int, int]]:
    """The P directed edges of the logical ring, in rank order.

    Degenerates to an empty list for P=1 (a self-loop carries no traffic).
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if p == 1:
        return []
    return [(r, (r + 1) % p) for r in range(p)]


@dataclass(frozen=True)
class GpuNodeTopology:
    """One multi-GPU node: host CPU + ``num_gpus`` GPUs on a PCIe switch."""

    num_gpus: int
    cpu_gpu: LinkModel = PCIE_GEN3_X16
    gpu_gpu: LinkModel = PCIE_SWITCH_P2P

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError("num_gpus must be positive")

    def link_for(self, traffic: str) -> LinkModel:
        """Resolve a traffic class to its link.

        ``cpu-gpu data``  — staging a batch of samples host -> GPU;
        ``cpu-gpu para``  — weights host <-> GPU (Algorithms 1-2);
        ``gpu-gpu para``  — weights GPU <-> GPU via the switch (Algorithm 3).
        """
        if traffic in ("cpu-gpu data", "cpu-gpu para"):
            return self.cpu_gpu
        if traffic == "gpu-gpu para":
            return self.gpu_gpu
        raise KeyError(f"unknown traffic class {traffic!r}")


@dataclass(frozen=True)
class KnlClusterTopology:
    """A cluster of self-hosted KNL nodes on a Cray Aries-style fabric."""

    num_nodes: int
    network: LinkModel = CRAY_ARIES

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")

    def link_for(self, traffic: str) -> LinkModel:
        """KNL nodes are self-hosted: all inter-node traffic is one fabric."""
        if traffic in ("node-node para", "node-node data"):
            return self.network
        raise KeyError(f"unknown traffic class {traffic!r}")
