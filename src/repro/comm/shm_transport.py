"""Zero-copy shared-memory transport for the multiprocess rank runtime.

The process backend's queues (`multiprocessing.Queue` = pickle + pipe)
charge Θ(|W|) serialization for every packed weight/gradient buffer the
Θ(log P) tree moves — exactly the parameter-movement tax the paper's
codesign removes (Section 5.2's packed single-buffer messages). This module
supplies the shared-memory substrate: bulk tensor bytes cross process
boundaries through fixed-capacity **slot rings** in named POSIX shared
memory, and the queue carries only a tiny :class:`ShmSlotRef` descriptor.

Design
------
- One :class:`SlotRing` per ``(src, dst, tag)`` channel, created lazily by
  the *sender* on first large payload and sized to it (a later, larger
  payload retires the ring and allocates a new generation; in-flight
  descriptors keep naming the old segment, which stays mapped until the
  run ends). Default capacity 2 — double buffering, the paper's overlap
  primitive.
- Segment layout: a 64-byte header whose first int64 is the **consumed
  count (tail)**, written only by the receiver, followed by
  ``capacity × slot_nbytes`` payload bytes. The sender keeps its produced
  count (head) locally, so each channel is single-producer/single-consumer
  and plain aligned int64 loads/stores are the whole protocol — no locks
  anywhere on the message path.
- **Backpressure**: a send with ``head - tail >= capacity`` blocks until
  the receiver consumes a slot; if the ring stays full past the timeout it
  raises :class:`RingBackpressureError` — a :class:`DeadlockError`, so the
  failure surface matches a wedged ``recv`` on the other side.
- Serialization is pickle protocol 5 with out-of-band buffers: the
  *structure* of the payload (tuples, scalars, dtypes, shapes — including
  the ``(seq, payload)`` wrapping the tracing path adds) travels in a
  small in-band pickle, while every contiguous array body is memcpy'd
  into the slot. ``decode`` copies slot bytes into private storage before
  reconstructing, so received arrays are ordinary writable NumPy arrays
  with no aliasing of ring memory — one memcpy per side versus the
  pickle-everything path's serialize + pipe-write + pipe-read + unpickle.
- Small or array-free payloads (below ``min_bytes`` of out-of-band data)
  return ``None`` from :meth:`ShmTransport.encode` and keep the existing
  pickle path; non-contiguous arrays pickle in-band and likewise fall
  through. Correctness never depends on which path a payload takes.

Lifecycle: each rank process owns the rings it sends on and closes its
mappings on exit; the *parent* communicator unlinks the segments by name
after the run (children report their ring names in the result tuple), so
a descriptor that is still in flight when its sender finishes remains
attachable.
"""

from __future__ import annotations

from dataclasses import dataclass
import pickle
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.comm.runtime import _DEFAULT_TIMEOUT, DeadlockError
from repro.comm.shm_lifecycle import (
    register_segment,
    segment_name,
    unregister_segment,
)

__all__ = [
    "TRANSPORTS",
    "validate_transport",
    "RingBackpressureError",
    "ShmSlotRef",
    "SlotRing",
    "ShmTransport",
    "CollectiveArena",
    "SeqlockBuffer",
    "TornReadError",
    "DEFAULT_SLOTS",
    "DEFAULT_MIN_BYTES",
]

#: The recognised message transports for the process backend.
#: ``queue``: every payload pickles through the inbox queue (PR 3 behaviour).
#: ``shm``: large array payloads stage through shared-memory slot rings.
TRANSPORTS = ("queue", "shm")

#: Ring capacity: 2 slots = double buffering (sender may run one full
#: message ahead of the receiver — the overlap window Sync EASGD3 needs).
DEFAULT_SLOTS = 2

#: Payloads whose out-of-band array bytes total less than this stay on the
#: pickle path: below ~16 KiB the descriptor + segment machinery costs more
#: than pickling, and control traffic (barrier's 4-byte buffers, scalars)
#: should not allocate rings at all.
DEFAULT_MIN_BYTES = 1 << 14

#: Segment header: one cache line. Word 0 is the receiver-written consumed
#: count; the rest is reserved padding so slot 0 starts cache-aligned.
_HEADER_BYTES = 64


def validate_transport(transport: str) -> str:
    """Return ``transport`` or raise a ValueError naming the valid choices."""
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    return transport


class RingBackpressureError(DeadlockError):
    """A send blocked on a full slot ring until the timeout expired.

    The sender-side mirror of a receive deadlock: every slot of the
    ``(rank → dest, tag)`` channel stayed occupied for the whole budget,
    meaning the receiver stopped consuming (died, wedged, or the schedule
    never receives this message). ``source`` carries the *destination*
    rank — the peer whose consumption was awaited.
    """

    def __init__(self, rank: int, dest: int, tag: int, timeout: float, capacity: int) -> None:
        super().__init__(rank, dest, tag, timeout)
        self.capacity = capacity
        self.args = (
            f"rank {rank}: send(dest={dest}, tag={tag}) blocked for {timeout}s "
            f"with all {capacity} ring slots full — receiver not consuming",
        )

    def __reduce__(self):
        return (
            RingBackpressureError,
            (self.rank, self.source, self.tag, self.timeout, self.capacity),
        )


@dataclass(frozen=True)
class ShmSlotRef:
    """The small descriptor that replaces a staged payload on the queue.

    ``buffers`` lists ``(offset_in_slot, nbytes)`` for each out-of-band
    array body, in pickle-5 buffer order; ``meta`` is the in-band pickle
    stream carrying the payload's structure. Everything here is cheap to
    pickle — the whole point.
    """

    segment: str  # shared-memory name, attachable from any process
    segment_bytes: int  # total segment size (attach needs it for the view)
    slot_offset: int  # absolute byte offset of this message's slot
    buffers: Tuple[Tuple[int, int], ...]
    meta: bytes
    nbytes: int  # total out-of-band bytes (== bytes memcpy'd per side)


class SlotRing:
    """Sender-owned SPSC ring of fixed-size slots in one shm segment."""

    def __init__(
        self,
        rank: int,
        dest: int,
        tag: int,
        slot_nbytes: int,
        capacity: int = DEFAULT_SLOTS,
    ) -> None:
        if slot_nbytes <= 0:
            raise ValueError("slot_nbytes must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        from multiprocessing import shared_memory

        self.rank = rank
        self.dest = dest
        self.tag = tag
        # Round each slot up to a cache line so slots never share one.
        self.slot_nbytes = -(-slot_nbytes // 64) * 64
        self.capacity = capacity
        self.total_bytes = _HEADER_BYTES + self.capacity * self.slot_nbytes
        # Lifecycle-tracked name: the pid-stamped prefix lets a later run
        # reap this segment if we die before any unlink path executes.
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.total_bytes, name=segment_name("ring")
        )
        register_segment(self._shm.name)
        self._tail = np.frombuffer(self._shm.buf, dtype=np.int64, count=1)
        self._tail[0] = 0
        self._data = np.frombuffer(self._shm.buf, dtype=np.uint8)
        self.head = 0  # produced count; sender-local, no sharing needed

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def in_flight(self) -> int:
        """Messages produced but not yet consumed (0..capacity)."""
        return self.head - int(self._tail[0])

    def acquire(self, timeout: float = _DEFAULT_TIMEOUT) -> int:
        """Claim the next slot; returns its absolute byte offset.

        Blocks while the ring is full (receiver owes consumption of the
        oldest slot), polling the shared tail with the same exponential
        backoff the receive path uses; raises
        :class:`RingBackpressureError` once ``timeout`` is spent. On
        return the slot is the caller's to fill, and ``head`` has been
        advanced — the message **must** then be delivered.
        """
        if self.head - int(self._tail[0]) >= self.capacity:
            deadline = time.monotonic() + timeout
            wait = min(0.0005, timeout)
            while self.head - int(self._tail[0]) >= self.capacity:
                if time.monotonic() >= deadline:
                    raise RingBackpressureError(
                        self.rank, self.dest, self.tag, timeout, self.capacity
                    )
                time.sleep(wait)
                wait = min(wait * 2.0, 0.05)
        slot = self.head % self.capacity
        self.head += 1
        return _HEADER_BYTES + slot * self.slot_nbytes

    def write(self, offset: int, data: np.ndarray) -> None:
        """memcpy ``data`` (flat uint8) into the slot starting at ``offset``."""
        self._data[offset : offset + data.size] = data

    def close(self, unlink: bool = False) -> None:
        """Drop this process's views and mapping; ``unlink`` destroys the
        segment system-wide (owner-side convenience for unit tests — the
        communicator instead unlinks by name from the parent)."""
        # The NumPy views pin the exported buffer; drop them before close.
        self._tail = None
        self._data = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a stray view still pinned
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            unregister_segment(self._shm.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlotRing({self.rank}->{self.dest} tag={self.tag}, "
            f"slots={self.capacity}x{self.slot_nbytes}B, head={self.head})"
        )


def _contains_array(payload: Any) -> bool:
    """Whether staging could help: any ndarray anywhere in the payload."""
    if isinstance(payload, np.ndarray):
        return True
    if isinstance(payload, (tuple, list)):
        return any(_contains_array(p) for p in payload)
    return False


class ShmTransport:
    """Per-rank encode/decode endpoint over shared-memory slot rings.

    One instance lives in each rank process. ``encode`` stages a payload
    and returns the descriptor to enqueue (or ``None`` — caller keeps the
    pickle path); ``decode`` reconstructs a payload from a descriptor
    popped off the inbox. ``stats`` counts both paths so traces can report
    bytes-on-wire (descriptor pickles) versus bytes-copied (slot memcpys).
    """

    def __init__(
        self,
        rank: int,
        size: int,
        slots: int = DEFAULT_SLOTS,
        min_bytes: int = DEFAULT_MIN_BYTES,
        timeout: float = _DEFAULT_TIMEOUT,
    ) -> None:
        if slots <= 0:
            raise ValueError("slots must be positive")
        if min_bytes < 0:
            raise ValueError("min_bytes must be non-negative")
        self.rank = rank
        self.size = size
        self.slots = slots
        self.min_bytes = min_bytes
        self.timeout = timeout
        self._rings: Dict[Tuple[int, int], SlotRing] = {}
        self._retired: List[SlotRing] = []  # outgrown generations, kept mapped
        self._attached: Dict[str, Tuple[Any, np.ndarray, np.ndarray]] = {}
        self.stats: Dict[str, int] = {
            "shm_messages": 0,
            "queue_messages": 0,
            "bytes_copied_in": 0,  # sender-side memcpys into slots
            "bytes_copied_out": 0,  # receiver-side memcpys out of slots
            "bytes_inplace": 0,  # consumed in place from slots (no copy at all)
            "bytes_on_wire": 0,  # descriptor meta actually crossing the pipe
            "ring_allocs": 0,
        }

    # -- sender side -----------------------------------------------------------
    def encode(self, dest: int, tag: int, payload: Any) -> Optional[ShmSlotRef]:
        """Stage ``payload`` for ``(dest, tag)``; None = use the pickle path."""
        if not _contains_array(payload):
            self.stats["queue_messages"] += 1
            return None
        buffers: List[pickle.PickleBuffer] = []
        try:
            meta = pickle.dumps(payload, protocol=5, buffer_callback=buffers.append)
        except Exception:  # exotic payload; the queue path handles it
            self.stats["queue_messages"] += 1
            return None
        views = [buf.raw() for buf in buffers]
        total = sum(v.nbytes for v in views)
        if total < self.min_bytes:
            # Small arrays (barrier tokens, scalars) — and non-contiguous
            # ones, which pickle in-band — are cheaper on the queue.
            for buf in buffers:
                buf.release()
            self.stats["queue_messages"] += 1
            return None

        ring = self._rings.get((dest, tag))
        if ring is None or ring.slot_nbytes < total:
            if ring is not None:
                self._retired.append(ring)  # in-flight refs may still name it
            ring = SlotRing(self.rank, dest, tag, total, capacity=self.slots)
            self._rings[(dest, tag)] = ring
            self.stats["ring_allocs"] += 1

        offset = ring.acquire(self.timeout)
        descs: List[Tuple[int, int]] = []
        cursor = 0
        for view in views:
            flat = np.frombuffer(view, dtype=np.uint8)
            ring.write(offset + cursor, flat)
            descs.append((cursor, flat.size))
            cursor += flat.size
        for buf in buffers:
            buf.release()
        self.stats["shm_messages"] += 1
        self.stats["bytes_copied_in"] += total
        self.stats["bytes_on_wire"] += len(meta)
        return ShmSlotRef(
            segment=ring.name,
            segment_bytes=ring.total_bytes,
            slot_offset=offset,
            buffers=tuple(descs),
            meta=meta,
            nbytes=total,
        )

    # -- receiver side ---------------------------------------------------------
    def _attach(self, segment: str) -> Tuple[Any, np.ndarray, np.ndarray]:
        """Map (and cache) a sender's segment; returns (shm, tail, data)."""
        entry = self._attached.get(segment)
        if entry is None:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(name=segment)
            tail = np.frombuffer(shm.buf, dtype=np.int64, count=1)
            data = np.frombuffer(shm.buf, dtype=np.uint8)
            entry = self._attached[segment] = (shm, tail, data)
        return entry

    def decode(self, ref: ShmSlotRef) -> Any:
        """Reconstruct the payload and release its slot back to the sender.

        The slot bytes are copied into private storage *before* the tail
        advances, so the returned arrays are ordinary writable NumPy arrays
        that never alias ring memory — a sender overwriting the slot later
        cannot corrupt them.
        """
        _, tail, data = self._attach(ref.segment)
        privates: List[np.ndarray] = []
        for off, nbytes in ref.buffers:
            start = ref.slot_offset + off
            private = np.empty(nbytes, dtype=np.uint8)
            np.copyto(private, data[start : start + nbytes])
            privates.append(private)
        tail[0] += 1  # slot is free for the sender again
        self.stats["bytes_copied_out"] += ref.nbytes
        return pickle.loads(ref.meta, buffers=privates)

    def decode_view(self, ref: ShmSlotRef) -> Tuple[Any, Any]:
        """Reconstruct the payload with arrays *viewing* slot memory.

        The zero-copy receive for consume-once readers (the in-place
        reduce fold): no private copy is made and the tail does **not**
        advance yet — the slot stays claimed while the caller reads the
        views. Returns ``(payload, release)``; the caller must drop every
        reference into the payload and then call ``release()`` exactly
        once to hand the slot back to the sender. Holding the payload past
        ``release()`` would race the sender's next overwrite.
        """
        _, tail, data = self._attach(ref.segment)
        views = [
            data[ref.slot_offset + off : ref.slot_offset + off + nbytes].data
            for off, nbytes in ref.buffers
        ]
        payload = pickle.loads(ref.meta, buffers=views)
        self.stats["bytes_inplace"] += ref.nbytes

        def release() -> None:
            tail[0] += 1

        return payload, release

    # -- lifecycle -------------------------------------------------------------
    def ring_names(self) -> List[str]:
        """Names of every segment this rank created (for parent cleanup)."""
        return [r.name for r in [*self._rings.values(), *self._retired]]

    def close(self, unlink: bool = False) -> None:
        """Release all mappings; ``unlink`` also destroys owned segments."""
        for ring in [*self._rings.values(), *self._retired]:
            ring.close(unlink=unlink)
        self._rings.clear()
        self._retired.clear()
        for name in list(self._attached):
            shm, tail, data = self._attached.pop(name)
            tail = data = None  # noqa: F841 - drop the views pinning the buffer
            try:
                shm.close()
            except BufferError:  # pragma: no cover - a stray payload view
                pass


class CollectiveArena:
    """All-ranks shared staging area for one sharded-ring allreduce channel.

    One named segment holds P **contribution rows** (``elems`` elements in
    the wire dtype, one row per rank, each row cache-line aligned) followed
    by one float32 **result row**. The ring schedule then never moves the
    bulk bytes at all: every rank writes its contribution into its own row,
    each shard owner tree-reduces the P row slices of its shard straight
    into the result row — reduction happens *in place in shared memory* —
    and every rank reads the finished result row directly. Only tiny
    ready/done tokens cross the message fabric; see
    :meth:`repro.comm.mp_runtime.MpRankContext._ring_allreduce` for the
    protocol and its single-generation reuse-safety argument.

    All ranks of a run map the same segment: the first caller of
    :meth:`create_or_attach` creates it, the rest attach by name (retrying
    while the creator's ftruncate is still in flight). The parent
    communicator unlinks by name after the run, exactly like slot rings.
    """

    def __init__(self, shm: Any, size: int, elems: int, wire_dtype: str) -> None:
        wire = np.dtype(np.float16 if wire_dtype == "float16" else np.float32)
        self.size = size
        self.elems = elems
        self.wire_dtype = wire_dtype
        self.row_nbytes = -(-elems * wire.itemsize // 64) * 64
        self._shm = shm
        #: rows[q]: rank q's contribution, in the wire dtype.
        self.rows: List[np.ndarray] = [
            np.frombuffer(shm.buf, dtype=wire, count=elems, offset=q * self.row_nbytes)
            for q in range(size)
        ]
        #: The float32 result row all ranks read after the owners reduce.
        self.result: np.ndarray = np.frombuffer(
            shm.buf, dtype=np.float32, count=elems, offset=size * self.row_nbytes
        )

    @staticmethod
    def _total_bytes(size: int, elems: int, wire_dtype: str) -> int:
        wire = np.dtype(np.float16 if wire_dtype == "float16" else np.float32)
        row = -(-elems * wire.itemsize // 64) * 64
        return size * row + elems * 4

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def create_or_attach(
        cls,
        name: str,
        size: int,
        elems: int,
        wire_dtype: str = "float32",
        timeout: float = _DEFAULT_TIMEOUT,
    ) -> "CollectiveArena":
        """Map the arena ``name``, creating it if this rank arrives first.

        Creation is racy by design (all ranks call this with the same
        name): exactly one create succeeds, the others attach. An attacher
        can glimpse the segment between the creator's ``shm_open`` and
        ``ftruncate`` — it retries until the mapping reaches the expected
        size or ``timeout`` expires.
        """
        if size <= 0 or elems <= 0:
            raise ValueError("size and elems must be positive")
        from multiprocessing import shared_memory

        total = cls._total_bytes(size, elems, wire_dtype)
        try:
            shm = shared_memory.SharedMemory(create=True, size=total, name=name)
            register_segment(name)
            return cls(shm, size, elems, wire_dtype)
        except FileExistsError:
            pass
        deadline = time.monotonic() + timeout
        while True:
            try:
                shm = shared_memory.SharedMemory(name=name)
            except (FileNotFoundError, ValueError):
                shm = None
            if shm is not None:
                if shm.buf.nbytes >= total:
                    return cls(shm, size, elems, wire_dtype)
                shm.close()  # creator's ftruncate not landed yet
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"collective arena {name!r} never reached {total} bytes"
                )
            time.sleep(0.0005)

    def close(self, unlink: bool = False) -> None:
        """Drop this process's views and mapping; ``unlink`` destroys the
        segment system-wide (the communicator unlinks by name from the
        parent, so ranks normally close only)."""
        self.rows = []
        self.result = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a stray view still pinned
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            unregister_segment(self._shm.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CollectiveArena({self.name!r}, ranks={self.size}, "
            f"elems={self.elems}, wire={self.wire_dtype})"
        )


class TornReadError(RuntimeError):
    """A seqlock reader could not obtain a stable snapshot in time.

    Raised only when the writer publishes continuously faster than one
    reader memcpy for the whole retry budget — in practice a sign the
    publisher is spinning in a tight loop, not a transient race.
    """


class SeqlockBuffer:
    """Double-buffered, version-counted publication area for one packed vector.

    The serving tier's read point (and the guard the evaluation path was
    missing): a single writer repeatedly :meth:`publish`\\ es the latest
    center weights; any number of readers :meth:`read` a torn-free,
    staleness-tagged copy without ever blocking the writer.  No locks —
    the protocol is the classic **seqlock** over a **double buffer**:

    - Header (one cache line of int64 words): ``seq`` (even = stable; a
      publish increments it twice), ``active`` slot index, ``step`` tag
      of the active snapshot, ``elems``, and a ``train_step`` heartbeat
      the trainer bumps every step even when it skips a full publish.
    - Two float32 slots of ``elems`` each.  The writer always fills the
      *inactive* slot, then flips ``active``/``step`` inside the odd
      ``seq`` window.  A reader copies the active slot and accepts the
      copy only if ``seq`` did not change around it; for its copy to be
      torn the writer would have had to complete a *second* publish into
      the slot being read, which changes ``seq`` and forces a retry.

    Storage is either a named POSIX shm segment (``shared=True`` — the
    cross-process read point, lifecycle-tracked like every other repro
    segment) or a private NumPy buffer (``shared=False`` — same protocol
    for thread readers, nothing to unlink).

    Word-ordering caveat: CPython offers no memory barriers, so this
    leans on the same x86-TSO store-ordering assumption the slot-ring
    head/tail protocol above already makes.
    """

    _HEADER_WORDS = 8  # seq, active, step, elems, train_step, 3 reserved
    _W_SEQ, _W_ACTIVE, _W_STEP, _W_ELEMS, _W_TRAIN = 0, 1, 2, 3, 4

    def __init__(self, shm: Optional[Any], buf: Any, elems: int, owner: bool) -> None:
        self._shm = shm  # None for local (in-process) storage
        self.elems = int(elems)
        self.owner = owner
        self.slot_nbytes = -(-self.elems * 4 // 64) * 64
        self._header = np.frombuffer(buf, dtype=np.int64, count=self._HEADER_WORDS)
        self._slots = [
            np.frombuffer(buf, dtype=np.float32, count=self.elems,
                          offset=_HEADER_BYTES + s * self.slot_nbytes)
            for s in (0, 1)
        ]
        if owner:
            self._header[:] = 0
            self._header[self._W_ELEMS] = self.elems

    @staticmethod
    def _total_bytes(elems: int) -> int:
        return _HEADER_BYTES + 2 * (-(-elems * 4 // 64) * 64)

    @property
    def name(self) -> Optional[str]:
        """The shm segment name (None for local storage)."""
        return self._shm.name if self._shm is not None else None

    @classmethod
    def create(cls, elems: int, shared: bool = False) -> "SeqlockBuffer":
        """Allocate a buffer for ``elems`` float32 values.

        ``shared=True`` places it in named shared memory so forked serving
        processes can :meth:`attach`; ``shared=False`` keeps it on the
        process heap (thread readers share it by reference).
        """
        if elems <= 0:
            raise ValueError("elems must be positive")
        total = cls._total_bytes(elems)
        if shared:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=total, name=segment_name("snap")
            )
            register_segment(shm.name)
            return cls(shm, shm.buf, elems, owner=True)
        return cls(None, np.zeros(total, dtype=np.uint8).data, elems, owner=True)

    @classmethod
    def attach(cls, name: str, elems: int) -> "SeqlockBuffer":
        """Map an existing shared buffer by name (reader side)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        buf = cls(shm, shm.buf, elems, owner=False)
        if int(buf._header[cls._W_ELEMS]) not in (0, elems):
            size = int(buf._header[cls._W_ELEMS])
            buf.close()
            raise ValueError(f"buffer {name!r} holds {size} elems, expected {elems}")
        return buf

    # -- writer side -------------------------------------------------------
    def publish(self, vec: np.ndarray, step: int) -> int:
        """Publish ``vec`` as the snapshot for training step ``step``.

        Single-writer: fill the inactive slot, then flip inside the odd
        seq window. Returns the new version number.
        """
        flat = np.asarray(vec).reshape(-1)
        if flat.size != self.elems:
            raise ValueError(f"expected {self.elems} elems, got {flat.size}")
        header = self._header
        target = 1 - int(header[self._W_ACTIVE])
        np.copyto(self._slots[target], flat, casting="same_kind")
        header[self._W_SEQ] += 1  # odd: flip in progress
        header[self._W_ACTIVE] = target
        header[self._W_STEP] = int(step)
        if step > header[self._W_TRAIN]:
            header[self._W_TRAIN] = int(step)
        header[self._W_SEQ] += 1  # even: stable again
        return int(header[self._W_SEQ]) // 2

    def mark_step(self, step: int) -> None:
        """Record training progress without republishing weights.

        One int64 store — the cheap per-step heartbeat that makes "steps
        behind training" staleness measurable between full publishes.
        """
        self._header[self._W_TRAIN] = int(step)

    # -- reader side -------------------------------------------------------
    @property
    def version(self) -> int:
        """Completed publish count (0 = nothing published yet)."""
        return int(self._header[self._W_SEQ]) // 2

    @property
    def step(self) -> int:
        """Training step tag of the newest published snapshot."""
        return int(self._header[self._W_STEP])

    @property
    def train_step(self) -> int:
        """Newest training step the writer has reached (heartbeat word)."""
        return int(self._header[self._W_TRAIN])

    def read(
        self,
        out: Optional[np.ndarray] = None,
        timeout: float = _DEFAULT_TIMEOUT,
    ) -> Tuple[np.ndarray, int, int]:
        """A torn-free ``(params, step, version)`` snapshot copy.

        Never blocks the writer; retries while a flip is in flight or a
        flip landed mid-copy.  ``out`` (shape ``(elems,)`` float32) makes
        the hot serving path allocation-free.
        """
        header = self._header
        if out is None:
            out = np.empty(self.elems, dtype=np.float32)
        deadline = time.monotonic() + timeout
        while True:
            s0 = int(header[self._W_SEQ])
            if s0 & 1 == 0:
                slot = int(header[self._W_ACTIVE])
                step = int(header[self._W_STEP])
                np.copyto(out, self._slots[slot])
                if int(header[self._W_SEQ]) == s0:
                    return out, step, s0 // 2
            if time.monotonic() >= deadline:
                raise TornReadError(
                    f"no stable snapshot within {timeout}s — writer is "
                    "publishing continuously"
                )
            time.sleep(0.0)  # yield; flips are two int64 stores, retry is cheap

    # -- lifecycle ---------------------------------------------------------
    def close(self, unlink: bool = False) -> None:
        """Drop views and mapping; ``unlink`` destroys a shared segment."""
        self._header = None  # type: ignore[assignment]
        self._slots = []
        if self._shm is None:
            return
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a stray view still pinned
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            unregister_segment(self._shm.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.name or "local"
        return f"SeqlockBuffer({where}, elems={self.elems}, version={self.version})"
