"""Pipelined (chunked) multi-hop transfers — the NCCL-style optimization.

A tree broadcast of one n-byte message costs ``depth * (alpha + n*beta)``
because every hop waits for the whole buffer. Splitting the buffer into C
chunks pipelines the hops: the last chunk arrives after
``(depth + C - 1)`` chunk-times, so

    T(C) = (depth + C - 1) * (alpha + (n/C) * beta)

which for large n approaches ``n*beta`` (wire speed) instead of
``depth * n * beta``. The optimum balances added latency against hidden
bandwidth: C* = sqrt((depth - 1) * n * beta / alpha).

This is the mechanism behind NCCL's pipelined rings/trees the paper's
GPU implementation links against; the ablation benchmark quantifies it.
"""

from __future__ import annotations

import math

from repro.comm.alphabeta import LinkModel

__all__ = [
    "pipelined_hops_cost",
    "optimal_chunks",
    "pipelined_tree_bcast_cost",
    "pipelined_tree_reduce_cost",
    "pipelined_ring_allreduce_cost",
]


def pipelined_hops_cost(link: LinkModel, nbytes: int, depth: int, chunks: int) -> float:
    """Time for an n-byte message to traverse ``depth`` hops in C chunks."""
    if depth <= 0:
        raise ValueError("depth must be positive")
    if chunks <= 0:
        raise ValueError("chunks must be positive")
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    return (depth + chunks - 1) * link.cost(nbytes / chunks)


def optimal_chunks(link: LinkModel, nbytes: int, depth: int) -> int:
    """The chunk count minimizing :func:`pipelined_hops_cost` (>= 1)."""
    if depth <= 1 or nbytes <= 0 or link.alpha == 0:
        return 1 if depth <= 1 else max(int(math.sqrt(nbytes)), 1)
    c = math.sqrt((depth - 1) * nbytes * link.beta / link.alpha)
    best = max(int(round(c)), 1)
    # The cost is unimodal in C; settle discrete neighbours exactly.
    candidates = {max(best - 1, 1), best, best + 1}
    return min(candidates, key=lambda k: pipelined_hops_cost(link, nbytes, depth, k))


def pipelined_tree_bcast_cost(link: LinkModel, nbytes: int, p: int) -> float:
    """Binomial-tree broadcast with optimally pipelined chunks."""
    from repro.comm.collectives import tree_rounds

    depth = tree_rounds(p)
    if depth == 0:
        return 0.0
    chunks = optimal_chunks(link, nbytes, depth)
    return pipelined_hops_cost(link, nbytes, depth, chunks)


def pipelined_tree_reduce_cost(link: LinkModel, nbytes: int, p: int) -> float:
    """Binomial-tree reduce with chunked edges (``chunk_elems``).

    Under alpha-beta the reduce pipeline mirrors the bcast: chunk k's
    transfer down an edge overlaps the fold of chunk k-1, so the critical
    path is the same ``(depth + C - 1)`` chunk-times.
    """
    return pipelined_tree_bcast_cost(link, nbytes, p)


def pipelined_ring_allreduce_cost(link: LinkModel, nbytes: int, p: int, chunks: int = 1) -> float:
    """Sharded ring allreduce, optionally sub-chunking each n/P shard.

    The base schedule is already chunked at granularity n/P — 2(P-1)
    steps of shard-sized messages (``ring_allreduce_cost``). Splitting
    each shard into ``chunks`` sub-chunks deepens the pipeline to
    ``2(P-1) + chunks - 1`` steps of n/(P*chunks)-byte messages, trading
    alpha terms for overlap exactly like the tree pipeline.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if p == 1:
        return 0.0
    return pipelined_hops_cost(link, nbytes / p, 2 * (p - 1), chunks)
