"""Tree collectives: real numerics plus alpha-beta cost functions.

The paper's Sync EASGD replaces the round-robin's P sequential interactions
with a binomial-tree reduction/broadcast: Theta(log P) rounds instead of
Theta(P). Two faces are provided:

- **Numerics**: :func:`tree_reduce` actually sums NumPy vectors pairwise in
  a *fixed* binomial-tree order, so Sync EASGD's result is bit-deterministic
  (the paper's reproducibility claim) regardless of worker count parity.
- **Cost**: closed-form alpha-beta times for tree reduce/bcast, the flat
  sequential (round-robin / parameter-server) exchange, and allreduce.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.comm.alphabeta import LinkModel

__all__ = [
    "COLLECTIVES",
    "validate_collective",
    "tree_rounds",
    "tree_reduce",
    "tree_reduce_into",
    "tree_bcast_order",
    "tree_reduce_cost",
    "tree_bcast_cost",
    "flat_sequential_cost",
    "allreduce_cost",
    "shard_bounds",
    "ring_allreduce",
    "ring_allreduce_cost",
    "tree_gather",
    "scatter_shards",
    "tree_gather_cost",
    "scatter_cost",
]

#: The recognised allreduce schedules for the rank runtimes.
#: ``tree``: binomial reduce-to-root + broadcast — Theta(log P) rounds,
#: every round moves the full buffer. ``ring``: reduce-scatter + allgather
#: — 2(P-1) rounds of n/P-byte shards, Theta(1) bytes per rank in n.
COLLECTIVES = ("tree", "ring")


def validate_collective(collective: str) -> str:
    """Return ``collective`` or raise a ValueError naming the valid choices."""
    if collective not in COLLECTIVES:
        raise ValueError(
            f"unknown collective {collective!r}; expected one of {COLLECTIVES}"
        )
    return collective


def tree_rounds(p: int) -> int:
    """Number of rounds of a binomial tree over ``p`` ranks: ceil(log2 p)."""
    if p <= 0:
        raise ValueError("p must be positive")
    return int(math.ceil(math.log2(p))) if p > 1 else 0


def tree_reduce(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Binomial-tree sum of equal-shape vectors, deterministic association.

    Round k folds rank ``i + 2**k`` into rank ``i`` for every i that is a
    multiple of ``2**(k+1)`` — the textbook recursive halving schedule. The
    association order is a pure function of ``len(vectors)``, which is what
    makes Sync EASGD runs bit-reproducible.
    """
    if not vectors:
        raise ValueError("need at least one vector")
    shape = vectors[0].shape
    for v in vectors:
        if v.shape != shape:
            raise ValueError("all vectors must have the same shape")
    acc: List[np.ndarray | None] = [np.array(v, copy=True) for v in vectors]
    p = len(acc)
    stride = 1
    while stride < p:
        for i in range(0, p - stride, 2 * stride):
            acc[i] = acc[i] + acc[i + stride]  # type: ignore[operator]
            acc[i + stride] = None
        stride *= 2
    assert acc[0] is not None
    return acc[0]


def tree_reduce_into(vectors: Sequence[np.ndarray], out: np.ndarray) -> np.ndarray:
    """:func:`tree_reduce` without the input copies, accumulating into ``out``.

    Bitwise identical to ``tree_reduce(vectors)``: the association order is
    the same stride-doubling schedule, and ``np.add(a, b, out=...)`` is the
    same ufunc as ``a + b``. The inputs are only *read* (they may live in
    shared memory or belong to other ranks); all intermediate sums land in
    ``out``, which therefore must not overlap any input. With one vector
    the result is a plain copy.
    """
    if not vectors:
        raise ValueError("need at least one vector")
    shape = vectors[0].shape
    for v in vectors:
        if v.shape != shape:
            raise ValueError("all vectors must have the same shape")
    if out.shape != shape:
        raise ValueError(f"out has shape {out.shape}, expected {shape}")
    p = len(vectors)
    if p == 1:
        np.copyto(out, vectors[0])
        return out
    # Mirror tree_reduce's chain: slot 0's accumulator is ``out`` itself
    # (seeded by the first fold), other slots get private scratch the
    # first time they accumulate. Read-only inputs are never written.
    acc: List[np.ndarray | None] = list(vectors)
    fresh = [True] * p  # acc[i] still aliases the caller's input
    stride = 1
    while stride < p:
        for i in range(0, p - stride, 2 * stride):
            a, b = acc[i], acc[i + stride]
            if fresh[i]:
                target = out if i == 0 else np.empty_like(out)
                np.add(a, b, out=target)  # type: ignore[arg-type]
                acc[i], fresh[i] = target, False
            else:
                np.add(a, b, out=a)  # type: ignore[arg-type]
            acc[i + stride] = None
        stride *= 2
    assert acc[0] is out
    return out


def tree_bcast_order(p: int) -> List[Tuple[int, int]]:
    """Binomial-tree broadcast edge list as (source, destination) pairs.

    Round k has every rank i < 2**k forward to i + 2**k (if it exists), so
    after ceil(log2 p) rounds all ranks hold the root's value.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    edges: List[Tuple[int, int]] = []
    have = 1
    while have < p:
        for src in range(min(have, p - have)):
            edges.append((src, src + have))
        have *= 2
    return edges


def tree_reduce_cost(link: LinkModel, nbytes: int, p: int) -> float:
    """ceil(log2 P) rounds, each one full-message hop: logP * (alpha + n*beta)."""
    return tree_rounds(p) * link.cost(nbytes)


def tree_bcast_cost(link: LinkModel, nbytes: int, p: int) -> float:
    """Broadcast cost mirrors the reduce under alpha-beta."""
    return tree_rounds(p) * link.cost(nbytes)


def flat_sequential_cost(link: LinkModel, nbytes: int, p: int) -> float:
    """P sequential full-message exchanges at the root: P * (alpha + n*beta).

    This is the round-robin / one-at-a-time parameter-server pattern the
    paper starts from — the Theta(P) term Sync EASGD eliminates.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    return p * link.cost(nbytes)


def allreduce_cost(link: LinkModel, nbytes: int, p: int) -> float:
    """Tree reduce followed by tree broadcast: 2 * logP * (alpha + n*beta)."""
    return tree_reduce_cost(link, nbytes, p) + tree_bcast_cost(link, nbytes, p)


def shard_bounds(n: int, p: int) -> List[int]:
    """The P+1 split points of an n-element buffer into P near-equal shards.

    Shard ``s`` is ``[bounds[s], bounds[s+1])`` with ``(n*i)//p`` bounds, so
    shard sizes differ by at most one element and ragged cases degrade
    gracefully: ``n < p`` simply yields some empty shards (those owners move
    zero bytes), never an error. Every party to a ring collective — both
    rank runtimes, the serial reference, and the trace emitter — derives its
    shard layout from this one function.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if n < 0:
        raise ValueError("n must be non-negative")
    return [(n * i) // p for i in range(p + 1)]


def ring_allreduce(vectors: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Ring allreduce numerics: every rank ends with the (identical) sum.

    The serial reference for the runtimes' sharded schedule: the buffer is
    split into P owner shards (:func:`shard_bounds`), the reduce-scatter
    phase gives owner ``s`` every rank's version of shard ``s``, and the
    owner folds them with the *binomial-tree association over rank order*
    (:func:`tree_reduce` restricted to the shard). Because tree reduction
    is elementwise in the rank dimension, the assembled result is bitwise
    identical to ``tree_reduce(vectors)`` — ring and tree are
    interchangeable without perturbing a single ULP, which is what lets
    the backends switch collectives per buffer size. Returns a list of P
    result vectors (all equal; separate arrays, as separate ranks would
    hold after the allgather).
    """
    if not vectors:
        raise ValueError("need at least one vector")
    shape = vectors[0].shape
    for v in vectors:
        if v.shape != shape:
            raise ValueError("all vectors must have the same shape")
    p = len(vectors)
    if p == 1:
        return [np.array(vectors[0], copy=True)]

    flats = [np.asarray(v).reshape(-1) for v in vectors]
    n = flats[0].size
    bounds = shard_bounds(n, p)
    total = np.empty(n, dtype=np.result_type(*[f.dtype for f in flats]))
    for s in range(p):
        lo, hi = bounds[s], bounds[s + 1]
        if hi > lo:
            tree_reduce_into([f[lo:hi] for f in flats], total[lo:hi])
    return [total.reshape(shape).copy() for _ in range(p)]


def ring_allreduce_cost(link: LinkModel, nbytes: int, p: int) -> float:
    """Bandwidth-optimal ring allreduce: 2(P-1) steps of n/P-byte messages.

    Total bytes moved per rank ~ 2n(P-1)/P (asymptotically 2n, independent
    of P) at the price of 2(P-1) latency terms — the classic tree-vs-ring
    trade: rings win for large n, trees for small n / large P.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if p == 1:
        return 0.0
    return 2 * (p - 1) * link.cost(nbytes / p)


def tree_gather(vectors: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Gather all ranks' vectors to rank 0 in binomial-tree order.

    Returns the list in rank order — the concatenation the root would hold
    after a tree gather (each hop forwards its accumulated block upward).
    """
    if not vectors:
        raise ValueError("need at least one vector")
    return [np.array(v, copy=True) for v in vectors]


def scatter_shards(data: np.ndarray, p: int) -> List[np.ndarray]:
    """Root-side scatter: split ``data`` into ``p`` near-equal row shards.

    The distribution step of data parallelism (Figure 4.1: "the dataset is
    partitioned into P parts and each machine only gets one part").
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if len(data) < p:
        raise ValueError(f"cannot scatter {len(data)} rows to {p} ranks")
    return [np.array(shard, copy=True) for shard in np.array_split(data, p)]


def tree_gather_cost(link: LinkModel, nbytes_per_rank: int, p: int) -> float:
    """Binomial-tree gather: round k moves blocks of 2^k ranks' data.

    Total: sum_k (alpha + 2^k * n * beta) = logP * alpha + (P-1) * n * beta.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    rounds = tree_rounds(p)
    return rounds * link.alpha + (p - 1) * nbytes_per_rank * link.beta


def scatter_cost(link: LinkModel, nbytes_per_rank: int, p: int) -> float:
    """Tree scatter mirrors the gather under alpha-beta."""
    return tree_gather_cost(link, nbytes_per_rank, p)
