"""Backend selection for the rank runtimes.

One knob — ``backend="threads" | "processes"`` — chooses the execution
substrate for every rank-program consumer (the message-passing trainers,
the KNL chip-partition trainer, the Hogwild runner, the CLI). Both
communicators expose the same surface and, because their rank contexts
share :class:`repro.comm.runtime.RankContextBase`, the same collective
association order: switching backends changes wall-clock behaviour, never
numerics.
"""

from __future__ import annotations

from typing import Any

from repro.comm.collectives import COLLECTIVES, validate_collective
from repro.comm.mp_runtime import fork_available, MultiprocessCommunicator
from repro.comm.runtime import InProcessCommunicator
from repro.comm.shm_transport import TRANSPORTS, validate_transport
from repro.optim.quantize import validate_wire_dtype, WIRE_DTYPES

__all__ = [
    "BACKENDS",
    "TRANSPORTS",
    "COLLECTIVES",
    "WIRE_DTYPES",
    "validate_backend",
    "validate_transport",
    "validate_collective",
    "validate_wire_dtype",
    "make_communicator",
]

#: The recognised execution backends, in default-preference order.
BACKENDS = ("threads", "processes")


def validate_backend(backend: str) -> str:
    """Return ``backend`` or raise a ValueError naming the valid choices."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


def make_communicator(size: int, backend: str = "threads", **kwargs: Any):
    """Build the communicator for ``backend`` with uniform kwargs.

    ``kwargs`` are the common knobs (``timeout``, ``faults``,
    ``max_retries``, ``retry_backoff``, ``trace``, ``transport``,
    ``collective``, ``wire_dtype``, ``chunk_elems``) plus the
    process-backend tuning knobs (``shm_slots``, ``shm_min_bytes``,
    ``pin_cpus``). ``transport`` selects how the process backend moves
    message bytes — ``"shm"`` (zero-copy slot rings, the default) or
    ``"queue"`` (pickle through pipes); the thread backend accepts the
    knob for interface parity but always passes payloads by reference.
    ``collective`` picks the allreduce schedule ("tree"/"ring") and
    ``wire_dtype`` the on-fabric array format ("float32"/"float16") —
    both are shared knobs, honoured identically by either backend. The
    process-only tuning knobs are meaningless for threads and are dropped
    rather than rejected, so one call site can serve both backends.

    ``pool`` (a :class:`repro.pool.WorkerPool`) attaches the process
    backend to persistent pre-forked workers: ``run`` then dispatches to
    the pool instead of forking per call — amortized spin-up, identical
    numerics. Threads spin up cheaply, so the knob is dropped there.
    """
    validate_backend(backend)
    if kwargs.get("transport", "") is None:
        kwargs.pop("transport")  # None = the backend's own default
    if kwargs.get("pool", "") is None:
        kwargs.pop("pool")
    if backend == "processes":
        if not fork_available():  # pragma: no cover - POSIX always has fork
            raise RuntimeError(
                "backend='processes' requires the fork start method; "
                "this platform only offers "
                f"{__import__('multiprocessing').get_all_start_methods()}"
            )
        return MultiprocessCommunicator(size, **kwargs)
    kwargs.pop("shm_slots", None)
    kwargs.pop("shm_min_bytes", None)
    kwargs.pop("pin_cpus", None)
    kwargs.pop("pool", None)
    return InProcessCommunicator(size, **kwargs)
