"""In-process MPI-style runtime: threads as ranks, queues as the fabric.

The paper's artifact runs its distributed algorithms over MPI ("We use MPI
for distributed processing on the KNL cluster / multi-GPU multi-node
system"). This module is the offline substitute: an
:class:`InProcessCommunicator` spawns one Python thread per rank and gives
each a :class:`RankContext` with the familiar API — ``send``/``recv`` with
source+tag matching, and collectives (``bcast``, ``reduce``,
``allreduce``, ``barrier``) built *on top of* point-to-point messages with
the same binomial-tree schedules as :mod:`repro.comm.collectives`, so the
floating-point association (and hence bit-level results) matches the
simulated trainers.

This is real concurrency: NumPy kernels release the GIL, messages really
cross thread boundaries, and a bug in the schedule deadlocks exactly as it
would under MPI — surfacing as a :class:`DeadlockError` that names the
waiting rank, the expected source, and the tag.

The rank-side behaviour (fault-aware sends, selective receives, the tree
collectives, trace emission) lives in :class:`RankContextBase`, which is
fabric-independent: this module's :class:`RankContext` runs it over
per-thread mailboxes, and :class:`repro.comm.mp_runtime.MpRankContext`
runs the *same* code over real OS processes — the two backends therefore
share one association order and one tag discipline by construction.

Collective tag space
--------------------
Every collective's internal phases derive their wire tags from the user
tag by adding multiples of :data:`COLLECTIVE_TAG_STRIDE`, so no two
collectives (or a collective phase and a user point-to-point tag) can
ever share a mailbox channel. Historically ``allreduce(tag=103)`` ran its
broadcast phase on ``tag + 1 = 104`` — exactly ``barrier``'s default
reduce tag — so interleaved ``allreduce()`` + ``barrier()`` calls on one
communicator could cross-match messages. The partition makes that
impossible; :func:`collective_wire_tags` exposes the mapping for tests.

Fault injection: pass ``faults=FaultPlan(...).drop_rate(p)`` and every
send becomes an unreliable-link transmission — each delivery attempt is
dropped with probability ``p`` (a pure function of the plan seed and the
message identity, so runs are reproducible), the sender retransmits with
exponential backoff up to ``max_retries`` times, and the receiver's
``recv`` polls in exponentially growing slices. A schedule bug or a
message the plan marks lost-forever therefore fails *deterministically and
fast* (a :class:`DeadlockError` at the configured timeout) instead of
hanging for a hardcoded minute. Every drop/retransmission/delay is logged
to the communicator's :class:`repro.faults.FaultLog`.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.faults import FaultLog, FaultPlan
from repro.trace.events import Trace

__all__ = [
    "COLLECTIVE_TAG_STRIDE",
    "collective_wire_tags",
    "RankContextBase",
    "RankContext",
    "InProcessCommunicator",
    "DeadlockError",
    "MultiRankError",
]


def _payload_nbytes(payload: Any) -> int:
    """Best-effort wire size of a payload for trace accounting.

    Recurses into tuples and lists so piggyback payloads like
    ``(loss, weights)`` account for their array bytes — these used to
    report 0, silently zeroing the byte columns of every trace metric
    for any trainer that ships composite messages.
    """
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (tuple, list)):
        return sum(_payload_nbytes(item) for item in payload)
    return 0

_DEFAULT_TIMEOUT = 60.0  # seconds before a recv declares a deadlock

#: Width of the user tag block. Collective phases add multiples of this
#: stride to the user tag, so as long as user tags stay below the stride
#: each phase occupies its own disjoint tag range:
#:
#:   block 0: user p2p tags and direct ``bcast``/``reduce`` phases
#:   block 1: ``allreduce`` reduce phase
#:   block 2: ``allreduce`` bcast phase
#:   blocks 4-5: ``barrier`` (its internal allreduce, shifted by block 3)
COLLECTIVE_TAG_STRIDE = 1 << 16

#: Default user tags of the four collectives (kept from the original API).
_DEFAULT_TAGS = {"bcast": 101, "reduce": 102, "allreduce": 103, "barrier": 104}


def collective_wire_tags(op: str, tag: Optional[int] = None) -> Tuple[int, ...]:
    """The point-to-point wire tags a collective with user tag ``tag`` uses.

    The regression surface for the tag-space partition: for any user tags
    within one stride block, the wire-tag sets of ``bcast``, ``reduce``,
    ``allreduce``, and ``barrier`` are pairwise disjoint.
    """
    if op not in _DEFAULT_TAGS:
        raise ValueError(f"unknown collective {op!r}; expected one of {sorted(_DEFAULT_TAGS)}")
    tag = _DEFAULT_TAGS[op] if tag is None else tag
    if op in ("bcast", "reduce"):
        return (tag,)
    if op == "allreduce":
        return (tag + COLLECTIVE_TAG_STRIDE, tag + 2 * COLLECTIVE_TAG_STRIDE)
    # barrier = allreduce shifted into its own block
    return collective_wire_tags("allreduce", tag + 3 * COLLECTIVE_TAG_STRIDE)


class DeadlockError(TimeoutError):
    """A ``recv`` that can never complete: schedule deadlock or lost message.

    Carries the waiting ``rank``, the expected ``source``, the ``tag``, and
    the ``timeout`` that expired, so the failing edge of the communication
    schedule is identifiable from the exception alone.
    """

    def __init__(self, rank: int, source: int, tag: int, timeout: float) -> None:
        self.rank = rank
        self.source = source
        self.tag = tag
        self.timeout = timeout
        super().__init__(
            f"rank {rank}: recv(source={source}, tag={tag}) timed out after "
            f"{timeout}s — likely a schedule deadlock or a lost message"
        )

    def __reduce__(self):
        # Default BaseException pickling would replay __init__ with the
        # formatted message as the only argument; the multiprocess backend
        # ships these across process boundaries, so pickle the fields.
        return (DeadlockError, (self.rank, self.source, self.tag, self.timeout))


class MultiRankError(RuntimeError):
    """Several ranks failed in one ``run``; every failure is preserved.

    ``failures`` maps rank -> the exception that killed it. The message
    names each failing rank so a 3-of-64 wreck is diagnosable without
    digging — the old behaviour of re-raising only the first collected
    exception silently discarded the other ranks' errors entirely.
    """

    def __init__(self, failures) -> None:
        self.failures: Dict[int, BaseException] = dict(failures)
        parts = "; ".join(
            f"rank {rank}: {type(exc).__name__}: {exc}"
            for rank, exc in sorted(self.failures.items())
        )
        super().__init__(f"{len(self.failures)} ranks failed — {parts}")

    def __reduce__(self):
        return (_rebuild_multi_rank_error, (list(self.failures.items()),))

    @staticmethod
    def aggregate(failures) -> BaseException:
        """The exception a failed run should raise.

        A lone failure is returned as-is (so ``except RuntimeError`` /
        ``except TimeoutError`` around single-fault runs keep working).
        Several failures become one aggregate that *also* inherits the
        most specific exception type common to all of them — an
        all-ranks deadlock is still catchable as :class:`TimeoutError`,
        an all-ranks ``ValueError`` as :class:`ValueError`.
        """
        failures = list(failures)
        if len(failures) == 1:
            return failures[0][1]
        excs = [exc for _, exc in failures]
        common = next(
            base for base in type(excs[0]).__mro__
            if all(isinstance(exc, base) for exc in excs)
        )  # BaseException at worst, so `next` always yields
        if issubclass(MultiRankError, common):
            return MultiRankError(failures)
        cls = _MULTI_RANK_MIXINS.get(common)
        if cls is None:
            try:
                cls = type(f"MultiRank{common.__name__}", (MultiRankError, common), {})
            except TypeError:  # unresolvable MRO for an exotic base
                cls = MultiRankError
            _MULTI_RANK_MIXINS[common] = cls
        err = cls(failures)
        # Adopt the lowest-rank failure's context attributes (a
        # DeadlockError's rank/source/tag/timeout, say) so handlers that
        # introspect the common type keep working on the aggregate.
        representative = min(failures)[1]
        for key, value in vars(representative).items():
            err.__dict__.setdefault(key, value)
        return err


#: aggregate()'s cache of MultiRankError-with-common-base subclasses.
_MULTI_RANK_MIXINS: Dict[type, type] = {}


def _rebuild_multi_rank_error(failures: List[Tuple[int, BaseException]]) -> "MultiRankError":
    """Pickle hook: rebuild via aggregate() so the dynamic mixin class
    (not importable by name) never needs to be pickled itself."""
    return MultiRankError.aggregate(failures)


class _Mailbox:
    """Per-rank mailbox with (source, tag) selective receive."""

    def __init__(self) -> None:
        self._queues: Dict[Tuple[int, int], "queue.Queue[Any]"] = {}
        self._lock = threading.Lock()

    def _queue_for(self, source: int, tag: int) -> "queue.Queue[Any]":
        with self._lock:
            key = (source, tag)
            q = self._queues.get(key)
            if q is None:
                q = self._queues[key] = queue.Queue()
            return q

    def put(self, source: int, tag: int, payload: Any) -> None:
        self._queue_for(source, tag).put(payload)

    def get(
        self,
        rank: int,
        source: int,
        tag: int,
        timeout: float,
        on_retry: Optional[Callable[[int], None]] = None,
    ) -> Any:
        """Blocking selective receive with exponential-backoff polling.

        Waits in growing slices (so a transiently dropped-and-retransmitted
        message is picked up shortly after redelivery); raises
        :class:`DeadlockError` naming ``(rank, source, tag)`` once the
        total ``timeout`` budget is spent — never a bare
        :class:`queue.Empty`, which used to leak the internal queue
        abstraction to callers racing collectives under fault plans.
        A message that lands exactly as the budget expires is still
        drained by a final non-blocking poll before the error is raised,
        so a delivery racing the deadline wins instead of deadlocking.
        ``on_retry`` is invoked with the attempt number after each empty
        slice — the hook the communicator uses for fault logging.
        """
        q = self._queue_for(source, tag)
        deadline = time.monotonic() + timeout
        wait = min(0.05, timeout)
        attempt = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                try:
                    return q.get_nowait()  # the race: delivered at the wire
                except queue.Empty:
                    raise DeadlockError(rank, source, tag, timeout) from None
            try:
                return q.get(timeout=min(wait, remaining))
            except queue.Empty:
                attempt += 1
                if on_retry is not None:
                    on_retry(attempt)
                wait = min(wait * 2.0, 2.0)


class RankContextBase:
    """One rank's view of a communicator, independent of the fabric.

    Subclasses bind the fabric by implementing three hooks —
    ``_deliver(dest, tag, payload)`` (enqueue at the destination),
    ``_poll(source, tag, on_retry)`` (blocking selective receive that
    raises :class:`DeadlockError` on budget exhaustion), and
    ``_elapsed()`` (seconds on the communicator's clock) — and by
    exposing the knobs ``size``, ``timeout``, ``faults``, ``fault_log``,
    ``max_retries``, ``retry_backoff``, and ``trace`` as attributes or
    properties. Everything above those hooks (fault-plan sends, trace
    emission, and the binomial-tree collectives with their association
    order) is shared, which is what keeps the ``threads`` and
    ``processes`` backends bit-identical.
    """

    rank: int
    size: int

    def _init_rank_state(self, rank: int) -> None:
        self.rank = rank
        self._send_seq: Dict[Tuple[int, int], int] = {}
        #: Rank programs may set this so trace events carry iteration ids.
        self.trace_iteration = -1
        self._trace_op = ""  # label for p2p events inside a collective
        self._trace_round = -1

    # -- fabric hooks (subclass responsibility) --------------------------------
    def _deliver(self, dest: int, tag: int, payload: Any) -> None:
        raise NotImplementedError

    def _poll(self, source: int, tag: int, on_retry: Optional[Callable[[int], None]]) -> Any:
        raise NotImplementedError

    def _elapsed(self) -> float:
        raise NotImplementedError

    # -- point to point --------------------------------------------------------
    def _next_seq(self, dest: int, tag: int) -> int:
        key = (dest, tag)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        return seq

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Deliver ``payload`` to ``dest`` (asynchronous, buffered).

        Under a fault plan the link is unreliable: each delivery attempt may
        be dropped, in which case the sender backs off exponentially and
        retransmits (up to ``max_retries`` retries). A channel the plan
        marks lost-forever silently never delivers — the receiving rank's
        ``recv`` then raises :class:`DeadlockError`.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range for size {self.size}")
        plan = self.faults
        trace = self.trace
        if plan is None and trace is None:
            self._deliver(dest, tag, payload)
            return

        seq = self._next_seq(dest, tag)
        if trace is not None:
            payload = (seq, payload)  # carry the identity to the recv side
        if plan is None:
            t0 = self._elapsed()
            self._deliver(dest, tag, payload)
            self._trace_send(seq, dest, tag, payload[1], t0)
            return
        edge = f"rank {self.rank} -> {dest} tag {tag}"
        if plan.is_lost(self.rank, dest, tag):
            self.fault_log.record(self._elapsed(), "lost", edge, f"seq={seq}: never delivered")
            self._trace_fault("lost", dest, tag, seq)
            return
        lag = plan.delay_seconds(self.rank, dest, tag, seq)
        if lag > 0.0:
            self.fault_log.record(self._elapsed(), "delay", edge, f"+{lag:.4g}s seq={seq}")
            self._trace_fault("delay", dest, tag, seq)
            time.sleep(lag)
        for attempt in range(self.max_retries + 1):
            if plan.should_drop(self.rank, dest, tag, seq, attempt):
                self.fault_log.record(self._elapsed(), "drop", edge, f"seq={seq} attempt={attempt}")
                self._trace_fault("drop", dest, tag, seq)
                time.sleep(self.retry_backoff * (2 ** min(attempt, 6)))
                continue
            if attempt > 0:
                self.fault_log.record(
                    self._elapsed(), "retransmit", edge, f"seq={seq} delivered on attempt {attempt}"
                )
            t0 = self._elapsed()
            self._deliver(dest, tag, payload)
            self._trace_send(seq, dest, tag, payload[1] if trace is not None else payload, t0)
            return
        self.fault_log.record(
            self._elapsed(), "lost", edge,
            f"seq={seq}: dropped on all {self.max_retries + 1} attempts",
        )
        self._trace_fault("lost", dest, tag, seq)

    # -- trace plumbing (no-ops unless the communicator carries a Trace) ----------
    def _trace_send(self, seq: int, dest: int, tag: int, payload: Any, t0: float) -> None:
        trace = self.trace
        if trace is None:
            return
        trace.send(self.rank, dest, t0, self._elapsed(), tag=tag,
                   nbytes=_payload_nbytes(payload), seq=seq, op=self._trace_op,
                   round=self._trace_round, iteration=self.trace_iteration)

    def _trace_fault(self, op: str, dest: int, tag: int, seq: int) -> None:
        trace = self.trace
        if trace is None:
            return
        trace.fault(self.rank, self._elapsed(), op, peer=dest, tag=tag,
                    seq=seq, iteration=self.trace_iteration)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Block until a message from ``source`` with ``tag`` arrives.

        Raises :class:`DeadlockError` (a :class:`TimeoutError`) carrying
        rank/source/tag once the communicator's timeout budget is spent.
        """
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range for size {self.size}")
        on_retry = None
        if self.faults is not None:
            fault_log = self.fault_log
            elapsed = self._elapsed

            def on_retry(attempt: int, _edge=f"rank {self.rank} <- {source} tag {tag}") -> None:
                fault_log.record(elapsed(), "recv-retry", _edge, f"poll {attempt}")

        trace = self.trace
        t0 = self._elapsed() if trace is not None else 0.0
        payload = self._poll(source, tag, on_retry)
        if trace is None:
            return payload
        seq, payload = payload
        trace.recv(self.rank, source, t0, self._elapsed(), tag=tag,
                   nbytes=_payload_nbytes(payload), seq=seq, op=self._trace_op,
                   round=self._trace_round, iteration=self.trace_iteration)
        return payload

    # -- collectives (binomial-tree schedules) ------------------------------------
    def _collective_span(self, op: str, t0: float) -> None:
        trace = self.trace
        if trace is not None:
            trace.span("collective", self.rank, t0, self._elapsed(), op=op,
                       iteration=self.trace_iteration)

    def bcast(self, payload: Any, root: int = 0, tag: int = 101) -> Any:
        """Broadcast from ``root``; every rank returns the payload."""
        t0 = self._elapsed()
        prev_op = self._trace_op
        self._trace_op = "tree-bcast"
        rel = (self.rank - root) % self.size
        # receive from parent (the rank that turned our bit on)
        if rel != 0:
            have = 1
            while have * 2 <= rel:
                have *= 2
            parent_rel = rel - have
            self._trace_round = have.bit_length() - 1
            payload = self.recv((parent_rel + root) % self.size, tag)
        # forward to children
        have = 1
        while have <= rel:
            have *= 2
        while have < self.size:
            child_rel = rel + have
            if child_rel < self.size:
                self._trace_round = have.bit_length() - 1
                self.send(payload, (child_rel + root) % self.size, tag)
            have *= 2
        self._trace_op, self._trace_round = prev_op, -1
        self._collective_span("tree-bcast", t0)
        return payload

    def reduce(self, array: np.ndarray, root: int = 0, tag: int = 102) -> Optional[np.ndarray]:
        """Tree-sum arrays to ``root`` with the same association order as
        :func:`repro.comm.collectives.tree_reduce`. Returns the sum at the
        root, ``None`` elsewhere."""
        t0 = self._elapsed()
        prev_op = self._trace_op
        self._trace_op = "tree-reduce"
        rel = (self.rank - root) % self.size
        acc = np.array(array, copy=True)
        result: Optional[np.ndarray] = None
        stride = 1
        while stride < self.size:
            self._trace_round = stride.bit_length() - 1
            if rel % (2 * stride) == 0:
                partner = rel + stride
                if partner < self.size:
                    acc = acc + self.recv((partner + root) % self.size, tag)
            elif rel % (2 * stride) == stride:
                self.send(acc, (rel - stride + root) % self.size, tag)
                break  # sent upstream; this rank is done
            stride *= 2
        else:
            result = acc if rel == 0 else None
        self._trace_op, self._trace_round = prev_op, -1
        self._collective_span("tree-reduce", t0)
        return result

    def allreduce(self, array: np.ndarray, tag: int = 103) -> np.ndarray:
        """Tree reduce to rank 0 followed by tree broadcast.

        The two phases run on tags derived from ``tag`` in reserved
        blocks (see :func:`collective_wire_tags`) so they can never
        collide with ``barrier`` or with user point-to-point traffic —
        the pre-partition scheme put the bcast phase on ``tag + 1``,
        which for the default tags was exactly ``barrier``'s reduce tag.
        """
        total = self.reduce(array, root=0, tag=tag + COLLECTIVE_TAG_STRIDE)
        return self.bcast(total, root=0, tag=tag + 2 * COLLECTIVE_TAG_STRIDE)

    def barrier(self, tag: int = 104) -> None:
        """Synchronize all ranks (zero-byte allreduce on a reserved tag block)."""
        self.allreduce(np.zeros(1, dtype=np.float32), tag=tag + 3 * COLLECTIVE_TAG_STRIDE)


class RankContext(RankContextBase):
    """One rank's view of the in-process (threaded) communicator."""

    def __init__(self, comm: "InProcessCommunicator", rank: int) -> None:
        self.comm = comm
        self.size = comm.size
        self._init_rank_state(rank)

    # -- knobs delegated to the shared communicator ------------------------------
    @property
    def faults(self) -> Optional[FaultPlan]:
        return self.comm.faults

    @property
    def fault_log(self) -> FaultLog:
        return self.comm.fault_log

    @property
    def trace(self) -> Optional[Trace]:
        return self.comm.trace

    @property
    def timeout(self) -> float:
        return self.comm.timeout

    @property
    def max_retries(self) -> int:
        return self.comm.max_retries

    @property
    def retry_backoff(self) -> float:
        return self.comm.retry_backoff

    # -- fabric hooks -----------------------------------------------------------
    def _deliver(self, dest: int, tag: int, payload: Any) -> None:
        self.comm._mailboxes[dest].put(self.rank, tag, payload)

    def _poll(self, source: int, tag: int, on_retry: Optional[Callable[[int], None]]) -> Any:
        return self.comm._mailboxes[self.rank].get(
            self.rank, source, tag, self.comm.timeout, on_retry
        )

    def _elapsed(self) -> float:
        return self.comm._elapsed()


class InProcessCommunicator:
    """Spawn ``size`` rank threads and run a function on each.

    ``timeout`` is the per-``recv`` deadlock budget (configurable per
    communicator instead of the old hardcoded module constant). ``faults``
    makes the fabric unreliable per the plan; ``max_retries`` and
    ``retry_backoff`` govern the sender's retransmission policy.
    """

    backend = "threads"

    def __init__(
        self,
        size: int,
        timeout: float = _DEFAULT_TIMEOUT,
        faults: Optional[FaultPlan] = None,
        max_retries: int = 8,
        retry_backoff: float = 0.001,
        trace: Optional[Trace] = None,
        transport: Optional[str] = None,
    ) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        if transport is not None:
            # Late import: shm_transport depends on this module.
            from repro.comm.shm_transport import validate_transport

            validate_transport(transport)
        # Thread mailboxes pass payloads by reference — already zero-copy —
        # so "shm" is accepted for interface parity but coerced: there is
        # exactly one (optimal) transport on this backend.
        self.transport = "queue"
        self.size = size
        self.timeout = timeout
        self.faults = faults
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        #: When set, every send/recv/collective records a TraceEvent here
        #: (wall-clock spans). None = tracing off, zero overhead.
        self.trace = trace
        if trace is not None:
            trace.meta.setdefault("ranks", size)
            trace.meta.setdefault("clock", "wall")
            trace.meta.setdefault("transport", self.transport)
        #: Drops, retransmissions, delays, and lost messages land here.
        self.fault_log = FaultLog()
        self._mailboxes = [_Mailbox() for _ in range(size)]
        self._start = time.monotonic()

    def _elapsed(self) -> float:
        """Wall seconds since the communicator was created (log timestamps)."""
        return time.monotonic() - self._start

    def close(self) -> None:
        """Release fabric resources (no-op for the thread backend; present
        so callers can treat both backends uniformly)."""

    def run(self, fn: Callable[..., Any], *args: Any) -> List[Any]:
        """Execute ``fn(ctx, *args)`` on every rank; return per-rank results.

        Rank failures are re-raised in the caller after all threads have
        been joined: a single failure propagates as-is; multiple failures
        are aggregated into a :class:`MultiRankError` that names every
        failing rank (no silent partial failures, no discarded errors).
        """
        results: List[Any] = [None] * self.size
        errors: List[Tuple[int, BaseException]] = []

        def runner(rank: int) -> None:
            try:
                results[rank] = fn(RankContext(self, rank), *args)
            except BaseException as exc:
                errors.append((rank, exc))

        threads = [
            threading.Thread(target=runner, args=(r,), name=f"rank-{r}")
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise MultiRankError.aggregate(errors)
        return results
