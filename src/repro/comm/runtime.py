"""In-process MPI-style runtime: threads as ranks, queues as the fabric.

The paper's artifact runs its distributed algorithms over MPI ("We use MPI
for distributed processing on the KNL cluster / multi-GPU multi-node
system"). This module is the offline substitute: an
:class:`InProcessCommunicator` spawns one Python thread per rank and gives
each a :class:`RankContext` with the familiar API — ``send``/``recv`` with
source+tag matching, and collectives (``bcast``, ``reduce``,
``allreduce``, ``barrier``) built *on top of* point-to-point messages with
the same binomial-tree schedules as :mod:`repro.comm.collectives`, so the
floating-point association (and hence bit-level results) matches the
simulated trainers.

This is real concurrency: NumPy kernels release the GIL, messages really
cross thread boundaries, and a bug in the schedule deadlocks exactly as it
would under MPI — surfacing as a :class:`DeadlockError` that names the
waiting rank, the expected source, and the tag.

The rank-side behaviour (fault-aware sends, selective receives, the tree
collectives, trace emission) lives in :class:`RankContextBase`, which is
fabric-independent: this module's :class:`RankContext` runs it over
per-thread mailboxes, and :class:`repro.comm.mp_runtime.MpRankContext`
runs the *same* code over real OS processes — the two backends therefore
share one association order and one tag discipline by construction.

Collective tag space
--------------------
Every collective's internal phases derive their wire tags from the user
tag by adding multiples of :data:`COLLECTIVE_TAG_STRIDE`, so no two
collectives (or a collective phase and a user point-to-point tag) can
ever share a mailbox channel. Historically ``allreduce(tag=103)`` ran its
broadcast phase on ``tag + 1 = 104`` — exactly ``barrier``'s default
reduce tag — so interleaved ``allreduce()`` + ``barrier()`` calls on one
communicator could cross-match messages. The partition makes that
impossible; :func:`collective_wire_tags` exposes the mapping for tests.

Fault injection: pass ``faults=FaultPlan(...).drop_rate(p)`` and every
send becomes an unreliable-link transmission — each delivery attempt is
dropped with probability ``p`` (a pure function of the plan seed and the
message identity, so runs are reproducible), the sender retransmits with
exponential backoff up to ``max_retries`` times, and the receiver's
``recv`` polls in exponentially growing slices. A schedule bug or a
message the plan marks lost-forever therefore fails *deterministically and
fast* (a :class:`DeadlockError` at the configured timeout) instead of
hanging for a hardcoded minute. Every drop/retransmission/delay is logged
to the communicator's :class:`repro.faults.FaultLog`.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.comm.collectives import shard_bounds, tree_reduce_into, validate_collective
from repro.faults import FaultLog, FaultPlan
from repro.optim.quantize import decode_wire, encode_wire, validate_wire_dtype
from repro.trace.events import Trace

__all__ = [
    "COLLECTIVE_TAG_STRIDE",
    "collective_wire_tags",
    "RankContextBase",
    "RankContext",
    "InProcessCommunicator",
    "DeadlockError",
    "MultiRankError",
]


def _payload_nbytes(payload: Any) -> int:
    """Best-effort wire size of a payload for trace accounting.

    Recurses into tuples and lists so piggyback payloads like
    ``(loss, weights)`` account for their array bytes — these used to
    report 0, silently zeroing the byte columns of every trace metric
    for any trainer that ships composite messages.
    """
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (tuple, list)):
        return sum(_payload_nbytes(item) for item in payload)
    return 0

_DEFAULT_TIMEOUT = 60.0  # seconds before a recv declares a deadlock

#: Width of the user tag block. Collective phases add multiples of this
#: stride to the user tag, so as long as user tags stay below the stride
#: each phase occupies its own disjoint tag range:
#:
#:   block 0: user p2p tags and direct ``bcast``/``reduce`` phases
#:   block 1: ``allreduce`` reduce phase
#:   block 2: ``allreduce`` bcast phase
#:   blocks 4-5: ``barrier`` (its internal allreduce, shifted by block 3)
#:   block 6: ring allreduce reduce-scatter phase
#:   block 7: ring allreduce allgather phase
COLLECTIVE_TAG_STRIDE = 1 << 16

#: Default user tags of the four collectives (kept from the original API).
_DEFAULT_TAGS = {"bcast": 101, "reduce": 102, "allreduce": 103, "barrier": 104}


def collective_wire_tags(
    op: str, tag: Optional[int] = None, collective: str = "tree"
) -> Tuple[int, ...]:
    """The point-to-point wire tags a collective with user tag ``tag`` uses.

    The regression surface for the tag-space partition: for any user tags
    within one stride block, the wire-tag sets of ``bcast``, ``reduce``,
    ``allreduce``, and ``barrier`` are pairwise disjoint — and the ring
    schedule's two phase blocks (``collective="ring"``) are disjoint from
    all of them, so a communicator may mix ring and tree allreduces freely
    (``barrier`` always runs its one-element allreduce on the tree).
    """
    if op not in _DEFAULT_TAGS:
        raise ValueError(f"unknown collective {op!r}; expected one of {sorted(_DEFAULT_TAGS)}")
    tag = _DEFAULT_TAGS[op] if tag is None else tag
    if op in ("bcast", "reduce"):
        return (tag,)
    if op == "allreduce":
        if collective == "ring":
            return (tag + 6 * COLLECTIVE_TAG_STRIDE, tag + 7 * COLLECTIVE_TAG_STRIDE)
        return (tag + COLLECTIVE_TAG_STRIDE, tag + 2 * COLLECTIVE_TAG_STRIDE)
    # barrier = allreduce shifted into its own block
    return collective_wire_tags("allreduce", tag + 3 * COLLECTIVE_TAG_STRIDE)


class DeadlockError(TimeoutError):
    """A ``recv`` that can never complete: schedule deadlock or lost message.

    Carries the waiting ``rank``, the expected ``source``, the ``tag``, and
    the ``timeout`` that expired, so the failing edge of the communication
    schedule is identifiable from the exception alone.
    """

    def __init__(self, rank: int, source: int, tag: int, timeout: float) -> None:
        self.rank = rank
        self.source = source
        self.tag = tag
        self.timeout = timeout
        super().__init__(
            f"rank {rank}: recv(source={source}, tag={tag}) timed out after "
            f"{timeout}s — likely a schedule deadlock or a lost message"
        )

    def __reduce__(self):
        # Default BaseException pickling would replay __init__ with the
        # formatted message as the only argument; the multiprocess backend
        # ships these across process boundaries, so pickle the fields.
        return (DeadlockError, (self.rank, self.source, self.tag, self.timeout))


class MultiRankError(RuntimeError):
    """Several ranks failed in one ``run``; every failure is preserved.

    ``failures`` maps rank -> the exception that killed it. The message
    names each failing rank so a 3-of-64 wreck is diagnosable without
    digging — the old behaviour of re-raising only the first collected
    exception silently discarded the other ranks' errors entirely.
    """

    def __init__(self, failures) -> None:
        self.failures: Dict[int, BaseException] = dict(failures)
        parts = "; ".join(
            f"rank {rank}: {type(exc).__name__}: {exc}"
            for rank, exc in sorted(self.failures.items())
        )
        super().__init__(f"{len(self.failures)} ranks failed — {parts}")

    def __reduce__(self):
        return (_rebuild_multi_rank_error, (list(self.failures.items()),))

    @staticmethod
    def aggregate(failures) -> BaseException:
        """The exception a failed run should raise.

        A lone failure is returned as-is (so ``except RuntimeError`` /
        ``except TimeoutError`` around single-fault runs keep working).
        Several failures become one aggregate that *also* inherits the
        most specific exception type common to all of them — an
        all-ranks deadlock is still catchable as :class:`TimeoutError`,
        an all-ranks ``ValueError`` as :class:`ValueError`.
        """
        failures = list(failures)
        if len(failures) == 1:
            return failures[0][1]
        excs = [exc for _, exc in failures]
        common = next(
            base for base in type(excs[0]).__mro__
            if all(isinstance(exc, base) for exc in excs)
        )  # BaseException at worst, so `next` always yields
        if issubclass(MultiRankError, common):
            return MultiRankError(failures)
        cls = _MULTI_RANK_MIXINS.get(common)
        if cls is None:
            try:
                cls = type(f"MultiRank{common.__name__}", (MultiRankError, common), {})
            except TypeError:  # unresolvable MRO for an exotic base
                cls = MultiRankError
            _MULTI_RANK_MIXINS[common] = cls
        err = cls(failures)
        # Adopt the lowest-rank failure's context attributes (a
        # DeadlockError's rank/source/tag/timeout, say) so handlers that
        # introspect the common type keep working on the aggregate.
        representative = min(failures)[1]
        for key, value in vars(representative).items():
            err.__dict__.setdefault(key, value)
        return err


#: aggregate()'s cache of MultiRankError-with-common-base subclasses.
_MULTI_RANK_MIXINS: Dict[type, type] = {}


def _rebuild_multi_rank_error(failures: List[Tuple[int, BaseException]]) -> "MultiRankError":
    """Pickle hook: rebuild via aggregate() so the dynamic mixin class
    (not importable by name) never needs to be pickled itself."""
    return MultiRankError.aggregate(failures)


class _Mailbox:
    """Per-rank mailbox with (source, tag) selective receive."""

    def __init__(self) -> None:
        self._queues: Dict[Tuple[int, int], "queue.Queue[Any]"] = {}
        self._lock = threading.Lock()

    def _queue_for(self, source: int, tag: int) -> "queue.Queue[Any]":
        with self._lock:
            key = (source, tag)
            q = self._queues.get(key)
            if q is None:
                q = self._queues[key] = queue.Queue()
            return q

    def put(self, source: int, tag: int, payload: Any) -> None:
        self._queue_for(source, tag).put(payload)

    def get(
        self,
        rank: int,
        source: int,
        tag: int,
        timeout: float,
        on_retry: Optional[Callable[[int], None]] = None,
    ) -> Any:
        """Blocking selective receive with exponential-backoff polling.

        Waits in growing slices (so a transiently dropped-and-retransmitted
        message is picked up shortly after redelivery); raises
        :class:`DeadlockError` naming ``(rank, source, tag)`` once the
        total ``timeout`` budget is spent — never a bare
        :class:`queue.Empty`, which used to leak the internal queue
        abstraction to callers racing collectives under fault plans.
        A message that lands exactly as the budget expires is still
        drained by a final non-blocking poll before the error is raised,
        so a delivery racing the deadline wins instead of deadlocking.
        ``on_retry`` is invoked with the attempt number after each empty
        slice — the hook the communicator uses for fault logging.
        """
        q = self._queue_for(source, tag)
        deadline = time.monotonic() + timeout
        wait = min(0.05, timeout)
        attempt = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                try:
                    return q.get_nowait()  # the race: delivered at the wire
                except queue.Empty:
                    raise DeadlockError(rank, source, tag, timeout) from None
            try:
                return q.get(timeout=min(wait, remaining))
            except queue.Empty:
                attempt += 1
                if on_retry is not None:
                    on_retry(attempt)
                wait = min(wait * 2.0, 2.0)


class RankContextBase:
    """One rank's view of a communicator, independent of the fabric.

    Subclasses bind the fabric by implementing three hooks —
    ``_deliver(dest, tag, payload)`` (enqueue at the destination),
    ``_poll(source, tag, on_retry)`` (blocking selective receive that
    raises :class:`DeadlockError` on budget exhaustion), and
    ``_elapsed()`` (seconds on the communicator's clock) — and by
    exposing the knobs ``size``, ``timeout``, ``faults``, ``fault_log``,
    ``max_retries``, ``retry_backoff``, and ``trace`` as attributes or
    properties. Everything above those hooks (fault-plan sends, trace
    emission, and the binomial-tree collectives with their association
    order) is shared, which is what keeps the ``threads`` and
    ``processes`` backends bit-identical.
    """

    rank: int
    size: int

    #: Allreduce schedule: "tree" (binomial, log P full-buffer rounds) or
    #: "ring" (reduce-scatter + allgather, 2(P-1) rounds of n/P shards).
    #: Both produce bitwise-identical sums; see ``allreduce`` for when the
    #: ring dispatch falls back to the tree.
    collective: str = "tree"
    #: On-fabric payload format for collective arrays: "float32" (identity)
    #: or "float16" (half the bytes, lossy — backends stop being
    #: bit-identical, see docs/performance.md).
    wire_dtype: str = "float32"
    #: When set, tree-reduce edges move the buffer in pipelined chunks of
    #: this many elements (memcpy of chunk k overlaps reduction of k-1)
    #: instead of one packed message. Association is unchanged.
    chunk_elems: Optional[int] = None

    def _init_rank_state(self, rank: int) -> None:
        self.rank = rank
        self._send_seq: Dict[Tuple[int, int], int] = {}
        #: Rank programs may set this so trace events carry iteration ids.
        self.trace_iteration = -1
        self._trace_op = ""  # label for p2p events inside a collective
        self._trace_round = -1

    # -- fabric hooks (subclass responsibility) --------------------------------
    def _deliver(self, dest: int, tag: int, payload: Any) -> None:
        raise NotImplementedError

    def _poll(self, source: int, tag: int, on_retry: Optional[Callable[[int], None]]) -> Any:
        raise NotImplementedError

    def _elapsed(self) -> float:
        raise NotImplementedError

    # -- point to point --------------------------------------------------------
    def _next_seq(self, dest: int, tag: int) -> int:
        key = (dest, tag)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        return seq

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Deliver ``payload`` to ``dest`` (asynchronous, buffered).

        Under a fault plan the link is unreliable: each delivery attempt may
        be dropped, in which case the sender backs off exponentially and
        retransmits (up to ``max_retries`` retries). A channel the plan
        marks lost-forever silently never delivers — the receiving rank's
        ``recv`` then raises :class:`DeadlockError`.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range for size {self.size}")
        plan = self.faults
        trace = self.trace
        if plan is None and trace is None:
            self._deliver(dest, tag, payload)
            return

        seq = self._next_seq(dest, tag)
        if trace is not None:
            payload = (seq, payload)  # carry the identity to the recv side
        if plan is None:
            t0 = self._elapsed()
            self._deliver(dest, tag, payload)
            self._trace_send(seq, dest, tag, payload[1], t0)
            return
        edge = f"rank {self.rank} -> {dest} tag {tag}"
        if plan.is_lost(self.rank, dest, tag):
            self.fault_log.record(self._elapsed(), "lost", edge, f"seq={seq}: never delivered")
            self._trace_fault("lost", dest, tag, seq)
            return
        lag = plan.delay_seconds(self.rank, dest, tag, seq)
        if lag > 0.0:
            self.fault_log.record(self._elapsed(), "delay", edge, f"+{lag:.4g}s seq={seq}")
            self._trace_fault("delay", dest, tag, seq)
            time.sleep(lag)
        for attempt in range(self.max_retries + 1):
            if plan.should_drop(self.rank, dest, tag, seq, attempt):
                self.fault_log.record(self._elapsed(), "drop", edge, f"seq={seq} attempt={attempt}")
                self._trace_fault("drop", dest, tag, seq)
                time.sleep(self.retry_backoff * (2 ** min(attempt, 6)))
                continue
            if attempt > 0:
                self.fault_log.record(
                    self._elapsed(), "retransmit", edge, f"seq={seq} delivered on attempt {attempt}"
                )
            t0 = self._elapsed()
            self._deliver(dest, tag, payload)
            self._trace_send(seq, dest, tag, payload[1] if trace is not None else payload, t0)
            return
        self.fault_log.record(
            self._elapsed(), "lost", edge,
            f"seq={seq}: dropped on all {self.max_retries + 1} attempts",
        )
        self._trace_fault("lost", dest, tag, seq)

    # -- trace plumbing (no-ops unless the communicator carries a Trace) ----------
    def _trace_send(self, seq: int, dest: int, tag: int, payload: Any, t0: float) -> None:
        trace = self.trace
        if trace is None:
            return
        trace.send(self.rank, dest, t0, self._elapsed(), tag=tag,
                   nbytes=_payload_nbytes(payload), seq=seq, op=self._trace_op,
                   round=self._trace_round, iteration=self.trace_iteration)

    def _trace_fault(self, op: str, dest: int, tag: int, seq: int) -> None:
        trace = self.trace
        if trace is None:
            return
        trace.fault(self.rank, self._elapsed(), op, peer=dest, tag=tag,
                    seq=seq, iteration=self.trace_iteration)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Block until a message from ``source`` with ``tag`` arrives.

        Raises :class:`DeadlockError` (a :class:`TimeoutError`) carrying
        rank/source/tag once the communicator's timeout budget is spent.
        """
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range for size {self.size}")
        on_retry = None
        if self.faults is not None:
            fault_log = self.fault_log
            elapsed = self._elapsed

            def on_retry(attempt: int, _edge=f"rank {self.rank} <- {source} tag {tag}") -> None:
                fault_log.record(elapsed(), "recv-retry", _edge, f"poll {attempt}")

        trace = self.trace
        t0 = self._elapsed() if trace is not None else 0.0
        payload = self._poll(source, tag, on_retry)
        if trace is None:
            return payload
        seq, payload = payload
        trace.recv(self.rank, source, t0, self._elapsed(), tag=tag,
                   nbytes=_payload_nbytes(payload), seq=seq, op=self._trace_op,
                   round=self._trace_round, iteration=self.trace_iteration)
        return payload

    # -- collectives (binomial-tree + ring schedules) -----------------------------
    def _collective_span(self, op: str, t0: float) -> None:
        trace = self.trace
        if trace is not None:
            trace.span("collective", self.rank, t0, self._elapsed(), op=op,
                       iteration=self.trace_iteration)

    # -- wire format helpers ------------------------------------------------------
    def _wire_out(self, array: np.ndarray) -> np.ndarray:
        """Cast an outgoing collective array to the wire format (no-op f32)."""
        return encode_wire(array, self.wire_dtype)

    def _wire_in(self, payload: Any) -> Any:
        """Widen an incoming collective payload back to float32 (no-op f32)."""
        if isinstance(payload, np.ndarray):
            return decode_wire(payload, self.wire_dtype)
        return payload

    def _recv_add(self, acc: np.ndarray, source: int, tag: int) -> None:
        """Receive an array and fold it into ``acc`` in place.

        ``np.add(acc, x, out=acc)`` is the same ufunc as ``acc + x`` — the
        association (and hence the bits) is unchanged — but the fold no
        longer materializes a fresh sum array per edge. Fabrics override
        this to also skip the receive-side private copy: the thread
        backend already adds straight from the sender's buffer, and the
        shm transport adds straight from the slot bytes
        (:meth:`repro.comm.mp_runtime.MpRankContext._recv_add`).
        """
        np.add(acc, self._wire_in(self.recv(source, tag)), out=acc)

    def _send_chunked(self, acc: np.ndarray, dest: int, tag: int, chunk: int) -> None:
        flat = acc.reshape(-1)
        for lo in range(0, flat.size, chunk):
            self.send(self._wire_out(flat[lo : lo + chunk]), dest, tag)

    def _recv_add_chunked(self, acc: np.ndarray, source: int, tag: int, chunk: int) -> None:
        flat = acc.reshape(-1)
        for lo in range(0, flat.size, chunk):
            seg = flat[lo : lo + chunk]
            np.add(seg, self._wire_in(self.recv(source, tag)), out=seg)

    def bcast(self, payload: Any, root: int = 0, tag: int = 101) -> Any:
        """Broadcast from ``root``; every rank returns the payload.

        Array payloads travel in the wire format: the root encodes once
        and interior ranks forward the wire bytes verbatim, so a float16
        bcast quantizes exactly once regardless of tree depth.
        """
        t0 = self._elapsed()
        prev_op = self._trace_op
        self._trace_op = "tree-bcast"
        rel = (self.rank - root) % self.size
        if rel == 0 and isinstance(payload, np.ndarray):
            payload = self._wire_out(payload)
        # receive from parent (the rank that turned our bit on)
        if rel != 0:
            have = 1
            while have * 2 <= rel:
                have *= 2
            parent_rel = rel - have
            self._trace_round = have.bit_length() - 1
            payload = self.recv((parent_rel + root) % self.size, tag)
        # forward to children
        have = 1
        while have <= rel:
            have *= 2
        while have < self.size:
            child_rel = rel + have
            if child_rel < self.size:
                self._trace_round = have.bit_length() - 1
                self.send(payload, (child_rel + root) % self.size, tag)
            have *= 2
        self._trace_op, self._trace_round = prev_op, -1
        self._collective_span("tree-bcast", t0)
        return self._wire_in(payload)

    def reduce(self, array: np.ndarray, root: int = 0, tag: int = 102) -> Optional[np.ndarray]:
        """Tree-sum arrays to ``root`` with the same association order as
        :func:`repro.comm.collectives.tree_reduce`. Returns the sum at the
        root, ``None`` elsewhere.

        With ``chunk_elems`` set (and no fault plan, whose message
        accounting assumes one packed send per edge), each edge moves the
        buffer as a pipelined chunk train: the receiver folds chunk k
        while the fabric is already moving chunk k+1. The accumulation
        is elementwise, so chunking never changes the bits.
        """
        t0 = self._elapsed()
        prev_op = self._trace_op
        self._trace_op = "tree-reduce"
        rel = (self.rank - root) % self.size
        acc = np.array(array, copy=True)
        chunk = self.chunk_elems
        chunked = (
            chunk is not None and 0 < chunk < acc.size and self.faults is None
        )
        result: Optional[np.ndarray] = None
        stride = 1
        while stride < self.size:
            self._trace_round = stride.bit_length() - 1
            if rel % (2 * stride) == 0:
                partner = rel + stride
                if partner < self.size:
                    src = (partner + root) % self.size
                    if chunked:
                        self._recv_add_chunked(acc, src, tag, chunk)
                    else:
                        self._recv_add(acc, src, tag)
            elif rel % (2 * stride) == stride:
                dest = (rel - stride + root) % self.size
                if chunked:
                    self._send_chunked(acc, dest, tag, chunk)
                else:
                    self.send(self._wire_out(acc), dest, tag)
                break  # sent upstream; this rank is done
            stride *= 2
        else:
            result = acc if rel == 0 else None
        self._trace_op, self._trace_round = prev_op, -1
        self._collective_span("tree-reduce", t0)
        return result

    def allreduce(self, array: np.ndarray, tag: int = 103, *, view: bool = False) -> np.ndarray:
        """Sum across ranks; every rank returns the total.

        The schedule follows ``self.collective``: the binomial tree
        (reduce to rank 0 + bcast) or the sharded ring (reduce-scatter +
        allgather, Theta(1) bytes per rank in the buffer size). Both
        produce bitwise-identical results. The ring falls back to the
        tree when a fault plan is active (its shard bookkeeping assumes
        reliable links), when the buffer is smaller than the rank count,
        or at size 1 — ``barrier``'s one-element allreduce therefore
        always runs on the tree.

        Each phase runs on tags derived from ``tag`` in reserved blocks
        (see :func:`collective_wire_tags`) so no phase can ever collide
        with ``barrier`` or with user point-to-point traffic.

        ``view=True`` permits the fabric to return a *read-only* view of
        shared result storage, valid until this rank's next allreduce on
        the same tag — the zero-copy path for callers that only read the
        total (default: always a private array).
        """
        arr = np.asarray(array)
        if (
            self.collective == "ring"
            and self.size > 1
            and self.faults is None
            and arr.size >= self.size
        ):
            return self._ring_allreduce(arr, tag, view=view)
        total = self.reduce(array, root=0, tag=tag + COLLECTIVE_TAG_STRIDE)
        return self.bcast(total, root=0, tag=tag + 2 * COLLECTIVE_TAG_STRIDE)

    def _ring_allreduce(self, arr: np.ndarray, tag: int, view: bool = False) -> np.ndarray:
        """Sharded ring allreduce over point-to-point messages.

        The buffer splits into P owner shards (:func:`shard_bounds`).
        Phase 1 (reduce-scatter, tag block 6): in step k, rank r hands
        shard ``(r+k) % P``'s chunk to its owner and collects rank
        ``(r-k) % P``'s version of its own shard; the owner then folds
        the P versions *in rank order with the binomial-tree association*
        (:func:`tree_reduce_into`), which is what makes the result
        bitwise equal to the tree schedule. Phase 2 (allgather, tag
        block 7): every owner circulates its reduced shard. Each rank
        sends 2(P-1) messages of ~n/P elements — Theta(1) total bytes in
        n per rank versus the tree's Theta(log P).

        Fabrics with shared result storage override this (the shm arena
        path reduces in place in shared memory); this generic schedule
        works over any fabric and makes exactly one private copy of the
        input, mirroring ``reduce``'s copy discipline so slice sends are
        safe under by-reference delivery.
        """
        t0 = self._elapsed()
        prev_op = self._trace_op
        p, r = self.size, self.rank
        rs_tag = tag + 6 * COLLECTIVE_TAG_STRIDE
        ag_tag = tag + 7 * COLLECTIVE_TAG_STRIDE
        flat = np.array(arr, copy=True).reshape(-1)
        bounds = shard_bounds(flat.size, p)
        lo, hi = bounds[r], bounds[r + 1]
        wire = self.wire_dtype

        # Phase 1: reduce-scatter. Sends are asynchronous, so the
        # send-then-recv step order cannot deadlock.
        self._trace_op = "ring-reduce-scatter"
        versions: List[Optional[np.ndarray]] = [None] * p
        own = flat[lo:hi]
        # Our own contribution passes through the same wire round-trip as
        # everyone else's, so all P shard versions are uniformly quantized.
        versions[r] = own if wire == "float32" else decode_wire(self._wire_out(own), wire)
        for k in range(1, p):
            dest, src = (r + k) % p, (r - k) % p
            self._trace_round = k - 1
            self.send(self._wire_out(flat[bounds[dest] : bounds[dest + 1]]), dest, rs_tag)
            versions[src] = self._wire_in(self.recv(src, rs_tag))
        out = np.empty(flat.size, dtype=flat.dtype)
        if hi > lo:
            tree_reduce_into(versions, out[lo:hi])  # type: ignore[arg-type]

        # Phase 2: allgather the reduced owner shards.
        self._trace_op = "ring-allgather"
        wire_reduced = self._wire_out(out[lo:hi])
        if wire != "float32":
            # Keep our own copy of the shard identical to what the other
            # ranks will decode, so all ranks return the same total.
            out[lo:hi] = decode_wire(wire_reduced, wire)
        for k in range(1, p):
            dest, src = (r + k) % p, (r - k) % p
            self._trace_round = k - 1
            self.send(wire_reduced, dest, ag_tag)
            out[bounds[src] : bounds[src + 1]] = self._wire_in(self.recv(src, ag_tag))
        self._trace_op, self._trace_round = prev_op, -1
        self._collective_span("ring-allreduce", t0)
        return out.reshape(arr.shape)

    def collective_buffer(self, elems: int, tag: int = 103) -> np.ndarray:
        """A zeroed float32 staging buffer for ``allreduce(..., tag=tag)``.

        Fabrics with shared collective storage return their own staging
        row here (the shm arena's contribution row), letting the caller
        compute *into* the fabric and skip the allreduce staging copy.
        The default is an ordinary private buffer, so callers can use
        this unconditionally on any backend.
        """
        if elems <= 0:
            raise ValueError("elems must be positive")
        return np.zeros(int(elems), dtype=np.float32)

    def barrier(self, tag: int = 104) -> None:
        """Synchronize all ranks (zero-byte allreduce on a reserved tag block)."""
        self.allreduce(np.zeros(1, dtype=np.float32), tag=tag + 3 * COLLECTIVE_TAG_STRIDE)


class RankContext(RankContextBase):
    """One rank's view of the in-process (threaded) communicator."""

    def __init__(self, comm: "InProcessCommunicator", rank: int) -> None:
        self.comm = comm
        self.size = comm.size
        self._init_rank_state(rank)

    # -- knobs delegated to the shared communicator ------------------------------
    @property
    def faults(self) -> Optional[FaultPlan]:
        return self.comm.faults

    @property
    def fault_log(self) -> FaultLog:
        return self.comm.fault_log

    @property
    def trace(self) -> Optional[Trace]:
        return self.comm.trace

    @property
    def timeout(self) -> float:
        return self.comm.timeout

    @property
    def max_retries(self) -> int:
        return self.comm.max_retries

    @property
    def retry_backoff(self) -> float:
        return self.comm.retry_backoff

    @property
    def collective(self) -> str:
        return self.comm.collective

    @property
    def wire_dtype(self) -> str:
        return self.comm.wire_dtype

    @property
    def chunk_elems(self) -> Optional[int]:
        return self.comm.chunk_elems

    # -- fabric hooks -----------------------------------------------------------
    def _deliver(self, dest: int, tag: int, payload: Any) -> None:
        self.comm._mailboxes[dest].put(self.rank, tag, payload)

    def _poll(self, source: int, tag: int, on_retry: Optional[Callable[[int], None]]) -> Any:
        return self.comm._mailboxes[self.rank].get(
            self.rank, source, tag, self.comm.timeout, on_retry
        )

    def _elapsed(self) -> float:
        return self.comm._elapsed()


class InProcessCommunicator:
    """Spawn ``size`` rank threads and run a function on each.

    ``timeout`` is the per-``recv`` deadlock budget (configurable per
    communicator instead of the old hardcoded module constant). ``faults``
    makes the fabric unreliable per the plan; ``max_retries`` and
    ``retry_backoff`` govern the sender's retransmission policy.
    """

    backend = "threads"

    def __init__(
        self,
        size: int,
        timeout: float = _DEFAULT_TIMEOUT,
        faults: Optional[FaultPlan] = None,
        max_retries: int = 8,
        retry_backoff: float = 0.001,
        trace: Optional[Trace] = None,
        transport: Optional[str] = None,
        collective: str = "tree",
        wire_dtype: str = "float32",
        chunk_elems: Optional[int] = None,
    ) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        if transport is not None:
            # Late import: shm_transport depends on this module.
            from repro.comm.shm_transport import validate_transport

            validate_transport(transport)
        validate_collective(collective)
        validate_wire_dtype(wire_dtype)
        if chunk_elems is not None and chunk_elems <= 0:
            raise ValueError("chunk_elems must be positive")
        # Thread mailboxes pass payloads by reference — already zero-copy —
        # so "shm" is accepted for interface parity but coerced: there is
        # exactly one (optimal) transport on this backend.
        self.transport = "queue"
        self.size = size
        self.timeout = timeout
        self.faults = faults
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.collective = collective
        self.wire_dtype = wire_dtype
        self.chunk_elems = chunk_elems
        #: When set, every send/recv/collective records a TraceEvent here
        #: (wall-clock spans). None = tracing off, zero overhead.
        self.trace = trace
        if trace is not None:
            trace.meta.setdefault("ranks", size)
            trace.meta.setdefault("clock", "wall")
            trace.meta.setdefault("transport", self.transport)
            trace.meta.setdefault("collective", collective)
            trace.meta.setdefault("wire_dtype", wire_dtype)
        #: Drops, retransmissions, delays, and lost messages land here.
        self.fault_log = FaultLog()
        self._mailboxes = [_Mailbox() for _ in range(size)]
        self._start = time.monotonic()

    def _elapsed(self) -> float:
        """Wall seconds since the communicator was created (log timestamps)."""
        return time.monotonic() - self._start

    def close(self) -> None:
        """Release fabric resources (no-op for the thread backend; present
        so callers can treat both backends uniformly)."""

    def run(self, fn: Callable[..., Any], *args: Any) -> List[Any]:
        """Execute ``fn(ctx, *args)`` on every rank; return per-rank results.

        Rank failures are re-raised in the caller after all threads have
        been joined: a single failure propagates as-is; multiple failures
        are aggregated into a :class:`MultiRankError` that names every
        failing rank (no silent partial failures, no discarded errors).
        """
        results: List[Any] = [None] * self.size
        errors: List[Tuple[int, BaseException]] = []

        def runner(rank: int) -> None:
            try:
                results[rank] = fn(RankContext(self, rank), *args)
            except BaseException as exc:
                errors.append((rank, exc))

        threads = [
            threading.Thread(target=runner, args=(r,), name=f"rank-{r}")
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise MultiRankError.aggregate(errors)
        return results
