"""In-process MPI-style runtime: threads as ranks, queues as the fabric.

The paper's artifact runs its distributed algorithms over MPI ("We use MPI
for distributed processing on the KNL cluster / multi-GPU multi-node
system"). This module is the offline substitute: an
:class:`InProcessCommunicator` spawns one Python thread per rank and gives
each a :class:`RankContext` with the familiar API — ``send``/``recv`` with
source+tag matching, and collectives (``bcast``, ``reduce``,
``allreduce``, ``barrier``) built *on top of* point-to-point messages with
the same binomial-tree schedules as :mod:`repro.comm.collectives`, so the
floating-point association (and hence bit-level results) matches the
simulated trainers.

This is real concurrency: NumPy kernels release the GIL, messages really
cross thread boundaries, and a bug in the schedule deadlocks exactly as it
would under MPI.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["RankContext", "InProcessCommunicator"]

_DEFAULT_TIMEOUT = 60.0  # seconds before a recv declares a deadlock


class _Mailbox:
    """Per-rank mailbox with (source, tag) selective receive."""

    def __init__(self) -> None:
        self._queues: Dict[Tuple[int, int], "queue.Queue[Any]"] = {}
        self._lock = threading.Lock()

    def _queue_for(self, source: int, tag: int) -> "queue.Queue[Any]":
        with self._lock:
            key = (source, tag)
            q = self._queues.get(key)
            if q is None:
                q = self._queues[key] = queue.Queue()
            return q

    def put(self, source: int, tag: int, payload: Any) -> None:
        self._queue_for(source, tag).put(payload)

    def get(self, source: int, tag: int, timeout: float) -> Any:
        try:
            return self._queue_for(source, tag).get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError(
                f"recv(source={source}, tag={tag}) timed out after {timeout}s — "
                "likely a schedule deadlock"
            ) from None


class RankContext:
    """One rank's view of the communicator (the object rank functions get)."""

    def __init__(self, comm: "InProcessCommunicator", rank: int) -> None:
        self.comm = comm
        self.rank = rank
        self.size = comm.size

    # -- point to point --------------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Deliver ``payload`` to ``dest`` (asynchronous, buffered)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range for size {self.size}")
        self.comm._mailboxes[dest].put(self.rank, tag, payload)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Block until a message from ``source`` with ``tag`` arrives."""
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range for size {self.size}")
        return self.comm._mailboxes[self.rank].get(source, tag, self.comm.timeout)

    # -- collectives (binomial-tree schedules) ------------------------------------
    def bcast(self, payload: Any, root: int = 0, tag: int = 101) -> Any:
        """Broadcast from ``root``; every rank returns the payload."""
        rel = (self.rank - root) % self.size
        # receive from parent (the rank that turned our bit on)
        if rel != 0:
            have = 1
            while have * 2 <= rel:
                have *= 2
            parent_rel = rel - have
            payload = self.recv((parent_rel + root) % self.size, tag)
        # forward to children
        have = 1
        while have <= rel:
            have *= 2
        while have < self.size:
            child_rel = rel + have
            if child_rel < self.size:
                self.send(payload, (child_rel + root) % self.size, tag)
            have *= 2
        return payload

    def reduce(self, array: np.ndarray, root: int = 0, tag: int = 102) -> Optional[np.ndarray]:
        """Tree-sum arrays to ``root`` with the same association order as
        :func:`repro.comm.collectives.tree_reduce`. Returns the sum at the
        root, ``None`` elsewhere."""
        rel = (self.rank - root) % self.size
        acc = np.array(array, copy=True)
        stride = 1
        while stride < self.size:
            if rel % (2 * stride) == 0:
                partner = rel + stride
                if partner < self.size:
                    acc = acc + self.recv((partner + root) % self.size, tag)
            elif rel % (2 * stride) == stride:
                self.send(acc, (rel - stride + root) % self.size, tag)
                return None  # sent upstream; this rank is done
            stride *= 2
        return acc if rel == 0 else None

    def allreduce(self, array: np.ndarray, tag: int = 103) -> np.ndarray:
        """Tree reduce to rank 0 followed by tree broadcast."""
        total = self.reduce(array, root=0, tag=tag)
        return self.bcast(total, root=0, tag=tag + 1)

    def barrier(self, tag: int = 104) -> None:
        """Synchronize all ranks (zero-byte allreduce)."""
        self.allreduce(np.zeros(1, dtype=np.float32), tag=tag)


class InProcessCommunicator:
    """Spawn ``size`` rank threads and run a function on each."""

    def __init__(self, size: int, timeout: float = _DEFAULT_TIMEOUT) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.size = size
        self.timeout = timeout
        self._mailboxes = [_Mailbox() for _ in range(size)]

    def run(self, fn: Callable[..., Any], *args: Any) -> List[Any]:
        """Execute ``fn(ctx, *args)`` on every rank; return per-rank results.

        Any rank's exception is re-raised in the caller after all threads
        have been joined (no silent partial failures).
        """
        results: List[Any] = [None] * self.size
        errors: List[BaseException] = []

        def runner(rank: int) -> None:
            try:
                results[rank] = fn(RankContext(self, rank), *args)
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=runner, args=(r,), name=f"rank-{r}")
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        return results
