"""Shared-memory segment lifecycle: naming, tracking, and debris removal.

POSIX shared memory outlives the processes that created it: a SIGKILLed
run (exactly what ``tests/test_durability_kill.py`` inflicts) leaves its
slot rings, collective arenas, and weight segments as ``/dev/shm`` files
nobody will ever unlink.  Before this module, cleanup relied entirely on
the parent communicator's happy-path ``finally`` block — robust against
exceptions, helpless against signals.

Three mechanisms close the gap, in escalating order of desperation:

1. **Deterministic naming** — every segment the reproduction creates is
   named ``repro-<pid>-<kind>-<suffix>`` via :func:`segment_name`, where
   ``<pid>`` is the *creating* process.  A segment's owner liveness is
   then decidable from its name alone.
2. **Process-local registry + atexit sweep** — creators call
   :func:`register_segment`; clean unlink paths call
   :func:`unregister_segment`.  Whatever is still registered when the
   interpreter exits normally (including ``sys.exit`` from a signal
   handler or an unhandled exception that skipped a ``finally``) is
   unlinked by the atexit hook.  This is the "parent-scoped cleanup"
   fallback: it costs one ``atexit.register`` and fires only for names
   the orderly paths missed.
3. **Stale-segment reaping** — :func:`reap_stale_segments` scans
   ``/dev/shm`` for ``repro-*`` names whose embedded pid is dead and
   unlinks them.  SIGKILL defeats mechanisms 1-2 *in the killed
   process*; the next run (e.g. the ``--resume`` invocation the kill
   test performs) reaps the debris on startup.  Segments whose owner is
   alive are never touched, so concurrent runs stay safe.

The registry is intentionally process-local state (no locks beyond a
``threading.Lock``): forked children inherit a *copy* and each process
sweeps only what it registered itself after the fork — double unlinks
are harmless (``FileNotFoundError`` is swallowed) but avoided anyway
because children unregister nothing they didn't create.
"""

from __future__ import annotations

import atexit
import os
import re
import threading
from typing import List, Optional, Set
import uuid

__all__ = [
    "SEGMENT_PREFIX",
    "segment_name",
    "adopt_owner_pid",
    "register_segment",
    "unregister_segment",
    "registered_segments",
    "unlink_segment",
    "cleanup_registered",
    "stale_segments",
    "reap_stale_segments",
    "list_live_segments",
]

#: Leading token of every segment name this codebase creates.
SEGMENT_PREFIX = "repro"

#: ``repro-<pid>-...`` — the pid group is what the reaper keys on.
_NAME_RE = re.compile(rf"^{SEGMENT_PREFIX}-(\d+)-")

#: Where POSIX shm segments appear as files (Linux; macOS has no stable
#: listing, so the reaper silently no-ops there).
_SHM_DIR = "/dev/shm"

_registry_lock = threading.Lock()
_registered: Set[str] = set()
_registered_pid: Optional[int] = None  # which process the registry belongs to
_atexit_installed = False
#: Pid stamped into new segment names instead of the caller's own (set by
#: a communicator before forking ranks; inherited by fork).
_owner_pid: Optional[int] = None


def adopt_owner_pid(pid: Optional[int] = None) -> int:
    """Stamp subsequent segment names with ``pid`` (default: this process).

    A multiprocess run is *parent-scoped*: rank children create ring and
    arena segments but the parent unlinks them after the run, so a rank
    may exit while its segments are still legitimately mapped elsewhere.
    Stamping the top-level pid keeps the reaper honest — it fires only
    when the whole run is dead, never on a finished rank of a live run.
    First adoption wins (nested communicators keep the topmost pid); the
    global is inherited by fork, so calling this pre-fork covers every
    descendant.
    """
    global _owner_pid
    if _owner_pid is None or not _pid_alive(_owner_pid):
        _owner_pid = os.getpid() if pid is None else int(pid)
    return _owner_pid


def segment_name(kind: str, suffix: Optional[str] = None) -> str:
    """A fresh lifecycle-tracked segment name: ``repro-<pid>-<kind>-<sfx>``.

    ``kind`` is a short label ("ring", "coll", "flat", "snap") that makes
    ``ls /dev/shm`` debuggable; ``suffix`` defaults to 8 random hex chars.
    The pid is the adopted owner (see :func:`adopt_owner_pid`) when one is
    set and alive, else the calling process.
    """
    if suffix is None:
        suffix = uuid.uuid4().hex[:8]
    pid = _owner_pid if (_owner_pid is not None and _pid_alive(_owner_pid)) else os.getpid()
    return f"{SEGMENT_PREFIX}-{pid}-{kind}-{suffix}"


def _reset_registry_for_pid(pid: int) -> None:
    """Forked children inherit the parent's set; start theirs empty so a
    child's sweep never races the parent's over the same names."""
    global _registered_pid, _atexit_installed
    _registered.clear()
    _registered_pid = pid
    _atexit_installed = False


def register_segment(name: str) -> str:
    """Track ``name`` for end-of-process cleanup; returns it unchanged."""
    global _atexit_installed
    pid = os.getpid()
    with _registry_lock:
        if _registered_pid != pid:
            _reset_registry_for_pid(pid)
        _registered.add(name)
        if not _atexit_installed:
            atexit.register(cleanup_registered)
            _atexit_installed = True
    return name


def unregister_segment(name: str) -> None:
    """Drop ``name`` from the cleanup set (it was unlinked in an orderly way)."""
    with _registry_lock:
        if _registered_pid == os.getpid():
            _registered.discard(name)


def registered_segments() -> List[str]:
    """Names currently awaiting orderly unlink in this process (testing aid)."""
    with _registry_lock:
        if _registered_pid != os.getpid():
            return []
        return sorted(_registered)


def unlink_segment(name: str) -> bool:
    """Unlink ``name`` system-wide if it still exists; True if it did."""
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, ValueError):
        return False
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a race, same outcome
        pass
    seg.close()
    return True


def cleanup_registered() -> List[str]:
    """Unlink every still-registered segment (the atexit fallback path)."""
    with _registry_lock:
        if _registered_pid != os.getpid():
            return []
        names = sorted(_registered)
        _registered.clear()
    return [name for name in names if unlink_segment(name)]


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign uid, but alive
        return True
    return True


def list_live_segments(shm_dir: str = _SHM_DIR) -> List[str]:
    """All ``repro-*`` segment names currently present (testing aid)."""
    try:
        entries = os.listdir(shm_dir)
    except OSError:  # pragma: no cover - non-Linux shm layout
        return []
    return sorted(e for e in entries if _NAME_RE.match(e))


def stale_segments(shm_dir: str = _SHM_DIR) -> List[str]:
    """``repro-*`` segments whose creating process is dead (no unlinking).

    The observation half of :func:`reap_stale_segments` — tests assert
    this is empty after a kill-and-resume cycle.
    """
    out: List[str] = []
    for name in list_live_segments(shm_dir):
        match = _NAME_RE.match(name)
        if match is not None and not _pid_alive(int(match.group(1))):
            out.append(name)
    return out


def reap_stale_segments(shm_dir: str = _SHM_DIR) -> List[str]:
    """Unlink ``repro-*`` segments whose creating process is dead.

    The post-mortem for SIGKILLed runs: their atexit hooks never fired,
    but their pids are encoded in the segment names, so any later run can
    tell debris from live traffic.  Returns the names it reaped.  Safe to
    call concurrently (unlink races collapse to FileNotFoundError).
    """
    return [name for name in stale_segments(shm_dir) if unlink_segment(name)]
