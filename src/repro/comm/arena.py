"""Per-rank reusable buffer arena: kill per-step allocations in hot loops.

The paper's codesign premise (Section 5) is that EASGD's cost is parameter
*movement*; on the implementation side the analogous waste is Python-level
allocation churn — every iteration of the message-passing trainers used to
allocate a fresh packed send buffer, a fresh gradient scratch copy, and a
fresh im2col workspace, all of identical shape every step. A
:class:`BufferArena` is the minimal fix: a rank-local dictionary of named,
shape/dtype-keyed NumPy buffers handed back to the same call site every
iteration. First request allocates; every subsequent request with the same
``(name, shape, dtype)`` returns the *same* array, so steady-state training
steps perform zero hot-loop allocations for these buffers.

Keys carry the call-site ``name`` on purpose: two different uses with the
same shape must never alias, but one use whose shape changes (a trainer
re-run with a new model) transparently gets a new buffer while the old one
stays parked (arenas live per-rank, per-run, so parked buffers are bounded
by the number of distinct shapes one run sees — in practice one).

Arenas are **not** thread-safe and not meant to be: each rank (thread or
forked process) owns a private arena, exactly like its network replica.
Buffers are returned uninitialized (``np.empty`` semantics on first use,
*previous contents* on reuse) — callers overwrite them fully, typically via
``np.copyto(buf, src)`` or slice assignment.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["BufferArena"]


class BufferArena:
    """Named, shape-keyed pool of reusable NumPy scratch buffers."""

    __slots__ = ("_buffers", "hits", "misses")

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[object, Tuple[int, ...], np.dtype], np.ndarray] = {}
        #: Reuse counters, exposed so tests can assert the hot loop really
        #: stopped allocating (hits ≈ steps, misses == distinct buffers).
        self.hits = 0
        self.misses = 0

    def get(self, name: object, shape, dtype=np.float32) -> np.ndarray:
        """The arena buffer for ``(name, shape, dtype)``.

        Contents are unspecified: freshly allocated on the first request,
        whatever the caller last wrote on every later one. The caller owns
        the buffer until its next ``get`` with the same key — holding a
        reference across iterations while also re-``get``-ting is aliasing
        by design (that is what "reuse" means), so snapshot with ``copy()``
        if a value must outlive the step.
        """
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        key = (name, tuple(int(s) for s in shape), np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None:
            self.misses += 1
            buf = self._buffers[key] = np.empty(key[1], dtype=key[2])
        else:
            self.hits += 1
        return buf

    def fill(self, name: object, values: np.ndarray) -> np.ndarray:
        """Arena-backed copy of ``values``: ``get`` + ``np.copyto``.

        The allocation-free replacement for ``values.copy()`` in a hot
        loop — same bits, same dtype, stable storage across iterations.
        """
        values = np.asarray(values)
        buf = self.get(name, values.shape, values.dtype)
        np.copyto(buf, values)
        return buf

    @property
    def nbytes(self) -> int:
        """Total bytes parked in the arena (steady-state footprint)."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferArena(buffers={len(self._buffers)}, nbytes={self.nbytes}, "
            f"hits={self.hits}, misses={self.misses})"
        )
