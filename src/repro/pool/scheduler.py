"""Sweep scheduler: multiplex experiment cells over one shared pool.

The companion of :class:`repro.pool.WorkerPool`: a
:class:`SweepScheduler` takes a queue of :class:`SweepCell` work units
(each a rank program needing ``ranks <= P_max`` workers), packs them onto
the pool smallest-first, and returns per-cell :class:`CellOutcome`\\ s
with the wall/spin-up split that makes the amortization visible.

Two execution modes share one surface:

- **pooled** (``pool`` given): cells are dispatched to the persistent
  workers; several cells run concurrently on disjoint rank blocks, and
  fork/shm spin-up is paid once for the whole sweep.
- **cold** (``pool=None``): every cell gets a freshly constructed
  communicator (fork per cell under ``backend="processes"``) — the
  baseline the pool is measured against, with identical numerics.

Preemption (PR 6 checkpointing) composes at two levels: cells configure
their own ``checkpoint_every``/``checkpoint_dir`` (so a killed sweep
resumes each cell mid-run), and the scheduler itself records a
``<key>.done.pkl`` marker per finished cell under ``checkpoint_root`` —
a re-run of the same sweep loads finished cells instead of recomputing
them, so only interrupted cells pay anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import os
import pickle
import re
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.comm.backend import make_communicator
from repro.comm.runtime import _DEFAULT_TIMEOUT
from repro.pool.worker_pool import POOL_PAYLOAD, WorkerPool

__all__ = ["SweepCell", "CellOutcome", "SweepScheduler"]


@dataclass
class SweepCell:
    """One schedulable unit: a rank program plus its rank demand.

    ``fn`` must be a module-level function ``fn(ctx, *args)`` (pooled
    dispatch pickles it); use :data:`repro.pool.POOL_PAYLOAD` inside
    ``args`` for fork-inherited pool state.  ``key`` identifies the cell
    across runs — it names the done-marker that makes the cell
    resumable, so it must be stable and unique within a sweep.
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    ranks: int = 1


@dataclass
class CellOutcome:
    """One finished cell: per-rank results plus the timing split."""

    key: str
    ranks: int
    results: List[Any] = field(default_factory=list)
    #: Submit-to-completion wall seconds for the cell.
    wall_time: float = 0.0
    #: Seconds from submit until every rank entered the cell body — the
    #: fork/dispatch/attach cost the pool amortizes away.
    spinup_time: float = 0.0
    pooled: bool = False
    #: True when the outcome was loaded from a done-marker (a previous
    #: run of this sweep already finished the cell).
    resumed: bool = False

    @property
    def result(self) -> Any:
        """Rank 0's return value (the whole result for 1-rank cells)."""
        return self.results[0]


def _timed_cell(ctx: Any, fn: Callable[..., Any], *args: Any) -> Tuple[float, Any]:
    """Stamp the instant the rank entered the cell body, then run it.

    Runs on every rank of every scheduled cell; the scheduler computes
    ``spinup_time`` as the gap between dispatch and the *last* rank's
    entry stamp (CLOCK_MONOTONIC is system-wide, so worker stamps are
    coherent with the parent's submit stamp).
    """
    return (time.monotonic(), fn(ctx, *args))


def _marker_slug(key: str) -> str:
    """A filesystem-safe name for a cell key."""
    return re.sub(r"[^A-Za-z0-9_.=,+-]", "_", key)


class SweepScheduler:
    """Run a queue of cells over a shared pool (or cold, for baselines)."""

    def __init__(
        self,
        pool: Optional[WorkerPool] = None,
        backend: str = "processes",
        timeout: float = _DEFAULT_TIMEOUT,
        checkpoint_root: Optional[str] = None,
        payload: Any = None,
        comm_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.pool = pool
        self.backend = pool.backend if pool is not None else backend
        self.timeout = timeout
        self.checkpoint_root = checkpoint_root
        #: Cold-mode stand-in for the pool's fork-inherited payload:
        #: POOL_PAYLOAD args are substituted parent-side before the run.
        self.payload = payload if pool is None else pool.payload
        self.comm_kwargs = dict(comm_kwargs or {})

    # -- done-markers ----------------------------------------------------------
    def _marker_path(self, key: str) -> Optional[str]:
        if self.checkpoint_root is None:
            return None
        return os.path.join(self.checkpoint_root, f"{_marker_slug(key)}.done.pkl")

    def _load_marker(self, cell: SweepCell) -> Optional[CellOutcome]:
        path = self._marker_path(cell.key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as fh:
                saved = pickle.load(fh)
        except Exception:
            return None  # corrupt marker: recompute the cell
        if saved.get("key") != cell.key or saved.get("ranks") != cell.ranks:
            return None
        return CellOutcome(
            key=cell.key, ranks=cell.ranks, results=saved["results"],
            wall_time=saved["wall_time"], spinup_time=saved["spinup_time"],
            pooled=saved["pooled"], resumed=True,
        )

    def _write_marker(self, outcome: CellOutcome) -> None:
        path = self._marker_path(outcome.key)
        if path is None:
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = pickle.dumps({
            "key": outcome.key, "ranks": outcome.ranks,
            "results": outcome.results, "wall_time": outcome.wall_time,
            "spinup_time": outcome.spinup_time, "pooled": outcome.pooled,
        })
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)  # atomic: a killed sweep never leaves a torn marker

    # -- execution -------------------------------------------------------------
    def run(self, cells: List[SweepCell]) -> List[CellOutcome]:
        """Run every cell; outcomes come back in the input order.

        Pooled mode packs cells smallest-first onto free rank blocks; a
        failing cell lets its siblings finish, then the pool is
        :meth:`~repro.pool.WorkerPool.reset` and the failure re-raised.
        """
        keys = [c.key for c in cells]
        if len(set(keys)) != len(keys):
            raise ValueError("cell keys must be unique within a sweep")
        outcomes: Dict[str, CellOutcome] = {}
        to_run: List[SweepCell] = []
        for cell in cells:
            loaded = self._load_marker(cell)
            if loaded is not None:
                outcomes[cell.key] = loaded
            else:
                to_run.append(cell)
        if self.pool is not None:
            self._run_pooled(to_run, outcomes)
        else:
            self._run_cold(to_run, outcomes)
        return [outcomes[c.key] for c in cells]

    def _finish(
        self, cell: SweepCell, stamped: List[Tuple[float, Any]],
        t_submit: float, wall: float, pooled: bool,
    ) -> CellOutcome:
        entered = max(t for t, _ in stamped)
        outcome = CellOutcome(
            key=cell.key, ranks=cell.ranks,
            results=[value for _, value in stamped],
            wall_time=wall, spinup_time=max(0.0, entered - t_submit),
            pooled=pooled,
        )
        self._write_marker(outcome)
        return outcome

    def _run_pooled(
        self, cells: List[SweepCell], outcomes: Dict[str, CellOutcome]
    ) -> None:
        # Smallest-first: narrow cells fill the gaps wide cells leave, so
        # a P_max pool rarely idles while work remains.
        order = sorted(range(len(cells)), key=lambda i: (cells[i].ranks, i))
        jobs = []
        for i in order:
            cell = cells[i]
            jobs.append((cell, self.pool.submit(
                cell.ranks, _timed_cell, cell.fn, *cell.args, timeout=self.timeout,
            )))
        first_error: Optional[BaseException] = None
        for cell, job in jobs:
            try:
                stamped = job.result()
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
                continue
            outcomes[cell.key] = self._finish(
                cell, stamped, job.t_submit, job.wall_time, pooled=True
            )
        if first_error is not None:
            # Recover a provably clean fabric before anyone reuses the pool.
            try:
                self.pool.reset()
            except Exception:  # pragma: no cover - pool already broken
                pass
            raise first_error

    def _run_cold(
        self, cells: List[SweepCell], outcomes: Dict[str, CellOutcome]
    ) -> None:
        # The baseline discipline: one freshly spun-up communicator per
        # cell, sequentially — exactly what every harness sweep paid
        # before the pool existed.
        for cell in cells:
            args = tuple(self.payload if a is POOL_PAYLOAD else a for a in cell.args)
            t_submit = time.monotonic()
            comm = make_communicator(
                cell.ranks, backend=self.backend, timeout=self.timeout,
                **self.comm_kwargs,
            )
            try:
                stamped = comm.run(_timed_cell, cell.fn, *args)
            finally:
                comm.close()
            wall = time.monotonic() - t_submit
            outcomes[cell.key] = self._finish(cell, stamped, t_submit, wall, pooled=False)
