"""Persistent worker pool + sweep scheduler (spin-up amortization).

``WorkerPool`` keeps ``P_max`` forked ranks alive across experiment
cells, recycling slot rings and collective arenas instead of rebuilding
them per run; ``SweepScheduler`` multiplexes a queue of cells over the
pool with smallest-first packing and checkpointable done-markers.  See
``docs/performance.md`` ("Pool reuse") and ``benchmarks/bench_sweep_pool.py``.
"""

from repro.pool.scheduler import CellOutcome, SweepCell, SweepScheduler
from repro.pool.worker_pool import POOL_PAYLOAD, PoolJob, WorkerPool

__all__ = [
    "POOL_PAYLOAD",
    "PoolJob",
    "WorkerPool",
    "SweepCell",
    "CellOutcome",
    "SweepScheduler",
]
