"""Persistent worker pool: fork once, run many experiment cells.

Every sweep the harness runs today pays the full process spin-up bill per
cell: fork ``P`` ranks, build queues, create shm slot rings and
collective arenas, tear it all down, repeat.  For the paper's headline
workloads — Table 4 weak scaling, Fig 6 pairwise comparisons, the
Sec 7.2 batch-size study — the per-cell compute is small enough that
spin-up dominates CI wall-clock.  :class:`WorkerPool` is the same
amortization idea as the paper's packed single-buffer codesign: pay setup
once, reuse it on every round.

Design:

- ``P_max`` rank processes are **forked at construction** (after
  :func:`~repro.comm.shm_lifecycle.reap_stale_segments` and
  :func:`~repro.comm.shm_lifecycle.adopt_owner_pid`, so debris from
  killed runs is cleared and every segment the pool tree creates carries
  the pool parent's pid).  Each worker owns a persistent message inbox
  (the fabric), a persistent :class:`~repro.comm.shm_transport.ShmTransport`
  (slot rings are recycled across cells), and a by-name
  :class:`~repro.comm.shm_transport.CollectiveArena` cache (arenas are
  sized once per shape and reused).
- A **cell** is one ``fn(ctx, *args)`` rank program over ``n <= P_max``
  ranks.  :meth:`submit` leases a contiguous block of free workers,
  ships one work item per rank over a dispatch queue (distinct from the
  message fabric, so dispatch never interleaves with rank traffic), and
  returns a :class:`PoolJob` handle.  Cells on disjoint blocks run
  concurrently — the scheduler packs them.
- Each cell gets a **fresh** :class:`~repro.comm.mp_runtime.MpRankContext`
  (fresh stashes, sequence counters, RNG-free) over the recycled fabric,
  so numerics derive only from the cell's arguments and seeds: a pooled
  cell is bit-identical to a cold-spawn run of the same program.
- :meth:`reset` is the explicit hygiene barrier: workers drain their
  inboxes, rebuild their transports (old ring segments are unlinked by
  the parent), and zero every cached arena row — recovering a provably
  clean fabric after a failed cell.
- Work items are pickled (the pool forked long ago), so ``fn`` must be a
  module-level function.  Big constant state (datasets, an
  :class:`~repro.harness.experiment.ExperimentSpec`) should instead ride
  fork inheritance: pass it as the pool's ``payload`` and put the
  :data:`POOL_PAYLOAD` sentinel in a cell's args — each worker
  substitutes its inherited copy, and the bytes never cross a pipe.

``backend="threads"`` keeps the identical surface over
:class:`~repro.comm.runtime.InProcessCommunicator` cells (thread spin-up
is already cheap; the pool then only bounds concurrency and unifies the
scheduler's code path).
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import shared_memory
import os
import pickle
import queue as _queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple
import uuid

from repro.comm.mp_runtime import (
    MpRankContext,
    RemoteRankError,
    emit_transport_marks,
    fork_available,
    run_rank_program,
)
from repro.comm.runtime import _DEFAULT_TIMEOUT, InProcessCommunicator, MultiRankError
from repro.comm.shm_lifecycle import (
    adopt_owner_pid,
    reap_stale_segments,
    segment_name,
    unregister_segment,
)
from repro.comm.shm_transport import (
    DEFAULT_MIN_BYTES,
    DEFAULT_SLOTS,
    ShmTransport,
    validate_transport,
)
from repro.faults import FaultPlan
from repro.trace.events import Trace

__all__ = ["POOL_PAYLOAD", "PoolJob", "WorkerPool"]

#: Parent-side patience beyond a job's rank timeout before declaring its
#: workers hung (mirrors the one-shot communicator's collection grace).
_COLLECT_GRACE = 30.0


class _PayloadSentinel:
    """Placeholder for the pool's fork-inherited payload in cell args.

    Pickles by reference to the module attribute, so identity survives
    the dispatch queue and workers can substitute with ``is``.
    """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "POOL_PAYLOAD"

    def __reduce__(self):
        return (_payload_sentinel, ())


def _payload_sentinel() -> "_PayloadSentinel":
    return POOL_PAYLOAD


#: Put this in a cell's args where the pool's ``payload`` should appear.
POOL_PAYLOAD = _PayloadSentinel()


class PoolJob:
    """Parent-side handle for one dispatched cell."""

    def __init__(self, job_id: int, base: int, nranks: int) -> None:
        self.job_id = job_id
        self.base = base
        self.nranks = nranks
        self.results: List[Any] = [None] * nranks
        self.failures: List[Tuple[int, BaseException]] = []
        self.events: List[Any] = []
        self.records: List[Any] = []
        self.transport_stats: Dict[str, int] = {}
        #: Dispatch instant (monotonic) and completion instant.
        self.t_submit = time.monotonic()
        self.t_done: Optional[float] = None
        self._error: Optional[BaseException] = None
        self._pending = set(range(nranks))
        self._done = threading.Event()
        self.deadline: Optional[float] = None

    @property
    def wall_time(self) -> float:
        """Submit-to-completion wall seconds (0.0 while running)."""
        return 0.0 if self.t_done is None else self.t_done - self.t_submit

    def _complete(self) -> None:
        self.t_done = time.monotonic()
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until every rank of the cell reported."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"pool job {self.job_id} still running after {timeout}s")

    def result(self, timeout: Optional[float] = None) -> List[Any]:
        """Per-rank results; raises exactly like ``Communicator.run``."""
        self.wait(timeout)
        if self._error is not None:
            raise self._error
        if self.failures:
            raise MultiRankError.aggregate(sorted(self.failures, key=lambda f: f[0]))
        return list(self.results)


class WorkerPool:
    """``P_max`` long-lived ranks shared by many experiment cells.

    ``payload`` is arbitrary fork-inherited state workers substitute for
    :data:`POOL_PAYLOAD` in cell args.  ``timeout`` bounds shm ring
    acquisition and is the default rank timeout for cells that don't
    override it per job.
    """

    def __init__(
        self,
        size: int,
        backend: str = "processes",
        timeout: float = _DEFAULT_TIMEOUT,
        transport: str = "shm",
        shm_slots: int = DEFAULT_SLOTS,
        shm_min_bytes: int = DEFAULT_MIN_BYTES,
        pin_cpus: Any = "auto",
        payload: Any = None,
    ) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if backend not in ("threads", "processes"):
            raise ValueError(f"unknown backend {backend!r}")
        validate_transport(transport)
        self.size = size
        self.backend = backend
        self.timeout = timeout
        self.transport = transport
        self.shm_slots = shm_slots
        self.shm_min_bytes = shm_min_bytes
        self.pin_cpus = pin_cpus
        self.payload = payload
        #: Completed-cell counter (amortization evidence for benchmarks).
        self.jobs_run = 0
        self._payload = payload
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._free = [True] * size
        self._jobs: Dict[int, PoolJob] = {}
        self._job_blocks: Dict[int, Tuple[int, int]] = {}
        self._next_job = 0
        self._closed = False
        self._broken: Optional[str] = None
        self._reset_gen = 0
        self._reset_acks = 0
        self._reset_names: List[str] = []
        self._stop_names: List[str] = []
        self._stopped = 0

        if backend == "threads":
            self._start = time.monotonic()
            return

        if not fork_available():
            raise RuntimeError(
                "the processes pool requires the 'fork' start method; "
                "use backend='threads' on this platform"
            )
        if transport == "shm":
            # One shared resource tracker inherited by every worker (same
            # rationale as the one-shot communicator's pre-fork spawn).
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        # Satellite of the lifecycle contract: clear debris from runs that
        # died by signal, then stamp the pool parent's pid into every
        # segment the whole worker tree will ever create.
        reap_stale_segments()
        adopt_owner_pid()
        self._mp = multiprocessing.get_context("fork")
        self._start = time.monotonic()
        #: Persistent message fabric: one inbox per pool rank; cells see
        #: the slice ``inboxes[base:base+n]`` so a context's own-rank
        #: indexing works unchanged on any block.
        self._inboxes = [self._mp.Queue() for _ in range(size)]
        self._work_qs = [self._mp.Queue() for _ in range(size)]
        self._results_q = self._mp.Queue()
        #: Stable per-pool stem for arena names: cells on the same block
        #: derive the same names, so consecutive cells reuse one arena.
        self._coll_stem = segment_name("coll", f"pool{uuid.uuid4().hex[:6]}")
        pin_plan = self._pin_plan()
        self._procs = [
            self._mp.Process(
                target=self._worker_loop, args=(r, pin_plan), name=f"pool-rank-{r}"
            )
            for r in range(size)
        ]
        for p in self._procs:
            p.start()
        self._collector = threading.Thread(
            target=self._collect_loop, name="pool-collector", daemon=True
        )
        self._collector.start()

    # -- parent side -----------------------------------------------------------
    def _pin_plan(self) -> Optional[List[int]]:
        if not self.pin_cpus or not hasattr(os, "sched_getaffinity"):
            return None
        cpus = sorted(os.sched_getaffinity(0))
        if not cpus:
            return None
        if self.pin_cpus == "auto" and len(cpus) < self.size:
            return None
        return cpus

    def _coll_prefix(self, base: int, nranks: int, wire_dtype: str) -> str:
        # The wire dtype is part of the identity: arena rows are laid out
        # in wire format, so a float16 cell must never attach a float32
        # cell's segment of the same shape.
        stem = f"{self._coll_stem}b{base}x{nranks}"
        return stem if wire_dtype == "float32" else f"{stem}{wire_dtype}"

    def _allocate(self, nranks: int) -> int:
        """First contiguous free block (caller holds the lock), or -1."""
        run = 0
        for i in range(self.size):
            run = run + 1 if self._free[i] else 0
            if run == nranks:
                base = i - nranks + 1
                for j in range(base, base + nranks):
                    self._free[j] = False
                return base
        return -1

    def _release(self, base: int, nranks: int) -> None:
        for j in range(base, base + nranks):
            self._free[j] = True

    def _check_usable(self) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._broken is not None:
            raise RuntimeError(f"pool is broken: {self._broken}")

    def submit(
        self,
        nranks: int,
        fn: Callable[..., Any],
        *args: Any,
        tracing: bool = False,
        faults: Optional[FaultPlan] = None,
        timeout: Optional[float] = None,
        max_retries: int = 8,
        retry_backoff: float = 0.001,
        transport: Optional[str] = None,
        collective: str = "tree",
        wire_dtype: str = "float32",
        chunk_elems: Optional[int] = None,
        start_time: Optional[float] = None,
    ) -> PoolJob:
        """Dispatch ``fn(ctx, *args)`` over ``nranks`` pooled ranks.

        Blocks until a contiguous block of workers is free — concurrent
        submitters therefore pack the pool.  Returns immediately-usable
        :class:`PoolJob`; call :meth:`PoolJob.result` for the per-rank
        values (or :meth:`PoolJob.wait` plus the raw fields).
        """
        if not 0 < nranks <= self.size:
            raise ValueError(f"cell needs 1..{self.size} ranks, got {nranks}")
        timeout = self.timeout if timeout is None else timeout
        if self.backend == "threads":
            return self._submit_threads(
                nranks, fn, args, tracing=tracing, faults=faults, timeout=timeout,
                max_retries=max_retries, retry_backoff=retry_backoff,
                collective=collective, wire_dtype=wire_dtype,
                chunk_elems=chunk_elems, start_time=start_time,
            )
        # Fail fast on unpicklable work: a bad item would otherwise die in
        # the queue's feeder thread and strand the job until its deadline.
        try:
            pickle.dumps((fn, args))
        except Exception as exc:
            raise ValueError(
                f"pool work items must be picklable (module-level fn, "
                f"picklable args; use POOL_PAYLOAD for inherited state): {exc}"
            ) from None
        with self._cond:
            self._check_usable()
            base = self._allocate(nranks)
            while base < 0:
                self._cond.wait()
                self._check_usable()
                base = self._allocate(nranks)
            self._next_job += 1
            job = PoolJob(self._next_job, base, nranks)
            job.deadline = job.t_submit + timeout + _COLLECT_GRACE
            self._jobs[job.job_id] = job
            self._job_blocks[job.job_id] = (base, nranks)
        opts = {
            "tracing": tracing,
            "faults": faults,
            "timeout": timeout,
            "max_retries": max_retries,
            "retry_backoff": retry_backoff,
            "transport": self.transport if transport is None else transport,
            "collective": collective,
            "wire_dtype": wire_dtype,
            "chunk_elems": chunk_elems,
            "start_time": self._start if start_time is None else start_time,
            "coll_prefix": self._coll_prefix(base, nranks, wire_dtype),
        }
        for cell_rank in range(nranks):
            self._work_qs[base + cell_rank].put(
                ("job", job.job_id, base, nranks, cell_rank, fn, args, opts)
            )
        return job

    def run(self, nranks: int, fn: Callable[..., Any], *args: Any, **opts: Any) -> List[Any]:
        """Synchronous convenience: ``submit(...).result()``."""
        return self.submit(nranks, fn, *args, **opts).result()

    def _submit_threads(
        self, nranks: int, fn: Callable[..., Any], args: Tuple[Any, ...], *,
        tracing: bool, faults: Optional[FaultPlan], timeout: float,
        max_retries: int, retry_backoff: float, collective: str,
        wire_dtype: str, chunk_elems: Optional[int], start_time: Optional[float],
    ) -> PoolJob:
        """Thread-backend cell: an InProcessCommunicator on a driver thread.

        Spin-up is cheap here; the pool's job is to bound concurrency to
        ``P_max`` ranks and present the same handle/packing surface.
        """
        with self._cond:
            self._check_usable()
            base = self._allocate(nranks)
            while base < 0:
                self._cond.wait()
                self._check_usable()
                base = self._allocate(nranks)
            self._next_job += 1
            job = PoolJob(self._next_job, base, nranks)
            self._jobs[job.job_id] = job
        cell_args = tuple(self._payload if a is POOL_PAYLOAD else a for a in args)
        trace = Trace() if tracing else None

        def drive() -> None:
            comm = InProcessCommunicator(
                nranks, timeout=timeout, faults=faults, max_retries=max_retries,
                retry_backoff=retry_backoff, trace=trace, collective=collective,
                wire_dtype=wire_dtype, chunk_elems=chunk_elems,
            )
            try:
                job.results = comm.run(fn, *cell_args)
            except BaseException as exc:
                job._error = exc
            if trace is not None:
                job.events = list(trace.events)
            job.records = list(comm.fault_log.records)
            with self._cond:
                self._release(base, nranks)
                self._jobs.pop(job.job_id, None)
                self.jobs_run += 1
                self._cond.notify_all()
            job._complete()

        threading.Thread(target=drive, name=f"pool-cell-{job.job_id}", daemon=True).start()
        return job

    def _collect_loop(self) -> None:
        """Route worker reports to job handles; watch worker liveness."""
        while True:
            try:
                report = self._results_q.get(timeout=0.2)
            except _queue.Empty:
                with self._cond:
                    if self._closed and self._stopped >= self._live_workers():
                        return
                    self._check_health_locked()
                continue
            kind = report[0]
            if kind == "done":
                _, job_id, cell_rank, status, payload, events, records, tstats = report
                with self._cond:
                    job = self._jobs.get(job_id)
                    if job is None:
                        continue
                    job.events.extend(events)
                    job.records.extend(records)
                    for key, val in tstats.items():
                        job.transport_stats[key] = (
                            job.transport_stats.get(key, 0) + int(val)
                        )
                    if status == "ok":
                        job.results[cell_rank] = payload
                    else:
                        job.failures.append((cell_rank, payload))
                    job._pending.discard(cell_rank)
                    if not job._pending:
                        self._finish_job_locked(job)
            elif kind == "reset":
                _, gen, _rank, names = report
                with self._cond:
                    if gen == self._reset_gen:
                        self._reset_acks += 1
                        self._reset_names.extend(names)
                        self._cond.notify_all()
            elif kind == "stop":
                _, _rank, names = report
                with self._cond:
                    self._stopped += 1
                    self._stop_names.extend(names)
                    self._cond.notify_all()
                    if self._closed and self._stopped >= self._live_workers():
                        return

    def _live_workers(self) -> int:
        return sum(1 for p in self._procs if p.exitcode is None or p.exitcode == 0)

    def _finish_job_locked(self, job: PoolJob) -> None:
        self._jobs.pop(job.job_id, None)
        block = self._job_blocks.pop(job.job_id, None)
        if block is not None:
            self._release(*block)
        self.jobs_run += 1
        self._cond.notify_all()
        job._complete()

    def _check_health_locked(self) -> None:
        """Fail jobs whose workers died or whose deadline passed."""
        if self._closed:
            return
        dead = [r for r, p in enumerate(self._procs) if p.exitcode is not None]
        now = time.monotonic()
        for job in list(self._jobs.values()):
            lost = [
                cr for cr in sorted(job._pending)
                if job.base + cr in dead
            ]
            hung = job.deadline is not None and now > job.deadline
            if not lost and not hung:
                continue
            reason = (
                f"pool worker(s) {[job.base + c for c in lost]} died mid-cell"
                if lost else f"cell exceeded its {job.deadline - job.t_submit:.0f}s deadline"
            )
            self._broken = reason
            for cr in sorted(job._pending):
                job.failures.append((cr, RemoteRankError(cr, f"rank {cr}: {reason}")))
            job._pending.clear()
            self._finish_job_locked(job)
        if dead and self._broken is None:
            self._broken = f"pool worker(s) {dead} died"
            self._cond.notify_all()

    def reset(self) -> None:
        """Hygiene barrier: drain fabric, rebuild transports, zero arenas.

        Returns once every worker acked — the fabric is then provably
        indistinguishable from a freshly-forked pool (which is also why
        the happy path never needs this: a *successful* cell consumes all
        its messages and always overwrites reused rows before reading).
        Call it after a failed cell before dispatching the next one.
        """
        if self.backend == "threads":
            with self._cond:
                while self._jobs:
                    self._cond.wait()
            return
        with self._cond:
            self._check_usable()
            while self._jobs:
                self._cond.wait()
                self._check_usable()
            self._reset_gen += 1
            self._reset_acks = 0
            self._reset_names = []
            gen = self._reset_gen
        for q in self._work_qs:
            q.put(("reset", gen))
        deadline = time.monotonic() + self.timeout + _COLLECT_GRACE
        with self._cond:
            while self._reset_acks < self.size:
                if self._broken is not None:
                    raise RuntimeError(f"pool is broken: {self._broken}")
                if not self._cond.wait(timeout=max(0.0, deadline - time.monotonic())):
                    raise TimeoutError("pool reset barrier timed out")
            names = list(self._reset_names)
        self._unlink(names)

    def close(self) -> None:
        """Stop every worker, then unlink all recycled shm segments."""
        if self.backend == "threads":
            with self._cond:
                self._closed = True
                while self._jobs:
                    self._cond.wait()
                self._cond.notify_all()
            return
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for q in self._work_qs:
            try:
                q.put(("stop",))
            except (ValueError, OSError):  # pragma: no cover - queue torn down
                pass
        self._collector.join(timeout=self.timeout + _COLLECT_GRACE)
        for p in self._procs:
            p.join(timeout=5.0)
        for p in self._procs:
            if p.is_alive():  # pragma: no cover - hung-worker cleanup
                p.terminate()
                p.join(timeout=5.0)
        with self._cond:
            names = list(self._stop_names)
            self._stop_names = []
        self._unlink(names)
        for q in [*self._inboxes, *self._work_qs, self._results_q]:
            q.cancel_join_thread()
            q.close()

    def _unlink(self, names: List[str]) -> None:
        """Destroy worker-reported segments (the parent-scoped unlink)."""
        for name in names:
            try:
                seg = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:  # pragma: no cover - already gone
                continue
            seg.unlink()
            seg.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- worker side -----------------------------------------------------------
    def _worker_loop(self, pool_rank: int, pin_plan: Optional[List[int]]) -> None:
        """The forked worker: serve cells until told to stop.

        Persistent state across cells: the ShmTransport (slot rings) and
        the by-name arena cache.  Everything cell-scoped — context,
        stashes, trace, RNG — is rebuilt per job, which is what keeps
        pooled cells bit-identical to cold spawns.
        """
        if pin_plan is not None:
            try:
                os.sched_setaffinity(0, {pin_plan[pool_rank % len(pin_plan)]})
            except OSError:  # pragma: no cover - cgroup/permission quirk
                pass
        transport: Optional[ShmTransport] = None
        arena_cache: Dict[str, Any] = {}

        def teardown() -> List[str]:
            nonlocal transport
            names: List[str] = []
            if transport is not None:
                names += transport.ring_names()
                transport.close()
                transport = None
            for arena in arena_cache.values():
                names.append(arena.name)
                arena.close()
            arena_cache.clear()
            # Reported names become the parent's to unlink — drop them
            # from this worker's registry so its atexit sweep can't
            # destroy segments a sibling may still hold descriptors into.
            for name in names:
                unregister_segment(name)
            return names

        while True:
            item = self._work_qs[pool_rank].get()
            kind = item[0]
            if kind == "stop":
                self._results_q.put(("stop", pool_rank, teardown()))
                return
            if kind == "reset":
                gen = item[1]
                # Drain stranded fabric traffic (a failed cell may have
                # left messages — and ring descriptors — in flight).
                while True:
                    try:
                        self._inboxes[pool_rank].get_nowait()
                    except _queue.Empty:
                        break
                names = teardown()
                self._results_q.put(("reset", gen, pool_rank, names))
                continue
            _, job_id, base, nranks, cell_rank, fn, args, opts = item
            use_shm = opts["transport"] == "shm"
            if use_shm and transport is None:
                transport = ShmTransport(
                    pool_rank, self.size, slots=self.shm_slots,
                    min_bytes=self.shm_min_bytes, timeout=self.timeout,
                )
            args = tuple(self._payload if a is POOL_PAYLOAD else a for a in args)
            ctx = MpRankContext(
                cell_rank, nranks, self._inboxes[base:base + nranks],
                opts["timeout"], opts["faults"], opts["max_retries"],
                opts["retry_backoff"], opts["start_time"], opts["tracing"],
                transport=transport if use_shm else None,
                collective=opts["collective"], wire_dtype=opts["wire_dtype"],
                chunk_elems=opts["chunk_elems"], coll_prefix=opts["coll_prefix"],
                arena_cache=arena_cache,
            )
            stats_before = dict(transport.stats) if use_shm else {}
            status, payload = run_rank_program(ctx, fn, args)
            ctx.close_arenas()  # cache-owned: drops only the per-cell index
            tstats: Dict[str, int] = {}
            if use_shm and transport is not None:
                tstats = {
                    k: int(v) - int(stats_before.get(k, 0))
                    for k, v in transport.stats.items()
                }
                emit_transport_marks(ctx, tstats)
            events = list(ctx.trace.events) if ctx.trace is not None else []
            records = list(ctx.fault_log.records)
            self._results_q.put(
                ("done", job_id, cell_rank, status, payload, events, records, tstats)
            )
