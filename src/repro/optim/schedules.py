"""Learning-rate schedules.

Section 7.2 notes that batch size, learning rate, and momentum must be tuned
together; the harness exposes schedules so sweeps can do that. All schedules
are callables ``iteration -> lr``.
"""

from __future__ import annotations

__all__ = ["ConstantLR", "StepDecayLR", "InverseScalingLR"]


class ConstantLR:
    """Fixed learning rate."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr

    def __call__(self, iteration: int) -> float:
        return self.lr


class StepDecayLR:
    """Multiply the rate by ``gamma`` every ``step_size`` iterations."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.1) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.lr = lr
        self.step_size = step_size
        self.gamma = gamma

    def __call__(self, iteration: int) -> float:
        return self.lr * self.gamma ** (iteration // self.step_size)


class InverseScalingLR:
    """Caffe's ``inv`` policy: ``lr * (1 + gamma * iter)^(-power)``."""

    def __init__(self, lr: float, gamma: float = 1e-4, power: float = 0.75) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.gamma = gamma
        self.power = power

    def __call__(self, iteration: int) -> float:
        return self.lr * (1.0 + self.gamma * iteration) ** (-self.power)
