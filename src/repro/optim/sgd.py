"""Plain and momentum SGD over packed parameter vectors.

Weight Update (Section 2.2): ``W <- W - eta * dW``. Momentum SGD
(Equations 3-4): ``V <- mu V - eta dW;  W <- W + V``. All updates are
in-place on the flat buffers (HPC guide: in-place ops, no copies).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SGDRule", "MomentumRule"]


class SGDRule:
    """Stateless SGD step on a packed parameter vector.

    ``weight_decay`` adds the usual L2 term: the effective gradient is
    ``grads + weight_decay * params`` (Caffe's ``weight_decay`` solver
    field, which the paper's prototxt configurations carry).
    """

    def __init__(self, lr: float, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.weight_decay = weight_decay

    def apply(self, params: np.ndarray, grads: np.ndarray) -> None:
        """``params -= lr * (grads + weight_decay * params)`` in place."""
        if self.weight_decay:
            params -= self.lr * (grads + self.weight_decay * params)
        else:
            params -= self.lr * grads

    def bytes_touched(self, num_params: int) -> int:
        """Bytes read+written per step (used by the simulated clock)."""
        return 3 * 4 * num_params  # read params, read grads, write params


class MomentumRule:
    """Momentum SGD (Equations 3-4), per-replica velocity state.

    ``nesterov=True`` applies the look-ahead form (Sutskever et al. [24],
    the reference the paper cites for momentum): the parameters move by
    ``mu*V - lr*grad`` evaluated after the velocity update.
    """

    def __init__(
        self, lr: float, mu: float = 0.9, weight_decay: float = 0.0, nesterov: bool = False
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= mu < 1.0:
            raise ValueError("momentum mu must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.mu = mu
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self.velocity: np.ndarray | None = None

    def apply(self, params: np.ndarray, grads: np.ndarray) -> None:
        """``V <- mu V - lr dW;  W <- W + V`` (or the Nesterov form)."""
        if self.velocity is None:
            self.velocity = np.zeros_like(params)
        if self.weight_decay:
            grads = grads + self.weight_decay * params
        v = self.velocity
        v *= self.mu
        v -= self.lr * grads
        if self.nesterov:
            params += self.mu * v - self.lr * grads
        else:
            params += v

    def bytes_touched(self, num_params: int) -> int:
        return 5 * 4 * num_params  # read v/grads/params, write v/params
