"""The EASGD update equations (Zhang et al. 2015; paper Eqs 1, 2, 5, 6).

Worker update (Eq 1):

    W^i_{t+1} = W^i_t - eta * (dW^i_t + rho * (W^i_t - Wbar_t))

Center (master) update (Eq 2):

    Wbar_{t+1} = Wbar_t + eta * sum_i rho * (W^i_t - Wbar_t)

Momentum worker update (Eqs 5-6):

    V^i_{t+1} = mu V^i_t - eta dW^i_t
    W^i_{t+1} = W^i_t + V^i_{t+1} - eta rho (W^i_t - Wbar_t)

The round-robin / asynchronous master applies Eq 2 with a single worker's
term at a time (Algorithm 1 line 14): ``Wbar += eta rho (W^j - Wbar)``.

All functions mutate their first argument in place on packed flat vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "EASGDHyper",
    "elastic_worker_update",
    "elastic_center_update",
    "elastic_center_update_single",
    "elastic_momentum_worker_update",
]


@dataclass(frozen=True)
class EASGDHyper:
    """Hyperparameters shared by all EASGD variants.

    The elastic step size ``eta * rho`` must lie in (0, 1) for the elastic
    force to be a contraction toward the center (stability condition from
    the EASGD paper); validated here so every algorithm inherits the check.
    """

    lr: float  # eta
    rho: float  # elastic coupling strength
    mu: float = 0.9  # momentum rate (MEASGD only)

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.rho < 0:
            raise ValueError("rho must be non-negative")
        if not 0.0 <= self.mu < 1.0:
            raise ValueError("mu must be in [0, 1)")
        if not 0.0 < self.lr * self.rho < 1.0 and self.rho > 0:
            raise ValueError(
                f"elastic step lr*rho = {self.lr * self.rho} must be in (0, 1)"
            )

    @property
    def alpha(self) -> float:
        """The elastic step size eta * rho (the EASGD paper's alpha)."""
        return self.lr * self.rho

    def validate_sync(self, num_workers: int) -> None:
        """Reject hyperparameters that make the synchronous Eq 2 diverge.

        See :func:`elastic_center_update`: P * alpha >= 2 oscillates with
        growing amplitude no matter the gradients.
        """
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if num_workers * self.alpha >= 2.0:
            raise ValueError(
                f"unstable synchronous EASGD: P*alpha = {num_workers * self.alpha:.3f}"
                " >= 2; reduce lr or rho"
            )


def elastic_worker_update(
    weights: np.ndarray, grads: np.ndarray, center: np.ndarray, hyper: EASGDHyper
) -> None:
    """Equation 1, in place on ``weights``.

    The right-hand side is evaluated fully before the in-place subtraction,
    so both the gradient term and the elastic term see the pre-update W^i_t.
    """
    weights -= hyper.lr * grads + hyper.alpha * (weights - center)


def elastic_center_update(
    center: np.ndarray, worker_weights: Sequence[np.ndarray], hyper: EASGDHyper
) -> None:
    """Equation 2, in place on ``center``: fold in all workers at once.

    Stability: the synchronous center iteration is
    ``center <- (1 - P*alpha) * center + alpha * sum``, which diverges when
    ``P * alpha >= 2`` (the paper's Eq 2 is silent on this; the bound falls
    out of the linear recurrence). We reject that regime outright.
    """
    if not worker_weights:
        raise ValueError("need at least one worker weight vector")
    if len(worker_weights) * hyper.alpha >= 2.0:
        raise ValueError(
            f"unstable center update: P*alpha = {len(worker_weights) * hyper.alpha:.3f} "
            ">= 2; reduce lr or rho"
        )
    total = np.zeros_like(center)
    for w in worker_weights:
        total += w
    p = len(worker_weights)
    center += hyper.alpha * (total - p * center)


def elastic_center_update_single(
    center: np.ndarray, worker_weight: np.ndarray, hyper: EASGDHyper
) -> None:
    """One-worker master step (Algorithm 1 line 14 / async service)."""
    center += hyper.alpha * (worker_weight - center)


def elastic_momentum_worker_update(
    weights: np.ndarray,
    velocity: np.ndarray,
    grads: np.ndarray,
    center: np.ndarray,
    hyper: EASGDHyper,
) -> None:
    """Equations 5-6, in place on ``weights`` and ``velocity``."""
    velocity *= hyper.mu
    velocity -= hyper.lr * grads
    # Eq 6's elastic term uses W^i_t (pre-update), so apply it before adding V.
    weights -= hyper.alpha * (weights - center)
    weights += velocity
