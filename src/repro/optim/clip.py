"""Gradient clipping by global norm.

Large-batch and momentum runs occasionally spike (the Async MSGD
instability of Figure 6.2); clipping bounds the update without changing
its direction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["clip_gradient_norm"]


def clip_gradient_norm(grads: np.ndarray, max_norm: float) -> float:
    """Scale ``grads`` in place so its L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for monitoring).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = float(np.linalg.norm(grads))
    if norm > max_norm:
        grads *= max_norm / norm
    return norm
