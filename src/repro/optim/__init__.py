"""Update rules: plain SGD, momentum SGD, and the EASGD family (Eqs 1-6)."""

from repro.optim.clip import clip_gradient_norm
from repro.optim.easgd import (
    EASGDHyper,
    elastic_center_update,
    elastic_center_update_single,
    elastic_momentum_worker_update,
    elastic_worker_update,
)
from repro.optim.quantize import quantize_gradient
from repro.optim.schedules import ConstantLR, InverseScalingLR, StepDecayLR
from repro.optim.sgd import MomentumRule, SGDRule

__all__ = [
    "SGDRule",
    "MomentumRule",
    "elastic_worker_update",
    "elastic_center_update",
    "elastic_center_update_single",
    "elastic_momentum_worker_update",
    "EASGDHyper",
    "ConstantLR",
    "StepDecayLR",
    "InverseScalingLR",
    "quantize_gradient",
    "clip_gradient_norm",
]
