"""Update rules: plain SGD, momentum SGD, and the EASGD family (Eqs 1-6)."""

from repro.optim.sgd import SGDRule, MomentumRule
from repro.optim.easgd import (
    elastic_worker_update,
    elastic_center_update,
    elastic_center_update_single,
    elastic_momentum_worker_update,
    EASGDHyper,
)
from repro.optim.schedules import ConstantLR, StepDecayLR, InverseScalingLR
from repro.optim.quantize import quantize_gradient
from repro.optim.clip import clip_gradient_norm

__all__ = [
    "SGDRule",
    "MomentumRule",
    "elastic_worker_update",
    "elastic_center_update",
    "elastic_center_update_single",
    "elastic_momentum_worker_update",
    "EASGDHyper",
    "ConstantLR",
    "StepDecayLR",
    "InverseScalingLR",
    "quantize_gradient",
    "clip_gradient_norm",
]
