"""Low-precision gradient quantization (paper Section 3.4 / future work).

The paper cites 1-bit SGD and low-precision training ([4], [8], [10], [22])
as a reserved future direction. We provide the standard uniform stochastic
quantizer as an *extension ablation*: benchmarks can measure the message-
size/accuracy trade-off it would add on top of Sync EASGD. It is not part
of any reproduced table or figure.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "quantize_gradient",
    "WIRE_DTYPES",
    "validate_wire_dtype",
    "encode_wire",
    "decode_wire",
]

#: Wire formats a rank runtime may put on the fabric. ``float32`` is the
#: identity (and the only format under which backends are bit-identical);
#: ``float16`` halves every collective's byte volume at ~3 decimal digits
#: of mantissa — the bandwidth x accuracy ablation of paper Section 3.4.
WIRE_DTYPES = ("float32", "float16")


def validate_wire_dtype(wire_dtype: str) -> str:
    """Return ``wire_dtype`` or raise a ValueError naming the valid choices."""
    if wire_dtype not in WIRE_DTYPES:
        raise ValueError(
            f"unknown wire dtype {wire_dtype!r}; expected one of {WIRE_DTYPES}"
        )
    return wire_dtype


def encode_wire(array: np.ndarray, wire_dtype: str) -> np.ndarray:
    """Cast ``array`` to the wire format (identity — no copy — for float32).

    Unlike :func:`quantize_gradient` this is an IEEE *format* conversion,
    not a level quantizer, so non-finite payloads are legal: NaN stays NaN,
    out-of-range magnitudes saturate to ±Inf, and float32 denormals (below
    float16's ~6e-8 subnormal floor) flush to signed zero. Collectives must
    stay total under fault-injected garbage, which is why the codec cannot
    share quantize_gradient's finite-only contract.
    """
    validate_wire_dtype(wire_dtype)
    if wire_dtype == "float32":
        return array
    return array.astype(np.float16)


def decode_wire(array: np.ndarray, wire_dtype: str) -> np.ndarray:
    """Widen a wire-format payload back to float32 (identity for float32).

    Every float16 value (including NaN/±Inf and subnormals) is exactly
    representable in float32, so decode is lossless; the information loss
    of the ablation happens entirely in :func:`encode_wire`.
    """
    validate_wire_dtype(wire_dtype)
    if wire_dtype == "float32":
        return array
    return array.astype(np.float32)


def quantize_gradient(
    grad: np.ndarray, bits: int, rng: np.random.Generator | None = None
) -> tuple[np.ndarray, float]:
    """Uniform (optionally stochastic) quantization of a gradient vector.

    Returns ``(quantized, scale)`` where ``quantized`` has the same dtype as
    the input but only ``2**bits`` distinct magnitude levels; ``scale`` is
    the dequantization factor. With an ``rng``, rounding is stochastic and
    unbiased (E[q] = grad); without, deterministic round-to-nearest.
    """
    if not 1 <= bits <= 16:
        raise ValueError("bits must be in [1, 16]")
    levels = (1 << bits) - 1
    if grad.size == 0:
        return grad.copy(), 1.0
    max_abs = float(np.abs(grad).max())
    if not np.isfinite(max_abs):
        raise ValueError("cannot quantize a gradient containing NaN or Inf")
    if max_abs == 0.0:
        return grad.copy(), 1.0
    scale = max_abs / levels
    scaled = grad / scale
    if rng is not None:
        floor = np.floor(scaled)
        frac = scaled - floor
        rounded = floor + (rng.random(grad.shape) < frac)
    else:
        rounded = np.rint(scaled)
    rounded = np.clip(rounded, -levels, levels)
    return (rounded * scale).astype(grad.dtype), scale
