"""Low-precision gradient quantization (paper Section 3.4 / future work).

The paper cites 1-bit SGD and low-precision training ([4], [8], [10], [22])
as a reserved future direction. We provide the standard uniform stochastic
quantizer as an *extension ablation*: benchmarks can measure the message-
size/accuracy trade-off it would add on top of Sync EASGD. It is not part
of any reproduced table or figure.
"""

from __future__ import annotations

import numpy as np

__all__ = ["quantize_gradient"]


def quantize_gradient(
    grad: np.ndarray, bits: int, rng: np.random.Generator | None = None
) -> tuple[np.ndarray, float]:
    """Uniform (optionally stochastic) quantization of a gradient vector.

    Returns ``(quantized, scale)`` where ``quantized`` has the same dtype as
    the input but only ``2**bits`` distinct magnitude levels; ``scale`` is
    the dequantization factor. With an ``rng``, rounding is stochastic and
    unbiased (E[q] = grad); without, deterministic round-to-nearest.
    """
    if not 1 <= bits <= 16:
        raise ValueError("bits must be in [1, 16]")
    levels = (1 << bits) - 1
    if grad.size == 0:
        return grad.copy(), 1.0
    max_abs = float(np.abs(grad).max())
    if not np.isfinite(max_abs):
        raise ValueError("cannot quantize a gradient containing NaN or Inf")
    if max_abs == 0.0:
        return grad.copy(), 1.0
    scale = max_abs / levels
    scaled = grad / scale
    if rng is not None:
        floor = np.floor(scaled)
        frac = scaled - floor
        rounded = floor + (rng.random(grad.shape) < frac)
    else:
        rounded = np.rint(scaled)
    rounded = np.clip(rounded, -levels, levels)
    return (rounded * scale).astype(grad.dtype), scale
