"""Typed failure modes of the durability subsystem.

The loader distinguishes *corruption* (a checkpoint that cannot be
trusted: truncated files, failed checksums, unreadable manifests — the
expected aftermath of a crash mid-write or a bad disk) from *mismatch*
(a perfectly healthy checkpoint that belongs to a different model
architecture or run configuration). Corruption triggers fallback to the
previous valid version; mismatch is a caller error and always raises.
"""

from __future__ import annotations

__all__ = [
    "CheckpointError",
    "CheckpointCorruptionError",
    "CheckpointMismatchError",
    "NoCheckpointError",
]


class CheckpointError(RuntimeError):
    """Base class for all checkpoint save/load failures."""


class CheckpointCorruptionError(CheckpointError):
    """A checkpoint version failed validation (truncated, bit-flipped,
    unreadable manifest, or a checksum that does not match its payload).

    The version loader treats this as "skip and fall back", never as a
    crash: a run killed mid-write must be able to resume from the
    previous valid version.
    """


class CheckpointMismatchError(CheckpointError, ValueError):
    """A (valid) checkpoint belongs to a different architecture or run.

    Subclasses :class:`ValueError` so call sites that guarded the old
    ``load_checkpoint`` behaviour keep working. Unlike corruption this
    never falls back — silently training a different model than the one
    checkpointed is exactly the failure mode the structure fingerprint
    exists to prevent.
    """


class NoCheckpointError(CheckpointError):
    """Resume was requested but no valid checkpoint version exists."""
