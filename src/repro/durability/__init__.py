"""Durable runs: crash-safe, versioned checkpointing with bit-identical resume.

The package is deliberately small: :mod:`repro.durability.checkpoint`
owns the atomic version store and retention policy, :mod:`repro.
durability.state` captures hidden stochastic state (dropout RNGs,
batch-norm running stats), and :mod:`repro.durability.errors` gives the
loader's failure modes distinct types. The actual wiring into training
lives in :class:`repro.engine.pipeline.StepPipeline`, which saves and
restores through each strategy's ``state_dict``/``load_state_dict``.
"""

from repro.durability.checkpoint import (
    FORMAT_VERSION,
    CheckpointData,
    CheckpointManager,
    array_digest,
    list_versions,
    load_latest_valid,
    read_version,
    write_version,
)
from repro.durability.errors import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointMismatchError,
    NoCheckpointError,
)
from repro.durability.state import (
    network_stochastic_state,
    restore_network_stochastic_state,
)

__all__ = [
    "FORMAT_VERSION",
    "CheckpointData",
    "CheckpointManager",
    "array_digest",
    "list_versions",
    "load_latest_valid",
    "read_version",
    "write_version",
    "CheckpointError",
    "CheckpointCorruptionError",
    "CheckpointMismatchError",
    "NoCheckpointError",
    "network_stochastic_state",
    "restore_network_stochastic_state",
]
