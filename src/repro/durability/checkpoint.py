"""Crash-safe, versioned checkpoints of full pipeline state.

One checkpoint *version* is a directory ``ckpt-<step>`` holding three
files:

- ``arrays.npz`` — every numpy array of the run state (packed center and
  worker weights, optimizer/velocity vectors, ...), uncompressed;
- ``state.pkl``  — everything else (RNG stream positions, data-loader
  cursors, event queues, fault-plan progress, trajectory records, trace
  events), pickled with a fixed protocol so identical state produces
  identical bytes;
- ``manifest.json`` — the format version, the model's
  ``structure_fingerprint``, and a BLAKE2 checksum per array plus one
  for the pickled state.

Writes are atomic: the version is assembled in a ``tmp-`` directory,
every file (and the directory) is fsynced, and the directory is renamed
into place in one step. A process killed at *any* instant therefore
leaves either the previous versions untouched or a complete new one —
never a half-written version a resume could trust.

Loads walk versions newest-first: any version that fails validation
(truncated archive, checksum mismatch, unreadable manifest — the
expected debris of a SIGKILL mid-write) is logged as a structured
warning and skipped, falling back to the previous valid version.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import queue
import re
import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.durability.errors import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointMismatchError,
    NoCheckpointError,
)

__all__ = [
    "FORMAT_VERSION",
    "CheckpointData",
    "CheckpointManager",
    "array_digest",
    "list_versions",
    "read_version",
    "write_version",
    "load_latest_valid",
]

#: Bumped whenever the on-disk layout changes incompatibly.
FORMAT_VERSION = 1

#: Pinned so identical state always pickles to identical bytes (the
#: bit-identical-resume tests compare checkpoint payloads across runs).
_PICKLE_PROTOCOL = 4

_ARRAYS_FILE = "arrays.npz"
_STATE_FILE = "state.pkl"
_MANIFEST_FILE = "manifest.json"
_VERSION_RE = re.compile(r"^ckpt-(\d{8})$")

logger = logging.getLogger("repro.durability")


def array_digest(arr: np.ndarray) -> str:
    """A stable BLAKE2 digest of an array's dtype, shape, and contents."""
    arr = np.ascontiguousarray(arr)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(arr.dtype.str).encode("ascii"))
    h.update(str(tuple(arr.shape)).encode("ascii"))
    # Hash through a flat view, not ``tobytes()``: the copy would hold the
    # GIL for the whole buffer, which the background writer thread must
    # not do while training steps run.
    h.update(memoryview(arr).cast("B"))
    return h.hexdigest()


def _bytes_digest(blob: bytes) -> str:
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _version_name(step: int) -> str:
    return f"ckpt-{step:08d}"


def list_versions(directory: Union[str, Path]) -> List[Tuple[int, Path]]:
    """All complete checkpoint versions under ``directory``, oldest first.

    Only directories matching ``ckpt-<8 digits>`` count; ``tmp-`` debris
    from interrupted writes is invisible here by construction.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found: List[Tuple[int, Path]] = []
    for entry in directory.iterdir():
        m = _VERSION_RE.match(entry.name)
        if m is not None and entry.is_dir():
            found.append((int(m.group(1)), entry))
    found.sort(key=lambda sp: sp[0])
    return found


@dataclass
class CheckpointData:
    """One loaded (validated) checkpoint version."""

    step: int
    arrays: Dict[str, np.ndarray]
    meta: Dict[str, Any]
    path: Path
    fingerprint: str


def write_version(
    directory: Union[str, Path],
    step: int,
    arrays: Dict[str, np.ndarray],
    meta: Dict[str, Any],
    *,
    fingerprint: str = "",
) -> Tuple[Path, int]:
    """Atomically write one checkpoint version; returns (path, bytes).

    The version is staged in ``tmp-ckpt-<step>-<pid>``, fully fsynced,
    then renamed into place. An existing version for the same step is
    replaced atomically (rename-away then rename-in).
    """
    if step < 0:
        raise ValueError("step must be non-negative")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    final = directory / _version_name(step)
    tmp = directory / f"tmp-{_version_name(step)}-{os.getpid()}"
    if tmp.exists():  # debris from a previous kill in this very slot
        shutil.rmtree(tmp)
    tmp.mkdir()

    try:
        manifest: Dict[str, Any] = {
            "format_version": FORMAT_VERSION,
            "step": int(step),
            "structure_fingerprint": fingerprint,
            "arrays": {},
        }
        # Arrays: one uncompressed npz, digest per entry.
        with open(tmp / _ARRAYS_FILE, "wb") as fh:
            np.savez(fh, **arrays)
        for name, arr in arrays.items():
            manifest["arrays"][name] = {
                "digest": array_digest(np.asarray(arr)),
                "dtype": np.asarray(arr).dtype.str,
                "shape": list(np.asarray(arr).shape),
            }
        # Non-array state: deterministic pickle + digest.
        state_blob = pickle.dumps(meta, protocol=_PICKLE_PROTOCOL)
        (tmp / _STATE_FILE).write_bytes(state_blob)
        manifest["state_digest"] = _bytes_digest(state_blob)

        manifest_blob = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
        (tmp / _MANIFEST_FILE).write_text(manifest_blob)

        for name in (_ARRAYS_FILE, _STATE_FILE, _MANIFEST_FILE):
            _fsync_file(tmp / name)
        _fsync_dir(tmp)

        if final.exists():
            # Same-step rewrite (e.g. a rerun into the same directory):
            # move the old version aside so the rename below stays atomic.
            graveyard = directory / f"tmp-old-{_version_name(step)}-{os.getpid()}"
            if graveyard.exists():
                shutil.rmtree(graveyard)
            os.replace(final, graveyard)
            shutil.rmtree(graveyard, ignore_errors=True)
        os.replace(tmp, final)
        _fsync_dir(directory)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise

    nbytes = sum((final / name).stat().st_size
                 for name in (_ARRAYS_FILE, _STATE_FILE, _MANIFEST_FILE))
    return final, nbytes


def read_version(path: Union[str, Path]) -> CheckpointData:
    """Load and fully validate one version directory.

    Raises :class:`CheckpointCorruptionError` on *any* validation
    failure: missing files, unreadable manifest, wrong format version,
    archive truncation, or a checksum that does not match its payload.
    """
    path = Path(path)
    try:
        manifest = json.loads((path / _MANIFEST_FILE).read_text())
    except (OSError, ValueError) as exc:
        raise CheckpointCorruptionError(
            f"{path.name}: manifest unreadable ({exc})"
        ) from exc
    if not isinstance(manifest, dict) or "format_version" not in manifest:
        raise CheckpointCorruptionError(f"{path.name}: manifest missing format_version")
    if manifest["format_version"] != FORMAT_VERSION:
        raise CheckpointCorruptionError(
            f"{path.name}: format version {manifest['format_version']!r} "
            f"not supported (expected {FORMAT_VERSION})"
        )

    try:
        state_blob = (path / _STATE_FILE).read_bytes()
    except OSError as exc:
        raise CheckpointCorruptionError(f"{path.name}: state file unreadable") from exc
    if _bytes_digest(state_blob) != manifest.get("state_digest"):
        raise CheckpointCorruptionError(f"{path.name}: state checksum mismatch")
    try:
        meta = pickle.loads(state_blob)
    except Exception as exc:  # truncated/garbled pickle
        raise CheckpointCorruptionError(f"{path.name}: state unpicklable ({exc})") from exc

    arrays: Dict[str, np.ndarray] = {}
    try:
        with np.load(path / _ARRAYS_FILE) as data:
            names = set(data.files)
            expected = manifest.get("arrays", {})
            if names != set(expected):
                raise CheckpointCorruptionError(
                    f"{path.name}: archive holds {sorted(names)}, "
                    f"manifest expects {sorted(expected)}"
                )
            for name in sorted(names):
                arr = data[name]
                if array_digest(arr) != expected[name]["digest"]:
                    raise CheckpointCorruptionError(
                        f"{path.name}: checksum mismatch on array {name!r}"
                    )
                arrays[name] = arr
    except CheckpointCorruptionError:
        raise
    except Exception as exc:  # BadZipFile, OSError, truncated entries, ...
        raise CheckpointCorruptionError(
            f"{path.name}: array archive unreadable ({exc})"
        ) from exc

    return CheckpointData(
        step=int(manifest.get("step", -1)),
        arrays=arrays,
        meta=meta,
        path=path,
        fingerprint=str(manifest.get("structure_fingerprint", "")),
    )


def load_latest_valid(
    directory: Union[str, Path],
    *,
    fingerprint: Optional[str] = None,
) -> CheckpointData:
    """Newest version that passes validation, falling back over corrupt ones.

    Corrupt versions (the debris a kill mid-write leaves) are skipped
    with a structured warning; a *valid* version whose structure
    fingerprint disagrees with ``fingerprint`` raises
    :class:`CheckpointMismatchError` immediately — that is a caller
    error, and silently resuming an older architecture would be worse
    than failing.
    """
    versions = list_versions(directory)
    if not versions:
        raise NoCheckpointError(f"no checkpoint versions under {directory}")
    for step, path in reversed(versions):
        try:
            data = read_version(path)
        except CheckpointCorruptionError as exc:
            logger.warning(
                "checkpoint version %s failed validation; falling back to the "
                "previous version",
                path.name,
                extra={"checkpoint_path": str(path), "checkpoint_step": step,
                       "reason": str(exc)},
            )
            continue
        if fingerprint is not None and data.fingerprint != fingerprint:
            raise CheckpointMismatchError(
                f"checkpoint {path.name} was written for structure "
                f"{data.fingerprint[:12]}..., this run is "
                f"{fingerprint[:12]}..."
            )
        return data
    raise NoCheckpointError(
        f"all {len(versions)} checkpoint versions under {directory} failed validation"
    )


@dataclass
class CheckpointManager:
    """Policy + bookkeeping around the version store for one run.

    ``every`` is the step cadence (0 disables periodic saves but the
    manager can still load for resume); ``keep`` bounds retention —
    after each save only the newest ``keep`` versions survive.
    ``stats`` accumulates observable write cost: count, bytes, wall
    seconds (surfaced as ``checkpoint_*`` extras on the RunResult).

    ``save`` writes synchronously; ``save_async`` hands the (already
    detached) payload to a single background writer thread so the fsync
    cost overlaps training instead of stalling it. Writes stay strictly
    ordered (one queue, one thread), the queue is bounded so memory
    cannot run away at aggressive cadences, and ``drain()`` joins the
    writer — callers drain before trusting ``stats`` or exiting.
    """

    directory: Union[str, Path]
    every: int = 0
    keep: int = 3
    fingerprint: str = ""
    stats: Dict[str, float] = field(
        default_factory=lambda: {"writes": 0.0, "bytes": 0.0, "seconds": 0.0}
    )
    _queue: Optional["queue.Queue"] = field(default=None, init=False, repr=False)
    _thread: Optional[threading.Thread] = field(default=None, init=False, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, init=False,
                                  repr=False)
    _error: Optional[BaseException] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.every < 0:
            raise ValueError("checkpoint cadence must be non-negative")
        if self.keep < 1:
            raise ValueError("must keep at least one checkpoint version")
        self.directory = Path(self.directory)

    def due(self, step: int) -> bool:
        return self.every > 0 and step % self.every == 0

    def save(self, step: int, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]) -> int:
        """Write one version, prune old ones; returns bytes written."""
        t0 = time.perf_counter()
        _, nbytes = write_version(
            self.directory, step, arrays, meta, fingerprint=self.fingerprint
        )
        self._prune()
        self.stats["writes"] += 1.0
        self.stats["bytes"] += float(nbytes)
        self.stats["seconds"] += time.perf_counter() - t0
        return nbytes

    def save_async(self, step: int, arrays: Dict[str, np.ndarray],
                   meta: Dict[str, Any]) -> None:
        """Queue one version for the background writer.

        The caller must hand over *detached* payloads (arrays copied,
        meta freshly built): the writer serializes them concurrently
        with further training steps. A failed background write is
        re-raised here on the next call (and by :meth:`drain`).
        """
        self._raise_pending()
        if self._thread is None:
            # Depth 2: the step being written plus one queued behind it.
            # A full queue blocks the trainer (backpressure) rather than
            # buffering unbounded copies of the model state.
            self._queue = queue.Queue(maxsize=2)
            self._thread = threading.Thread(
                target=self._writer_loop, name="checkpoint-writer", daemon=True
            )
            self._thread.start()
        self._queue.put((step, arrays, meta))

    def drain(self, raise_errors: bool = True) -> None:
        """Flush queued writes and stop the writer thread.

        ``raise_errors=False`` still flushes but keeps any write failure
        pending instead of raising — for cleanup paths that must not
        mask an exception already propagating.
        """
        if self._thread is not None:
            self._queue.put(None)
            self._thread.join()
            self._thread = None
            self._queue = None
        if raise_errors:
            self._raise_pending()

    def _writer_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            step, arrays, meta = item
            t0 = time.perf_counter()
            try:
                _, nbytes = write_version(
                    self.directory, step, arrays, meta, fingerprint=self.fingerprint
                )
                self._prune()
            except BaseException as exc:
                with self._lock:
                    self._error = exc
            else:
                with self._lock:
                    self.stats["writes"] += 1.0
                    self.stats["bytes"] += float(nbytes)
                    self.stats["seconds"] += time.perf_counter() - t0

    def _raise_pending(self) -> None:
        with self._lock:
            exc, self._error = self._error, None
        if exc is not None:
            raise CheckpointError(
                f"background checkpoint write failed: {exc}"
            ) from exc

    def load_latest(self) -> CheckpointData:
        return load_latest_valid(self.directory, fingerprint=self.fingerprint or None)

    def has_any(self) -> bool:
        return bool(list_versions(self.directory))

    def _prune(self) -> None:
        versions = list_versions(self.directory)
        for _, path in versions[: max(0, len(versions) - self.keep)]:
            shutil.rmtree(path, ignore_errors=True)


def require_configured(manager: Optional["CheckpointManager"]) -> "CheckpointManager":
    """The resume path's guard: checkpointing must be configured."""
    if manager is None:
        raise CheckpointError(
            "resume requested but checkpointing is not configured "
            "(set checkpoint_dir / --checkpoint-dir)"
        )
    return manager
