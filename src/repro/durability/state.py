"""Capture/restore helpers for hidden stochastic state.

Packed parameters cover most of a network, but two kinds of state live
outside the parameter vector and still influence the forward pass:

- per-layer dropout RNG positions (each :class:`~repro.nn.regularization.
  Dropout` owns an independent generator whose position advances every
  training-mode forward);
- batch-norm running statistics (EMA buffers updated in training mode,
  read at inference — i.e. at every evaluation snapshot).

A resume that restored only the packed weights would silently diverge on
any model using either layer. These helpers walk ``Network.layers`` and
round-trip that hidden state as plain picklable dicts keyed by layer
index + name, so a structural change shows up as a hard error instead of
a silent misassignment.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

__all__ = [
    "network_stochastic_state",
    "restore_network_stochastic_state",
    "platform_jitter_state",
    "restore_platform_jitter_state",
]


def network_stochastic_state(net: Any) -> Dict[str, Any]:
    """Collect dropout RNG positions and batch-norm running stats."""
    state: Dict[str, Any] = {}
    for i, layer in enumerate(net.layers):
        key = f"{i}:{layer.name}"
        entry: Dict[str, Any] = {}
        rng = getattr(layer, "_rng", None)
        if rng is not None and hasattr(rng, "bit_generator"):
            entry["rng"] = rng.bit_generator.state
        if getattr(layer, "running_mean", None) is not None:
            entry["running_mean"] = np.array(layer.running_mean, copy=True)
            entry["running_var"] = np.array(layer.running_var, copy=True)
        if entry:
            state[key] = entry
    return state


def restore_network_stochastic_state(net: Any, state: Dict[str, Any]) -> None:
    """Inverse of :func:`network_stochastic_state`.

    Raises ``KeyError`` if the captured state names a layer the network
    does not have — a structure change between save and resume, which
    the fingerprint check should already have caught.
    """
    by_key = {f"{i}:{layer.name}": layer for i, layer in enumerate(net.layers)}
    for key, entry in state.items():
        layer = by_key[key]
        if "rng" in entry:
            layer._rng.bit_generator.state = entry["rng"]
        if "running_mean" in entry:
            layer.running_mean[:] = entry["running_mean"]
            layer.running_var[:] = entry["running_var"]


def platform_jitter_state(platform: Any) -> Dict[int, Any]:
    """Positions of the platform's per-worker compute-jitter streams.

    The streams are created lazily on first use, so the captured dict
    holds exactly the workers that have drawn — re-running the same
    steps recreates the same population. Sorted for stable serialization.
    """
    jitters = getattr(platform, "_jitters", None)
    if not jitters:
        return {}
    return {int(w): j.getstate() for w, j in sorted(jitters.items())}


def restore_platform_jitter_state(platform: Any, state: Dict[int, Any]) -> None:
    """Inverse of :func:`platform_jitter_state` (streams re-created on demand)."""
    for worker, st in state.items():
        platform.jitter_for(int(worker)).setstate(st)
