"""Fault injection and recovery (the robustness subsystem).

The paper motivates asynchronous EASGD with the "high fault tolerance
requirement" of cloud systems; this package makes that claim testable.
A :class:`FaultPlan` deterministically schedules crashes, stragglers,
transient stalls, and message drops/delays; trainers and the in-process
runtime consume the plan, recover where the algorithm allows (heartbeat
eviction, rejoin-from-center, reduction-tree rebuild, retransmission),
and record everything that happened in a :class:`FaultLog` attached to
the :class:`repro.algorithms.base.RunResult`.

See ``docs/robustness.md`` for the fault model and recovery policies.
"""

from repro.faults.errors import AllWorkersCrashedError, FaultError
from repro.faults.log import FaultLog, FaultRecord
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "FaultLog",
    "FaultRecord",
    "FaultError",
    "AllWorkersCrashedError",
]
