"""Deterministic fault schedules for trainers and the in-process runtime.

A :class:`FaultPlan` is a declarative, seeded description of every
perturbation a run should suffer:

- **crash** — a worker/rank fail-stops at a simulated instant and
  (optionally) *rejoins* later by re-pulling the elastic center;
- **straggler** — a worker's compute is permanently slowed by a factor
  from some onset time on;
- **stall** — a transient slowdown window (e.g. a GC pause or a noisy
  neighbour) with a finite duration;
- **message drop / delay** — each message independently lost or late with
  a given probability;
- **lost message** — one (source, dest, tag) channel that never delivers,
  for forcing the deadlock-detection path.

Every probabilistic decision is a *pure function* of the plan seed and the
message identity (source, dest, tag, sequence number, attempt), computed
via :func:`repro.util.rng.derive_seed`. Decisions therefore do not depend
on call order or thread interleaving — two runs with the same plan make
identical drop/delay choices, which is what makes fault runs
bit-reproducible and lets the real-thread runtime share the same plan as
the discrete-event trainers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.util.rng import derive_seed

__all__ = ["FaultEvent", "FaultPlan"]

_TWO64 = float(2**64)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled perturbation of one worker/rank."""

    kind: str  # "crash" | "straggler" | "stall"
    worker: int
    time: float  # onset (simulated seconds)
    factor: float = 1.0  # slowdown multiplier (straggler/stall)
    duration: float = 0.0  # stall window length
    rejoin_at: Optional[float] = None  # crash only: when the worker returns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "worker": self.worker,
            "time": self.time,
            "factor": self.factor,
            "duration": self.duration,
            "rejoin_at": self.rejoin_at,
        }


class FaultPlan:
    """A seeded, deterministic schedule of faults. Builders chain::

        plan = (FaultPlan(seed=7)
                .crash(1, at=0.5, rejoin_at=1.5)
                .straggler(2, factor=3.0)
                .drop_rate(0.05))
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._events: List[FaultEvent] = []
        self._drop_p = 0.0
        self._delay_p = 0.0
        self._delay_seconds = 0.0
        self._lost: set[Tuple[Any, Any, Any]] = set()

    # -- builders ------------------------------------------------------------
    def crash(self, worker: int, at: float, rejoin_at: Optional[float] = None) -> "FaultPlan":
        """Fail-stop ``worker`` at simulated time ``at``; optionally rejoin."""
        self._check_worker(worker)
        if at <= 0:
            raise ValueError(f"crash(worker={worker}): time must be positive, got {at!r}")
        if self.crash_time(worker) is not None:
            raise ValueError(f"crash(worker={worker}): worker already has a crash scheduled")
        if rejoin_at is not None and rejoin_at <= at:
            raise ValueError(
                f"crash(worker={worker}): rejoin_at ({rejoin_at!r}) must be after the crash ({at!r})"
            )
        self._events.append(FaultEvent("crash", worker, float(at), rejoin_at=rejoin_at))
        return self

    def straggler(self, worker: int, factor: float, at: float = 0.0) -> "FaultPlan":
        """Permanently slow ``worker``'s compute by ``factor`` from ``at`` on."""
        self._check_worker(worker)
        if factor < 1.0:
            raise ValueError(f"straggler(worker={worker}): factor must be >= 1, got {factor!r}")
        if at < 0:
            raise ValueError(f"straggler(worker={worker}): onset must be non-negative, got {at!r}")
        self._events.append(FaultEvent("straggler", worker, float(at), factor=float(factor)))
        return self

    def stall(self, worker: int, at: float, duration: float, factor: float = 20.0) -> "FaultPlan":
        """Transiently slow ``worker`` by ``factor`` during [at, at+duration)."""
        self._check_worker(worker)
        if at < 0:
            raise ValueError(f"stall(worker={worker}): onset must be non-negative, got {at!r}")
        if duration <= 0:
            raise ValueError(f"stall(worker={worker}): duration must be positive, got {duration!r}")
        if factor < 1.0:
            raise ValueError(f"stall(worker={worker}): factor must be >= 1, got {factor!r}")
        self._events.append(
            FaultEvent("stall", worker, float(at), factor=float(factor), duration=float(duration))
        )
        return self

    def drop_rate(self, p: float) -> "FaultPlan":
        """Drop each message delivery attempt independently with probability ``p``."""
        if not 0.0 <= p < 1.0:
            raise ValueError(f"drop_rate: p must be in [0, 1), got {p!r}")
        self._drop_p = float(p)
        return self

    def delay(self, p: float, seconds: float) -> "FaultPlan":
        """Delay each message independently with probability ``p`` by ``seconds``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"delay: p must be in [0, 1], got {p!r}")
        if seconds < 0:
            raise ValueError(f"delay: seconds must be non-negative, got {seconds!r}")
        self._delay_p = float(p)
        self._delay_seconds = float(seconds)
        return self

    def lose_message(self, source: Any, dest: Any, tag: Any) -> "FaultPlan":
        """Mark the (source, dest, tag) channel as lost-forever: nothing on it
        is ever delivered, no matter how many times it is retransmitted."""
        self._lost.add((source, dest, tag))
        return self

    @staticmethod
    def _check_worker(worker: int) -> None:
        if not isinstance(worker, (int,)) or isinstance(worker, bool) or worker < 0:
            raise ValueError(f"worker index must be a non-negative int, got {worker!r}")

    # -- queries used by trainers and the runtime --------------------------------
    def crash_time(self, worker: int) -> Optional[float]:
        for ev in self._events:
            if ev.kind == "crash" and ev.worker == worker:
                return ev.time
        return None

    def rejoin_time(self, worker: int) -> Optional[float]:
        for ev in self._events:
            if ev.kind == "crash" and ev.worker == worker:
                return ev.rejoin_at
        return None

    def is_dead(self, worker: int, at: float) -> bool:
        """Is ``worker`` crashed (and not yet rejoined) at instant ``at``?"""
        crash = self.crash_time(worker)
        if crash is None or at <= crash:
            return False
        rejoin = self.rejoin_time(worker)
        return rejoin is None or at < rejoin

    def slowdown(self, worker: int, at: float) -> float:
        """Multiplicative compute-slowdown factor for ``worker`` at ``at``."""
        factor = 1.0
        for ev in self._events:
            if ev.worker != worker:
                continue
            if ev.kind == "straggler" and at >= ev.time:
                factor *= ev.factor
            elif ev.kind == "stall" and ev.time <= at < ev.time + ev.duration:
                factor *= ev.factor
        return factor

    def _unit(self, *names: Any) -> float:
        """Uniform [0,1) draw that is a pure function of (seed, names)."""
        return derive_seed(self.seed, *names) / _TWO64

    def should_drop(self, source: Any, dest: Any, tag: Any, seq: int, attempt: int = 0) -> bool:
        """Deterministic per-attempt drop decision for one message."""
        if self._drop_p <= 0.0:
            return False
        return self._unit("drop", source, dest, tag, seq, attempt) < self._drop_p

    def delay_seconds(self, source: Any, dest: Any, tag: Any, seq: int) -> float:
        """Deterministic per-message extra latency (0.0 for most messages)."""
        if self._delay_p <= 0.0 or self._delay_seconds <= 0.0:
            return 0.0
        if self._unit("delay", source, dest, tag, seq) < self._delay_p:
            return self._delay_seconds
        return 0.0

    def is_lost(self, source: Any, dest: Any, tag: Any) -> bool:
        return (source, dest, tag) in self._lost

    # -- introspection -----------------------------------------------------------
    def events(self) -> Tuple[FaultEvent, ...]:
        return tuple(self._events)

    @property
    def drop_probability(self) -> float:
        return self._drop_p

    @property
    def has_message_faults(self) -> bool:
        return self._drop_p > 0 or self._delay_p > 0 or bool(self._lost)

    @property
    def empty(self) -> bool:
        return not self._events and not self.has_message_faults

    def validate(self, num_workers: int) -> "FaultPlan":
        """Check every event's worker index against the actual worker count.

        Raises :class:`ValueError` naming the offending event, so a typo'd
        rank surfaces at construction time rather than as a silent no-op.
        """
        for ev in self._events:
            if not 0 <= ev.worker < num_workers:
                raise ValueError(
                    f"fault plan {ev.kind} event targets worker {ev.worker}, "
                    f"but only workers [0, {num_workers}) exist"
                )
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "events": [ev.to_dict() for ev in self._events],
            "drop_p": self._drop_p,
            "delay_p": self._delay_p,
            "delay_seconds": self._delay_seconds,
            "lost": sorted(map(repr, self._lost)),
        }

    def fingerprint(self) -> str:
        """Stable textual identity — equal fingerprints mean identical plans."""
        return repr(self.to_dict())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = len(self._events)
        return f"FaultPlan(seed={self.seed}, events={n}, drop_p={self._drop_p})"

    # -- parsing (the CLI's --faults option) --------------------------------------
    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a compact textual fault spec.

        Clauses are separated by ``;`` or ``,``::

            crash:W@T         worker W fail-stops at simulated time T
            crash:W@T>R       ... and rejoins at time R
            straggler:WxF     worker W slowed by factor F (from t=0)
            straggler:WxF@T   ... from time T on
            stall:W@T+D       worker W stalled during [T, T+D)
            drop:P            drop each message with probability P
            delay:P@S         delay each message with probability P by S seconds
            seed:N            override the plan seed

        Example: ``crash:1@0.5>2.0;straggler:2x3.0;drop:0.05``
        """
        plan = cls(seed=seed)
        for raw in spec.replace(";", ",").split(","):
            clause = raw.strip()
            if not clause:
                continue
            try:
                kind, _, body = clause.partition(":")
                kind = kind.strip().lower()
                if not body:
                    raise ValueError("missing parameters")
                if kind == "crash":
                    worker_s, _, when_s = body.partition("@")
                    when_s, _, rejoin_s = when_s.partition(">")
                    plan.crash(
                        int(worker_s),
                        float(when_s),
                        rejoin_at=float(rejoin_s) if rejoin_s else None,
                    )
                elif kind == "straggler":
                    worker_s, _, rest = body.partition("x")
                    factor_s, _, at_s = rest.partition("@")
                    plan.straggler(int(worker_s), float(factor_s), at=float(at_s) if at_s else 0.0)
                elif kind == "stall":
                    worker_s, _, rest = body.partition("@")
                    at_s, _, dur_s = rest.partition("+")
                    plan.stall(int(worker_s), float(at_s), float(dur_s))
                elif kind == "drop":
                    plan.drop_rate(float(body))
                elif kind == "delay":
                    p_s, _, s_s = body.partition("@")
                    plan.delay(float(p_s), float(s_s))
                elif kind == "seed":
                    plan.seed = int(body)
                else:
                    raise ValueError(f"unknown fault kind {kind!r}")
            except ValueError as exc:
                raise ValueError(f"bad fault clause {clause!r}: {exc}") from None
        return plan
