"""Structured fault logging: what actually went wrong, and when.

Every injected or detected fault event — crash, rejoin, eviction, message
drop, retransmission, tree rebuild — is appended to a :class:`FaultLog`
as a typed :class:`FaultRecord`. The log rides on
:class:`repro.algorithms.base.RunResult`, serializes with the run, and is
the object the determinism tests compare: two runs of the same plan must
produce *equal* logs, record for record.

Appends are lock-protected because the in-process runtime logs from many
rank threads at once.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["FaultRecord", "FaultLog"]


@dataclass(frozen=True)
class FaultRecord:
    """One fault event: when it happened, what kind, to whom."""

    time: float  # simulated seconds (trainers) or wall seconds (runtime)
    kind: str  # crash | rejoin | evict | drop | retransmit | delay | ...
    subject: str  # e.g. "worker 3" or "rank 0 -> 2 tag 103"
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "kind": self.kind, "subject": self.subject, "detail": self.detail}


class FaultLog:
    """Append-only, thread-safe sequence of :class:`FaultRecord`."""

    def __init__(self) -> None:
        self._records: List[FaultRecord] = []
        self._lock = threading.Lock()

    def record(self, time: float, kind: str, subject: str, detail: str = "") -> FaultRecord:
        rec = FaultRecord(float(time), kind, subject, detail)
        with self._lock:
            self._records.append(rec)
        return rec

    def reset(self) -> None:
        """Drop all records (checkpoint restore replays the saved ones)."""
        with self._lock:
            self._records.clear()

    @property
    def records(self) -> Tuple[FaultRecord, ...]:
        with self._lock:
            return tuple(self._records)

    def count(self, kind: Optional[str] = None) -> int:
        recs = self.records
        if kind is None:
            return len(recs)
        return sum(1 for r in recs if r.kind == kind)

    def kinds(self) -> "Counter[str]":
        return Counter(r.kind for r in self.records)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [r.to_dict() for r in self.records]

    def summary(self) -> str:
        """One line per kind, e.g. ``crash=1 drop=7 retransmit=7``."""
        counts = self.kinds()
        return " ".join(f"{k}={counts[k]}" for k in sorted(counts)) or "(no fault events)"

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[FaultRecord]:
        return iter(self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultLog):
            return NotImplemented
        return self.records == other.records

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultLog({self.summary()})"
