"""Exceptions raised by the fault-tolerance machinery."""

from __future__ import annotations

__all__ = ["FaultError", "AllWorkersCrashedError"]


class FaultError(RuntimeError):
    """Base class for unrecoverable fault-injection outcomes."""


class AllWorkersCrashedError(FaultError):
    """Every worker fail-stopped before the run could make progress.

    Raised instead of returning an empty :class:`RunResult` (or silently
    hanging) when a fault plan kills the whole worker pool: an empty run
    is an experimental-setup error, not a data point.
    """
