"""The KNL chip model (Section 2.1).

Captures the architectural features the paper's Section 6.2 optimization
exploits: 68 cores (4 hardware threads each), 16 GB of MCDRAM at 475 GB/s
(measured STREAM), 384 GB of DDR4 at 90 GB/s, the three MCDRAM modes
(cache / flat / hybrid) and the clustering modes (all-to-all, quadrant /
hemisphere, SNC-4/2).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["ClusterMode", "McdramMode", "KnlChip", "KNL_7250_CHIP"]


class ClusterMode(Enum):
    """On-chip cache-clustering modes (Section 2.1 item 3)."""

    ALL_TO_ALL = "a2a"
    QUADRANT = "quad"
    HEMISPHERE = "hemi"
    SNC4 = "snc-4"
    SNC2 = "snc-2"

    @property
    def numa_domains(self) -> int:
        """NUMA nodes the mode exposes to software."""
        return {"a2a": 1, "quad": 1, "hemi": 1, "snc-4": 4, "snc-2": 2}[self.value]

    @property
    def coherence_overhead(self) -> float:
        """Relative cache-coherence cost of the mode (Section 2.1).

        All-to-all spreads every address across every tag directory on the
        chip (longest average round trip); quadrant/hemisphere keep a
        memory controller's addresses in nearby TDs; SNC modes expose the
        locality to software so NUMA-aware pinning (exactly what the
        Section 6.2 partitioning does) pays the least coherence tax. The
        multipliers scale the per-core synchronization overhead.
        """
        return {"a2a": 1.4, "hemi": 1.15, "quad": 1.0, "snc-2": 0.9, "snc-4": 0.8}[self.value]


class McdramMode(Enum):
    """MCDRAM usage modes (Figure 2)."""

    CACHE = "cache"
    FLAT = "flat"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class KnlChip:
    """Static description of one KNL chip."""

    cores: int = 68
    threads_per_core: int = 4
    peak_flops: float = 6.0e12  # single precision (Section 1)
    mcdram_bytes: int = 16 * 1024**3
    mcdram_bandwidth: float = 475e9  # STREAM (Section 2.1)
    ddr4_bytes: int = 384 * 1024**3
    ddr4_bandwidth: float = 90e9
    cluster_mode: ClusterMode = ClusterMode.QUADRANT
    mcdram_mode: McdramMode = McdramMode.FLAT
    #: Per-core synchronization overhead of one parallel region: the larger a
    #: core group, the lower its parallel efficiency (barriers, cache-line
    #: ping-pong across tag directories). Calibrated against Figure 12's
    #: 3.3x speedup at 16 groups.
    sync_overhead_per_core: float = 0.035

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.sync_overhead_per_core < 0:
            raise ValueError("sync_overhead_per_core must be non-negative")

    @property
    def hardware_threads(self) -> int:
        return self.cores * self.threads_per_core

    def parallel_efficiency(self, cores_in_group: float) -> float:
        """Efficiency of one OpenMP-style group of ``cores_in_group`` cores.

        A single core is fully efficient; each extra core in the same
        synchronization domain adds a fixed relative overhead, scaled by
        the cluster mode's coherence cost. This is the lever that makes
        partitioning the chip (SNC-4-style) profitable.
        """
        if cores_in_group <= 0:
            raise ValueError("group must contain at least a fraction of a core")
        overhead = self.sync_overhead_per_core * self.cluster_mode.coherence_overhead
        return 1.0 / (1.0 + overhead * cores_in_group)

    def group_flops(self, parts: int, efficiency: float = 0.25) -> float:
        """Effective flops/s of one of ``parts`` equal core groups.

        ``efficiency`` is the kernel efficiency (fraction of peak a DNN
        kernel reaches, matching :data:`repro.cluster.devices.KNL_7250`);
        the group's *parallel* efficiency multiplies on top.
        """
        if parts <= 0:
            raise ValueError("parts must be positive")
        cores_per_group = self.cores / parts
        return (
            self.peak_flops
            * (cores_per_group / self.cores)
            * efficiency
            * self.parallel_efficiency(cores_per_group)
        )

    def fits_in_mcdram(self, nbytes: int) -> bool:
        """Whether a working set fits in the 16 GB fast memory."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes <= self.mcdram_bytes

    def working_set_bandwidth(self, nbytes: int) -> float:
        """Bandwidth the working set sees, per MCDRAM mode (Figure 2).

        - **flat**: the software places the working set explicitly —
          MCDRAM speed while it fits, DDR4 after the spill (the Figure 12
          gate);
        - **cache**: MCDRAM is the last-level cache — an over-capacity
          working set degrades *gradually* with the hit ratio instead of
          falling off a cliff;
        - **hybrid**: half the MCDRAM as cache, half as flat memory —
          modeled as flat behaviour with half the capacity, cache
          behaviour beyond.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.mcdram_mode is McdramMode.FLAT:
            return self.mcdram_bandwidth if self.fits_in_mcdram(nbytes) else self.ddr4_bandwidth
        if self.mcdram_mode is McdramMode.CACHE:
            hit = min(1.0, self.mcdram_bytes / max(nbytes, 1))
            return hit * self.mcdram_bandwidth + (1.0 - hit) * self.ddr4_bandwidth
        # hybrid: half flat, half cache
        half = self.mcdram_bytes // 2
        if nbytes <= half:
            return self.mcdram_bandwidth
        hit = min(1.0, half / max(nbytes - half, 1))
        return hit * self.mcdram_bandwidth + (1.0 - hit) * self.ddr4_bandwidth


#: The paper's chip ("Our version has 68 cores", Figure 1).
KNL_7250_CHIP = KnlChip()
