"""Communication-Efficient EASGD on a KNL cluster (Algorithm 4).

Structurally Sync EASGD3 transplanted to K self-hosted KNL nodes: every
node holds the full dataset locally (line 10: "randomly pick b samples from
local memory" — no staging traffic), the center weight lives on node 1, the
bcast/reduce trees run over the fabric, and the fabric communication
overlaps the local compute (the same independence argument as Sync EASGD3).
Used by the Figure 13 experiment and as the per-iteration model behind the
Table 4 weak-scaling study.

The loop is the shared :class:`repro.engine.StepPipeline`; the family
contributes a clock step built on the same
:class:`~repro.engine.SyncElasticUpdate` rule as Sync EASGD3.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import BaseTrainer, TrainerConfig
from repro.cluster.cost import CostModel
from repro.cluster.platform import KnlPlatform
from repro.data.dataset import Dataset
from repro.engine.compute import gather_gradients, jittered_fwdbwd
from repro.engine.strategy import ClockStepStrategy, SyncElasticUpdate
from repro.nn.network import Network
from repro.optim.easgd import EASGDHyper

__all__ = ["KnlSyncEASGDTrainer"]


class _KnlSyncEasgdStep(ClockStepStrategy):
    """One Algorithm 4 iteration: local batches, fabric trees, overlap."""

    def __init__(self, trainer: "KnlSyncEASGDTrainer") -> None:
        self.trainer = trainer

    def begin(self, pipeline) -> None:
        tr = self.trainer
        k = self.k = tr.platform.num_nodes
        self.center = tr.net.get_params()
        self.workers: List[np.ndarray] = [self.center.copy() for _ in range(k)]
        self.samplers = [tr.make_sampler(("node", j)) for j in range(k)]
        self.update = SyncElasticUpdate(tr.hyper)
        self.live = list(range(k))

    def step(self, pipeline, t: int) -> float:
        tr = self.trainer
        cfg = tr.config
        grads, losses = gather_gradients(tr, self.samplers, self.live,
                                         weights=self.workers)
        self.last_loss = losses[-1]
        self.update.apply(self.center, self.workers, grads, self.live)

        # --- simulated time -----------------------------------------
        fwdbwd = max(jittered_fwdbwd(
            tr.platform, tr.cost, cfg.batch_size, self.live, None,
            pipeline.sim_time,
        ))
        comm = tr.platform.tree_bcast_time(tr.cost, tr.packed)
        comm += tr.platform.tree_reduce_time(tr.cost, tr.packed)
        upd = 2.0 * tr.platform.update_time(tr.cost)
        if tr.overlap:
            hidden = cfg.overlap_efficiency * min(comm, fwdbwd)
            visible_comm = comm - hidden
        else:
            visible_comm = comm
        breakdown = pipeline.breakdown
        breakdown.add("for/backward", fwdbwd)
        breakdown.add("gpu-gpu para", visible_comm)  # fabric traffic
        breakdown.add("gpu update", upd)
        return fwdbwd + visible_comm + upd

    def eval_params(self) -> np.ndarray:
        return self.center

    def state_dict(self) -> Dict:
        arrays = {"center": self.center}
        for j, w in enumerate(self.workers):
            arrays[f"worker-{j}"] = w
        return {
            "arrays": arrays,
            "meta": {
                "last_loss": self.last_loss,
                "samplers": [s.get_state() for s in self.samplers],
            },
        }

    def load_state_dict(self, state: Dict) -> None:
        arrays, meta = state["arrays"], state["meta"]
        self.center[:] = arrays["center"]
        for j, w in enumerate(self.workers):
            w[:] = arrays[f"worker-{j}"]
        for sampler, st in zip(self.samplers, meta["samplers"]):
            sampler.set_state(st)
        self.last_loss = meta["last_loss"]


class KnlSyncEASGDTrainer(BaseTrainer):
    """Algorithm 4 with real numerics and fabric-level simulated timing."""

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        platform: KnlPlatform,
        config: TrainerConfig,
        cost_model: Optional[CostModel] = None,
        packed: bool = True,
        overlap: bool = True,
    ) -> None:
        super().__init__(network, train_set, test_set, config, cost_model)
        self.platform = platform
        self.packed = packed
        self.overlap = overlap
        self.name = f"KNL Sync EASGD ({platform.num_nodes} nodes)"
        self.hyper = EASGDHyper(lr=config.lr, rho=config.rho, mu=config.mu)
        self.hyper.validate_sync(platform.num_gpus if hasattr(platform, 'num_gpus') else platform.num_nodes)

    def iteration_time(self) -> float:
        """Simulated seconds per iteration (constant, modulo jitter)."""
        k = self.platform.num_nodes
        fwdbwd = max(
            self.platform.fwdbwd_time(self.cost, self.config.batch_size, worker=j)
            for j in range(k)
        )
        comm = self.platform.tree_bcast_time(self.cost, self.packed)
        comm += self.platform.tree_reduce_time(self.cost, self.packed)
        upd = 2.0 * self.platform.update_time(self.cost)
        if self.overlap:
            hidden = self.config.overlap_efficiency * min(comm, fwdbwd)
            return fwdbwd + (comm - hidden) + upd
        return fwdbwd + comm + upd

    def make_step(self) -> _KnlSyncEasgdStep:
        return _KnlSyncEasgdStep(self)
