"""Communication-Efficient EASGD on a KNL cluster (Algorithm 4).

Structurally Sync EASGD3 transplanted to K self-hosted KNL nodes: every
node holds the full dataset locally (line 10: "randomly pick b samples from
local memory" — no staging traffic), the center weight lives on node 1, the
bcast/reduce trees run over the fabric, and the fabric communication
overlaps the local compute (the same independence argument as Sync EASGD3).
Used by the Figure 13 experiment and as the per-iteration model behind the
Table 4 weak-scaling study.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.algorithms.base import (
    BaseTrainer,
    RunResult,
    TimeBreakdown,
    TrainRecord,
    TrainerConfig,
)
from repro.cluster.cost import CostModel
from repro.cluster.platform import KnlPlatform
from repro.comm.collectives import tree_reduce
from repro.data.dataset import Dataset
from repro.nn.network import Network
from repro.optim.easgd import EASGDHyper, elastic_worker_update

__all__ = ["KnlSyncEASGDTrainer"]


class KnlSyncEASGDTrainer(BaseTrainer):
    """Algorithm 4 with real numerics and fabric-level simulated timing."""

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        platform: KnlPlatform,
        config: TrainerConfig,
        cost_model: Optional[CostModel] = None,
        packed: bool = True,
        overlap: bool = True,
    ) -> None:
        super().__init__(network, train_set, test_set, config, cost_model)
        self.platform = platform
        self.packed = packed
        self.overlap = overlap
        self.name = f"KNL Sync EASGD ({platform.num_nodes} nodes)"
        self.hyper = EASGDHyper(lr=config.lr, rho=config.rho, mu=config.mu)
        self.hyper.validate_sync(platform.num_gpus if hasattr(platform, 'num_gpus') else platform.num_nodes)

    def iteration_time(self) -> float:
        """Simulated seconds per iteration (constant, modulo jitter)."""
        k = self.platform.num_nodes
        fwdbwd = max(
            self.platform.fwdbwd_time(self.cost, self.config.batch_size, worker=j)
            for j in range(k)
        )
        comm = self.platform.tree_bcast_time(self.cost, self.packed)
        comm += self.platform.tree_reduce_time(self.cost, self.packed)
        upd = 2.0 * self.platform.update_time(self.cost)
        if self.overlap:
            hidden = self.config.overlap_efficiency * min(comm, fwdbwd)
            return fwdbwd + (comm - hidden) + upd
        return fwdbwd + comm + upd

    def train(self, iterations: int) -> RunResult:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        k = self.platform.num_nodes
        cfg = self.config

        center = self.net.get_params()
        workers: List[np.ndarray] = [center.copy() for _ in range(k)]
        samplers = [self.make_sampler(("node", j)) for j in range(k)]

        breakdown = TimeBreakdown()
        records: List[TrainRecord] = []
        sim_time = 0.0
        last_loss = float("nan")

        for t in range(1, iterations + 1):
            grads: List[np.ndarray] = []
            for j in range(k):
                images, labels = samplers[j].next_batch()
                self.net.set_params(workers[j])
                last_loss = self.net.gradient(images, labels, self.loss)
                grads.append(self.net.grads.copy())

            sum_w = tree_reduce(workers)
            for j in range(k):
                elastic_worker_update(workers[j], grads[j], center, self.hyper)
            center += self.hyper.alpha * (sum_w - k * center)

            # --- simulated time -----------------------------------------
            fwdbwd = max(
                self.platform.fwdbwd_time(self.cost, cfg.batch_size, worker=j)
                for j in range(k)
            )
            comm = self.platform.tree_bcast_time(self.cost, self.packed)
            comm += self.platform.tree_reduce_time(self.cost, self.packed)
            upd = 2.0 * self.platform.update_time(self.cost)
            if self.overlap:
                hidden = cfg.overlap_efficiency * min(comm, fwdbwd)
                visible_comm = comm - hidden
            else:
                visible_comm = comm
            breakdown.add("for/backward", fwdbwd)
            breakdown.add("gpu-gpu para", visible_comm)  # fabric traffic
            breakdown.add("gpu update", upd)
            sim_time += fwdbwd + visible_comm + upd

            if t % cfg.eval_every == 0 or t == iterations:
                acc = self.evaluate_params(center)
                records.append(TrainRecord(t, sim_time, last_loss, acc))
                if self.should_stop(acc):
                    break

        final_acc = records[-1].test_accuracy if records else 0.0
        return RunResult(
            method=self.name,
            records=records,
            breakdown=breakdown,
            iterations=records[-1].iteration if records else 0,
            sim_time=sim_time,
            final_accuracy=final_acc,
        )
