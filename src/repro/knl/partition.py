"""KNL chip partitioning (Section 6.2, Figure 12).

The optimization: partition the 68-core chip into P SNC-style groups, give
every group its own *copy* of the data and its own weight replica, let the
groups compute gradients independently, and tree-reduce the gradient sum
across groups each iteration (divide-and-conquer). Two effects drive the
3.3x speedup:

1. Smaller synchronization domains: a 4-17 core group runs its kernels at
   much better parallel efficiency than one 68-core OpenMP region, and its
   slice of the batch streams through NUMA-local MCDRAM (SNC-4-style
   pinning) instead of bouncing across all tag directories.
2. The conquer step (tree-reducing P partial gradients) is cheap as long
   as all P weight/data copies stay in MCDRAM.

Each group computes the gradient of its ``b/P`` slice of the global batch;
the tree-reduced sum is *exactly* the batch-b gradient, so partitioning
changes the clock, not the optimization trajectory — the paper's "same
accuracy (0.625)" comparison is then purely a time ratio.

The gate: all P copies of (weights + data) must fit in 16 GB MCDRAM, or the
working set spills to DDR4 bandwidth. AlexNet (249 MB) + one CIFAR copy
(687 MB) fits 16 copies, not 32 — the paper's "P <= 16" limit.

Both execution backends (serial simulation and real forked group workers)
are clock step strategies over the shared :class:`repro.engine
.StepPipeline`; they differ in where gradients are computed, never in the
numbers they produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import BaseTrainer, TrainerConfig
from repro.cluster.cost import CostModel
from repro.comm.collectives import tree_reduce, tree_rounds
from repro.data.dataset import Dataset
from repro.engine.strategy import ClockStepStrategy, MeanGradientUpdate
from repro.knl.chip import KNL_7250_CHIP, KnlChip
from repro.nn.network import Network

__all__ = ["PartitionPlan", "plan_partition", "ChipPartitionTrainer"]

#: One CIFAR-10 copy as the paper counts it ("one Cifar data copy is 687 MB").
CIFAR_COPY_BYTES = int(687e6)


@dataclass(frozen=True)
class PartitionPlan:
    """The placement decision for P groups on one chip."""

    parts: int
    cores_per_group: float
    copy_bytes: int  # one replica: weights + data copy
    total_bytes: int  # P * copy_bytes
    in_mcdram: bool
    bandwidth: float  # bytes/s the working set sees

    @property
    def memory_name(self) -> str:
        return "MCDRAM" if self.in_mcdram else "DDR4"


def plan_partition(
    parts: int,
    weight_bytes: int,
    data_bytes: int,
    chip: KnlChip = KNL_7250_CHIP,
) -> PartitionPlan:
    """Decide where P replicas of (weights + data) live on the chip."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    if parts > chip.cores:
        raise ValueError(f"cannot make {parts} groups on a {chip.cores}-core chip")
    if weight_bytes <= 0 or data_bytes <= 0:
        raise ValueError("weight and data sizes must be positive")
    copy = weight_bytes + data_bytes
    total = parts * copy
    if total > chip.ddr4_bytes:
        raise ValueError(
            f"{parts} copies ({total / 1e9:.1f} GB) exceed even DDR4 capacity"
        )
    in_mcdram = chip.fits_in_mcdram(total)
    return PartitionPlan(
        parts=parts,
        cores_per_group=chip.cores / parts,
        copy_bytes=copy,
        total_bytes=total,
        in_mcdram=in_mcdram,
        bandwidth=chip.working_set_bandwidth(total),
    )


class _PartitionStepBase(ClockStepStrategy):
    """Shared setup/extras for both chip-partition backends."""

    def __init__(self, trainer: "ChipPartitionTrainer") -> None:
        self.trainer = trainer

    def begin(self, pipeline) -> None:
        tr = self.trainer
        self.weights = tr.net.get_params()
        # One global batch per round, divided into P equal slices — the
        # partitioning must be invisible to the optimization trajectory.
        self.sampler = tr.make_sampler("global-batch")
        self.iter_time = tr._iter_time()
        self.update = MeanGradientUpdate(tr.config.lr)

    def eval_params(self) -> np.ndarray:
        return self.weights

    def state_dict(self) -> Dict:
        return {
            "arrays": {"weights": self.weights},
            "meta": {
                "last_loss": self.last_loss,
                "sampler": self.sampler.get_state(),
            },
        }

    def load_state_dict(self, state: Dict) -> None:
        self.weights[:] = state["arrays"]["weights"]
        self.sampler.set_state(state["meta"]["sampler"])
        self.last_loss = state["meta"]["last_loss"]
        self._publish_weights()

    def _publish_weights(self) -> None:
        """Push restored weights to wherever the backend computes from."""

    def extras(self) -> Dict[str, float]:
        tr = self.trainer
        return {
            "parts": float(tr.parts),
            "in_mcdram": float(tr.plan.in_mcdram),
            "bandwidth": tr.plan.bandwidth,
            "iter_time": self.iter_time,
        }


class _PartitionSerialStep(_PartitionStepBase):
    """All P group gradients computed in-process, one slice at a time."""

    def begin(self, pipeline) -> None:
        super().begin(pipeline)
        self.trainer.net.set_params(self.weights)

    def _publish_weights(self) -> None:
        self.trainer.net.set_params(self.weights)

    def step(self, pipeline, t: int) -> float:
        tr = self.trainer
        p = tr.parts
        images, labels = self.sampler.next_batch()
        grads: List[np.ndarray] = []
        losses = []
        for j in range(p):
            lo, hi = j * tr.group_batch, (j + 1) * tr.group_batch
            losses.append(tr.net.gradient(images[lo:hi], labels[lo:hi], tr.loss))
            grads.append(tr.net.grads.copy())
        self.last_loss = float(np.mean(losses))
        self.update.apply(tr.net, self.weights, grads, p)

        pipeline.breakdown.add("for/backward", self.iter_time)  # single-chip: no links
        return self.iter_time


class _PartitionProcessesStep(_PartitionStepBase):
    """The Figure 12 experiment on real cores.

    P persistent forked group workers each hold a weight replica
    (their forked copy of the network) and one named shared-memory
    gradient segment; the parent holds the weights in a named
    shared-memory segment all groups map. Per round the parent stages
    each group's ``b/P`` batch slice directly into per-group
    shared-memory segments (float32 images, integer labels) and puts
    only a round token on the task queue — no batch bytes are ever
    pickled; the ``done_q`` round barrier guarantees a single staging
    buffer per group suffices. The groups write gradients straight
    into shared memory, and the parent tree-reduces the P
    segment views **in the same group order and association as the
    serial path**, so for deterministic (dropout-free) models the
    weight trajectory is bit-identical to ``backend="threads"`` /
    the serial simulation. (Models with stochastic layers diverge:
    the serial path threads ONE RNG through all groups, replicas
    cannot.)

    The simulated clock is charged exactly as in the serial path —
    backends change wall-time, never the modeled time.
    """

    run_backend = "processes"

    def begin(self, pipeline) -> None:
        import multiprocessing

        from repro.comm.mp_runtime import SharedFlatArray, fork_available

        if not fork_available():
            raise RuntimeError(
                "backend='processes' requires the fork start method; "
                "use backend='threads' on this platform"
            )
        super().begin(pipeline)
        tr = self.trainer
        p = tr.parts
        mp_ctx = multiprocessing.get_context("fork")

        w_shm = SharedFlatArray.from_array(self.weights)
        g_shms = [SharedFlatArray.create(tr.net.num_params) for _ in range(p)]
        # Per-group batch staging segments: the parent writes each round's
        # slice in place, children read the same physical pages (MCDRAM-
        # style data placement) — the task queue carries a bare round token.
        img_shape = (tr.group_batch,) + tr.train_set.images.shape[1:]
        lbl_shape = (tr.group_batch,) + tr.train_set.labels.shape[1:]
        img_shms = [
            SharedFlatArray.create(
                int(np.prod(img_shape)), dtype=tr.train_set.images.dtype
            )
            for _ in range(p)
        ]
        lbl_shms = [
            SharedFlatArray.create(
                int(np.prod(lbl_shape)), dtype=tr.train_set.labels.dtype
            )
            for _ in range(p)
        ]
        task_qs = [mp_ctx.Queue() for _ in range(p)]
        done_q = mp_ctx.Queue()
        net, loss_fn = tr.net, tr.loss

        def group_main(j: int) -> None:
            # `net` is this child's forked copy — the group's MCDRAM-style
            # weight replica; `w_shm`/`g_shms`/`img_shms`/`lbl_shms` map the
            # parent's segments.
            grad_view = g_shms[j].array
            images = img_shms[j].array.reshape(img_shape)
            labels = lbl_shms[j].array.reshape(lbl_shape)
            while True:
                task = task_qs[j].get()
                if task is None:
                    return
                net.set_params(w_shm.array)
                loss = net.gradient(images, labels, loss_fn)
                grad_view[:] = net.grads
                done_q.put((j, loss))

        procs = [
            mp_ctx.Process(target=group_main, args=(j,), name=f"knl-group-{j}")
            for j in range(p)
        ]
        for proc in procs:
            proc.start()

        self.w_shm, self.g_shms = w_shm, g_shms
        self.img_shms, self.lbl_shms = img_shms, lbl_shms
        self.task_qs, self.done_q = task_qs, done_q
        self.procs = procs
        self.img_views = [s.array.reshape(img_shape) for s in img_shms]
        self.lbl_views = [s.array.reshape(lbl_shape) for s in lbl_shms]

    def _publish_weights(self) -> None:
        # The group workers read the shared segment, not self.weights.
        self.w_shm.array[:] = self.weights

    def step(self, pipeline, t: int) -> float:
        import queue as _queue

        tr = self.trainer
        p = tr.parts
        images, labels = self.sampler.next_batch()
        # Stage slices in shared memory, then wake each group with a
        # round token. Safe with one buffer per group: the done_q
        # barrier below means no group is still reading round t-1.
        for j in range(p):
            lo, hi = j * tr.group_batch, (j + 1) * tr.group_batch
            self.img_views[j][:] = images[lo:hi]
            self.lbl_views[j][:] = labels[lo:hi]
            self.task_qs[j].put(t)
        losses: List[float] = [0.0] * p
        for _ in range(p):
            try:
                j, loss = self.done_q.get(timeout=120.0)
            except _queue.Empty:
                dead = [j for j in range(p) if not self.procs[j].is_alive()]
                raise RuntimeError(
                    f"KNL group worker(s) {dead} died mid-iteration {t}"
                ) from None
            losses[j] = loss
        self.last_loss = float(np.mean(losses))
        self.weights -= tr.config.lr * (tree_reduce([g.array for g in self.g_shms]) / p)
        self.w_shm.array[:] = self.weights  # publish for the next round

        pipeline.breakdown.add("for/backward", self.iter_time)
        return self.iter_time

    def cleanup(self, pipeline) -> None:
        for q in self.task_qs:
            q.put(None)
        for proc in self.procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - hung-worker cleanup
                proc.terminate()
                proc.join(timeout=5.0)
        for q in [*self.task_qs, self.done_q]:
            q.cancel_join_thread()
            q.close()
        for seg in [self.w_shm, *self.g_shms, *self.img_shms, *self.lbl_shms]:
            seg.unlink()

    def end(self, pipeline) -> None:
        # Leave the net at the final weights, as the serial path does.
        self.trainer.net.set_params(self.weights)


class ChipPartitionTrainer(BaseTrainer):
    """Real-numerics trainer for the Figure 12 experiment.

    P groups each compute the gradient of their ``b/P`` slice of the global
    batch; per round the slice gradients are tree-reduced and every group
    applies the same batch-b update (divide and conquer). The clock charges
    each group's compute at the partition's parallel efficiency and the
    reduction/update at the working set's memory bandwidth (MCDRAM while
    the P copies fit, DDR4 after the spill).
    """

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        config: TrainerConfig,
        parts: int,
        chip: KnlChip = KNL_7250_CHIP,
        cost_model: Optional[CostModel] = None,
        data_bytes: Optional[int] = None,
        kernel_efficiency: float = 0.25,
    ) -> None:
        super().__init__(network, train_set, test_set, config, cost_model)
        self.chip = chip
        self.parts = parts
        self.kernel_efficiency = kernel_efficiency
        if config.batch_size % parts != 0:
            raise ValueError(
                f"batch_size {config.batch_size} must divide evenly into "
                f"{parts} groups"
            )
        self.group_batch = config.batch_size // parts
        self.plan = plan_partition(
            parts,
            weight_bytes=self.cost.weight_bytes,
            data_bytes=data_bytes if data_bytes is not None else train_set.nbytes,
            chip=chip,
        )
        self.name = f"KNL {parts}-part"

    def _iter_time(self) -> float:
        """Simulated seconds per round (all groups in parallel + reduction)."""
        group_rate = self.chip.group_flops(self.parts, self.kernel_efficiency)
        compute = self.cost.fwdbwd_flops(self.group_batch) / group_rate
        # Conquer step: tree-reduce the packed gradient across groups, then
        # every group streams one update pass — all at working-set bandwidth.
        hops = tree_rounds(self.parts)
        reduce_time = hops * (2 * self.cost.weight_bytes / self.plan.bandwidth)
        update_time = 3 * self.cost.weight_bytes / self.plan.bandwidth
        return compute + reduce_time + update_time

    def make_step(self) -> _PartitionStepBase:
        if self.config.backend == "processes":
            return _PartitionProcessesStep(self)
        return _PartitionSerialStep(self)
