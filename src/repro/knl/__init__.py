"""Knights Landing substrate: chip model, NUMA-style partitioning (Section
6.2, Figure 12), and the communication-efficient EASGD trainer for KNL
clusters (Algorithm 4)."""

from repro.knl.chip import ClusterMode, KNL_7250_CHIP, KnlChip, McdramMode
from repro.knl.partition import ChipPartitionTrainer, PartitionPlan, plan_partition
from repro.knl.trainer import KnlSyncEASGDTrainer

__all__ = [
    "KnlChip",
    "ClusterMode",
    "McdramMode",
    "KNL_7250_CHIP",
    "PartitionPlan",
    "plan_partition",
    "ChipPartitionTrainer",
    "KnlSyncEASGDTrainer",
]
