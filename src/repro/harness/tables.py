"""Renderers for the paper's Tables 1, 2, and 4.

Table 3's renderer lives in :mod:`repro.harness.breakdown` (it needs run
results); these three are driven by static substrate data plus the
weak-scaling models.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.comm.alphabeta import LinkModel, TABLE2_NETWORKS
from repro.data.synthetic import DATASET_GEOMETRY
from repro.scaling.weak_scaling import ScalingPoint
from repro.util.tables import TextTable

__all__ = ["render_table1", "render_table2", "render_table4"]


def render_table1() -> str:
    """Table 1: the test datasets (geometry as the paper lists them)."""
    table = TextTable(["Dataset", "Training Images", "Test Images", "Pixels", "Classes"])
    pixel_text = {
        "mnist": "28x28",
        "cifar": "3x32x32",
        "imagenet": "256x256",
    }
    for name, geo in DATASET_GEOMETRY.items():
        table.add_row(
            [
                name,
                f"{geo['train']:,}",
                f"{geo['test']:,}",
                pixel_text[name],
                geo["classes"],
            ]
        )
    return table.render()


def render_table2(networks: Sequence[LinkModel] = TABLE2_NETWORKS) -> str:
    """Table 2: InfiniBand performance under the alpha-beta model."""
    table = TextTable(["Network", "alpha (latency)", "beta (1/bandwidth)"])
    for link in networks:
        table.add_row(
            [
                link.name,
                f"{link.alpha * 1e6:.1f} x 10^-6 s",
                f"{link.beta * 1e9:.1f} x 10^-9 s",
            ]
        )
    return table.render()


def render_table4(
    sweeps: Dict[str, List[ScalingPoint]], iteration_labels: Dict[str, str]
) -> str:
    """Table 4: weak-scaling time and efficiency rows.

    ``sweeps`` maps a row label (e.g. ``"GoogleNet"``) to its sweep points;
    ``iteration_labels`` maps the same label to the budget text
    (e.g. ``"300 Iters Time"``).
    """
    if not sweeps:
        raise ValueError("need at least one sweep")
    core_headers = None
    for points in sweeps.values():
        cores = [p.cores for p in points]
        if core_headers is None:
            core_headers = cores
        elif cores != core_headers:
            raise ValueError("all sweeps must cover the same node counts")
    table = TextTable(["Models"] + [f"{c} cores" for c in core_headers])
    for label, points in sweeps.items():
        table.add_row(
            [f"{label} ({iteration_labels[label]})"]
            + [f"{p.total_seconds:.0f}s" for p in points]
        )
        table.add_row(
            [f"{label} (Efficiency)"] + [f"{p.efficiency * 100:.1f}%" for p in points]
        )
    return table.render()
