"""Per-figure data-series builders.

Each function reproduces the data behind one figure of the paper's
evaluation as ``{label: (times, values)}`` dictionaries ready for printing
or plotting. All of them run real training under an
:class:`repro.harness.experiment.ExperimentSpec`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.algorithms.base import RunResult
from repro.cluster.platform import KnlPlatform
from repro.harness.experiment import ExperimentSpec, run_method
from repro.knl.trainer import KnlSyncEASGDTrainer

__all__ = [
    "FIG6_PAIRS",
    "FIG8_METHODS",
    "fig6_pairwise_series",
    "fig8_overall_series",
    "fig10_packed_series",
    "fig13_scaling_series",
    "log10_error_series",
]

#: Figure 6's four panels: (our method, existing counterpart).
FIG6_PAIRS = (
    ("async-easgd", "async-sgd"),  # 6.1
    ("async-measgd", "async-msgd"),  # 6.2
    ("hogwild-easgd", "hogwild-sgd"),  # 6.3
    ("sync-easgd3", "original-easgd"),  # 6.4
)

#: Figure 8's full lineup (existing + ours).
FIG8_METHODS = (
    "original-easgd",
    "async-sgd",
    "async-msgd",
    "hogwild-sgd",
    "async-easgd",
    "async-measgd",
    "hogwild-easgd",
    "sync-easgd3",
)


def _series(result: RunResult) -> Tuple[np.ndarray, np.ndarray]:
    return result.series()


def fig6_pairwise_series(
    spec: ExperimentSpec,
    iterations: int,
    pairs: Sequence[Tuple[str, str]] = FIG6_PAIRS,
) -> Dict[str, Dict[str, Tuple[np.ndarray, np.ndarray]]]:
    """Figure 6: accuracy-vs-time for each (ours, existing) pair.

    Returns ``{"panel-i": {method: (times, accuracies)}}`` with both methods
    of a panel run under identical conditions.
    """
    panels: Dict[str, Dict[str, Tuple[np.ndarray, np.ndarray]]] = {}
    for i, (ours, theirs) in enumerate(pairs, start=1):
        panels[f"6.{i}"] = {
            ours: _series(run_method(spec, ours, iterations=iterations)),
            theirs: _series(run_method(spec, theirs, iterations=iterations)),
        }
    return panels


def fig8_overall_series(
    spec: ExperimentSpec,
    iterations: int,
    methods: Iterable[str] = FIG8_METHODS,
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Figure 8: every method's (times, accuracies) under one spec."""
    return {m: _series(run_method(spec, m, iterations=iterations)) for m in methods}


def log10_error_series(
    series: Dict[str, Tuple[np.ndarray, np.ndarray]], floor: float = 1e-3
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Figure 8's y-axis: log10 of the error rate (1 - accuracy), floored."""
    out = {}
    for name, (times, accs) in series.items():
        err = np.maximum(1.0 - accs, floor)
        out[name] = (times, np.log10(err))
    return out


def fig10_packed_series(
    spec: ExperimentSpec, iterations: int
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Figure 10: Sync SGD with packed vs per-layer communication."""
    return {
        "packed": _series(run_method(spec, "sync-sgd", iterations=iterations)),
        "per-layer": _series(run_method(spec, "sync-sgd-unpacked", iterations=iterations)),
    }


def fig13_scaling_series(
    spec: ExperimentSpec,
    iterations: int,
    node_counts: Sequence[int] = (1, 2, 4, 8),
) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Figure 13: loss/accuracy vs time as node count grows (weak scaling).

    Each node holds a full copy of the dataset (Section 7.1); the trainer is
    Algorithm 4 (KNL Sync EASGD). Returns ``{nodes: (times, accuracies)}``.
    """
    out: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    for k in node_counts:
        trainer = KnlSyncEASGDTrainer(
            spec.model_builder(),
            spec.train_set,
            spec.test_set,
            KnlPlatform(num_nodes=k, seed=spec.config.seed),
            spec.config,
            spec.cost_model,
        )
        out[k] = _series(trainer.train(iterations))
    return out
