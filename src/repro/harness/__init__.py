"""Experiment harness: standardized runners for every table and figure."""

from repro.harness.analysis import (
    accuracy_at_time,
    crossover_time,
    speedup_at_accuracy,
    time_to_accuracy_interp,
    trajectory_auc,
)
from repro.harness.breakdown import breakdown_row, render_table3, Table3Row
from repro.harness.experiment import ExperimentSpec, run_method, run_methods
from repro.harness.figures import (
    fig10_packed_series,
    fig13_scaling_series,
    fig6_pairwise_series,
    fig8_overall_series,
)
from repro.harness.plots import ascii_plot
from repro.harness.results import result_to_dict, results_from_json, results_to_json
from repro.harness.sweeps import best_point, grid_sweep, SweepPoint
from repro.harness.tables import render_table1, render_table2, render_table4

__all__ = [
    "ExperimentSpec",
    "run_method",
    "run_methods",
    "Table3Row",
    "breakdown_row",
    "render_table3",
    "fig6_pairwise_series",
    "fig8_overall_series",
    "fig10_packed_series",
    "fig13_scaling_series",
    "render_table1",
    "render_table2",
    "render_table4",
    "result_to_dict",
    "results_to_json",
    "results_from_json",
    "SweepPoint",
    "grid_sweep",
    "best_point",
    "ascii_plot",
    "accuracy_at_time",
    "time_to_accuracy_interp",
    "speedup_at_accuracy",
    "crossover_time",
    "trajectory_auc",
]
