"""Serialization of run results for downstream analysis/plotting.

``RunResult`` objects flatten to plain dicts (JSON-safe) so sweeps can be
archived and compared across code versions; the schema is stable and
versioned.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from repro.algorithms.base import RunResult
from repro.trace.metrics import summarize as summarize_trace

__all__ = ["SCHEMA_VERSION", "result_to_dict", "results_to_json", "results_from_json"]

SCHEMA_VERSION = 1


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Flatten one run to a JSON-safe dict.

    The ``fault_log`` key is present only for runs that executed under a
    fault plan, and ``trace_summary`` only for runs that recorded a
    communication trace, so archives of plain runs are byte-identical to
    the earlier schema (still version 1 — both additions are optional).
    The full event stream is *not* archived here — traces have their own
    JSONL format (:func:`repro.trace.to_jsonl`); the summary keeps the
    headline numbers (message/byte counts, comm ratio, overlap fraction,
    critical path) next to the run they describe.
    """
    out: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "method": result.method,
        "iterations": result.iterations,
        "sim_time": result.sim_time,
        "final_accuracy": result.final_accuracy,
        "reached_target": result.reached_target,
        "comm_ratio": result.breakdown.comm_ratio,
        "breakdown": dict(result.breakdown.parts),
        "extras": dict(result.extras),
        "records": [
            {
                "iteration": r.iteration,
                "sim_time": r.sim_time,
                "train_loss": r.train_loss,
                "test_accuracy": r.test_accuracy,
            }
            for r in result.records
        ],
    }
    if result.fault_log is not None:
        out["fault_log"] = result.fault_log.to_dicts()
        out["degraded_rounds"] = result.breakdown.degraded_rounds
    if result.trace is not None:
        out["trace_summary"] = summarize_trace(result.trace)
    if result.backend is not None:
        out["backend"] = result.backend
    return out


def results_to_json(
    results: Iterable[RunResult], path: Union[str, Path, None] = None
) -> str:
    """Serialize runs to a JSON document; optionally write it to ``path``."""
    payload = json.dumps([result_to_dict(r) for r in results], indent=2)
    if path is not None:
        Path(path).write_text(payload)
    return payload


def results_from_json(source: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load archived runs (as dicts) from a JSON file or document string."""
    text = source
    if isinstance(source, Path):
        text = source.read_text()
    elif isinstance(source, str):
        try:
            if Path(source).is_file():
                text = Path(source).read_text()
        except OSError:  # the string is a JSON document, not a path
            pass
    data = json.loads(text)
    if not isinstance(data, list):
        raise ValueError("expected a JSON list of run records")
    for entry in data:
        if entry.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported schema {entry.get('schema')!r}; expected {SCHEMA_VERSION}"
            )
    return data
