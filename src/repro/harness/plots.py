"""Terminal plots: render accuracy-vs-time series as ASCII line charts.

The paper's Figures 6/8/10/13 are line plots; without a display stack the
benchmark output renders them as monospace charts so the crossovers are
visible directly in the pytest ``-s`` stream and in logged output.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 18,
    x_label: str = "time",
    y_label: str = "value",
) -> str:
    """Render ``{name: (xs, ys)}`` as a monospace chart with a legend.

    Points are nearest-neighbour binned onto a ``width x height`` grid;
    later series overwrite earlier ones where they collide (collisions are
    rare at these sizes and the legend disambiguates).
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 4:
        raise ValueError("plot must be at least 16x4")
    if len(series) > len(_MARKERS):
        raise ValueError(f"at most {len(_MARKERS)} series supported")

    all_x = np.concatenate([np.asarray(xs, dtype=float) for xs, _ in series.values()])
    all_y = np.concatenate([np.asarray(ys, dtype=float) for _, ys in series.values()])
    if all_x.size == 0:
        raise ValueError("series are empty")
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for marker, (name, (xs, ys)) in zip(_MARKERS, series.items()):
        legend.append(f"{marker} = {name}")
        for x, y in zip(xs, ys):
            col = int(round((float(x) - x_lo) / x_span * (width - 1)))
            row = int(round((float(y) - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = [f"{y_label} [{y_lo:.3g} .. {y_hi:.3g}]"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_lo:.3g} .. {x_hi:.3g}]    " + "   ".join(legend))
    return "\n".join(lines)
