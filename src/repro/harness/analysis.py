"""Trajectory analytics: the quantities EXPERIMENTS.md reports.

Run trajectories are step functions of simulated time; these helpers
interpolate them, compute speedups at matched accuracy, and locate
crossovers between two methods — the "who wins, where" questions the
reproduction bands care about.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

import numpy as np

from repro.algorithms.base import RunResult

__all__ = [
    "accuracy_at_time",
    "time_to_accuracy_interp",
    "speedup_at_accuracy",
    "crossover_time",
    "trajectory_auc",
    "fault_rate_curve",
    "fault_degradation",
    "trace_digest",
    "comm_ratio_from_trace",
]


def _series(result: RunResult) -> Tuple[np.ndarray, np.ndarray]:
    times, accs = result.series()
    if times.size == 0:
        raise ValueError(f"run {result.method!r} has no trajectory records")
    return times, accs


def accuracy_at_time(result: RunResult, t: float) -> float:
    """Best accuracy observed at or before simulated time ``t`` (0 before
    the first record)."""
    times, accs = _series(result)
    mask = times <= t
    if not mask.any():
        return 0.0
    return float(np.maximum.accumulate(accs)[mask][-1])


def time_to_accuracy_interp(result: RunResult, target: float) -> Optional[float]:
    """Linearly interpolated first time the trajectory crosses ``target``.

    Finer than :meth:`RunResult.time_to_accuracy` (which snaps to record
    boundaries); returns ``None`` if the run never got there.
    """
    times, accs = _series(result)
    best = np.maximum.accumulate(accs)
    idx = np.argmax(best >= target)
    if best[idx] < target:
        return None
    if idx == 0 or best[idx - 1] >= target:
        return float(times[idx])
    a0, a1 = best[idx - 1], best[idx]
    t0, t1 = times[idx - 1], times[idx]
    frac = (target - a0) / (a1 - a0)
    return float(t0 + frac * (t1 - t0))


def speedup_at_accuracy(fast: RunResult, slow: RunResult, target: float) -> Optional[float]:
    """``slow``'s time-to-target divided by ``fast``'s (None if either
    never reaches it)."""
    tf = time_to_accuracy_interp(fast, target)
    ts = time_to_accuracy_interp(slow, target)
    if tf is None or ts is None or tf <= 0:
        return None
    return ts / tf


def crossover_time(a: RunResult, b: RunResult, samples: int = 200) -> Optional[float]:
    """First simulated time after which ``a``'s accuracy stays >= ``b``'s.

    Returns ``None`` if ``a`` never overtakes; ``0.0`` if it leads
    throughout.
    """
    t_hi = min(a.records[-1].sim_time, b.records[-1].sim_time)
    grid = np.linspace(0.0, t_hi, samples)
    lead = np.array(
        [accuracy_at_time(a, t) >= accuracy_at_time(b, t) for t in grid]
    )
    if not lead[-1]:
        return None
    # last index where a was behind; crossover just after it
    behind = np.where(~lead)[0]
    if behind.size == 0:
        return 0.0
    return float(grid[behind[-1] + 1])


def trajectory_auc(result: RunResult, t_max: Optional[float] = None, samples: int = 200) -> float:
    """Area under the accuracy-vs-time curve up to ``t_max`` (default: the
    run's end), normalized to [0, 1]. Rewards reaching accuracy *early*."""
    end = t_max if t_max is not None else result.records[-1].sim_time
    if end <= 0:
        raise ValueError("t_max must be positive")
    grid = np.linspace(0.0, end, samples)
    values = np.array([accuracy_at_time(result, t) for t in grid])
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 2.x rename
    return float(trapezoid(values, grid) / end)


def fault_rate_curve(
    results_by_rate: Mapping[float, RunResult],
) -> Tuple[np.ndarray, np.ndarray]:
    """Accuracy-vs-fault-rate curve from a sweep keyed by fault rate.

    Returns sorted ``(rates, final_accuracies)`` arrays — the robustness
    figure-of-merit the fault-tolerance benchmark plots: how gracefully a
    method's converged accuracy degrades as the message-drop (or crash)
    rate grows.
    """
    if not results_by_rate:
        raise ValueError("results_by_rate must not be empty")
    rates = np.array(sorted(results_by_rate), dtype=float)
    accs = np.array([results_by_rate[r].final_accuracy for r in rates])
    return rates, accs


def fault_degradation(faulty: RunResult, baseline: RunResult) -> float:
    """How many accuracy points the faulty run lost vs the healthy baseline
    (positive = degradation; the acceptance band is <= 0.05)."""
    return baseline.final_accuracy - faulty.final_accuracy


def trace_digest(result: RunResult) -> Mapping[str, float]:
    """The trace's numeric summary (message counts, overlap, critical path).

    Requires the run to have been made with ``TrainerConfig(trace=True)``.
    """
    if result.trace is None:
        raise ValueError(
            f"run {result.method!r} carries no trace; rerun with TrainerConfig(trace=True)"
        )
    from repro.trace.metrics import summarize

    return summarize(result.trace)


def comm_ratio_from_trace(result: RunResult) -> float:
    """The 87% -> 14% figure measured from the trace's span unions.

    An independent cross-check of ``result.breakdown.comm_ratio``: the
    accumulator sums *visible* per-part seconds, while this measures the
    union of actual communication spans against all activity — the two
    agree in shape (Original EASGD high, Sync EASGD low) but not identically,
    since overlapped communication counts here and is invisible there.
    """
    if result.trace is None:
        raise ValueError(
            f"run {result.method!r} carries no trace; rerun with TrainerConfig(trace=True)"
        )
    from repro.trace.metrics import comm_compute_ratio

    return comm_compute_ratio(result.trace)
