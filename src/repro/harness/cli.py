"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the registered training methods (names only; the top-level
    ``--list-algorithms`` flag prints the full table with family,
    sync style, and paper section).
``run``
    Train one method on a synthetic dataset and print the summary
    (optionally archive the trajectory as JSON).
``table``
    Print a reproduction of paper Table 1, 2, or 4.
``knl``
    Run the KNL chip-partition experiment (Section 6.2 / Figure 12) on the
    serial simulator or on real forked processes over shared memory.
``serve``
    Train one method while a serving front-end answers inference traffic
    from the freshest published center weights (see ``docs/serving.md``).
``sweep``
    Run one method over a hyperparameter grid, optionally multiplexed
    over a persistent worker pool (``--pool``/``--pool-size``) so fork
    and shm spin-up is paid once per worker instead of once per cell.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.algorithms import ALGORITHM_INFO, ALGORITHMS, TrainerConfig
from repro.cluster import CostModel
from repro.comm.backend import BACKENDS, COLLECTIVES, TRANSPORTS, WIRE_DTYPES
from repro.data import make_cifar_like, make_mnist_like
from repro.durability.errors import CheckpointError
from repro.faults import FaultError, FaultPlan
from repro.harness.breakdown import breakdown_row, render_table3
from repro.harness.experiment import ExperimentSpec, run_method
from repro.harness.results import results_to_json
from repro.harness.tables import render_table1, render_table2, render_table4
from repro.nn.models import (
    build_alexnet_mini,
    build_googlenet_mini,
    build_lenet,
    build_mlp,
    build_resnet_mini,
    build_vgg_mini,
)
from repro.nn.spec import ALEXNET, LENET

_DATASETS = {"mnist": make_mnist_like, "cifar": make_cifar_like}
_MODELS = {
    "mlp": build_mlp,
    "lenet": build_lenet,
    "alexnet": build_alexnet_mini,
    "vgg": build_vgg_mini,
    "googlenet": build_googlenet_mini,
    "resnet": build_resnet_mini,
}


def _render_algorithm_table() -> str:
    """The registry as an aligned table: name, family, class, staleness, etc."""
    header = ("method", "family", "class", "mode", "staleness", "backends", "paper")
    rows = [
        (name, info.family, info.family_class, info.sync, info.staleness,
         info.backends, info.section)
        for name, info in sorted(ALGORITHM_INFO.items())
    ]
    widths = [max(len(r[i]) for r in [header] + rows) for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


class _ListAlgorithmsAction(argparse.Action):
    """``--list-algorithms``: print the registry table and exit.

    A top-level flag (not a subcommand) so it works without naming one —
    the subparser itself is ``required``.
    """

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(_render_algorithm_table())
        parser.exit(0)


def _add_durability_args(parser: argparse.ArgumentParser) -> None:
    """Checkpoint/resume flags shared by the ``run`` and ``knl`` commands."""
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="directory for crash-safe checkpoints; required "
                             "by --checkpoint-every and --resume")
    parser.add_argument("--checkpoint-every", type=int, default=0,
                        metavar="N",
                        help="write a checkpoint every N steps (0 disables)")
    parser.add_argument("--checkpoint-keep", type=int, default=3, metavar="K",
                        help="retain the K newest checkpoint versions")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the newest valid checkpoint in "
                             "--checkpoint-dir (bit-identical continuation)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Scaling Deep Learning on GPU and KNL clusters' (SC'17)",
    )
    parser.add_argument(
        "--list-algorithms", action=_ListAlgorithmsAction,
        help="print the algorithm registry (name, family, sync style, "
             "paper section) and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered training methods")

    run = sub.add_parser("run", help="train one method on a synthetic dataset")
    run.add_argument("--method", required=True, choices=sorted(ALGORITHMS))
    run.add_argument("--dataset", default="mnist", choices=sorted(_DATASETS))
    run.add_argument("--model", default="lenet", choices=sorted(_MODELS))
    run.add_argument("--gpus", type=int, default=4)
    run.add_argument("--iterations", type=int, default=200)
    run.add_argument("--target", type=float, default=None,
                     help="train to this test accuracy instead of a fixed length")
    run.add_argument("--batch-size", type=int, default=32)
    run.add_argument("--lr", type=float, default=0.03)
    run.add_argument("--rho", type=float, default=2.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--backend", default="threads", choices=BACKENDS,
                     help="execution substrate for runners that move real "
                          "messages (simulated trainers ignore it)")
    run.add_argument("--transport", default=None, choices=TRANSPORTS,
                     help="process-backend message transport: 'shm' "
                          "(zero-copy slot rings, the default) or 'queue' "
                          "(pickle through pipes); bits are identical, only "
                          "wall-clock changes")
    run.add_argument("--collective", default="tree", choices=COLLECTIVES,
                     help="allreduce schedule: 'tree' (binomial, log-P "
                          "latency) or 'ring' (sharded reduce-scatter + "
                          "allgather, constant per-rank bandwidth); with a "
                          "float32 wire the results are bit-identical")
    run.add_argument("--wire-dtype", default="float32", choices=WIRE_DTYPES,
                     help="on-fabric array format for the message runners; "
                          "'float16' halves the wire bytes but rounds them "
                          "(the only comm knob that changes numerics)")
    run.add_argument("--train-samples", type=int, default=4096)
    run.add_argument("--difficulty", type=float, default=1.5)
    run.add_argument("--paper-scale-cost", action="store_true",
                     help="charge the clock for the full-scale model (LeNet/AlexNet spec)")
    run.add_argument("--tau", type=int, default=None, metavar="T",
                     help="staleness bound for bounded-async-easgd: reject or "
                          "clip contributions staler than T master versions "
                          "(default: 2*(P-1))")
    run.add_argument("--staleness-policy", default=None,
                     choices=("reject", "clip"),
                     help="what bounded-async-easgd does past --tau: 'reject' "
                          "(discard + resync, the hard guarantee) or 'clip' "
                          "(apply damped by tau/staleness)")
    run.add_argument("--local-steps", type=int, default=None, metavar="N",
                     help="local batches per master exchange for the "
                          "multi-step zoo families (downpour, adag, eamsgd; "
                          "default 4)")
    run.add_argument("--faults", metavar="SPEC", default=None,
                     help="fault plan, e.g. 'crash:1@0.5>2.0;straggler:2x3.0;drop:0.05' "
                          "(clauses: crash:W@T[>R] straggler:WxF[@T] stall:W@T+D "
                          "drop:P delay:P@S seed:N)")
    run.add_argument("--json", metavar="PATH", default=None,
                     help="write the trajectory to a JSON file")
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="record a communication trace and write it here "
                          "(.jsonl -> archive format; anything else -> "
                          "Chrome/Perfetto JSON), then verify its structural "
                          "invariants")
    _add_durability_args(run)

    table = sub.add_parser("table", help="print a paper-table reproduction")
    table.add_argument("id", choices=["1", "2", "4"])

    knl = sub.add_parser("knl", help="run the KNL chip-partition experiment")
    knl.add_argument("--parts", type=int, default=4,
                     help="number of chip groups P (batch must divide evenly)")
    knl.add_argument("--iterations", type=int, default=100)
    knl.add_argument("--batch-size", type=int, default=64)
    knl.add_argument("--lr", type=float, default=0.03)
    knl.add_argument("--seed", type=int, default=0)
    knl.add_argument("--train-samples", type=int, default=2048)
    knl.add_argument("--difficulty", type=float, default=1.2)
    knl.add_argument("--backend", default="threads", choices=BACKENDS,
                     help="'threads' runs the serial simulator; 'processes' "
                          "forks one worker per group over shared memory "
                          "(same weights either way)")
    knl.add_argument("--transport", default=None, choices=TRANSPORTS,
                     help="message transport recorded in the run config "
                          "(the KNL trainer always stages batches through "
                          "shared memory under --backend processes)")
    knl.add_argument("--json", metavar="PATH", default=None,
                     help="write the trajectory to a JSON file")
    _add_durability_args(knl)

    serve = sub.add_parser(
        "serve",
        help="train while serving inference from live center weights",
    )
    serve.add_argument("--method", default="sync-easgd3", choices=sorted(ALGORITHMS))
    serve.add_argument("--dataset", default="mnist", choices=sorted(_DATASETS))
    serve.add_argument("--model", default="mlp", choices=sorted(_MODELS))
    serve.add_argument("--gpus", type=int, default=4)
    serve.add_argument("--iterations", type=int, default=100)
    serve.add_argument("--batch-size", type=int, default=32)
    serve.add_argument("--lr", type=float, default=0.03)
    serve.add_argument("--rho", type=float, default=2.0)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--train-samples", type=int, default=1024)
    serve.add_argument("--difficulty", type=float, default=1.2)
    serve.add_argument("--requests", type=int, default=200,
                       help="total inference requests to issue")
    serve.add_argument("--loop", default="open", choices=("open", "closed"),
                       help="open: arrivals fire on schedule regardless of "
                            "completions; closed: --clients users in a "
                            "submit/wait/think cycle")
    serve.add_argument("--arrival", default="poisson", choices=("poisson", "onoff"),
                       help="open-loop arrival process (onoff = bursty)")
    serve.add_argument("--rate", type=float, default=500.0,
                       help="open-loop arrival rate, requests/s (onoff: the "
                            "in-burst rate)")
    serve.add_argument("--clients", type=int, default=8,
                       help="closed-loop concurrent clients")
    serve.add_argument("--think", type=float, default=0.001,
                       help="closed-loop mean think time, seconds")
    serve.add_argument("--batch-cap", type=int, default=8,
                       help="micro-batcher admission cap")
    serve.add_argument("--max-wait", type=float, default=0.002,
                       help="oldest-request drain deadline, seconds")
    serve.add_argument("--max-staleness-steps", type=int, default=None,
                       help="force a weight refresh when the served snapshot "
                            "lags training by more than this many steps")
    serve.add_argument("--refresh-policy", default="fresh", choices=("fresh", "lazy"),
                       help="fresh: reload whenever a newer snapshot exists; "
                            "lazy: serve cached weights until the staleness "
                            "bound forces a refresh")
    serve.add_argument("--publish-every", type=int, default=1,
                       help="training steps between snapshot publishes")
    serve.add_argument("--trace", metavar="PATH", default=None,
                       help="write the serving trace here and verify its "
                            "invariants (.jsonl -> archive; else Chrome JSON)")
    serve.add_argument("--json", metavar="PATH", default=None,
                       help="write serve stats + trajectory to a JSON file")

    sweep = sub.add_parser(
        "sweep",
        help="run one method over a hyperparameter grid (optionally pooled)",
    )
    sweep.add_argument("--method", required=True, choices=sorted(ALGORITHMS))
    sweep.add_argument("--grid", required=True, metavar="SPEC",
                       help="grid axes over TrainerConfig fields, e.g. "
                            "'lr=0.01,0.03;rho=1.5,3.0'")
    sweep.add_argument("--iterations", type=int, default=100)
    sweep.add_argument("--dataset", default="mnist", choices=sorted(_DATASETS))
    sweep.add_argument("--model", default="mlp", choices=sorted(_MODELS))
    sweep.add_argument("--gpus", type=int, default=4)
    sweep.add_argument("--batch-size", type=int, default=32)
    sweep.add_argument("--lr", type=float, default=0.03)
    sweep.add_argument("--rho", type=float, default=2.0)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--train-samples", type=int, default=1024)
    sweep.add_argument("--difficulty", type=float, default=1.2)
    sweep.add_argument("--backend", default="processes", choices=BACKENDS,
                       help="pool worker substrate (only used with --pool)")
    sweep.add_argument("--pool", action="store_true",
                       help="multiplex the cells over a persistent worker "
                            "pool instead of running them inline — same "
                            "numerics, amortized spin-up")
    sweep.add_argument("--pool-size", type=int, default=None, metavar="P",
                       help="worker count for --pool (default: one per cell, "
                            "capped by the CPU count); implies --pool")
    sweep.add_argument("--checkpoint-root", metavar="DIR", default=None,
                       help="make the sweep preemptible: finished cells "
                            "leave done-markers here and running cells "
                            "checkpoint under DIR/cells/<key>, so a killed "
                            "sweep resumes instead of recomputing")
    sweep.add_argument("--target", type=float, default=None,
                       help="rank the grid by time-to-this-accuracy instead "
                            "of final accuracy")
    sweep.add_argument("--json", metavar="PATH", default=None,
                       help="write the sweep points to a JSON file")
    return parser


def _cmd_list() -> int:
    for name in sorted(ALGORITHMS):
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    train, test = _DATASETS[args.dataset](
        n_train=args.train_samples,
        n_test=max(args.train_samples // 4, 256),
        seed=args.seed,
        difficulty=args.difficulty,
    )
    cost = None
    if args.paper_scale_cost:
        cost = CostModel.from_spec(LENET if args.dataset == "mnist" else ALEXNET)
    builder = _MODELS[args.model]
    if args.dataset == "cifar" and args.model in ("mlp", "lenet"):
        spec_builder = lambda: builder(input_shape=(3, 32, 32), seed=args.seed)  # noqa: E731
    else:
        spec_builder = lambda: builder(seed=args.seed)  # noqa: E731
    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    try:
        config = TrainerConfig(
            batch_size=args.batch_size, lr=args.lr, rho=args.rho, seed=args.seed,
            trace=args.trace is not None, backend=args.backend,
            transport=args.transport,
            collective=args.collective, wire_dtype=args.wire_dtype,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_keep=args.checkpoint_keep,
        )
    except ValueError as exc:
        print(f"invalid checkpoint options: {exc}", file=sys.stderr)
        return 2
    spec = ExperimentSpec(
        train_set=train,
        test_set=test,
        model_builder=spec_builder,
        num_gpus=args.gpus,
        config=config,
        cost_model=cost,
    ).normalize()

    trainer_kwargs = {}
    if args.faults:
        try:
            trainer_kwargs["faults"] = FaultPlan.from_spec(args.faults, seed=args.seed)
        except ValueError as exc:
            print(f"invalid --faults spec: {exc}", file=sys.stderr)
            return 2
    if args.tau is not None:
        trainer_kwargs["tau"] = args.tau
    if args.staleness_policy is not None:
        trainer_kwargs["staleness_policy"] = args.staleness_policy
    if args.local_steps is not None:
        trainer_kwargs["local_steps"] = args.local_steps

    try:
        if args.target is not None:
            if args.resume:
                print("--resume is only supported with fixed-length runs "
                      "(drop --target)", file=sys.stderr)
                return 2
            result = run_method(spec, args.method, target_accuracy=args.target,
                                max_iterations=args.iterations, **trainer_kwargs)
        else:
            result = run_method(spec, args.method, iterations=args.iterations,
                                resume=args.resume, **trainer_kwargs)
    except CheckpointError as exc:
        print(f"resume failed: {exc}", file=sys.stderr)
        return 3
    except TypeError as exc:
        if args.faults and "faults" in str(exc):
            print(f"method {args.method!r} does not support fault injection",
                  file=sys.stderr)
            return 2
        for kwarg, flag in (("tau", "--tau"), ("staleness_policy", "--staleness-policy"),
                            ("local_steps", "--local-steps")):
            if kwarg in trainer_kwargs and kwarg in str(exc):
                print(f"method {args.method!r} does not support {flag}",
                      file=sys.stderr)
                return 2
        raise
    except ValueError as exc:
        if args.faults:  # e.g. the plan targets a worker the platform lacks
            print(f"invalid --faults spec: {exc}", file=sys.stderr)
            return 2
        raise
    except FaultError as exc:
        print(f"run failed under the fault plan: {exc}", file=sys.stderr)
        return 3

    print(f"method          : {result.method}")
    print(f"iterations      : {result.iterations}")
    print(f"simulated time  : {result.sim_time:.3f} s")
    print(f"final accuracy  : {result.final_accuracy:.3f}")
    if result.reached_target is not None:
        print(f"reached target  : {result.reached_target}")
    print(f"comm ratio      : {result.breakdown.comm_ratio * 100:.0f}%")
    if result.fault_log is not None:
        print(f"fault events    : {result.fault_log.summary()}")
        print(f"degraded rounds : {result.breakdown.degraded_rounds}")
    print()
    print(render_table3([breakdown_row(result)]))
    if args.json:
        results_to_json([result], args.json)
        print(f"\ntrajectory written to {args.json}")
    if args.trace:
        if result.trace is None:
            print(f"method {args.method!r} does not record traces", file=sys.stderr)
            return 2
        from repro.trace import InvariantViolation, check_all, summarize, to_chrome, to_jsonl

        if args.trace.endswith(".jsonl"):
            to_jsonl(result.trace, args.trace)
        else:
            to_chrome(result.trace, args.trace)
        digest = summarize(result.trace)
        print(f"\ntrace written to {args.trace} "
              f"({int(digest['events'])} events, {int(digest['messages'])} messages, "
              f"overlap {digest['overlap_fraction'] * 100:.0f}%)")
        try:
            ran = check_all(result.trace)
        except InvariantViolation as exc:
            print(f"trace invariant VIOLATED: {exc}", file=sys.stderr)
            return 4
        print(f"trace invariants OK: {', '.join(ran)}")
    return 0


def _cmd_knl(args: argparse.Namespace) -> int:
    from repro.knl.partition import ChipPartitionTrainer

    train, test = make_mnist_like(
        n_train=args.train_samples,
        n_test=max(args.train_samples // 4, 256),
        seed=args.seed,
        difficulty=args.difficulty,
    )
    if args.batch_size % args.parts != 0:
        print(f"--batch-size {args.batch_size} must divide evenly into "
              f"--parts {args.parts} groups", file=sys.stderr)
        return 2
    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    net = build_lenet(seed=args.seed)
    net.forward(train.images[:1])  # materialize params before forking replicas
    try:
        config = TrainerConfig(
            batch_size=args.batch_size, lr=args.lr, seed=args.seed,
            backend=args.backend, transport=args.transport,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_keep=args.checkpoint_keep,
        )
    except ValueError as exc:
        print(f"invalid checkpoint options: {exc}", file=sys.stderr)
        return 2
    trainer = ChipPartitionTrainer(
        network=net,
        train_set=train,
        test_set=test,
        config=config,
        parts=args.parts,
    )
    try:
        result = trainer.train(args.iterations, resume=args.resume)
    except CheckpointError as exc:
        print(f"resume failed: {exc}", file=sys.stderr)
        return 3

    print(f"method          : {result.method}")
    print(f"backend         : {result.backend or 'serial (simulated)'}")
    print(f"parts           : {trainer.parts} "
          f"({trainer.plan.cores_per_group:.1f} cores/group)")
    print(f"working set     : {trainer.plan.total_bytes / 1e6:.0f} MB in "
          f"{trainer.plan.memory_name}")
    print(f"iterations      : {result.iterations}")
    print(f"simulated time  : {result.sim_time:.3f} s")
    print(f"final accuracy  : {result.final_accuracy:.3f}")
    if args.json:
        results_to_json([result], args.json)
        print(f"\ntrajectory written to {args.json}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.id == "1":
        print(render_table1())
    elif args.id == "2":
        print(render_table2())
    else:
        from repro.nn.spec import GOOGLENET, VGG19
        from repro.scaling import weak_scaling_sweep
        from repro.scaling.baselines import our_implementation

        sweeps = {s.name: weak_scaling_sweep(our_implementation(s)) for s in (GOOGLENET, VGG19)}
        print(render_table4(sweeps, {"GoogleNet": "300 Iters Time", "VGG-19": "80 Iters Time"}))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Validate the serving knobs before the training thread starts: a
    # late ValueError would leave a half-finished run behind the error.
    for knob, value, bound in (
        ("--iterations", args.iterations, 1),
        ("--requests", args.requests, 1),
        ("--clients", args.clients, 1),
        ("--batch-cap", args.batch_cap, 1),
        ("--publish-every", args.publish_every, 1),
        ("--max-wait", args.max_wait, 0),
        ("--think", args.think, 0),
    ):
        if value < bound:
            print(f"{knob} must be >= {bound}", file=sys.stderr)
            return 2
    if args.rate <= 0:
        print("--rate must be positive", file=sys.stderr)
        return 2
    if args.max_staleness_steps is not None and args.max_staleness_steps < 0:
        print("--max-staleness-steps must be >= 0", file=sys.stderr)
        return 2

    import threading
    import time

    from repro.serving import (
        ClosedLoopLoadGen,
        ModelSnapshotter,
        OpenLoopLoadGen,
        ServingFrontend,
        onoff_arrivals,
        poisson_arrivals,
    )
    from repro.trace.events import Trace

    train, test = _DATASETS[args.dataset](
        n_train=args.train_samples,
        n_test=max(args.train_samples // 4, 256),
        seed=args.seed,
        difficulty=args.difficulty,
    )
    builder = _MODELS[args.model]
    if args.dataset == "cifar" and args.model in ("mlp", "lenet"):
        spec_builder = lambda: builder(input_shape=(3, 32, 32), seed=args.seed)  # noqa: E731
    else:
        spec_builder = lambda: builder(seed=args.seed)  # noqa: E731
    config = TrainerConfig(batch_size=args.batch_size, lr=args.lr,
                           rho=args.rho, seed=args.seed)
    spec = ExperimentSpec(
        train_set=train, test_set=test, model_builder=spec_builder,
        num_gpus=args.gpus, config=config,
    ).normalize()

    replica = spec.model_builder()  # the serving tier's own weights copy
    trace = Trace(meta={
        "pattern": "serving", "method": args.method,
        "batch_cap": args.batch_cap,
        "max_staleness_steps": args.max_staleness_steps,
        "publish_every": args.publish_every,
        "loop": args.loop, "arrival": args.arrival,
    })
    snapshotter = ModelSnapshotter(
        replica.num_params, publish_every=args.publish_every, trace=trace,
    )

    outcome: dict = {}

    def train_main() -> None:
        try:
            outcome["result"] = run_method(
                spec, args.method, iterations=args.iterations,
                snapshotter=snapshotter,
            )
        except BaseException as exc:  # ferried to the foreground
            outcome["error"] = exc

    trainer_thread = threading.Thread(target=train_main, name="training")
    trainer_thread.start()
    # Serve only from published weights: wait for the first snapshot.
    while snapshotter.buffer.version == 0:
        if not trainer_thread.is_alive():
            break
        time.sleep(0.001)
    if "error" in outcome:
        trainer_thread.join()
        print(f"training failed before serving began: {outcome['error']}",
              file=sys.stderr)
        return 3

    frontend = ServingFrontend.for_network(
        replica, snapshotter.reader(),
        batch_cap=args.batch_cap, max_wait=args.max_wait,
        max_staleness_steps=args.max_staleness_steps,
        refresh_policy=args.refresh_policy, trace=trace,
    ).start()
    make_request = lambda i: test.images[i % len(test.images)]  # noqa: E731
    try:
        if args.loop == "open":
            if args.arrival == "poisson":
                arrivals = poisson_arrivals(args.requests, args.rate, seed=args.seed)
            else:
                burst = max(2.0 / args.rate, 0.01)
                arrivals = onoff_arrivals(args.requests, args.rate,
                                          on_mean=burst, off_mean=burst,
                                          seed=args.seed)
            OpenLoopLoadGen(arrivals).run(frontend, make_request)
        else:
            per_client = max(args.requests // args.clients, 1)
            ClosedLoopLoadGen(args.clients, per_client, think_mean=args.think,
                              seed=args.seed).run(frontend, make_request)
    finally:
        frontend.stop()
        trainer_thread.join()
    if "error" in outcome:
        print(f"training failed while serving: {outcome['error']}", file=sys.stderr)
        return 3

    result = outcome["result"]
    stats = frontend.stats()
    print(f"method          : {result.method}")
    print(f"iterations      : {result.iterations}")
    print(f"final accuracy  : {result.final_accuracy:.3f}")
    print(f"publishes       : {snapshotter.publishes}")
    print(f"served          : {stats.served} requests in {stats.batches} batches")
    print(f"p50 latency     : {stats.p50_latency * 1e3:.2f} ms")
    print(f"p99 latency     : {stats.p99_latency * 1e3:.2f} ms")
    print(f"throughput      : {stats.throughput:.0f} req/s")
    print(f"mean batch      : {stats.mean_batch:.2f} (cap {args.batch_cap})")
    print(f"weight refreshes: {stats.refreshes}")
    print(f"staleness       : max {stats.max_staleness} steps, "
          f"mean {stats.mean_staleness:.2f}")

    from repro.trace import InvariantViolation, check_all, to_chrome, to_jsonl

    try:
        ran = check_all(trace)
        print(f"invariants      : {', '.join(ran)} ok")
    except InvariantViolation as exc:
        print(f"invariant violated: {exc}", file=sys.stderr)
        return 3
    if args.trace:
        if args.trace.endswith(".jsonl"):
            to_jsonl(trace, args.trace)
        else:
            to_chrome(trace, args.trace)
        print(f"trace written to {args.trace} ({len(trace)} events)")
    if args.json:
        import json

        payload = {
            "method": result.method,
            "iterations": result.iterations,
            "final_accuracy": result.final_accuracy,
            "publishes": snapshotter.publishes,
            "serve": stats.to_dict(),
            "knobs": {
                "loop": args.loop, "arrival": args.arrival,
                "batch_cap": args.batch_cap, "max_wait": args.max_wait,
                "max_staleness_steps": args.max_staleness_steps,
                "refresh_policy": args.refresh_policy,
                "publish_every": args.publish_every,
            },
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"stats written to {args.json}")
    snapshotter.close()
    return 0


def _parse_grid(spec_text: str, config: TrainerConfig):
    """Parse ``'lr=0.01,0.03;rho=1.5,3.0'`` into a grid dict.

    Values are coerced to the type of the named :class:`TrainerConfig`
    field (``batch_size=16,32`` stays int, ``lr=...`` becomes float).
    """
    grid: dict = {}
    for axis in spec_text.split(";"):
        axis = axis.strip()
        if not axis:
            continue
        name, eq, values = axis.partition("=")
        name = name.strip()
        if not eq:
            raise ValueError(f"grid axis {axis!r} needs name=v1,v2,...")
        if not hasattr(config, name):
            raise ValueError(f"unknown TrainerConfig field {name!r}")
        current = getattr(config, name)
        cast = int if isinstance(current, int) and not isinstance(current, bool) else float
        try:
            grid[name] = [cast(v) for v in values.split(",") if v.strip()]
        except ValueError:
            raise ValueError(f"grid axis {name!r}: could not parse {values!r}")
        if not grid[name]:
            raise ValueError(f"grid axis {name!r} has no values")
    if not grid:
        raise ValueError("empty grid")
    return grid


def _cmd_sweep(args: argparse.Namespace) -> int:
    import os

    from repro.harness.sweeps import best_point, grid_sweep

    train, test = _DATASETS[args.dataset](
        n_train=args.train_samples,
        n_test=max(args.train_samples // 4, 256),
        seed=args.seed,
        difficulty=args.difficulty,
    )
    builder = _MODELS[args.model]
    if args.dataset == "cifar" and args.model in ("mlp", "lenet"):
        spec_builder = lambda: builder(input_shape=(3, 32, 32), seed=args.seed)  # noqa: E731
    else:
        spec_builder = lambda: builder(seed=args.seed)  # noqa: E731
    config = TrainerConfig(batch_size=args.batch_size, lr=args.lr,
                           rho=args.rho, seed=args.seed)
    try:
        grid = _parse_grid(args.grid, config)
    except ValueError as exc:
        print(f"invalid --grid spec: {exc}", file=sys.stderr)
        return 2
    spec = ExperimentSpec(
        train_set=train, test_set=test, model_builder=spec_builder,
        num_gpus=args.gpus, config=config,
    ).normalize()

    n_cells = 1
    for values in grid.values():
        n_cells *= len(values)
    pooled = args.pool or args.pool_size is not None
    pool_size = None
    if pooled:
        pool_size = args.pool_size or min(n_cells, os.cpu_count() or 4, 8)
        if pool_size < 1:
            print("--pool-size must be >= 1", file=sys.stderr)
            return 2
    points = grid_sweep(
        spec, args.method, grid, args.iterations,
        pool_size=pool_size, backend=args.backend,
        checkpoint_root=args.checkpoint_root,
    )

    axes = sorted(grid)
    header = tuple(axes) + ("accuracy", "wall s", "spinup s")
    rows = [
        tuple(f"{p.params[k]:g}" for k in axes)
        + (f"{p.final_accuracy:.3f}", f"{p.wall_time:.2f}", f"{p.spinup_time:.2f}")
        for p in points
    ]
    widths = [max(len(r[i]) for r in [header] + rows) for i in range(len(header))]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    total_wall = sum(p.wall_time for p in points)
    total_spin = sum(p.spinup_time for p in points)
    mode = f"pooled over {pool_size} workers" if pooled else "inline"
    print(f"\n{n_cells} cells ({mode}): {total_wall:.2f} s wall, "
          f"{total_spin:.2f} s spin-up")
    best = best_point(points, target=args.target)
    label = ", ".join(f"{k}={best.params[k]:g}" for k in axes)
    if args.target is not None:
        t = best.time_to(args.target)
        reach = f"reaches {args.target:.3f} in {t:.3f} s" if t is not None \
            else f"never reaches {args.target:.3f}"
        print(f"best: {label} ({reach})")
    else:
        print(f"best: {label} (accuracy {best.final_accuracy:.3f})")
    if args.json:
        import json

        payload = {
            "method": args.method, "iterations": args.iterations,
            "grid": {k: list(v) for k, v in grid.items()},
            "pooled": pooled, "pool_size": pool_size,
            "points": [
                {
                    "params": p.params, "final_accuracy": p.final_accuracy,
                    "wall_time": p.wall_time, "spinup_time": p.spinup_time,
                }
                for p in points
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"sweep written to {args.json}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    args = _build_parser().parse_args(argv)
    # Post-mortem sweep: unlink shm debris from earlier runs that died by
    # signal (their atexit cleanup never fired; their pids are embedded in
    # the segment names, so live runs are never touched).
    from repro.comm.shm_lifecycle import reap_stale_segments

    reap_stale_segments()
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "table":
            return _cmd_table(args)
        if args.command == "knl":
            return _cmd_knl(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
    except BrokenPipeError:  # e.g. `repro list | head` — not an error
        return 0
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
