"""The standard experiment runner: one spec, many methods, fair comparison.

The paper's protocol (Section 2.4): "All algorithmic comparisons used the
same hardware and the same hyper-parameters." An :class:`ExperimentSpec`
pins dataset, model builder, platform shape, hyperparameters, and the cost
model once; ``run_method(s)`` then instantiates each trainer from the same
frozen ingredients so no method sees different data or constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from repro.algorithms.base import RunResult, TrainerConfig
from repro.algorithms.registry import make_trainer
from repro.cluster.cost import CostModel
from repro.cluster.platform import GpuPlatform
from repro.data.dataset import Dataset
from repro.data.normalize import standardize, standardize_like
from repro.nn.network import Network

__all__ = ["ExperimentSpec", "build_trainer", "run_method", "run_methods"]


@dataclass
class ExperimentSpec:
    """Everything an algorithm comparison holds fixed."""

    train_set: Dataset
    test_set: Dataset
    model_builder: Callable[[], Network]  # fresh identical model per method
    num_gpus: int = 4
    config: TrainerConfig = field(default_factory=TrainerConfig)
    cost_model: Optional[CostModel] = None  # None -> self-consistent costing
    jitter_sigma: float = 0.08
    normalized: bool = False

    def normalize(self) -> "ExperimentSpec":
        """Apply Algorithm 1 line 1 once (idempotent): train-set statistics."""
        if not self.normalized:
            mean, std = standardize(self.train_set)
            standardize_like(self.test_set, mean, std)
            self.normalized = True
        return self

    def make_platform(self) -> GpuPlatform:
        """A fresh platform so per-worker jitter streams restart identically."""
        return GpuPlatform(
            num_gpus=self.num_gpus,
            jitter_sigma=self.jitter_sigma,
            seed=self.config.seed,
        )


def build_trainer(spec: ExperimentSpec, method: str, **trainer_kwargs):
    """Instantiate the trainer for ``method`` from the frozen spec.

    The spin-up half of :func:`run_method`: fresh model, fresh platform
    (identical jitter streams), shared datasets. Split out so sweep
    drivers can time construction separately from the training loop.
    """
    return make_trainer(
        method,
        spec.model_builder(),
        spec.train_set,
        spec.test_set,
        spec.make_platform(),
        spec.config,
        spec.cost_model,
        **trainer_kwargs,
    )


def run_method(
    spec: ExperimentSpec,
    method: str,
    iterations: Optional[int] = None,
    target_accuracy: Optional[float] = None,
    max_iterations: int = 20_000,
    resume: bool = False,
    snapshotter=None,
    **trainer_kwargs,
) -> RunResult:
    """Run one registered method under the spec.

    Exactly one of ``iterations`` (fixed-length run) or ``target_accuracy``
    (Table 3 protocol: run until the target, report truncated time) must be
    given. ``resume=True`` continues a fixed-length run from the newest
    checkpoint under ``spec.config.checkpoint_dir``. ``snapshotter``
    attaches a serving-tier publisher to a fixed-length run.
    """
    if (iterations is None) == (target_accuracy is None):
        raise ValueError("pass exactly one of iterations / target_accuracy")
    if snapshotter is not None and iterations is None:
        raise ValueError("snapshotter requires a fixed-length run")
    trainer = build_trainer(spec, method, **trainer_kwargs)
    if iterations is not None:
        return trainer.train(iterations, resume=resume, snapshotter=snapshotter)
    if resume:
        raise ValueError("resume is only supported with fixed-length runs")
    return trainer.train_to_accuracy(target_accuracy, max_iterations)


def _method_cell_main(
    ctx,
    spec: ExperimentSpec,
    method: str,
    iterations: Optional[int],
    target_accuracy: Optional[float],
    max_iterations: int,
) -> RunResult:
    """One method comparison as a 1-rank pool cell (``ctx`` unused: the
    registered trainers are engine-driven, not message-passing)."""
    return run_method(spec, method, iterations, target_accuracy, max_iterations)


def run_methods(
    spec: ExperimentSpec,
    methods: Iterable[str],
    iterations: Optional[int] = None,
    target_accuracy: Optional[float] = None,
    max_iterations: int = 20_000,
    pool=None,
) -> Dict[str, RunResult]:
    """Run several methods under identical conditions; keyed by method name.

    ``pool`` (a :class:`repro.pool.WorkerPool`) runs the methods as
    concurrent 1-rank cells over the shared workers instead of
    sequentially — same per-method numerics (each cell builds its own
    trainer from the frozen spec), sweep-level wall-clock only. Create
    the pool with ``payload=spec`` *after* ``spec.normalize()`` so the
    datasets ride fork inheritance instead of the dispatch pipe.
    """
    methods = list(methods)
    if pool is None:
        return {
            m: run_method(spec, m, iterations, target_accuracy, max_iterations)
            for m in methods
        }
    from repro.pool import POOL_PAYLOAD, SweepCell, SweepScheduler

    spec_ref = POOL_PAYLOAD if pool.payload is spec else spec
    cells = [
        SweepCell(
            key=f"method-{m}",
            fn=_method_cell_main,
            args=(spec_ref, m, iterations, target_accuracy, max_iterations),
        )
        for m in methods
    ]
    outcomes = SweepScheduler(pool).run(cells)
    return {m: outcome.result for m, outcome in zip(methods, outcomes)}
