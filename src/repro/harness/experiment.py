"""The standard experiment runner: one spec, many methods, fair comparison.

The paper's protocol (Section 2.4): "All algorithmic comparisons used the
same hardware and the same hyper-parameters." An :class:`ExperimentSpec`
pins dataset, model builder, platform shape, hyperparameters, and the cost
model once; ``run_method(s)`` then instantiates each trainer from the same
frozen ingredients so no method sees different data or constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from repro.algorithms.base import RunResult, TrainerConfig
from repro.algorithms.registry import make_trainer
from repro.cluster.cost import CostModel
from repro.cluster.platform import GpuPlatform
from repro.data.dataset import Dataset
from repro.data.normalize import standardize, standardize_like
from repro.nn.network import Network

__all__ = ["ExperimentSpec", "run_method", "run_methods"]


@dataclass
class ExperimentSpec:
    """Everything an algorithm comparison holds fixed."""

    train_set: Dataset
    test_set: Dataset
    model_builder: Callable[[], Network]  # fresh identical model per method
    num_gpus: int = 4
    config: TrainerConfig = field(default_factory=TrainerConfig)
    cost_model: Optional[CostModel] = None  # None -> self-consistent costing
    jitter_sigma: float = 0.08
    normalized: bool = False

    def normalize(self) -> "ExperimentSpec":
        """Apply Algorithm 1 line 1 once (idempotent): train-set statistics."""
        if not self.normalized:
            mean, std = standardize(self.train_set)
            standardize_like(self.test_set, mean, std)
            self.normalized = True
        return self

    def make_platform(self) -> GpuPlatform:
        """A fresh platform so per-worker jitter streams restart identically."""
        return GpuPlatform(
            num_gpus=self.num_gpus,
            jitter_sigma=self.jitter_sigma,
            seed=self.config.seed,
        )


def run_method(
    spec: ExperimentSpec,
    method: str,
    iterations: Optional[int] = None,
    target_accuracy: Optional[float] = None,
    max_iterations: int = 20_000,
    resume: bool = False,
    snapshotter=None,
    **trainer_kwargs,
) -> RunResult:
    """Run one registered method under the spec.

    Exactly one of ``iterations`` (fixed-length run) or ``target_accuracy``
    (Table 3 protocol: run until the target, report truncated time) must be
    given. ``resume=True`` continues a fixed-length run from the newest
    checkpoint under ``spec.config.checkpoint_dir``. ``snapshotter``
    attaches a serving-tier publisher to a fixed-length run.
    """
    if (iterations is None) == (target_accuracy is None):
        raise ValueError("pass exactly one of iterations / target_accuracy")
    if snapshotter is not None and iterations is None:
        raise ValueError("snapshotter requires a fixed-length run")
    trainer = make_trainer(
        method,
        spec.model_builder(),
        spec.train_set,
        spec.test_set,
        spec.make_platform(),
        spec.config,
        spec.cost_model,
        **trainer_kwargs,
    )
    if iterations is not None:
        return trainer.train(iterations, resume=resume, snapshotter=snapshotter)
    if resume:
        raise ValueError("resume is only supported with fixed-length runs")
    return trainer.train_to_accuracy(target_accuracy, max_iterations)


def run_methods(
    spec: ExperimentSpec,
    methods: Iterable[str],
    iterations: Optional[int] = None,
    target_accuracy: Optional[float] = None,
    max_iterations: int = 20_000,
) -> Dict[str, RunResult]:
    """Run several methods under identical conditions; keyed by method name."""
    return {
        m: run_method(spec, m, iterations, target_accuracy, max_iterations)
        for m in methods
    }
