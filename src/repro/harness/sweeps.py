"""Hyperparameter sweeps — the workload the paper's introduction motivates.

"Deep learning researchers often need to tune many hyperparameters, which
is extremely time-consuming" (Section 1) — that is exactly why the
Θ(log P) Sync EASGD matters. This module runs a grid of (lr, rho, ...)
configurations through one method under the fair-comparison protocol and
ranks the outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import RunResult, TrainerConfig
from repro.harness.experiment import ExperimentSpec, run_method

__all__ = ["SweepPoint", "grid_sweep", "best_point"]


@dataclass
class SweepPoint:
    """One grid cell's configuration and outcome."""

    params: Dict[str, float]
    result: RunResult

    @property
    def final_accuracy(self) -> float:
        return self.result.final_accuracy

    def time_to(self, target: float) -> Optional[float]:
        return self.result.time_to_accuracy(target)


def grid_sweep(
    spec: ExperimentSpec,
    method: str,
    grid: Dict[str, Sequence[float]],
    iterations: int,
) -> List[SweepPoint]:
    """Run ``method`` at every point of the cartesian ``grid``.

    ``grid`` keys must be :class:`TrainerConfig` fields (``lr``, ``rho``,
    ``mu``, ``batch_size``, ...). Each point gets a fresh model and
    platform (identical seeds), so only the swept values differ.
    """
    if not grid:
        raise ValueError("grid must contain at least one axis")
    for key in grid:
        if not hasattr(spec.config, key):
            raise KeyError(f"unknown TrainerConfig field {key!r}")
    if any(len(values) == 0 for values in grid.values()):
        raise ValueError("every grid axis needs at least one value")

    keys = sorted(grid)
    points: List[SweepPoint] = []
    for combo in itertools.product(*(grid[k] for k in keys)):
        params = dict(zip(keys, combo))
        swept = ExperimentSpec(
            train_set=spec.train_set,
            test_set=spec.test_set,
            model_builder=spec.model_builder,
            num_gpus=spec.num_gpus,
            config=replace(spec.config, **params),
            cost_model=spec.cost_model,
            jitter_sigma=spec.jitter_sigma,
            normalized=True,  # shares the (already normalized) arrays
        )
        result = run_method(swept, method, iterations=iterations)
        points.append(SweepPoint(params=params, result=result))
    return points


def best_point(
    points: Sequence[SweepPoint], target: Optional[float] = None
) -> SweepPoint:
    """Pick the winner: fastest to ``target``, or highest final accuracy.

    Points that never reach the target are ranked after all that do.
    """
    if not points:
        raise ValueError("no sweep points")
    if target is None:
        return max(points, key=lambda p: p.final_accuracy)

    def key(p: SweepPoint) -> Tuple[int, float]:
        t = p.time_to(target)
        return (0, t) if t is not None else (1, -p.final_accuracy)

    return min(points, key=key)
