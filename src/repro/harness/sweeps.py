"""Hyperparameter sweeps — the workload the paper's introduction motivates.

"Deep learning researchers often need to tune many hyperparameters, which
is extremely time-consuming" (Section 1) — that is exactly why the
Θ(log P) Sync EASGD matters. This module runs a grid of (lr, rho, ...)
configurations through one method under the fair-comparison protocol and
ranks the outcomes.

Two execution disciplines share one entry point:

- **inline** (the default): every grid cell builds and trains its
  trainer in this process, sequentially — the cold baseline.
- **pooled** (``pool=`` or ``pool_size=``): cells become 1-rank
  :class:`repro.pool.SweepCell` units multiplexed over a persistent
  :class:`repro.pool.WorkerPool` by a :class:`repro.pool.SweepScheduler`
  — spin-up (fork, shm arenas, trainer construction) is paid once per
  worker instead of once per cell, with bit-identical per-cell results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
import itertools
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import RunResult
from repro.harness.experiment import ExperimentSpec, build_trainer

__all__ = ["SweepPoint", "grid_sweep", "best_point"]


@dataclass
class SweepPoint:
    """One grid cell's configuration and outcome."""

    params: Dict[str, float]
    result: RunResult
    #: Wall seconds from cell dispatch to completion (build + train).
    wall_time: float = 0.0
    #: Seconds of pure spin-up inside ``wall_time``: dispatch/fork latency
    #: plus trainer construction — the share a persistent pool amortizes.
    spinup_time: float = 0.0

    @property
    def final_accuracy(self) -> float:
        return self.result.final_accuracy

    def time_to(self, target: float) -> Optional[float]:
        return self.result.time_to_accuracy(target)


def _cell_key(params: Dict[str, Any]) -> str:
    """A stable, human-readable identity for one grid cell."""
    return ",".join(f"{k}={params[k]}" for k in sorted(params))


def _swept_spec(spec: ExperimentSpec, params: Dict[str, Any]) -> ExperimentSpec:
    return ExperimentSpec(
        train_set=spec.train_set,
        test_set=spec.test_set,
        model_builder=spec.model_builder,
        num_gpus=spec.num_gpus,
        config=replace(spec.config, **params),
        cost_model=spec.cost_model,
        jitter_sigma=spec.jitter_sigma,
        normalized=True,  # shares the (already normalized) arrays
    )


def _sweep_cell_main(
    ctx: Any,
    spec: ExperimentSpec,
    method: str,
    params: Dict[str, Any],
    iterations: int,
    checkpoint_root: Optional[str],
) -> Tuple[float, RunResult]:
    """One grid cell as a 1-rank pool program: build, maybe resume, train.

    Returns ``(build_seconds, result)`` so the driver can fold trainer
    construction into the cell's spin-up share. ``checkpoint_root``
    threads PR 6 durability through the sweep: the cell checkpoints under
    ``<root>/cells/<key>`` and resumes from the newest version there, so
    a preempted sweep re-run only pays the unfinished tail of each cell.
    """
    swept = _swept_spec(spec, params)
    resume = False
    if checkpoint_root is not None:
        cell_dir = os.path.join(checkpoint_root, "cells", _cell_key(params))
        every = swept.config.checkpoint_every or max(1, iterations // 4)
        swept.config = replace(
            swept.config, checkpoint_every=every, checkpoint_dir=cell_dir
        )
        from repro.durability.checkpoint import list_versions

        resume = os.path.isdir(cell_dir) and bool(list_versions(cell_dir))
    t0 = time.monotonic()
    trainer = build_trainer(swept, method)
    build_s = time.monotonic() - t0
    return build_s, trainer.train(iterations, resume=resume)


def grid_sweep(
    spec: ExperimentSpec,
    method: str,
    grid: Dict[str, Sequence[float]],
    iterations: int,
    *,
    pool: Optional[Any] = None,
    pool_size: Optional[int] = None,
    backend: str = "processes",
    checkpoint_root: Optional[str] = None,
    timeout: Optional[float] = None,
) -> List[SweepPoint]:
    """Run ``method`` at every point of the cartesian ``grid``.

    ``grid`` keys must be :class:`TrainerConfig` fields (``lr``, ``rho``,
    ``mu``, ``batch_size``, ...). Each point gets a fresh model and
    platform (identical seeds), so only the swept values differ.

    ``pool`` multiplexes the cells over an existing
    :class:`repro.pool.WorkerPool`; ``pool_size`` creates (and closes) a
    dedicated pool of that many ``backend`` workers for this call. Either
    way the per-cell numerics are bit-identical to the inline path — the
    pool only changes who pays spin-up. ``checkpoint_root`` makes the
    sweep preemptible: finished cells leave done-markers and running
    cells checkpoint under ``<root>/cells/<key>``, so a killed sweep
    resumes instead of recomputing.
    """
    if not grid:
        raise ValueError("grid must contain at least one axis")
    for key in grid:
        if not hasattr(spec.config, key):
            raise KeyError(f"unknown TrainerConfig field {key!r}")
    if any(len(values) == 0 for values in grid.values()):
        raise ValueError("every grid axis needs at least one value")
    if pool is not None and pool_size is not None:
        raise ValueError("pass pool or pool_size, not both")

    keys = sorted(grid)
    cells_params = [
        dict(zip(keys, combo))
        for combo in itertools.product(*(grid[k] for k in keys))
    ]
    if pool is not None or pool_size is not None:
        return _grid_sweep_pooled(
            spec, method, cells_params, iterations,
            pool=pool, pool_size=pool_size, backend=backend,
            checkpoint_root=checkpoint_root, timeout=timeout,
        )

    points: List[SweepPoint] = []
    for params in cells_params:
        t_submit = time.monotonic()
        build_s, result = _sweep_cell_main(
            None, spec, method, params, iterations, checkpoint_root
        )
        wall = time.monotonic() - t_submit
        points.append(SweepPoint(
            params=params, result=result, wall_time=wall, spinup_time=build_s,
        ))
    return points


def _grid_sweep_pooled(
    spec: ExperimentSpec,
    method: str,
    cells_params: List[Dict[str, Any]],
    iterations: int,
    pool: Optional[Any],
    pool_size: Optional[int],
    backend: str,
    checkpoint_root: Optional[str],
    timeout: Optional[float],
) -> List[SweepPoint]:
    from repro.comm.runtime import _DEFAULT_TIMEOUT
    from repro.pool import POOL_PAYLOAD, SweepCell, SweepScheduler, WorkerPool

    owned = pool is None
    pool_obj = pool if pool is not None else WorkerPool(
        pool_size, backend=backend, payload=spec
    )
    try:
        # Ship the (large) spec through fork inheritance when the pool
        # was built around it; over the dispatch pipe otherwise.
        spec_ref = POOL_PAYLOAD if pool_obj.payload is spec else spec
        sched = SweepScheduler(
            pool_obj,
            timeout=timeout if timeout is not None else _DEFAULT_TIMEOUT,
            checkpoint_root=checkpoint_root,
        )
        cells = [
            SweepCell(
                key=_cell_key(params),
                fn=_sweep_cell_main,
                args=(spec_ref, method, params, iterations, checkpoint_root),
            )
            for params in cells_params
        ]
        outcomes = sched.run(cells)
    finally:
        if owned:
            pool_obj.close()
    points: List[SweepPoint] = []
    for params, outcome in zip(cells_params, outcomes):
        build_s, result = outcome.result
        points.append(SweepPoint(
            params=params, result=result, wall_time=outcome.wall_time,
            spinup_time=outcome.spinup_time + build_s,
        ))
    return points


def best_point(
    points: Sequence[SweepPoint], target: Optional[float] = None
) -> SweepPoint:
    """Pick the winner: fastest to ``target``, or highest final accuracy.

    Points that never reach the target are ranked after all that do.
    """
    if not points:
        raise ValueError("no sweep points")
    if target is None:
        return max(points, key=lambda p: p.final_accuracy)

    def key(p: SweepPoint) -> Tuple[int, float]:
        t = p.time_to(target)
        return (0, t) if t is not None else (1, -p.final_accuracy)

    return min(points, key=key)
