"""Table 3 machinery: per-method time breakdown rows and rendering.

Table 3's columns: method, accuracy, iterations, time, then the fraction of
total time in each of the six parts, then the communication ratio. Rows are
built from :class:`repro.algorithms.base.RunResult` objects produced under
the ``train_to_accuracy`` protocol (all methods run to the same accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.algorithms.base import BREAKDOWN_PARTS, RunResult
from repro.util.format import format_percent, format_seconds
from repro.util.tables import TextTable

__all__ = ["Table3Row", "breakdown_row", "render_table3", "speedup_over"]


@dataclass(frozen=True)
class Table3Row:
    """One rendered row of Table 3."""

    method: str
    accuracy: float
    iterations: int
    seconds: float
    fractions: Dict[str, float]
    comm_ratio: float


def breakdown_row(result: RunResult) -> Table3Row:
    """Convert a finished run into a Table 3 row."""
    return Table3Row(
        method=result.method,
        accuracy=result.final_accuracy,
        iterations=result.iterations,
        seconds=result.sim_time,
        fractions=result.breakdown.fractions(),
        comm_ratio=result.breakdown.comm_ratio,
    )


def render_table3(rows: Iterable[Table3Row]) -> str:
    """Monospace rendering mirroring the paper's Table 3 column order."""
    table = TextTable(
        ["Method", "accuracy", "iterations", "time"]
        + list(BREAKDOWN_PARTS)
        + ["comm ratio"]
    )
    for row in rows:
        table.add_row(
            [row.method, f"{row.accuracy:.3f}", row.iterations, format_seconds(row.seconds)]
            + [format_percent(row.fractions[p]) for p in BREAKDOWN_PARTS]
            + [format_percent(row.comm_ratio)]
        )
    return table.render()


def speedup_over(rows: List[Table3Row], baseline: str, method: str) -> float:
    """Time-to-accuracy speedup of ``method`` over ``baseline``.

    The paper's headline: Sync EASGD3 is 5.3x over Original EASGD.
    """
    by_name = {r.method: r for r in rows}
    try:
        base, fast = by_name[baseline], by_name[method]
    except KeyError as exc:
        raise KeyError(f"row {exc} not present; have {sorted(by_name)}") from None
    if fast.seconds <= 0:
        raise ValueError(f"{method} has non-positive time")
    return base.seconds / fast.seconds
