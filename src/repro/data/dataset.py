"""Dataset container shared by generators, samplers, and trainers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """An in-memory labeled image dataset.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"mnist-like"``).
    images:
        ``(N, C, H, W)`` float32 array.
    labels:
        ``(N,)`` int64 array of class indices in ``[0, num_classes)``.
    num_classes:
        Number of distinct classes.
    """

    name: str
    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.images.ndim != 4:
            raise ValueError(f"images must be (N, C, H, W), got shape {self.images.shape}")
        if self.labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {self.labels.shape}")
        if len(self.images) != len(self.labels):
            raise ValueError(
                f"{len(self.images)} images but {len(self.labels)} labels"
            )
        if self.num_classes <= 1:
            raise ValueError("num_classes must be >= 2")
        if len(self.labels) and (
            self.labels.min() < 0 or self.labels.max() >= self.num_classes
        ):
            raise ValueError("labels out of range for num_classes")

    def __len__(self) -> int:
        return len(self.images)

    @property
    def sample_shape(self) -> tuple:
        """``(C, H, W)`` of a single image."""
        return tuple(self.images.shape[1:])

    @property
    def nbytes(self) -> int:
        """Total size of the image payload in bytes."""
        return int(self.images.nbytes)

    def subset(self, indices: np.ndarray, name: str | None = None) -> "Dataset":
        """Return a new dataset restricted to ``indices`` (copies the slices)."""
        indices = np.asarray(indices)
        return Dataset(
            name=name or self.name,
            images=self.images[indices],
            labels=self.labels[indices],
            num_classes=self.num_classes,
            meta=dict(self.meta),
        )
