"""Dataset persistence: save/load the synthetic datasets as ``.npz``.

Generating the larger synthetic sets takes seconds; experiments that sweep
many methods over one dataset can generate once and reload, and archived
datasets make published runs exactly re-checkable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def save_dataset(dataset: Dataset, path: Union[str, Path]) -> None:
    """Write images, labels, and metadata to an ``.npz`` file."""
    meta = {
        "format": _FORMAT_VERSION,
        "name": dataset.name,
        "num_classes": dataset.num_classes,
        "meta": dataset.meta,
    }
    np.savez_compressed(
        Path(path),
        images=dataset.images,
        labels=dataset.labels,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )


def load_dataset(path: Union[str, Path]) -> Dataset:
    """Load a dataset written by :func:`save_dataset` (validates format)."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("format") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format {meta.get('format')!r}; "
                f"expected {_FORMAT_VERSION}"
            )
        return Dataset(
            name=meta["name"],
            images=np.array(data["images"]),
            labels=np.array(data["labels"]),
            num_classes=int(meta["num_classes"]),
            meta=dict(meta["meta"]),
        )
