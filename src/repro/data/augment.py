"""Training-time data augmentation (the standard CIFAR/ImageNet recipe).

The paper's pipelines (Caffe) crop and mirror training images; these are
the vectorized equivalents. Augmentations apply per *batch* and draw from
a named seeded stream so augmented runs stay reproducible.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.loader import BatchSampler
from repro.util.rng import spawn_rng

__all__ = ["random_horizontal_flip", "random_shift_crop", "AugmentingSampler"]


def random_horizontal_flip(
    images: np.ndarray, rng: np.random.Generator, prob: float = 0.5
) -> np.ndarray:
    """Mirror a random subset of the batch along the width axis."""
    if not 0.0 <= prob <= 1.0:
        raise ValueError("prob must be in [0, 1]")
    flip = rng.random(len(images)) < prob
    if not flip.any():
        return images
    out = images.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out


def random_shift_crop(
    images: np.ndarray, rng: np.random.Generator, max_shift: int = 2
) -> np.ndarray:
    """Pad-and-crop translation: each image shifts by up to ``max_shift``
    pixels per axis (zeros fill the exposed border)."""
    if max_shift < 0:
        raise ValueError("max_shift must be non-negative")
    if max_shift == 0:
        return images
    n, c, h, w = images.shape
    padded = np.pad(
        images,
        ((0, 0), (0, 0), (max_shift, max_shift), (max_shift, max_shift)),
        mode="constant",
    )
    offsets_h = rng.integers(0, 2 * max_shift + 1, size=n)
    offsets_w = rng.integers(0, 2 * max_shift + 1, size=n)
    out = np.empty_like(images)
    for i in range(n):  # per-sample window; n is a batch, not the dataset
        oh, ow = offsets_h[i], offsets_w[i]
        out[i] = padded[i, :, oh : oh + h, ow : ow + w]
    return out


class AugmentingSampler:
    """A :class:`BatchSampler` wrapper applying flip + shift per batch."""

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        seed: int,
        name: object = "augment",
        flip_prob: float = 0.5,
        max_shift: int = 2,
    ) -> None:
        self._inner = BatchSampler(dataset, batch_size, seed, name=name)
        self._rng = spawn_rng(seed, "augment", name)
        self.flip_prob = flip_prob
        self.max_shift = max_shift

    @property
    def batches_drawn(self) -> int:
        return self._inner.batches_drawn

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        images, labels = self._inner.next_batch()
        images = random_horizontal_flip(images, self._rng, self.flip_prob)
        images = random_shift_crop(images, self._rng, self.max_shift)
        return images, labels
