"""Synthetic stand-ins for the paper's datasets (Table 1).

The paper trains on MNIST, CIFAR-10, and ImageNet (ILSVRC-2012). Those files
are not available offline, so this package generates deterministic,
class-conditional synthetic datasets with the *same tensor geometry*
(28x28x1/10 classes, 3x32x32/10 classes, 3xHxW/many classes) that are
learnable by the mini networks in :mod:`repro.nn.models`. Accuracy-vs-time
comparisons between training algorithms remain meaningful because every
algorithm consumes the same sample stream through the same model.
"""

from repro.data.augment import AugmentingSampler, random_horizontal_flip, random_shift_crop
from repro.data.dataset import Dataset
from repro.data.io import load_dataset, save_dataset
from repro.data.loader import BatchSampler, partition_dataset, replicate_dataset
from repro.data.normalize import standardize, standardize_like
from repro.data.synthetic import (
    DATASET_GEOMETRY,
    make_cifar_like,
    make_imagenet_like,
    make_mnist_like,
)

__all__ = [
    "Dataset",
    "make_mnist_like",
    "make_cifar_like",
    "make_imagenet_like",
    "DATASET_GEOMETRY",
    "standardize",
    "standardize_like",
    "BatchSampler",
    "partition_dataset",
    "replicate_dataset",
    "AugmentingSampler",
    "random_horizontal_flip",
    "random_shift_crop",
    "save_dataset",
    "load_dataset",
]
