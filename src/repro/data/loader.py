"""Batch sampling and data-parallel partitioning.

The paper's algorithms "randomly pick b samples" each iteration (Algorithms
1-4, line 8/10). :class:`BatchSampler` reproduces that with an independent
seeded stream per consumer. ``partition_dataset`` implements the data-
parallel split of Section 2.3; ``replicate_dataset`` implements the weak-
scaling protocol of Section 7.1 where *each node holds a full copy* of the
dataset and total data grows with the node count.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.data.dataset import Dataset
from repro.util.rng import spawn_rng

__all__ = ["BatchSampler", "partition_dataset", "replicate_dataset"]


class BatchSampler:
    """Uniform-with-replacement batch sampler, matching the paper's
    "randomly picks b samples" step.

    Each sampler owns an independent RNG stream derived from
    ``(seed, name)`` so that samplers on different simulated workers draw
    independent batches and remain reproducible under any interleaving.
    """

    def __init__(self, dataset: Dataset, batch_size: int, seed: int, name: object = "sampler") -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if batch_size > len(dataset):
            raise ValueError(
                f"batch_size {batch_size} exceeds dataset size {len(dataset)}"
            )
        self.dataset = dataset
        self.batch_size = batch_size
        self._rng = spawn_rng(seed, "batch-sampler", name)
        self.batches_drawn = 0

    def next_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(images, labels)`` for one random batch."""
        idx = self._rng.integers(0, len(self.dataset), size=self.batch_size)
        self.batches_drawn += 1
        return self.dataset.images[idx], self.dataset.labels[idx]

    def next_batch_into(
        self, images_out: np.ndarray, labels_out: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw the next batch directly into caller-owned buffers.

        Consumes the same RNG draw as :meth:`next_batch` and gathers with
        ``np.take(..., out=...)``, so the values (and the stream position)
        are bit-identical to the allocating form — this is the hot-loop
        variant used with a :class:`repro.comm.arena.BufferArena` so
        steady-state training steps allocate nothing for batch staging.
        """
        idx = self._rng.integers(0, len(self.dataset), size=self.batch_size)
        self.batches_drawn += 1
        np.take(self.dataset.images, idx, axis=0, out=images_out)
        np.take(self.dataset.labels, idx, axis=0, out=labels_out)
        return images_out, labels_out

    def get_state(self) -> dict:
        """Snapshot the data cursor: RNG position + batches drawn."""
        return {
            "bit_generator": self._rng.bit_generator.state,
            "batches_drawn": self.batches_drawn,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot; the next draw continues the saved sequence."""
        self._rng.bit_generator.state = state["bit_generator"]
        self.batches_drawn = int(state["batches_drawn"])

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        while True:
            yield self.next_batch()


def partition_dataset(dataset: Dataset, parts: int, seed: int = 0) -> List[Dataset]:
    """Shuffle and split a dataset into ``parts`` near-equal shards.

    This is classic data parallelism (Figure 4.1): the dataset is partitioned
    into P parts and each machine gets one part.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if parts > len(dataset):
        raise ValueError(f"cannot split {len(dataset)} samples into {parts} parts")
    rng = spawn_rng(seed, "partition")
    order = rng.permutation(len(dataset))
    shards = np.array_split(order, parts)
    return [
        dataset.subset(shard, name=f"{dataset.name}[shard {i}/{parts}]")
        for i, shard in enumerate(shards)
    ]


def replicate_dataset(dataset: Dataset, copies: int) -> List[Dataset]:
    """Weak-scaling replication: every node gets the whole dataset.

    Section 7.1: "Each node processes one copy of Cifar dataset... we
    increase the total data size as we increase the number of machines."
    The returned datasets share the underlying arrays (views, not copies).
    """
    if copies <= 0:
        raise ValueError("copies must be positive")
    return [
        Dataset(
            name=f"{dataset.name}[replica {i}/{copies}]",
            images=dataset.images,
            labels=dataset.labels,
            num_classes=dataset.num_classes,
            meta=dict(dataset.meta),
        )
        for i in range(copies)
    ]
