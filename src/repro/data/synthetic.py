"""Deterministic synthetic image datasets mirroring the paper's Table 1.

Each class has a smooth random prototype pattern; a sample is its class
prototype under a small random translation, a per-sample gain, and additive
Gaussian noise. ``difficulty`` scales the noise relative to the prototype
separation, so tests can generate near-trivial sets and experiments can
generate sets where accuracy climbs gradually over thousands of SGD steps
(the regime Figures 6/8/13 live in).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.util.rng import spawn_rng

__all__ = [
    "DATASET_GEOMETRY",
    "make_class_prototypes",
    "make_synthetic",
    "make_mnist_like",
    "make_cifar_like",
    "make_imagenet_like",
]

#: Geometry of the paper's datasets (Table 1): (channels, height, width, classes,
#: train size, test size). ImageNet is listed at its true geometry; the
#: generator defaults scale it down so experiments stay laptop-sized, while
#: the cost model (repro.nn.spec) always uses the full-scale numbers.
DATASET_GEOMETRY = {
    "mnist": dict(channels=1, height=28, width=28, classes=10, train=60_000, test=10_000),
    "cifar": dict(channels=3, height=32, width=32, classes=10, train=50_000, test=10_000),
    "imagenet": dict(
        channels=3, height=256, width=256, classes=1000, train=1_200_000, test=150_000
    ),
}


def _smooth_field(rng: np.random.Generator, channels: int, height: int, width: int) -> np.ndarray:
    """A smooth random pattern: white noise blurred by separable box passes.

    Smoothness makes prototypes resemble low-frequency image content, which
    convolution layers pick up quickly — like digit strokes rather than salt
    and pepper.
    """
    field = rng.standard_normal((channels, height, width)).astype(np.float32)
    # Three box-blur passes along each axis approximate a Gaussian blur and
    # keep everything vectorized (guide: avoid Python-level pixel loops).
    for _ in range(3):
        field = (field + np.roll(field, 1, axis=1) + np.roll(field, -1, axis=1)) / 3.0
        field = (field + np.roll(field, 1, axis=2) + np.roll(field, -1, axis=2)) / 3.0
    field -= field.mean()
    norm = np.linalg.norm(field)
    if norm > 0:
        field /= norm
    return field


def make_class_prototypes(
    num_classes: int, channels: int, height: int, width: int, seed: int
) -> np.ndarray:
    """Generate ``(num_classes, C, H, W)`` unit-norm smooth prototypes."""
    rng = spawn_rng(seed, "prototypes")
    protos = np.stack(
        [_smooth_field(rng, channels, height, width) for _ in range(num_classes)]
    )
    return protos.astype(np.float32)


def make_synthetic(
    name: str,
    n: int,
    num_classes: int,
    channels: int,
    height: int,
    width: int,
    seed: int,
    difficulty: float = 1.0,
    max_shift: int = 2,
    split: str = "train",
) -> Dataset:
    """Build a synthetic dataset of ``n`` samples.

    Parameters
    ----------
    difficulty:
        Noise standard deviation relative to the prototype amplitude. ``0``
        yields noiseless (still shifted) samples; ``1`` yields samples where
        a linear classifier plateaus well below 100% but a small CNN can
        still reach high accuracy given enough steps.
    max_shift:
        Maximum circular translation in pixels along each spatial axis.
    split:
        Only used to derive an independent RNG stream so train and test
        sets never share noise.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if max_shift < 0:
        raise ValueError("max_shift must be >= 0")
    if difficulty < 0:
        raise ValueError("difficulty must be >= 0")

    protos = make_class_prototypes(num_classes, channels, height, width, seed)
    # Scale prototypes so per-pixel signal amplitude is O(1) regardless of
    # image size; noise is then directly comparable across geometries.
    amplitude = np.sqrt(channels * height * width).astype(np.float32)
    protos = protos * amplitude

    rng = spawn_rng(seed, "samples", split)
    labels = rng.integers(0, num_classes, size=n)
    shifts_h = rng.integers(-max_shift, max_shift + 1, size=n)
    shifts_w = rng.integers(-max_shift, max_shift + 1, size=n)
    gains = (1.0 + 0.1 * rng.standard_normal(n)).astype(np.float32)
    noise_sigma = np.float32(difficulty)

    images = np.empty((n, channels, height, width), dtype=np.float32)
    base = protos[labels]  # (n, C, H, W) gather
    for i in range(n):
        img = base[i]
        if shifts_h[i] or shifts_w[i]:
            img = np.roll(img, (int(shifts_h[i]), int(shifts_w[i])), axis=(1, 2))
        images[i] = img * gains[i]
    if noise_sigma > 0:
        images += noise_sigma * rng.standard_normal(images.shape).astype(np.float32)

    return Dataset(
        name=name,
        images=images,
        labels=labels.astype(np.int64),
        num_classes=num_classes,
        meta=dict(seed=seed, difficulty=difficulty, max_shift=max_shift, split=split),
    )


def make_mnist_like(
    n_train: int = 4096,
    n_test: int = 1024,
    seed: int = 0,
    difficulty: float = 1.0,
) -> tuple[Dataset, Dataset]:
    """MNIST-geometry synthetic set: 1x28x28 images, 10 classes."""
    geo = DATASET_GEOMETRY["mnist"]
    common = dict(
        num_classes=geo["classes"],
        channels=geo["channels"],
        height=geo["height"],
        width=geo["width"],
        seed=seed,
        difficulty=difficulty,
    )
    train = make_synthetic("mnist-like", n_train, split="train", **common)
    test = make_synthetic("mnist-like", n_test, split="test", **common)
    return train, test


def make_cifar_like(
    n_train: int = 4096,
    n_test: int = 1024,
    seed: int = 0,
    difficulty: float = 1.2,
) -> tuple[Dataset, Dataset]:
    """CIFAR-geometry synthetic set: 3x32x32 images, 10 classes."""
    geo = DATASET_GEOMETRY["cifar"]
    common = dict(
        num_classes=geo["classes"],
        channels=geo["channels"],
        height=geo["height"],
        width=geo["width"],
        seed=seed,
        difficulty=difficulty,
    )
    train = make_synthetic("cifar-like", n_train, split="train", **common)
    test = make_synthetic("cifar-like", n_test, split="test", **common)
    return train, test


def make_imagenet_like(
    n_train: int = 2048,
    n_test: int = 512,
    seed: int = 0,
    difficulty: float = 1.2,
    num_classes: int = 100,
    side: int = 64,
) -> tuple[Dataset, Dataset]:
    """Scaled-down ImageNet-like set.

    The true ILSVRC geometry (3x256x256, 1000 classes, 1.2 M images) is kept
    in :data:`DATASET_GEOMETRY` for the cost model; the runnable set defaults
    to 3x64x64 with 100 classes so forward/backward passes stay tractable in
    NumPy.
    """
    common = dict(
        num_classes=num_classes,
        channels=3,
        height=side,
        width=side,
        seed=seed,
        difficulty=difficulty,
    )
    train = make_synthetic("imagenet-like", n_train, split="train", **common)
    test = make_synthetic("imagenet-like", n_test, split="test", **common)
    return train, test
