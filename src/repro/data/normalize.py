"""Input normalization (Algorithm 1, line 1).

The paper normalizes X on the host "by standard deviation: E(X) = 0 (mean)
and sigma(X) = 1 (variance)" before training. We implement exactly that:
global mean/std over the training set, applied in place (views, not copies —
datasets can be hundreds of MB).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["standardize", "standardize_like"]


def standardize(dataset: Dataset, eps: float = 1e-8) -> tuple[float, float]:
    """Normalize ``dataset.images`` in place to zero mean, unit std.

    Returns the ``(mean, std)`` that were removed so a paired test set can be
    normalized with the *training* statistics (the standard protocol — using
    test statistics would leak).
    """
    images = dataset.images
    mean = float(images.mean())
    std = float(images.std())
    images -= np.float32(mean)
    images /= np.float32(max(std, eps))
    dataset.meta["normalized"] = dict(mean=mean, std=std)
    return mean, std


def standardize_like(dataset: Dataset, mean: float, std: float, eps: float = 1e-8) -> None:
    """Normalize ``dataset`` in place using externally supplied statistics."""
    dataset.images -= np.float32(mean)
    dataset.images /= np.float32(max(std, eps))
    dataset.meta["normalized"] = dict(mean=mean, std=std)
