"""Loss functions producing both the scalar loss and the output gradient."""

from __future__ import annotations

import numpy as np

__all__ = ["SoftmaxCrossEntropy", "MeanSquaredError"]


class SoftmaxCrossEntropy:
    """Fused softmax + cross-entropy with integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns
    ``(softmax(x) - onehot(y)) / N`` — the fused form avoids forming the
    Jacobian and is numerically stable (log-sum-exp shift).
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, classes), got {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ValueError("labels must be (N,) ints matching logits batch")
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        self._probs = probs
        self._labels = labels
        n = logits.shape[0]
        picked = probs[np.arange(n), labels]
        return float(-np.log(np.maximum(picked, 1e-12)).mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._labels] -= 1.0
        return grad / n

    @staticmethod
    def predict(logits: np.ndarray) -> np.ndarray:
        """Class predictions (argmax); softmax is monotone so skip it."""
        return logits.argmax(axis=1)


class MeanSquaredError:
    """Mean squared error against dense targets (used in unit tests)."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        if outputs.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: outputs {outputs.shape} vs targets {targets.shape}"
            )
        self._diff = outputs - targets
        return float((self._diff**2).mean())

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size
