"""Full-scale model descriptors for the simulated clock.

Training AlexNet/VGG-19/GoogleNet at their true sizes is not feasible in
NumPy, but the paper's *timing* claims depend only on layer-by-layer
parameter counts (message sizes) and FLOP counts (compute times). A
:class:`ModelSpec` records exactly those, at full scale:

- AlexNet: ~61 M parameters — the paper quotes its weights at 249 MB.
- VGG-19: ~143.7 M parameters — the paper quotes 575 MB.
- GoogleNet: ~7 M parameters, 22 layers.
- LeNet: ~0.43 M parameters.

Convergence experiments use the *mini* runnable models in
:mod:`repro.nn.models`; time models use these specs. EXPERIMENTS.md records
this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["LayerSpec", "ModelSpec", "LENET", "ALEXNET", "VGG19", "GOOGLENET", "MODEL_SPECS"]

FLOAT_BYTES = 4


@dataclass(frozen=True)
class LayerSpec:
    """One layer's cost-relevant numbers.

    ``blobs`` lists the byte sizes of the separately-communicated tensors of
    the layer (weight and bias for conv/fc; one pair per inner convolution
    for inception modules) — Caffe-style per-blob transfers, which is what
    the *unpacked* scheme of Figure 10 actually sends.
    """

    name: str
    kind: str  # "conv" | "fc" | "inception" | "pool" | ...
    params: int  # trainable parameter count
    flops_per_sample: int  # forward multiply-add FLOPs per input sample
    blobs: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.blobs and sum(self.blobs) != FLOAT_BYTES * self.params:
            raise ValueError(
                f"layer {self.name}: blob bytes {sum(self.blobs)} != "
                f"{FLOAT_BYTES * self.params}"
            )

    @property
    def nbytes(self) -> int:
        return FLOAT_BYTES * self.params

    @property
    def blob_sizes(self) -> Tuple[int, ...]:
        """Per-tensor message sizes; defaults to one blob when unspecified."""
        return self.blobs if self.blobs else ((self.nbytes,) if self.params else ())


@dataclass(frozen=True)
class ModelSpec:
    """A full-scale model as a table of layers."""

    name: str
    input_shape: Tuple[int, int, int]
    layers: Tuple[LayerSpec, ...] = field(default_factory=tuple)

    @property
    def num_params(self) -> int:
        return sum(l.params for l in self.layers)

    @property
    def nbytes(self) -> int:
        """Total weight bytes — the packed message size."""
        return FLOAT_BYTES * self.num_params

    @property
    def flops_per_sample(self) -> int:
        """Forward FLOPs per sample; backward is conventionally ~2x this."""
        return sum(l.flops_per_sample for l in self.layers)

    def layer_messages(self) -> List[int]:
        """Per-blob weight byte counts (the unpacked message plan)."""
        return [size for l in self.layers for size in l.blob_sizes]

    @property
    def num_weight_layers(self) -> int:
        return len(self.layer_messages())


def _conv(name: str, cin: int, cout: int, k: int, out_hw: int, groups: int = 1) -> LayerSpec:
    w = cout * (cin // groups) * k * k
    params = w + cout
    flops = 2 * params * out_hw * out_hw
    return LayerSpec(name, "conv", params, flops, blobs=(FLOAT_BYTES * w, FLOAT_BYTES * cout))


def _fc(name: str, fin: int, fout: int) -> LayerSpec:
    params = fin * fout + fout
    return LayerSpec(
        name, "fc", params, 2 * params,
        blobs=(FLOAT_BYTES * fin * fout, FLOAT_BYTES * fout),
    )


# --- LeNet-5 (Caffe variant), MNIST geometry -------------------------------
LENET = ModelSpec(
    name="LeNet",
    input_shape=(1, 28, 28),
    layers=(
        _conv("conv1", 1, 20, 5, 24),
        _conv("conv2", 20, 50, 5, 8),
        _fc("ip1", 50 * 4 * 4, 500),
        _fc("ip2", 500, 10),
    ),
)

# --- AlexNet (ILSVRC-2012), two-group variant -> ~61 M params (249 MB) -----
ALEXNET = ModelSpec(
    name="AlexNet",
    input_shape=(3, 227, 227),
    layers=(
        _conv("conv1", 3, 96, 11, 55),
        _conv("conv2", 96, 256, 5, 27, groups=2),
        _conv("conv3", 256, 384, 3, 13),
        _conv("conv4", 384, 384, 3, 13, groups=2),
        _conv("conv5", 384, 256, 3, 13, groups=2),
        _fc("fc6", 256 * 6 * 6, 4096),
        _fc("fc7", 4096, 4096),
        _fc("fc8", 4096, 1000),
    ),
)

# --- VGG-19 -> ~143.7 M params (575 MB) -------------------------------------
VGG19 = ModelSpec(
    name="VGG-19",
    input_shape=(3, 224, 224),
    layers=(
        _conv("conv1_1", 3, 64, 3, 224),
        _conv("conv1_2", 64, 64, 3, 224),
        _conv("conv2_1", 64, 128, 3, 112),
        _conv("conv2_2", 128, 128, 3, 112),
        _conv("conv3_1", 128, 256, 3, 56),
        _conv("conv3_2", 256, 256, 3, 56),
        _conv("conv3_3", 256, 256, 3, 56),
        _conv("conv3_4", 256, 256, 3, 56),
        _conv("conv4_1", 256, 512, 3, 28),
        _conv("conv4_2", 512, 512, 3, 28),
        _conv("conv4_3", 512, 512, 3, 28),
        _conv("conv4_4", 512, 512, 3, 28),
        _conv("conv5_1", 512, 512, 3, 14),
        _conv("conv5_2", 512, 512, 3, 14),
        _conv("conv5_3", 512, 512, 3, 14),
        _conv("conv5_4", 512, 512, 3, 14),
        _fc("fc6", 512 * 7 * 7, 4096),
        _fc("fc7", 4096, 4096),
        _fc("fc8", 4096, 1000),
    ),
)


def _inception(
    name: str,
    cin: int,
    c1: int,
    c3r: int,
    c3: int,
    c5r: int,
    c5: int,
    pp: int,
    out_hw: int,
) -> LayerSpec:
    """One GoogleNet inception module collapsed to a single LayerSpec.

    Branch params: 1x1; 1x1 reduce + 3x3; 1x1 reduce + 5x5; pool-proj 1x1.
    """
    convs = (
        (cin * c1, c1),
        (cin * c3r, c3r),
        (c3r * 9 * c3, c3),
        (cin * c5r, c5r),
        (c5r * 25 * c5, c5),
        (cin * pp, pp),
    )
    params = sum(w + b for w, b in convs)
    flops = 2 * params * out_hw * out_hw
    blobs = tuple(FLOAT_BYTES * n for wb in convs for n in wb)
    return LayerSpec(name, "inception", params, flops, blobs=blobs)


# --- GoogleNet (Inception v1) -> ~7 M params --------------------------------
GOOGLENET = ModelSpec(
    name="GoogleNet",
    input_shape=(3, 224, 224),
    layers=(
        _conv("conv1", 3, 64, 7, 112),
        _conv("conv2_reduce", 64, 64, 1, 56),
        _conv("conv2", 64, 192, 3, 56),
        _inception("inc3a", 192, 64, 96, 128, 16, 32, 32, 28),
        _inception("inc3b", 256, 128, 128, 192, 32, 96, 64, 28),
        _inception("inc4a", 480, 192, 96, 208, 16, 48, 64, 14),
        _inception("inc4b", 512, 160, 112, 224, 24, 64, 64, 14),
        _inception("inc4c", 512, 128, 128, 256, 24, 64, 64, 14),
        _inception("inc4d", 512, 112, 144, 288, 32, 64, 64, 14),
        _inception("inc4e", 528, 256, 160, 320, 32, 128, 128, 14),
        _inception("inc5a", 832, 256, 160, 320, 32, 128, 128, 7),
        _inception("inc5b", 832, 384, 192, 384, 48, 128, 128, 7),
        _fc("classifier", 1024, 1000),
    ),
)

MODEL_SPECS = {spec.name: spec for spec in (LENET, ALEXNET, VGG19, GOOGLENET)}
