"""Checkpointing: save/restore packed network weights.

Long training runs on shared clusters need checkpoints (Cori jobs are
time-sliced); the packed parameter buffer makes this trivial — one array
plus a structural fingerprint so a checkpoint can never be loaded into the
wrong architecture silently.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.durability.errors import CheckpointCorruptionError, CheckpointMismatchError
from repro.nn.network import Network

__all__ = ["structure_fingerprint", "save_checkpoint", "load_checkpoint"]


def structure_fingerprint(net: Network) -> str:
    """A stable hash of the network's segment table (names, shapes, order)."""
    desc = [
        (seg.layer_name, seg.param_name, list(seg.shape)) for seg in net.segments
    ]
    blob = json.dumps(desc, separators=(",", ":")).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def save_checkpoint(net: Network, path: Union[str, Path], iteration: int = 0) -> None:
    """Write the packed weights + fingerprint + metadata to an ``.npz``."""
    path = Path(path)
    np.savez(
        path,
        params=net.params,
        fingerprint=np.frombuffer(
            structure_fingerprint(net).encode("ascii"), dtype=np.uint8
        ),
        iteration=np.int64(iteration),
        name=np.frombuffer(net.name.encode("utf-8"), dtype=np.uint8),
    )


def load_checkpoint(net: Network, path: Union[str, Path]) -> int:
    """Restore weights into ``net`` in place; returns the saved iteration.

    The structural fingerprint is validated *before* any weight is
    loaded: a checkpoint from a different layer stack, shapes, or
    ordering raises :class:`~repro.durability.errors.
    CheckpointMismatchError` — same-shaped buffers from a different
    architecture must never load silently. An unreadable or incomplete
    file raises :class:`~repro.durability.errors.
    CheckpointCorruptionError`.
    """
    path = Path(path)
    try:
        data = np.load(path)
    except Exception as exc:
        raise CheckpointCorruptionError(
            f"checkpoint {path} is unreadable ({exc})"
        ) from exc
    with data:
        for key in ("fingerprint", "params", "iteration"):
            if key not in data.files:
                raise CheckpointCorruptionError(
                    f"checkpoint {path} is missing entry {key!r}"
                )
        saved_fp = bytes(data["fingerprint"]).decode("ascii")
        expected_fp = structure_fingerprint(net)
        if saved_fp != expected_fp:
            raise CheckpointMismatchError(
                f"checkpoint structure mismatch: saved {saved_fp[:12]}..., "
                f"network is {expected_fp[:12]}..."
            )
        net.set_params(data["params"])
        return int(data["iteration"])
