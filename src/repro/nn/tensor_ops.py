"""Low-level tensor transforms: im2col / col2im.

Convolution is implemented as a single large matrix multiply over an
im2col-unfolded input — the standard GEMM formulation the paper's substrate
(cuDNN/MKL) uses, and the vectorization idiom the HPC guides call for
(one big BLAS call instead of Python-level loops).
"""

from __future__ import annotations

import numpy as np

__all__ = ["conv_output_size", "im2col", "col2im"]


def conv_output_size(size: int, field: int, stride: int, pad: int) -> int:
    """Spatial output size of a conv/pool window sweep."""
    out = (size + 2 * pad - field) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size: input={size}, field={field}, "
            f"stride={stride}, pad={pad}"
        )
    return out


def im2col(
    x: np.ndarray,
    field_h: int,
    field_w: int,
    stride: int,
    pad: int,
    out: np.ndarray = None,
) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into ``(N * out_h * out_w, C * field_h * field_w)``.

    Built with ``stride_tricks.sliding_window_view`` so the unfolding itself
    is a zero-copy view; only the final reshape materializes memory.

    ``out``, if given, receives the columns in place (must be C-contiguous
    with the exact result shape and ``x``'s dtype) and is returned — the
    hot-loop form: :class:`repro.nn.layers.Conv2D` hands the same workspace
    back every training step, so steady-state forwards allocate nothing
    here. Bit-for-bit identical to the allocating form.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, field_h, stride, pad)
    out_w = conv_output_size(w, field_w, stride, pad)
    shape = (n * out_h * out_w, c * field_h * field_w)

    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")

    # windows: (N, C, H', W', field_h, field_w) where H'/W' enumerate window
    # origins at stride 1; then subsample by stride.
    windows = np.lib.stride_tricks.sliding_window_view(x, (field_h, field_w), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    assert windows.shape[2] == out_h and windows.shape[3] == out_w

    if out is None:
        out = np.empty(shape, dtype=x.dtype)
    elif out.shape != shape or out.dtype != x.dtype or not out.flags.c_contiguous:
        raise ValueError(
            f"out must be C-contiguous {shape} of {x.dtype}, got "
            f"{out.shape} of {out.dtype}"
        )
    # One strided copy: reorder to (N, out_h, out_w, C, field_h, field_w)
    # directly into the (possibly reused) destination.
    out.reshape(n, out_h, out_w, c, field_h, field_w)[...] = windows.transpose(
        0, 2, 3, 1, 4, 5
    )
    return out


def col2im(
    cols: np.ndarray,
    x_shape: tuple,
    field_h: int,
    field_w: int,
    stride: int,
    pad: int,
    out: np.ndarray = None,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into an image.

    ``cols`` has shape ``(N * out_h * out_w, C * field_h * field_w)``;
    returns an array of ``x_shape``. Overlapping windows accumulate, which is
    exactly the gradient of the unfolding.

    ``out``, if given, is the **padded** accumulator workspace of shape
    ``(N, C, H + 2*pad, W + 2*pad)`` (``cols``'s dtype, C-contiguous). It is
    zeroed here, so reuse across steps is safe — but the returned array
    *aliases* it (it is a view when ``pad > 0``), so the caller must copy
    the result out before the next call with the same workspace.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, field_h, stride, pad)
    out_w = conv_output_size(w, field_w, stride, pad)

    cols6 = cols.reshape(n, out_h, out_w, c, field_h, field_w).transpose(
        0, 3, 1, 2, 4, 5
    )  # (N, C, out_h, out_w, fh, fw)

    padded_shape = (n, c, h + 2 * pad, w + 2 * pad)
    if out is None:
        padded = np.zeros(padded_shape, dtype=cols.dtype)
    elif out.shape != padded_shape or out.dtype != cols.dtype or not out.flags.c_contiguous:
        raise ValueError(
            f"out must be C-contiguous {padded_shape} of {cols.dtype}, got "
            f"{out.shape} of {out.dtype}"
        )
    else:
        padded = out
        padded.fill(0)
    # Scatter-add each in-window offset as one vectorized strided assignment:
    # field_h * field_w iterations instead of N * out_h * out_w.
    for i in range(field_h):
        i_max = i + stride * out_h
        for j in range(field_w):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, :, :, i, j]

    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded
