"""From-scratch NumPy deep-learning framework (substrate S1).

The paper's single-node engine is Caffe/cuDNN; here forward/backward
propagation, weight update, and the packed contiguous parameter layout of
Section 5.2 are implemented directly on NumPy arrays. The key structural
feature is :class:`repro.nn.network.Network`: all layer parameters live as
views into one flat float32 buffer, so "single-layer communication" (one
message carrying every layer) is the natural representation and the
per-layer ("unpacked") scheme of Figure 10 is derived from the recorded
segment table.
"""

from repro.nn.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers import AvgPool2D, Conv2D, Dense, Flatten, Layer, MaxPool2D
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy
from repro.nn.models import (
    build_alexnet_mini,
    build_googlenet_mini,
    build_lenet,
    build_mlp,
    build_resnet_mini,
    build_vgg_mini,
    InceptionBlock,
    ResidualBlock,
)
from repro.nn.network import Network, ParamSegment
from repro.nn.regularization import BatchNorm, Dropout, LocalResponseNorm
from repro.nn.serialize import load_checkpoint, save_checkpoint, structure_fingerprint
from repro.nn.spec import ALEXNET, GOOGLENET, LayerSpec, LENET, ModelSpec, VGG19

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "Flatten",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "BatchNorm",
    "LocalResponseNorm",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "Network",
    "ParamSegment",
    "build_lenet",
    "build_mlp",
    "build_alexnet_mini",
    "build_vgg_mini",
    "build_googlenet_mini",
    "build_resnet_mini",
    "InceptionBlock",
    "ResidualBlock",
    "ModelSpec",
    "LayerSpec",
    "LENET",
    "ALEXNET",
    "VGG19",
    "GOOGLENET",
    "save_checkpoint",
    "load_checkpoint",
    "structure_fingerprint",
]
