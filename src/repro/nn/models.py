"""Runnable mini versions of the paper's networks (Section 4.2).

These are real, trainable NumPy networks with the same architectural shape
as the paper's models — LeNet for MNIST-like, AlexNet-style for CIFAR-like,
VGG-style (conv-conv-pool blocks), and a GoogleNet-style net with genuine
Inception (multi-branch concat) modules — scaled so forward/backward passes
run in milliseconds. The full-scale counterparts used by the timing model
live in :mod:`repro.nn.spec`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.layers import AvgPool2D, Conv2D, Dense, Flatten, Layer, MaxPool2D, ParamSpec
from repro.nn.network import Network
from repro.nn.regularization import BatchNorm, Dropout, LocalResponseNorm

__all__ = [
    "InceptionBlock",
    "ResidualBlock",
    "build_mlp",
    "build_lenet",
    "build_alexnet_mini",
    "build_vgg_mini",
    "build_googlenet_mini",
    "build_resnet_mini",
]


class InceptionBlock(Layer):
    """A genuine multi-branch Inception module for the sequential framework.

    Each branch is its own stack of layers run on the same input; outputs
    are concatenated along the channel axis. Parameters of inner layers are
    re-exported with ``branch.layer.param`` names so they pack into the
    network's flat buffer like any other layer.
    """

    def __init__(self, branches: Sequence[Sequence[Layer]], name: Optional[str] = None) -> None:
        super().__init__(name)
        if not branches or any(not b for b in branches):
            raise ValueError("InceptionBlock needs non-empty branches")
        self.branches: List[List[Layer]] = [list(b) for b in branches]
        self._channel_splits: List[int] = []

    def build(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3:
            raise ValueError(f"InceptionBlock expects (C, H, W), got {input_shape}")
        self.input_shape = tuple(input_shape)
        out_hw: Optional[Tuple[int, int]] = None
        channels = []
        for branch in self.branches:
            shape = self.input_shape
            for layer in branch:
                shape = layer.build(shape)
            c, h, w = shape
            if out_hw is None:
                out_hw = (h, w)
            elif out_hw != (h, w):
                raise ValueError(
                    f"branch spatial shapes differ: {out_hw} vs {(h, w)}"
                )
            channels.append(c)
        self._channel_splits = channels
        self.output_shape = (sum(channels), *out_hw)
        self.built = True
        return self.output_shape

    def param_specs(self) -> List[ParamSpec]:
        specs: List[ParamSpec] = []
        for bi, branch in enumerate(self.branches):
            for li, layer in enumerate(branch):
                for spec in layer.param_specs():
                    specs.append(
                        ParamSpec(
                            f"b{bi}.{li}.{spec.name}",
                            spec.shape,
                            spec.init,
                            spec.fan_in,
                            spec.fan_out,
                        )
                    )
        return specs

    def bind(self, params, grads) -> None:
        super().bind(params, grads)
        for bi, branch in enumerate(self.branches):
            for li, layer in enumerate(branch):
                prefix = f"b{bi}.{li}."
                layer.bind(
                    {s.name: params[prefix + s.name] for s in layer.param_specs()},
                    {s.name: grads[prefix + s.name] for s in layer.param_specs()},
                )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        outputs = []
        for branch in self.branches:
            h = x
            for layer in branch:
                h = layer.forward(h, training=training)
            outputs.append(h)
        return np.concatenate(outputs, axis=1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        dx = None
        offset = 0
        for branch, channels in zip(self.branches, self._channel_splits):
            dslice = dy[:, offset : offset + channels]
            offset += channels
            for layer in reversed(branch):
                dslice = layer.backward(dslice)
            dx = dslice if dx is None else dx + dslice
        return dx

    def flops_per_sample(self) -> int:
        return sum(l.flops_per_sample() for b in self.branches for l in b)


def build_mlp(
    input_shape: Tuple[int, ...] = (1, 28, 28),
    hidden: Sequence[int] = (64,),
    num_classes: int = 10,
    seed: int = 0,
) -> Network:
    """Small multilayer perceptron — the cheapest learnable model (tests)."""
    layers: List[Layer] = [Flatten()]
    for i, width in enumerate(hidden):
        layers += [Dense(width, name=f"fc{i + 1}"), ReLU()]
    layers.append(Dense(num_classes, name="logits"))
    return Network(layers, input_shape, seed=seed, name="mlp")


def build_lenet(
    input_shape: Tuple[int, ...] = (1, 28, 28), num_classes: int = 10, seed: int = 0
) -> Network:
    """LeNet-style CNN for the MNIST-like experiments (Figures 6, 8, Table 3)."""
    layers: List[Layer] = [
        Conv2D(8, 5, name="conv1"),
        ReLU(),
        MaxPool2D(2),
        Conv2D(16, 5, name="conv2"),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Dense(64, name="ip1"),
        ReLU(),
        Dense(num_classes, name="ip2"),
    ]
    return Network(layers, input_shape, seed=seed, name="lenet")


def build_alexnet_mini(
    input_shape: Tuple[int, ...] = (3, 32, 32),
    num_classes: int = 10,
    seed: int = 0,
    dropout: float = 0.25,
    use_lrn: bool = False,
) -> Network:
    """AlexNet-shaped CNN (5 conv stages compressed to 3, 2 FC) for CIFAR-like.

    ``use_lrn=True`` inserts AlexNet's local response normalization after
    the first conv stage (architectural-fidelity option; off by default to
    keep the benchmark trajectories stable).
    """
    layers: List[Layer] = [
        Conv2D(16, 3, pad=1, name="conv1"),
        ReLU(),
        *([LocalResponseNorm(name="lrn1")] if use_lrn else []),
        MaxPool2D(2),
        Conv2D(32, 3, pad=1, name="conv2"),
        ReLU(),
        MaxPool2D(2),
        Conv2D(32, 3, pad=1, name="conv3"),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Dropout(dropout, seed=seed, name="drop6"),
        Dense(128, name="fc6"),
        ReLU(),
        Dense(num_classes, name="fc8"),
    ]
    return Network(layers, input_shape, seed=seed, name="alexnet-mini")


def build_vgg_mini(
    input_shape: Tuple[int, ...] = (3, 32, 32), num_classes: int = 10, seed: int = 0
) -> Network:
    """VGG-style net: stacked 3x3 conv pairs with batch norm, then FC head."""
    layers: List[Layer] = [
        Conv2D(16, 3, pad=1, name="conv1_1"),
        BatchNorm(name="bn1_1"),
        ReLU(),
        Conv2D(16, 3, pad=1, name="conv1_2"),
        BatchNorm(name="bn1_2"),
        ReLU(),
        MaxPool2D(2),
        Conv2D(32, 3, pad=1, name="conv2_1"),
        BatchNorm(name="bn2_1"),
        ReLU(),
        Conv2D(32, 3, pad=1, name="conv2_2"),
        BatchNorm(name="bn2_2"),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Dense(128, name="fc6"),
        ReLU(),
        Dense(num_classes, name="fc8"),
    ]
    return Network(layers, input_shape, seed=seed, name="vgg-mini")


def _inception_mini(cin_name: str, c1: int, c3r: int, c3: int, pp: int) -> InceptionBlock:
    """Three-branch mini inception: 1x1, 1x1->3x3, 3x3pool->1x1."""
    return InceptionBlock(
        branches=[
            [Conv2D(c1, 1, name="b1x1"), ReLU()],
            [Conv2D(c3r, 1, name="b3r"), ReLU(), Conv2D(c3, 3, pad=1, name="b3"), ReLU()],
            [MaxPool2D(3, stride=1), _Pad1(), Conv2D(pp, 1, name="bpp"), ReLU()],
        ],
        name=cin_name,
    )


class _Pad1(Layer):
    """Zero-pad spatial dims by 1 so a stride-1 3x3 pool keeps H, W."""

    def build(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        self.input_shape = tuple(input_shape)
        self.output_shape = (c, h + 2, w + 2)
        self.built = True
        return self.output_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)), mode="constant")

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy[:, :, 1:-1, 1:-1]


def build_googlenet_mini(
    input_shape: Tuple[int, ...] = (3, 32, 32), num_classes: int = 10, seed: int = 0
) -> Network:
    """GoogleNet-style net: stem conv + two real Inception modules + avg pool."""
    layers: List[Layer] = [
        Conv2D(16, 3, pad=1, name="conv1"),
        ReLU(),
        MaxPool2D(2),
        _inception_mini("inc3a", c1=8, c3r=8, c3=16, pp=8),
        MaxPool2D(2),
        _inception_mini("inc4a", c1=16, c3r=12, c3=24, pp=8),
        AvgPool2D(8),
        Flatten(),
        Dense(num_classes, name="classifier"),
    ]
    return Network(layers, input_shape, seed=seed, name="googlenet-mini")


class ResidualBlock(Layer):
    """A genuine residual block: ``y = relu(F(x) + shortcut(x))``.

    ``F`` is conv-bn-relu-conv-bn; the shortcut is the identity when shapes
    match and a 1x1 strided conv otherwise (He et al. 2016 — the ResNet the
    paper's introduction motivates scaling work with). Inner parameters are
    re-exported into the packed buffer like :class:`InceptionBlock`'s.
    """

    def __init__(self, channels: int, stride: int = 1, name: Optional[str] = None) -> None:
        super().__init__(name)
        if channels <= 0 or stride <= 0:
            raise ValueError("channels and stride must be positive")
        self.channels = channels
        self.stride = stride
        self.body: List[Layer] = [
            Conv2D(channels, 3, stride=stride, pad=1, name="c1"),
            BatchNorm(name="bn1"),
            ReLU(),
            Conv2D(channels, 3, pad=1, name="c2"),
            BatchNorm(name="bn2"),
        ]
        self.shortcut: List[Layer] = []  # decided in build()
        self._relu_mask: Optional[np.ndarray] = None

    def build(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3:
            raise ValueError(f"ResidualBlock expects (C, H, W), got {input_shape}")
        self.input_shape = tuple(input_shape)
        shape = self.input_shape
        for layer in self.body:
            shape = layer.build(shape)
        if shape != self.input_shape:
            # projection shortcut: 1x1 conv matching channels and stride
            self.shortcut = [
                Conv2D(self.channels, 1, stride=self.stride, name="proj"),
                BatchNorm(name="bnp"),
            ]
            s2 = self.input_shape
            for layer in self.shortcut:
                s2 = layer.build(s2)
            if s2 != shape:
                raise ValueError(f"shortcut shape {s2} != body shape {shape}")
        self.output_shape = shape
        self.built = True
        return self.output_shape

    def _sublayers(self):
        for li, layer in enumerate(self.body):
            yield f"b{li}", layer
        for li, layer in enumerate(self.shortcut):
            yield f"s{li}", layer

    def param_specs(self) -> List[ParamSpec]:
        specs: List[ParamSpec] = []
        for prefix, layer in self._sublayers():
            for spec in layer.param_specs():
                specs.append(
                    ParamSpec(
                        f"{prefix}.{spec.name}", spec.shape, spec.init,
                        spec.fan_in, spec.fan_out,
                    )
                )
        return specs

    def bind(self, params, grads) -> None:
        super().bind(params, grads)
        for prefix, layer in self._sublayers():
            layer.bind(
                {s.name: params[f"{prefix}.{s.name}"] for s in layer.param_specs()},
                {s.name: grads[f"{prefix}.{s.name}"] for s in layer.param_specs()},
            )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        h = x
        for layer in self.body:
            h = layer.forward(h, training=training)
        identity = x
        for layer in self.shortcut:
            identity = layer.forward(identity, training=training)
        y = h + identity
        if training:
            self._relu_mask = y > 0
            return y * self._relu_mask
        return np.maximum(y, 0)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._relu_mask is None:
            raise RuntimeError("backward called without a training-mode forward")
        dy = dy * self._relu_mask
        dbody = dy
        for layer in reversed(self.body):
            dbody = layer.backward(dbody)
        dshort = dy
        for layer in reversed(self.shortcut):
            dshort = layer.backward(dshort)
        return dbody + dshort

    def flops_per_sample(self) -> int:
        return sum(l.flops_per_sample() for _, l in self._sublayers())


def build_resnet_mini(
    input_shape: Tuple[int, ...] = (3, 32, 32), num_classes: int = 10, seed: int = 0
) -> Network:
    """ResNet-style net: stem conv + three residual stages + global pool.

    The paper's introduction motivates the work with ResNet-152's depth;
    this is the runnable miniature with real skip connections.
    """
    layers: List[Layer] = [
        Conv2D(16, 3, pad=1, name="stem"),
        BatchNorm(name="bn0"),
        ReLU(),
        ResidualBlock(16, name="res1"),
        ResidualBlock(32, stride=2, name="res2"),
        ResidualBlock(32, name="res3"),
        AvgPool2D(16),
        Flatten(),
        Dense(num_classes, name="classifier"),
    ]
    return Network(layers, input_shape, seed=seed, name="resnet-mini")
