"""Regularization layers: Dropout and BatchNorm.

AlexNet (used for the CIFAR experiments) relies on dropout in its
fully-connected layers; batch norm is included for the VGG/GoogleNet-style
mini models where it substantially shortens the synthetic-data runs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.layers import Layer, ParamSpec
from repro.util.rng import spawn_rng

__all__ = ["Dropout", "BatchNorm", "LocalResponseNorm"]


class Dropout(Layer):
    """Inverted dropout: scales at train time so inference is a no-op."""

    def __init__(self, rate: float, seed: int = 0, name: Optional[str] = None) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = spawn_rng(seed, "dropout", name or "dropout")
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dy
        return dy * self._mask


class BatchNorm(Layer):
    """Batch normalization over the channel axis (2-D or 4-D inputs).

    For ``(N, C, H, W)`` inputs statistics are computed per channel over
    ``(N, H, W)``; for ``(N, F)`` inputs per feature over ``N``. Running
    statistics (exponential moving average) are used at inference.
    """

    def __init__(self, momentum: float = 0.9, eps: float = 1e-5, name: Optional[str] = None) -> None:
        super().__init__(name)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.eps = eps
        self.running_mean: Optional[np.ndarray] = None
        self.running_var: Optional[np.ndarray] = None
        self._cache: Optional[tuple] = None

    def build(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) not in (1, 3):
            raise ValueError(f"BatchNorm expects (F,) or (C, H, W), got {input_shape}")
        self.channels = input_shape[0]
        self.running_mean = np.zeros(self.channels, dtype=np.float32)
        self.running_var = np.ones(self.channels, dtype=np.float32)
        return super().build(input_shape)

    def param_specs(self) -> List[ParamSpec]:
        c = self.channels
        return [
            ParamSpec("gamma", (c,), "ones", c, c),
            ParamSpec("beta", (c,), "zeros", c, c),
        ]

    def _axes_and_shape(self, x: np.ndarray) -> tuple:
        if x.ndim == 4:
            return (0, 2, 3), (1, -1, 1, 1)
        if x.ndim == 2:
            return (0,), (1, -1)
        raise ValueError(f"BatchNorm got {x.ndim}-D input")

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        axes, bshape = self._axes_and_shape(x)
        gamma = self.params["gamma"].reshape(bshape)
        beta = self.params["beta"].reshape(bshape)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean += (1 - self.momentum) * (mean - self.running_mean)
            self.running_var += (1 - self.momentum) * (var - self.running_var)
            inv_std = 1.0 / np.sqrt(var + self.eps)
            x_hat = (x - mean.reshape(bshape)) * inv_std.reshape(bshape)
            self._cache = (x_hat, inv_std, axes, bshape)
            return gamma * x_hat + beta
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        x_hat = (x - self.running_mean.reshape(bshape)) * inv_std.reshape(bshape)
        return gamma * x_hat + beta

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a training-mode forward")
        x_hat, inv_std, axes, bshape = self._cache
        m = dy.size // self.channels  # samples per channel

        self.grads["gamma"] += (dy * x_hat).sum(axis=axes)
        self.grads["beta"] += dy.sum(axis=axes)

        gamma = self.params["gamma"].reshape(bshape)
        dxhat = dy * gamma
        # Standard batchnorm backward: dx = (1/m) inv_std (m dxhat
        #   - sum(dxhat) - x_hat * sum(dxhat * x_hat))
        sum_dxhat = dxhat.sum(axis=axes, keepdims=True)
        sum_dxhat_xhat = (dxhat * x_hat).sum(axis=axes, keepdims=True)
        inv = inv_std.reshape(bshape)
        return (inv / m) * (m * dxhat - sum_dxhat - x_hat * sum_dxhat_xhat)


class LocalResponseNorm(Layer):
    """AlexNet's local response normalization across channels.

    ``y_i = x_i / (k + alpha * sum_{j in N(i)} x_j^2)^beta`` where ``N(i)``
    is a window of ``size`` adjacent channels centered on i (Krizhevsky et
    al. 2012 defaults). Parameter-free; present for architectural fidelity
    of the AlexNet path.
    """

    def __init__(
        self,
        size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        k: float = 2.0,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if size <= 0 or size % 2 == 0:
            raise ValueError("size must be a positive odd integer")
        if alpha < 0 or beta <= 0 or k <= 0:
            raise ValueError("invalid LRN constants")
        self.size = size
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self._cache: Optional[tuple] = None

    def build(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3:
            raise ValueError(f"LRN expects (C, H, W) input, got {input_shape}")
        return super().build(input_shape)

    def _window_sum(self, sq: np.ndarray) -> np.ndarray:
        """Sliding-window sum over the channel axis via padded cumsum."""
        half = self.size // 2
        c = sq.shape[1]
        padded = np.pad(sq, ((0, 0), (half, half), (0, 0), (0, 0)))
        csum = np.cumsum(padded, axis=1)
        csum = np.pad(csum, ((0, 0), (1, 0), (0, 0), (0, 0)))
        return csum[:, self.size : self.size + c] - csum[:, :c]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        denom = self.k + self.alpha * self._window_sum(x * x)
        scale = denom ** (-self.beta)
        y = x * scale
        self._cache = (x, denom, scale) if training else None
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a training-mode forward")
        x, denom, scale = self._cache
        # dx_m = dy_m * scale_m
        #      - 2 alpha beta x_m * window_sum(dy * x * denom^(-beta-1))_m
        inner = dy * x * denom ** (-self.beta - 1.0)
        return dy * scale - 2.0 * self.alpha * self.beta * x * self._window_sum(inner)
