"""Trainable and structural layers.

Every layer follows a build/bind/forward/backward protocol designed around
the packed parameter buffer of Section 5.2:

1. ``build(input_shape)`` infers the output shape and declares parameter
   specs (name, shape, initializer, fan-in/out) — no allocation yet.
2. The owning :class:`repro.nn.network.Network` allocates ONE contiguous
   float32 buffer for all parameters (and one for all gradients) and calls
   ``bind`` with per-parameter views into it.
3. ``forward``/``backward`` operate batch-at-a-time; ``backward`` writes
   parameter gradients into the bound views and returns the input gradient.

Shapes exclude the batch dimension: ``input_shape`` is e.g. ``(C, H, W)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.tensor_ops import col2im, conv_output_size, im2col

__all__ = [
    "ParamSpec",
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "Flatten",
]


@dataclass(frozen=True)
class ParamSpec:
    """Declaration of one trainable tensor within a layer."""

    name: str
    shape: Tuple[int, ...]
    init: str  # key into repro.nn.init.INITIALIZERS
    fan_in: int
    fan_out: int

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))


class Layer:
    """Base layer. Subclasses override ``build``, ``forward``, ``backward``."""

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or type(self).__name__
        self.built = False
        self.input_shape: Optional[Tuple[int, ...]] = None
        self.output_shape: Optional[Tuple[int, ...]] = None
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    # -- construction -----------------------------------------------------
    def build(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Infer the output shape; default is shape-preserving."""
        self.input_shape = tuple(input_shape)
        self.output_shape = tuple(input_shape)
        self.built = True
        return self.output_shape

    def param_specs(self) -> List[ParamSpec]:
        """Parameter declarations; default: parameter-free layer."""
        return []

    def bind(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        """Attach parameter/gradient views allocated by the network."""
        self.params = params
        self.grads = grads

    # -- execution ---------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- cost accounting ---------------------------------------------------
    def flops_per_sample(self) -> int:
        """Approximate forward-pass FLOPs per input sample (multiply-adds x2).

        Used by the simulated clock; backward is modeled as 2x forward.
        """
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, out={self.output_shape})"


class Dense(Layer):
    """Fully-connected layer: ``y = x @ W + b`` over flattened features."""

    def __init__(self, units: int, name: Optional[str] = None) -> None:
        super().__init__(name)
        if units <= 0:
            raise ValueError("units must be positive")
        self.units = units
        self._x: Optional[np.ndarray] = None

    def build(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 1:
            raise ValueError(
                f"Dense expects flat input, got {input_shape}; add Flatten first"
            )
        self.input_shape = tuple(input_shape)
        self.output_shape = (self.units,)
        self.built = True
        return self.output_shape

    def param_specs(self) -> List[ParamSpec]:
        (fan_in,) = self.input_shape
        return [
            ParamSpec("W", (fan_in, self.units), "xavier", fan_in, self.units),
            ParamSpec("b", (self.units,), "zeros", fan_in, self.units),
        ]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x if training else None
        return x @ self.params["W"] + self.params["b"]

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called without a training-mode forward")
        self.grads["W"] += self._x.T @ dy
        self.grads["b"] += dy.sum(axis=0)
        return dy @ self.params["W"].T

    def flops_per_sample(self) -> int:
        (fan_in,) = self.input_shape
        return 2 * fan_in * self.units


class Conv2D(Layer):
    """2-D convolution via im2col + GEMM, with AlexNet-style channel groups.

    Input ``(N, C, H, W)``; weight ``(out_channels, C/groups, kh, kw)``;
    output ``(N, out_channels, H', W')``. ``groups > 1`` splits input and
    output channels into independent groups (AlexNet's two-GPU legacy
    layout for conv2/4/5, which the full-scale ModelSpec also uses).
    """

    def __init__(
        self,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        groups: int = 1,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if out_channels <= 0 or kernel_size <= 0 or stride <= 0 or pad < 0:
            raise ValueError("invalid Conv2D hyperparameters")
        if groups <= 0 or out_channels % groups != 0:
            raise ValueError("groups must be positive and divide out_channels")
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        self.groups = groups
        self._cols: Optional[List[np.ndarray]] = None
        self._x_shape: Optional[Tuple[int, ...]] = None
        # Training-path scratch reused across steps while shapes are static
        # (the common case: fixed batch size). Keyed by role so a batch-size
        # change just replaces the buffer. Private per replica — Network.clone
        # deep-copies layers — so thread-backend ranks never share scratch.
        self._ws: dict = {}

    def _workspace(self, key: object, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """The reusable buffer for ``key``, reallocated only on shape change.

        Contents are unspecified (previous step's data); every consumer
        overwrites it fully.
        """
        buf = self._ws.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = self._ws[key] = np.empty(shape, dtype=dtype)
        return buf

    def build(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3:
            raise ValueError(f"Conv2D expects (C, H, W) input, got {input_shape}")
        c, h, w = input_shape
        if c % self.groups != 0:
            raise ValueError(
                f"input channels {c} not divisible into {self.groups} groups"
            )
        out_h = conv_output_size(h, self.kernel_size, self.stride, self.pad)
        out_w = conv_output_size(w, self.kernel_size, self.stride, self.pad)
        self.input_shape = tuple(input_shape)
        self.output_shape = (self.out_channels, out_h, out_w)
        self.built = True
        return self.output_shape

    def param_specs(self) -> List[ParamSpec]:
        c, _, _ = self.input_shape
        k = self.kernel_size
        cg = c // self.groups
        fan_in = cg * k * k
        fan_out = (self.out_channels // self.groups) * k * k
        return [
            ParamSpec("W", (self.out_channels, cg, k, k), "he", fan_in, fan_out),
            ParamSpec("b", (self.out_channels,), "zeros", fan_in, fan_out),
        ]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n = x.shape[0]
        k = self.kernel_size
        out_c, out_h, out_w = self.output_shape
        c = self.input_shape[0]
        cg, og = c // self.groups, out_c // self.groups

        cols_per_group: List[np.ndarray] = []
        outputs = []
        for g in range(self.groups):
            xg = x[:, g * cg : (g + 1) * cg]
            # Training forwards unfold into a per-group workspace reused
            # across steps (static shapes allocate only once); inference
            # batches vary in size, so they take the allocating path and
            # leave the training workspace untouched.
            ws = (
                self._workspace(("cols", g), (n * out_h * out_w, cg * k * k), x.dtype)
                if training
                else None
            )
            cols = im2col(xg, k, k, self.stride, self.pad, out=ws)  # (N*oh*ow, cg*k*k)
            w_mat = self.params["W"][g * og : (g + 1) * og].reshape(og, -1)
            bg = self.params["b"][g * og : (g + 1) * og]
            outputs.append(cols @ w_mat.T + bg)  # (N*oh*ow, og)
            cols_per_group.append(cols)
        y = np.concatenate(outputs, axis=1)  # (N*oh*ow, out_c)

        if training:
            self._cols = cols_per_group
            self._x_shape = x.shape
        else:
            self._cols = None
            self._x_shape = None
        return y.reshape(n, out_h, out_w, out_c).transpose(0, 3, 1, 2)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called without a training-mode forward")
        n, out_c, out_h, out_w = dy.shape
        k = self.kernel_size
        c = self.input_shape[0]
        cg, og = c // self.groups, out_c // self.groups
        dy_mat = dy.transpose(0, 2, 3, 1).reshape(-1, out_c)  # (N*oh*ow, out_c)

        dx = self._workspace(("dx",), self._x_shape, dy.dtype)
        group_x_shape = (n, cg) + self._x_shape[2:]
        h, w = self._x_shape[2], self._x_shape[3]
        padded_shape = (n, cg, h + 2 * self.pad, w + 2 * self.pad)
        for g in range(self.groups):
            dyg = dy_mat[:, g * og : (g + 1) * og]
            w_view = self.params["W"][g * og : (g + 1) * og]
            w_mat = w_view.reshape(og, -1)
            self.grads["W"][g * og : (g + 1) * og] += (
                dyg.T @ self._cols[g]
            ).reshape(w_view.shape)
            self.grads["b"][g * og : (g + 1) * og] += dyg.sum(axis=0)
            dcols = dyg @ w_mat  # (N*oh*ow, cg*k*k)
            # col2im zeroes and scatter-adds into the reused padded scratch;
            # its return aliases that scratch, so copy into dx immediately.
            dx[:, g * cg : (g + 1) * cg] = col2im(
                dcols, group_x_shape, k, k, self.stride, self.pad,
                out=self._workspace(("col2im", g), padded_shape, dy.dtype),
            )
        return dx

    def flops_per_sample(self) -> int:
        c, _, _ = self.input_shape
        out_c, out_h, out_w = self.output_shape
        k = self.kernel_size
        return 2 * out_c * out_h * out_w * (c // self.groups) * k * k


class _Pool2D(Layer):
    """Shared machinery for max/avg pooling over square windows."""

    def __init__(self, pool_size: int, stride: Optional[int] = None, name: Optional[str] = None) -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self.stride = stride or pool_size

    def build(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3:
            raise ValueError(f"pooling expects (C, H, W) input, got {input_shape}")
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size, self.stride, 0)
        out_w = conv_output_size(w, self.pool_size, self.stride, 0)
        self.input_shape = tuple(input_shape)
        self.output_shape = (c, out_h, out_w)
        self.built = True
        return self.output_shape

    def _windows(self, x: np.ndarray) -> np.ndarray:
        """(N, C, oh, ow, p, p) strided view of pooling windows."""
        view = np.lib.stride_tricks.sliding_window_view(
            x, (self.pool_size, self.pool_size), axis=(2, 3)
        )
        return view[:, :, :: self.stride, :: self.stride, :, :]


class MaxPool2D(_Pool2D):
    """Max pooling; gradient routes to the argmax element of each window."""

    def __init__(self, pool_size: int, stride: Optional[int] = None, name: Optional[str] = None) -> None:
        super().__init__(pool_size, stride, name)
        self._x_shape: Optional[Tuple[int, ...]] = None
        self._argmax: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        windows = self._windows(x)
        n, c, oh, ow, p, _ = windows.shape
        flat = windows.reshape(n, c, oh, ow, p * p)
        if training:
            self._x_shape = x.shape
            self._argmax = flat.argmax(axis=-1)
            return np.take_along_axis(flat, self._argmax[..., None], axis=-1)[..., 0]
        return flat.max(axis=-1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x_shape is None or self._argmax is None:
            raise RuntimeError("backward called without a training-mode forward")
        n, c, oh, ow = dy.shape
        p = self.pool_size
        dx = np.zeros(self._x_shape, dtype=dy.dtype)
        # Decompose flat argmax into in-window offsets, then scatter-add with
        # advanced indexing (vectorized over the whole batch).
        off_i = self._argmax // p
        off_j = self._argmax % p
        ni, ci, oi, oj = np.indices((n, c, oh, ow))
        rows = oi * self.stride + off_i
        cols = oj * self.stride + off_j
        np.add.at(dx, (ni, ci, rows, cols), dy)
        return dx


class AvgPool2D(_Pool2D):
    """Average pooling; gradient spreads uniformly over each window."""

    def __init__(self, pool_size: int, stride: Optional[int] = None, name: Optional[str] = None) -> None:
        super().__init__(pool_size, stride, name)
        self._x_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._x_shape = x.shape
        return self._windows(x).mean(axis=(-2, -1))

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called without a training-mode forward")
        p = self.pool_size
        share = dy / (p * p)
        dx = np.zeros(self._x_shape, dtype=dy.dtype)
        n, c, oh, ow = dy.shape
        for i in range(p):
            for j in range(p):
                dx[
                    :,
                    :,
                    i : i + self.stride * oh : self.stride,
                    j : j + self.stride * ow : self.stride,
                ] += share
        return dx


class Flatten(Layer):
    """Collapse (C, H, W) features to a flat vector for Dense layers."""

    def build(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        self.input_shape = tuple(input_shape)
        self.output_shape = (int(np.prod(input_shape)),)
        self.built = True
        return self.output_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy.reshape((dy.shape[0],) + self.input_shape)
