"""Elementwise nonlinearities (Section 2.2 lists Tanh, Sigmoid, ReLU)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Layer

__all__ = ["ReLU", "Tanh", "Sigmoid"]


class ReLU(Layer):
    """Rectified linear unit: ``max(x, 0)``."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
            return x * self._mask
        return np.maximum(x, 0)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called without a training-mode forward")
        return dy * self._mask


class Tanh(Layer):
    """Hyperbolic tangent."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y = np.tanh(x)
        self._y = y if training else None
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called without a training-mode forward")
        return dy * (1.0 - self._y * self._y)


class Sigmoid(Layer):
    """Logistic sigmoid, computed stably for both signs of x."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y = np.empty_like(x)
        pos = x >= 0
        y[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        y[~pos] = ex / (1.0 + ex)
        self._y = y if training else None
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called without a training-mode forward")
        return dy * self._y * (1.0 - self._y)
