"""Sequential network with a packed contiguous parameter buffer.

This is the "single-layer layout and communication" technique of Section 5.2
made structural: every layer's parameters are float32 views into ONE flat
buffer (``self.params``), and likewise for gradients (``self.grads``).
Consequences used throughout the reproduction:

- Sending "the whole model" is a single message of ``nbytes`` bytes — one
  ``alpha + |W| * beta`` term instead of L of them (Figure 10's packed
  scheme).
- The per-layer segment table (``self.segments``) is retained so the
  *unpacked* scheme (L separate messages) can be costed for comparison.
- EASGD's elastic updates (Equations 1-2) are single vectorized expressions
  over the flat buffers — no per-layer Python loops (HPC guide idiom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.init import INITIALIZERS
from repro.nn.layers import Layer
from repro.nn.losses import SoftmaxCrossEntropy
from repro.util.rng import spawn_rng

__all__ = ["ParamSegment", "Network"]


@dataclass(frozen=True)
class ParamSegment:
    """One parameter tensor's slice of the packed buffer."""

    layer_name: str
    param_name: str
    start: int
    stop: int
    shape: Tuple[int, ...]

    @property
    def size(self) -> int:
        return self.stop - self.start

    @property
    def nbytes(self) -> int:
        return 4 * self.size  # float32


class Network:
    """A feed-forward stack of layers sharing one packed parameter buffer."""

    def __init__(
        self,
        layers: Sequence[Layer],
        input_shape: Tuple[int, ...],
        seed: int = 0,
        name: str = "net",
    ) -> None:
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.name = name
        self.layers: List[Layer] = list(layers)
        self.input_shape = tuple(input_shape)
        self.seed = seed

        # Shape inference pass.
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.build(shape)
        self.output_shape = shape

        # Packed allocation: one flat buffer for params, one for grads.
        self.segments: List[ParamSegment] = []
        offset = 0
        for layer in self.layers:
            for spec in layer.param_specs():
                self.segments.append(
                    ParamSegment(layer.name, spec.name, offset, offset + spec.size, spec.shape)
                )
                offset += spec.size
        self.params = np.zeros(offset, dtype=np.float32)
        self.grads = np.zeros(offset, dtype=np.float32)

        # Bind per-layer views and initialize weights.
        rng = spawn_rng(seed, "init", name)
        seg_iter = iter(self.segments)
        for layer in self.layers:
            specs = layer.param_specs()
            params, grads = {}, {}
            for spec in specs:
                seg = next(seg_iter)
                view = self.params[seg.start : seg.stop].reshape(spec.shape)
                gview = self.grads[seg.start : seg.stop].reshape(spec.shape)
                view[...] = INITIALIZERS[spec.init](rng, spec.shape, spec.fan_in, spec.fan_out)
                params[spec.name] = view
                grads[spec.name] = gview
            layer.bind(params, grads)

    # -- introspection -------------------------------------------------------
    @property
    def num_params(self) -> int:
        """Total trainable parameter count."""
        return int(self.params.size)

    @property
    def nbytes(self) -> int:
        """Model size in bytes (float32)."""
        return int(self.params.nbytes)

    def layer_nbytes(self) -> List[Tuple[str, int]]:
        """Per-layer parameter byte counts — the message sizes of the
        *unpacked* communication scheme (Figure 10)."""
        sizes: dict = {}
        for seg in self.segments:
            sizes[seg.layer_name] = sizes.get(seg.layer_name, 0) + seg.nbytes
        return list(sizes.items())

    def flops_per_sample(self) -> int:
        """Forward-pass FLOPs per sample, summed over layers."""
        return sum(layer.flops_per_sample() for layer in self.layers)

    # -- weight transport ------------------------------------------------------
    def get_params(self) -> np.ndarray:
        """Copy of the packed parameter vector."""
        return self.params.copy()

    def set_params(self, flat: np.ndarray) -> None:
        """Overwrite the packed parameter vector (in place; views stay valid).

        Accepts any buffer holding exactly ``num_params`` elements — a flat
        vector, an ``(N, 1)`` column, a raw shared-memory view — and casts
        to the packed buffer's float32. Element *count* is what matters,
        and it is what the error reports on mismatch.
        """
        flat = np.asarray(flat)
        if flat.size != self.params.size:
            raise ValueError(
                f"parameter vector has size {flat.size}, expected {self.params.size}"
            )
        self.params[...] = flat.reshape(self.params.shape).astype(np.float32, copy=False)

    def zero_grads(self) -> None:
        """Clear the packed gradient buffer in place."""
        self.grads[...] = 0.0

    def clone(self, name: Optional[str] = None, seed: Optional[int] = None) -> "Network":
        """Structurally identical network with freshly built layers.

        Used to give each simulated worker its own local weight replica
        (Algorithm 1 line 4). Parameters are *copied* from this network so
        all replicas start from the same initialization, as the paper does
        ("copy W to W_j").

        Layers are deep-copied: a shallow copy would share every mutable
        per-layer attribute that isn't rebound by ``build``/``bind`` —
        dropout RNG state, cached forward activations, masks — so running
        the original would perturb the clone (and vice versa).
        """
        import copy as _copy

        fresh_layers = []
        for layer in self.layers:
            dup = _copy.deepcopy(layer)
            dup.built = False
            dup.params = {}
            dup.grads = {}
            fresh_layers.append(dup)
        other = Network(
            fresh_layers,
            self.input_shape,
            seed=self.seed if seed is None else seed,
            name=name or f"{self.name}-clone",
        )
        other.set_params(self.params)
        return other

    # -- execution ---------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward propagation through all layers."""
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        """Backward propagation; accumulates into the packed gradient buffer."""
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        return dy

    def gradient(
        self, images: np.ndarray, labels: np.ndarray, loss: Optional[SoftmaxCrossEntropy] = None
    ) -> float:
        """One fused forward+backward over a batch.

        Zeroes the gradient buffer, runs forward propagation, evaluates the
        loss, and backpropagates. After this call ``self.grads`` holds the
        batch-mean gradient; returns the scalar loss.
        """
        loss = loss or SoftmaxCrossEntropy()
        self.zero_grads()
        logits = self.forward(images, training=True)
        value = loss.forward(logits, labels)
        self.backward(loss.backward())
        return value

    def evaluate(self, images: np.ndarray, labels: np.ndarray, batch_size: int = 256) -> float:
        """Classification accuracy over a labeled set (inference mode)."""
        correct = 0
        for start in range(0, len(images), batch_size):
            chunk = slice(start, start + batch_size)
            logits = self.forward(images[chunk], training=False)
            correct += int((logits.argmax(axis=1) == labels[chunk]).sum())
        return correct / len(images)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(name={self.name!r}, layers={len(self.layers)}, "
            f"params={self.num_params})"
        )
