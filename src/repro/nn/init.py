"""Weight initialization (Algorithm 1, line 2: "random and Xavier weight filling")."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "he_normal", "zeros", "INITIALIZERS"]


def xavier_uniform(rng: np.random.Generator, shape: tuple, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform filling: U(-a, a), a = sqrt(6 / (fan_in + fan_out))."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def he_normal(rng: np.random.Generator, shape: tuple, fan_in: int, fan_out: int) -> np.ndarray:
    """He/Kaiming normal filling: N(0, sqrt(2 / fan_in)) — suited to ReLU nets."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    std = np.sqrt(2.0 / fan_in)
    return (std * rng.standard_normal(shape)).astype(np.float32)


def zeros(rng: np.random.Generator, shape: tuple, fan_in: int, fan_out: int) -> np.ndarray:
    """All-zeros filling (biases, batch-norm shift)."""
    return np.zeros(shape, dtype=np.float32)


def ones(rng: np.random.Generator, shape: tuple, fan_in: int, fan_out: int) -> np.ndarray:
    """All-ones filling (batch-norm scale)."""
    return np.ones(shape, dtype=np.float32)


INITIALIZERS = {
    "xavier": xavier_uniform,
    "he": he_normal,
    "zeros": zeros,
    "ones": ones,
}
