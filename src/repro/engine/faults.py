"""Shared fault bookkeeping for the synchronous trainer families.

Every synchronous family used to hand-roll the same prologue: detect
crashes as they take effect, let scheduled rejoins re-enter (optionally
restoring the rejoiner from the elastic center), raise
:class:`~repro.faults.AllWorkersCrashedError` when nobody survives,
rebuild the reduction tree over the survivors, and count degraded rounds.
:class:`SyncFaultTracker` is that prologue, hoisted once; the knobs are
the bits that genuinely differed per family (the rejoin note, whether a
rejoiner's replica is restored, what a resize does).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.faults import AllWorkersCrashedError, FaultLog, FaultPlan
from repro.trace.events import MASTER

__all__ = ["SyncFaultTracker"]


class SyncFaultTracker:
    """Crash/rejoin/resize prologue for clock-driven trainers.

    ``prologue(pipeline, t)`` returns the live rank list for iteration
    ``t`` and performs all transition logging exactly as the bespoke
    loops did: crashes are logged at their scheduled instant, rejoins at
    the current simulated time, group resizes through ``on_resize`` with
    a ``resize_label``-formatted note, and degraded iterations through
    ``TimeBreakdown.mark_degraded``.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan],
        log: FaultLog,
        ranks: int,
        method_name: str,
        *,
        rejoin_note: str = "re-pulled elastic center",
        restore: Optional[Callable[[int], None]] = None,
        on_resize: Optional[Callable[[int], None]] = None,
        resize_label: Optional[str] = None,
    ) -> None:
        self.plan = plan
        self.log = log
        self.ranks = ranks
        self.method_name = method_name
        self.rejoin_note = rejoin_note
        self.restore = restore
        self.on_resize = on_resize
        self.resize_label = resize_label
        self.currently_dead: Set[int] = set()
        self.group_size = ranks
        self.degraded_rounds = 0
        self.rebuilds = 0
        self.rejoined = 0

    def state_dict(self) -> dict:
        """Fault-plan progress as a picklable dict (sets become sorted lists)."""
        return {
            "currently_dead": sorted(self.currently_dead),
            "group_size": self.group_size,
            "degraded_rounds": self.degraded_rounds,
            "rebuilds": self.rebuilds,
            "rejoined": self.rejoined,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore fault-plan progress captured by :meth:`state_dict`.

        If the saved group size differs from the full rank count, the
        resize hook re-fires so dependent structures (reduction-tree
        timings) are rebuilt for the surviving group — ``begin()`` always
        constructs them for the full group.
        """
        self.currently_dead = set(state["currently_dead"])
        self.degraded_rounds = int(state["degraded_rounds"])
        self.rebuilds = int(state["rebuilds"])
        self.rejoined = int(state["rejoined"])
        saved_group = int(state["group_size"])
        if saved_group != self.group_size:
            self.group_size = saved_group
            if self.on_resize is not None:
                self.on_resize(saved_group)

    def prologue(self, pipeline, t: int) -> List[int]:
        g = self.ranks
        live = list(range(g))
        plan = self.plan
        if plan is None:
            return live
        sim_time = pipeline.sim_time
        trace = pipeline.trainer.trace
        live = [j for j in range(g) if not plan.is_dead(j, sim_time)]
        for j in range(g):
            if j not in live and j not in self.currently_dead:
                self.currently_dead.add(j)
                self.log.record(plan.crash_time(j), "crash", f"worker {j}", "fail-stop")
                if trace is not None:
                    trace.fault(j, sim_time, "crash", iteration=t)
            elif j in live and j in self.currently_dead:
                self.currently_dead.discard(j)
                if self.restore is not None:  # recovery: restore from center
                    self.restore(j)
                self.rejoined += 1
                self.log.record(sim_time, "rejoin", f"worker {j}", self.rejoin_note)
                if trace is not None:
                    trace.fault(j, sim_time, "rejoin", iteration=t)
        if not live:
            raise AllWorkersCrashedError(
                f"all {g} workers crashed by t={sim_time:.4g}s "
                f"(iteration {t}; fault log: {self.log.summary()})"
            )
        if self.on_resize is not None and len(live) != self.group_size:
            self.group_size = len(live)
            self.rebuilds += 1
            self.log.record(
                sim_time, "tree-rebuild", self.method_name,
                f"{self.resize_label} over {self.group_size} of {g} ranks",
            )
            if trace is not None:
                trace.fault(MASTER, sim_time, "tree-rebuild", iteration=t)
            self.on_resize(self.group_size)
        if len(live) < g:
            self.degraded_rounds += 1
            pipeline.breakdown.mark_degraded()
        return live
