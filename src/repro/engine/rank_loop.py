"""Step sequencing for rank programs and shared-memory workers.

The message-passing runners (``run_mpi_*``) and the Hogwild runner do
not run one loop per *run* — they run one loop per *rank*. The step
sequencing those loops share (1-based iteration numbering, stamping the
rank context's ``trace_iteration`` so runtime-emitted events carry the
loop index, input validation) lives here so the rank programs keep no
private loop machinery of their own.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["rank_steps", "local_steps"]


def rank_steps(ctx, iterations: int) -> Iterator[int]:
    """Iterate a rank program's steps ``1..iterations``.

    Stamps ``ctx.trace_iteration`` before yielding each step so every
    message the runtime moves during the step is attributed to it.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    for t in range(1, iterations + 1):
        ctx.trace_iteration = t
        yield t


def local_steps(steps: int) -> Iterator[int]:
    """Iterate a context-free worker's steps ``1..steps`` (Hogwild)."""
    if steps <= 0:
        raise ValueError("steps must be positive")
    for t in range(1, steps + 1):
        yield t
