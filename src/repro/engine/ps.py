"""The parameter-server protocol layer: center stores, worker rules, staleness.

The engine's update seam used to be EASGD-shaped: every family either was
elastic averaging or had to pretend. This module generalizes that seam
into the three orthogonal pieces a center/worker scheme actually consists
of, so the classic parameter-server zoo (DOWNPOUR, ADAG, EAMSGD) and the
decentralized gossip family plug into the same engine as the paper's
EASGD variants:

- a :class:`CenterStore` is the server side: what state the center holds
  and how one worker contribution folds into it. Concrete stores:
  :class:`ElasticCenterStore` (Eq 2 elastic averaging),
  :class:`SgdServerStore` (apply gradients, optional momentum — Async
  SGD/MSGD/Hogwild), :class:`DeltaServerStore` (accumulate raw weight
  deltas — DOWNPOUR), :class:`AdagServerStore` (accumulated gradients
  normalized by worker count), and :class:`GossipStore` (the "no center"
  decentralized store: peers average pairwise, the consensus mean stands
  in for the center at evaluation time).
- a :class:`WorkerRule` is the worker side: what a rank pushes/pulls and
  how it folds the reply into its replica (elastic difference, fresh
  weights, local-SGD delta, accumulated gradient, elastic pull for
  EAMSGD's Eqs 5-6 period updates).
- a :class:`StalenessBound` is the first-class admission policy: updates
  staler than ``tau`` master versions are rejected (discarded, worker
  resynced) or clipped (applied scaled by ``tau/staleness``), with every
  decision counted so violations surface as trace metrics and
  ``RunResult.extras``.

Everything mutates bound numpy vectors in place — stores *bind* to the
arrays the trainer owns (``bind``) rather than allocating their own, so
checkpointing, evaluation views, and shared-memory publication keep
working on the trainer's arrays unchanged. The existing seven strategies
are expressed through this layer with bit-identical numerics (the golden
traces and backend digests pin that down); the new families are just new
store/rule pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.optim.easgd import (
    EASGDHyper,
    elastic_center_update_single,
    elastic_momentum_worker_update,
    elastic_worker_update,
)

__all__ = [
    "CenterStore",
    "ElasticCenterStore",
    "SgdServerStore",
    "DeltaServerStore",
    "AdagServerStore",
    "GossipStore",
    "WorkerRule",
    "ElasticWorkerRule",
    "ElasticMomentumWorkerRule",
    "ElasticPullWorkerRule",
    "FreshPullWorkerRule",
    "LocalSgdWorkerRule",
    "AccumGradWorkerRule",
    "StalenessBound",
]


# ---------------------------------------------------------------------------
# Center stores (the server side of the protocol)
# ---------------------------------------------------------------------------


class CenterStore:
    """Server-side state and fold discipline of one update family.

    A store *binds* to the flat weight vector the trainer owns (it never
    allocates the canonical copy itself), folds one worker contribution
    per :meth:`push`, and answers :meth:`pull` with the reply payload a
    worker receives. ``kind`` labels the family class the registry
    metadata and docs report: ``"centered"`` (a real server holds shared
    state) or ``"decentralized"`` (no server; peers exchange directly).
    """

    kind = "centered"

    def __init__(self) -> None:
        self.weights: Optional[np.ndarray] = None

    def bind(self, weights: np.ndarray) -> "CenterStore":
        """Adopt the trainer-owned center vector; returns self for chaining."""
        self.weights = weights
        return self

    def push(self, payload: np.ndarray, scale: float = 1.0) -> None:
        """Fold one worker contribution into the center, in place.

        ``scale`` damps the fold for clipped-staleness admission; 1.0 is
        the exact unscaled family update.
        """
        raise NotImplementedError

    def pull(self) -> np.ndarray:
        """The reply payload a worker receives (a fresh copy)."""
        assert self.weights is not None
        return self.weights.copy()


class ElasticCenterStore(CenterStore):
    """Eq 2's elastic center: ``Wbar += alpha * (W_j - Wbar)`` per push.

    The asynchronous exchange protocol (:meth:`exchange`) replies the
    *pre-fold* center and then folds — the order Algorithm 1 line 14 and
    the async master both use; :meth:`fold_sum` is the synchronous all-
    workers-at-once Eq 2 over a tree-reduced sum.
    """

    def __init__(self, hyper: EASGDHyper) -> None:
        super().__init__()
        self.hyper = hyper

    def push(self, payload: np.ndarray, scale: float = 1.0) -> None:
        if scale == 1.0:
            elastic_center_update_single(self.weights, payload, self.hyper)
        else:
            self.weights += scale * self.hyper.alpha * (payload - self.weights)

    def exchange(self, worker_w: np.ndarray, scale: float = 1.0) -> np.ndarray:
        """One async interaction's server half: reply Wbar_t, then fold."""
        wbar_t = self.weights.copy()
        self.push(worker_w, scale)
        return wbar_t

    def fold_sum(self, sum_w: np.ndarray, count: int) -> None:
        """Synchronous Eq 2 over ``count`` live workers' tree-reduced sum."""
        self.weights += self.hyper.alpha * (sum_w - count * self.weights)


class SgdServerStore(CenterStore):
    """Dean-style master: apply each pushed gradient, optional momentum."""

    def __init__(self, lr: float, mu: float = 0.0) -> None:
        super().__init__()
        self.lr = lr
        self.mu = mu
        self.velocity: Optional[np.ndarray] = None

    def bind(self, weights: np.ndarray,
             velocity: Optional[np.ndarray] = None) -> "SgdServerStore":
        self.weights = weights
        self.velocity = velocity
        return self

    def push(self, payload: np.ndarray, scale: float = 1.0) -> None:
        step = self.lr if scale == 1.0 else scale * self.lr
        if self.mu and self.velocity is not None:
            self.velocity *= self.mu
            self.velocity -= step * payload
            self.weights += self.velocity
        else:
            self.weights -= step * payload


class DeltaServerStore(CenterStore):
    """DOWNPOUR's server: accumulate raw local-SGD weight deltas."""

    def push(self, payload: np.ndarray, scale: float = 1.0) -> None:
        if scale == 1.0:
            self.weights += payload
        else:
            self.weights += scale * payload


class AdagServerStore(CenterStore):
    """ADAG's server: apply accumulated gradients normalized by P."""

    def __init__(self, lr: float, num_workers: int) -> None:
        super().__init__()
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.lr = lr
        self.num_workers = num_workers

    def push(self, payload: np.ndarray, scale: float = 1.0) -> None:
        step = self.lr if scale == 1.0 else scale * self.lr
        self.weights -= step * payload / self.num_workers


class GossipStore(CenterStore):
    """The decentralized "no center" store: peers average pairwise.

    Binds to the full replica list instead of a single vector. The
    consensus mean (maintained in a caller-provided buffer) stands in for
    the center wherever one is expected — evaluation, serving snapshots,
    rejoin restores.
    """

    kind = "decentralized"

    def __init__(self) -> None:
        super().__init__()
        self.replicas: List[np.ndarray] = []

    def bind_replicas(self, replicas: Sequence[np.ndarray]) -> "GossipStore":
        self.replicas = list(replicas)
        return self

    def mix(self, a: int, b: int) -> None:
        """One gossip exchange: both peers adopt the pairwise average."""
        avg = 0.5 * (self.replicas[a] + self.replicas[b])
        self.replicas[a][...] = avg
        self.replicas[b][...] = avg

    def consensus_into(self, out: np.ndarray, live: Sequence[int]) -> np.ndarray:
        """The live replicas' mean, written into ``out`` in place."""
        out[...] = self.replicas[live[0]]
        for j in live[1:]:
            out += self.replicas[j]
        out /= len(live)
        return out

    def push(self, payload: np.ndarray, scale: float = 1.0) -> None:
        raise TypeError("GossipStore has no center to push to; use mix()")


# ---------------------------------------------------------------------------
# Worker rules (the worker side of the protocol)
# ---------------------------------------------------------------------------


class WorkerRule:
    """What a rank pushes/pulls and how it folds the reply into its replica.

    Rules are stateless mathematics — per-worker state (velocities,
    anchors, accumulators) stays on the trainer, which passes the right
    vectors in. ``pushes`` names the payload class for docs/metadata.
    """

    pushes = "weights"


class ElasticWorkerRule(WorkerRule):
    """Eq 1: ``W -= lr*g + alpha*(W - Wbar_t)`` against the replied center."""

    pushes = "local weights"

    def apply(self, weights: np.ndarray, grad: np.ndarray, wbar_t: np.ndarray,
              hyper: EASGDHyper, scale: float = 1.0) -> None:
        if scale == 1.0:
            elastic_worker_update(weights, grad, wbar_t, hyper)
        else:
            weights -= scale * (hyper.lr * grad + hyper.alpha * (weights - wbar_t))


class ElasticMomentumWorkerRule(WorkerRule):
    """Eqs 5-6: momentum velocity + elastic term against the replied center."""

    pushes = "local weights"

    def apply(self, weights: np.ndarray, velocity: np.ndarray, grad: np.ndarray,
              wbar_t: np.ndarray, hyper: EASGDHyper) -> None:
        elastic_momentum_worker_update(weights, velocity, grad, wbar_t, hyper)


class ElasticPullWorkerRule(WorkerRule):
    """EAMSGD's communication-instant pull: only the elastic term.

    The gradient work already happened locally (momentum SGD between
    exchanges), so at the exchange the worker just relaxes toward the
    replied center: ``W -= alpha * (W - Wbar_t)``.
    """

    pushes = "local weights"

    def apply(self, weights: np.ndarray, wbar_t: np.ndarray,
              hyper: EASGDHyper, scale: float = 1.0) -> None:
        step = hyper.alpha if scale == 1.0 else scale * hyper.alpha
        weights -= step * (weights - wbar_t)


class FreshPullWorkerRule(WorkerRule):
    """Async SGD's reply fold: adopt the master's fresh weights outright."""

    pushes = "gradient"

    def apply(self, weights: np.ndarray, reply: np.ndarray) -> None:
        weights[...] = reply


class LocalSgdWorkerRule(WorkerRule):
    """DOWNPOUR's worker: plain SGD steps between pushes; push W - anchor."""

    pushes = "weight delta"

    def local_step(self, weights: np.ndarray, grad: np.ndarray, lr: float) -> None:
        weights -= lr * grad

    def delta(self, weights: np.ndarray, anchor: np.ndarray) -> np.ndarray:
        return weights - anchor


class AccumGradWorkerRule(WorkerRule):
    """ADAG's worker: accumulate gradients while stepping locally."""

    pushes = "accumulated gradient"

    def local_step(self, weights: np.ndarray, acc: np.ndarray,
                   grad: np.ndarray, lr: float) -> None:
        acc += grad
        weights -= lr * grad


# ---------------------------------------------------------------------------
# Staleness admission
# ---------------------------------------------------------------------------


@dataclass
class StalenessBound:
    """First-class staleness admission: bound applied updates by ``tau``.

    Staleness is the number of master versions that landed between a
    worker's last sync and the application of its contribution — the
    quantity asynchronous convergence analyses (elastic consistency,
    bounded-delay SGD) assume is bounded. ``admit`` returns the verdict
    and the damping scale to apply:

    - ``policy="reject"``: staler-than-tau contributions are discarded
      and the worker resyncs from the center (scale 0.0);
    - ``policy="clip"``: they are applied damped by ``tau / staleness``.

    Every decision is counted; :meth:`extras` surfaces the counters so
    violations are observable in ``RunResult.extras`` next to the trace's
    derived staleness statistics.
    """

    tau: int
    policy: str = "reject"
    checked: int = 0
    rejected: int = 0
    clipped: int = 0
    max_seen: int = 0
    max_applied: int = 0

    _POLICIES = ("reject", "clip")

    def __post_init__(self) -> None:
        if self.tau < 0:
            raise ValueError("tau must be non-negative")
        if self.policy not in self._POLICIES:
            raise ValueError(
                f"policy must be one of {self._POLICIES}, got {self.policy!r}"
            )

    def admit(self, staleness: int) -> Tuple[str, float]:
        """Decide one update's fate: ("apply"|"clip"|"reject", scale)."""
        self.checked += 1
        self.max_seen = max(self.max_seen, staleness)
        if staleness <= self.tau:
            self.max_applied = max(self.max_applied, staleness)
            return "apply", 1.0
        if self.policy == "clip":
            self.clipped += 1
            self.max_applied = max(self.max_applied, staleness)
            return "clip", self.tau / staleness
        self.rejected += 1
        return "reject", 0.0

    def state_dict(self) -> Dict[str, int]:
        return {
            "checked": self.checked,
            "rejected": self.rejected,
            "clipped": self.clipped,
            "max_seen": self.max_seen,
            "max_applied": self.max_applied,
        }

    def load_state_dict(self, state: Dict[str, int]) -> None:
        self.checked = int(state["checked"])
        self.rejected = int(state["rejected"])
        self.clipped = int(state["clipped"])
        self.max_seen = int(state["max_seen"])
        self.max_applied = int(state["max_applied"])

    def extras(self) -> Dict[str, float]:
        return {
            "staleness_tau": float(self.tau),
            "staleness_checked": float(self.checked),
            "staleness_rejected": float(self.rejected),
            "staleness_clipped": float(self.clipped),
            "staleness_max_seen": float(self.max_seen),
            "staleness_max_applied": float(self.max_applied),
        }
