"""Strategy interfaces and shared numerics for the step pipeline.

A trainer family plugs into :class:`repro.engine.pipeline.StepPipeline`
through a *step strategy*: either a :class:`ClockStepStrategy` (the
synchronous families — one closed-form simulated-time advance per
iteration) or an :class:`EventStepStrategy` (the asynchronous
parameter-server families — a discrete-event simulation where only some
events complete a logical step).

The strategies themselves are thin compositions of two smaller objects:

- an :class:`UpdateRule` carrying the family's parameter mathematics, and
- a :class:`CommStrategy` carrying its communication cost/trace model.

The update rules are expressed through the parameter-server protocol
layer (:mod:`repro.engine.ps`): a :class:`~repro.engine.ps.CenterStore`
holds the server-side fold, a :class:`~repro.engine.ps.WorkerRule` the
worker-side mathematics. The shared compute helpers
(:func:`gather_gradients`, :func:`jittered_fwdbwd`) live in
:mod:`repro.engine.compute` and are re-exported here for compatibility.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TYPE_CHECKING

import numpy as np

from repro.comm.collectives import tree_reduce
from repro.engine.compute import gather_gradients, jittered_fwdbwd
from repro.engine.ps import ElasticCenterStore, ElasticWorkerRule
from repro.optim.easgd import EASGDHyper

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.pipeline import StepPipeline

__all__ = [
    "StepStrategy",
    "ClockStepStrategy",
    "EventStepStrategy",
    "CommStrategy",
    "UpdateRule",
    "SyncElasticUpdate",
    "MeanGradientUpdate",
    "gather_gradients",
    "jittered_fwdbwd",
]


class StepStrategy:
    """What a trainer family provides to the pipeline.

    The pipeline owns sequencing (loop, clock, records, result); the
    strategy owns per-family state and the content of one step. The
    ``last_loss`` attribute is read by :class:`repro.engine.policy
    .EvalPolicy` at every snapshot point.
    """

    #: Most recent training-batch loss, stamped into trajectory records.
    last_loss: float = float("nan")
    #: Execution substrate recorded on the RunResult (None = simulated).
    run_backend: Optional[str] = None

    def begin(self, pipeline: "StepPipeline") -> None:
        """Allocate per-run state (replicas, samplers, costs, trace)."""

    def eval_params(self) -> np.ndarray:
        """The packed vector whose accuracy the trajectory tracks.

        Contract: return the *live* packed array (a view, not a copy) —
        the pipeline's snapshot publisher copies it into the seqlock
        buffer itself, so a defensive copy here would just double the
        memcpy on every publish.  Consumers that need isolation from
        later in-place updates (evaluation, serving) go through
        :meth:`StepPipeline.eval_view` / the snapshot reader, never
        through a raw reference they hold across steps.
        """
        raise NotImplementedError

    def extras(self) -> Dict[str, float]:
        """Method-specific scalars for ``RunResult.extras``."""
        return {}

    def end(self, pipeline: "StepPipeline") -> None:
        """Successful-completion hook (runs after ``cleanup``)."""

    def cleanup(self, pipeline: "StepPipeline") -> None:
        """Always-run teardown hook (processes, queues, shared memory)."""

    # -- durability protocol -----------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Full per-run state as ``{"arrays": {...}, "meta": {...}}``.

        ``arrays`` maps names to the family's numpy vectors (center,
        replicas, velocities); ``meta`` holds everything else (sampler
        cursors, fault-tracker progress, event queues) as plain
        picklable values. Together with the pipeline-level state this
        must be *complete*: restoring it after a fresh ``begin()`` and
        re-running must be bit-identical to never having stopped.
        Collections with history-dependent iteration order (sets) must
        be serialized sorted.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot into a begun strategy.

        Called after ``begin()``: structure (replica lists, samplers,
        comm models) already exists and only its *state* is overwritten,
        in place where other components hold references (shared-memory
        segments, the evaluation network).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )


class ClockStepStrategy(StepStrategy):
    """One iteration == one step == one closed-form clock advance."""

    def step(self, pipeline: "StepPipeline", t: int) -> float:
        """Run iteration ``t``; return the simulated seconds it took."""
        raise NotImplementedError


class EventStepStrategy(StepStrategy):
    """Discrete-event families: steps complete on *some* events only."""

    def pending(self) -> bool:
        """Whether the event queue can still produce steps."""
        raise NotImplementedError

    def advance(self, pipeline: "StepPipeline", t_next: int) -> bool:
        """Process one event; return True iff it completed step ``t_next``.

        Non-completing events (rejoins, dropped/retransmitted messages,
        arrivals from dead workers) return False and the pipeline simply
        keeps draining the queue.
        """
        raise NotImplementedError

    def on_drained(self, pipeline: "StepPipeline", t: int) -> None:
        """Called when the loop exits; raise if the run made no progress."""

    def on_complete(self, pipeline: "StepPipeline", t: int) -> None:
        """Final accounting (e.g. in-flight messages lost at run end)."""


class CommStrategy:
    """A family's communication model: simulated cost + trace emission.

    ``charge`` composes the iteration's simulated time from the phase
    costs and books the :class:`~repro.algorithms.base.TimeBreakdown`
    parts; ``emit`` expands the same iteration into its traced timeline.
    Families with richer signatures (the round-robin exchange, the
    parameter server) specialize freely — the pipeline never calls a
    CommStrategy directly, the family's step strategy does.
    """

    def charge(self, pipeline: "StepPipeline", t: int, live: List[int],
               fwdbwd_each: List[float]) -> float:
        raise NotImplementedError

    def emit(self, trace, t: int, T: float, live: List[int],
             fwdbwd_each: List[float], iter_time: float) -> None:
        """Emit the iteration's trace spans (no-op when tracing is off)."""


class UpdateRule:
    """A family's parameter-update mathematics, free of loop plumbing."""


class SyncElasticUpdate(UpdateRule):
    """Synchronous EASGD (Algorithms 2-4): tree-sum, Eq 1, Eq 2.

    Shared verbatim by Sync EASGD1/2/3, the KNL cluster trainer, and the
    multinode cluster trainer — the unification the engine exists for.
    Expressed through the PS layer: an :class:`ElasticWorkerRule` applies
    Eq 1 per live worker against the pre-update center, then an
    :class:`ElasticCenterStore` folds the tree-reduced sum (Eq 2).
    """

    def __init__(self, hyper: EASGDHyper) -> None:
        self.hyper = hyper
        self.store = ElasticCenterStore(hyper)
        self.rule = ElasticWorkerRule()

    def apply(
        self,
        center: np.ndarray,
        workers: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        live: Sequence[int],
    ) -> None:
        sum_w = tree_reduce([workers[j] for j in live])  # step 3: tree sum
        center_t = center  # Eq 1/Eq 2 both read the pre-update center
        for i, j in enumerate(live):  # step 4: Eq 1 on every live worker
            self.rule.apply(workers[j], grads[i], center_t, self.hyper)
        # step 5: Eq 2 — in place, reading the pre-update value once.
        self.store.bind(center).fold_sum(sum_w, len(live))


class MeanGradientUpdate(UpdateRule):
    """Data-parallel SGD: apply the tree-reduced mean gradient everywhere."""

    def __init__(self, lr: float) -> None:
        self.lr = lr

    def apply(self, net, weights: np.ndarray, grads: Sequence[np.ndarray],
              count: int) -> None:
        weights -= self.lr * (tree_reduce(grads) / count)
        net.set_params(weights)
