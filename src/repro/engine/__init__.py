"""The step-pipeline engine every trainer family runs on.

One engine, many strategies. Each training method in this repo — the
simulated trainers in :mod:`repro.algorithms`, the KNL and multinode
cluster trainers, the chip-partition trainer, the message-passing rank
programs, and the Hogwild runner — used to carry its own hand-rolled
loop re-wiring batch staging, evaluation snapshots, trace spans, fault
hooks, and result assembly. EASGD and its siblings differ only in their
*communication/update rule*, not in their step structure, so the loop now
lives here exactly once:

```
stage data -> local compute -> communicate -> apply update
          -> snapshot / trace / fault hooks
```

The engine vocabulary:

- :class:`StepPipeline` owns step sequencing: the clock-driven iteration
  loop (synchronous families), the discrete-event loop (asynchronous
  parameter-server families), the simulated clock, the
  :class:`~repro.algorithms.base.TimeBreakdown`, the trajectory records,
  and :class:`~repro.algorithms.base.RunResult` assembly.
- :class:`EvalPolicy` owns the evaluation cadence and trajectory
  snapshot/early-stop logic every trainer used to copy by hand.
- :class:`ClockStepStrategy` / :class:`EventStepStrategy` are the two
  step shapes a family plugs into the pipeline.
- :class:`CommStrategy` is a family's communication model: what an
  iteration costs on the simulated hardware and which trace spans it
  emits.
- :class:`UpdateRule` is a family's parameter-update mathematics
  (synchronous elastic averaging, mean-gradient SGD, round-robin
  elastic exchange, the async parameter-server interactions).
- :class:`SyncFaultTracker` is the shared crash/rejoin/tree-rebuild
  bookkeeping of the synchronous families.
- :func:`rank_steps` / :func:`local_steps` sequence the message-passing
  rank programs and shared-memory workers, which run one loop per rank
  rather than one loop per run.
"""

from repro.engine.compute import gather_gradients, jittered_fwdbwd
from repro.engine.faults import SyncFaultTracker
from repro.engine.pipeline import run_training, StepPipeline
from repro.engine.policy import EvalPolicy
from repro.engine.ps import (
    AccumGradWorkerRule,
    AdagServerStore,
    CenterStore,
    DeltaServerStore,
    ElasticCenterStore,
    ElasticMomentumWorkerRule,
    ElasticPullWorkerRule,
    ElasticWorkerRule,
    FreshPullWorkerRule,
    GossipStore,
    LocalSgdWorkerRule,
    SgdServerStore,
    StalenessBound,
    WorkerRule,
)
from repro.engine.rank_loop import local_steps, rank_steps
from repro.engine.strategy import (
    ClockStepStrategy,
    CommStrategy,
    EventStepStrategy,
    MeanGradientUpdate,
    StepStrategy,
    SyncElasticUpdate,
    UpdateRule,
)

__all__ = [
    "StepPipeline",
    "run_training",
    "EvalPolicy",
    "StepStrategy",
    "ClockStepStrategy",
    "EventStepStrategy",
    "CommStrategy",
    "UpdateRule",
    "SyncElasticUpdate",
    "MeanGradientUpdate",
    "CenterStore",
    "ElasticCenterStore",
    "SgdServerStore",
    "DeltaServerStore",
    "AdagServerStore",
    "GossipStore",
    "WorkerRule",
    "ElasticWorkerRule",
    "ElasticMomentumWorkerRule",
    "ElasticPullWorkerRule",
    "FreshPullWorkerRule",
    "LocalSgdWorkerRule",
    "AccumGradWorkerRule",
    "StalenessBound",
    "SyncFaultTracker",
    "gather_gradients",
    "jittered_fwdbwd",
    "rank_steps",
    "local_steps",
]
