"""The step pipeline: one loop for every trainer family.

:class:`StepPipeline` owns everything the bespoke ``train()`` loops used
to duplicate — the iteration/event loop itself, the simulated clock, the
:class:`~repro.algorithms.base.TimeBreakdown`, the trajectory records,
the :class:`~repro.engine.policy.EvalPolicy` cadence, and
:class:`~repro.algorithms.base.RunResult` assembly. A trainer family
contributes only a step strategy (see :mod:`repro.engine.strategy`).

Two loop shapes cover all families:

- ``clock``: synchronous trainers advance the clock by a closed-form
  per-iteration time (:class:`ClockStepStrategy`).
- ``events``: the asynchronous parameter-server simulation pops events
  until one completes a logical step (:class:`EventStepStrategy`).

Durability rides on the same seam: when a
:class:`~repro.durability.CheckpointManager` is attached, the pipeline
saves the *complete* run state (strategy arrays + meta, trajectory
records, breakdown, fault log, trace events, hidden network RNG/EMA
state) at the checkpoint cadence, and ``run(..., resume=True)`` rebuilds
structure via ``begin()`` then overwrites its state from the newest
valid checkpoint — bit-identical continuation is a tested invariant.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import RunResult, TimeBreakdown, TrainRecord
from repro.engine.policy import EvalPolicy
from repro.engine.strategy import ClockStepStrategy, EventStepStrategy, StepStrategy
from repro.trace.events import MASTER, TraceEvent

__all__ = ["StepPipeline", "run_training"]


class StepPipeline:
    """Drives one training run of ``trainer`` through its step strategy."""

    def __init__(self, trainer, strategy: StepStrategy, checkpointer=None,
                 snapshotter=None) -> None:
        self.trainer = trainer
        self.strategy = strategy
        self.policy = EvalPolicy(every=trainer.config.eval_every)
        self.breakdown = TimeBreakdown()
        self.records: List[TrainRecord] = []
        self.sim_time = 0.0
        #: Optional :class:`repro.durability.CheckpointManager`.
        self.checkpointer = checkpointer
        #: Optional :class:`repro.serving.ModelSnapshotter`.  When set,
        #: every completed step publishes (or heartbeats) the strategy's
        #: packed eval vector for the serving tier — a bounded memcpy on
        #: the training side, never a lock.
        self.snapshotter = snapshotter

    def _publish(self, t: int) -> None:
        if self.snapshotter is not None:
            self.snapshotter.on_step(self.strategy.eval_params(), t, self.sim_time)

    def eval_view(self, t: int) -> np.ndarray:
        """The packed params to evaluate at step ``t``, torn-free.

        With a snapshotter attached, the step-``t`` publish already put
        these exact bits behind a seqlock — read them back through the
        guard so the eval path can never observe a half-written vector
        (float32→float32 round-trips bit-exactly, so trajectories are
        identical with and without serving attached).  Without one, hand
        back the strategy's live reference: the pipeline is between
        steps, when no writer is active.
        """
        ref = self.strategy.eval_params()
        snap = self.snapshotter
        if snap is not None and snap.buffer.step == t and ref.dtype == np.float32:
            params, step, _ = snap.buffer.read()
            if step == t and params.size == ref.size:
                return params
        return ref

    def run(self, iterations: int, resume: bool = False) -> RunResult:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        strategy = self.strategy
        strategy.begin(self)
        try:
            start = self._restore() if resume else 0
            if isinstance(strategy, EventStepStrategy):
                self._run_events(strategy, iterations, start)
            else:
                self._run_clock(strategy, iterations, start)
        except BaseException:
            # Flush queued writes but never let a background write error
            # mask the exception already propagating.
            if self.checkpointer is not None:
                self.checkpointer.drain(raise_errors=False)
            strategy.cleanup(self)
            raise
        if self.checkpointer is not None:
            self.checkpointer.drain()
        strategy.cleanup(self)
        strategy.end(self)
        return self._assemble()

    # -- the two loop shapes ---------------------------------------------------
    def _run_clock(self, strategy: ClockStepStrategy, iterations: int,
                   start: int) -> None:
        for t in range(start + 1, iterations + 1):
            self.sim_time += strategy.step(self, t)
            self._publish(t)
            stop = False
            if self.policy.due(t, iterations):
                stop = self.policy.snapshot(self, t)
            if self.checkpointer is not None and self.checkpointer.due(t):
                self._save_checkpoint(t)
            if stop:
                break

    def _run_events(self, strategy: EventStepStrategy, iterations: int,
                    start: int) -> None:
        t = start
        while t < iterations and strategy.pending():
            if not strategy.advance(self, t + 1):
                continue
            t += 1
            self._publish(t)
            stop = False
            if self.policy.due(t, iterations):
                stop = self.policy.snapshot(self, t)
            if self.checkpointer is not None and self.checkpointer.due(t):
                self._save_checkpoint(t)
            if stop:
                break
        strategy.on_drained(self, t)
        if not self.records or self.records[-1].iteration != t:
            # Fault-truncated run (queue drained mid-stride): snapshot the
            # final state so the degraded trajectory is still analyzable.
            self.policy.snapshot(self, t)
        strategy.on_complete(self, t)

    # -- durability ------------------------------------------------------------
    def _save_checkpoint(self, t: int) -> None:
        trainer = self.trainer
        # The trace mark goes in *before* capture so the checkpoint's own
        # marker is part of the saved stream — a straight run and a
        # resumed run then serialize identical traces. Its payload is the
        # deterministic array volume; the wall-clock write cost goes to
        # extras only, never into compared numerics.
        state = self.strategy.state_dict()
        # Detach the arrays: the strategy hands out live buffers, and the
        # background writer serializes while later steps mutate them.
        arrays: Dict[str, np.ndarray] = {
            name: np.array(a, copy=True) for name, a in state["arrays"].items()
        }
        if trainer.trace is not None:
            nbytes = int(sum(a.nbytes for a in arrays.values()))
            trainer.trace.span("mark", MASTER, self.sim_time, self.sim_time,
                               op="checkpoint", nbytes=nbytes, iteration=t)
        self.checkpointer.save_async(t, arrays, self._capture_meta(t, state["meta"]))

    def _capture_meta(self, t: int, strategy_meta: Dict) -> Dict:
        from repro.durability.state import (
            network_stochastic_state,
            platform_jitter_state,
        )

        trainer = self.trainer
        return {
            "step": int(t),
            "sim_time": self.sim_time,
            "records": [
                (r.iteration, r.sim_time, r.train_loss, r.test_accuracy)
                for r in self.records
            ],
            "breakdown": {
                "parts": dict(self.breakdown.parts),
                "degraded_rounds": self.breakdown.degraded_rounds,
            },
            "strategy": strategy_meta,
            "fault_log": [
                (r.time, r.kind, r.subject, r.detail)
                for r in trainer.fault_log.records
            ],
            "network": network_stochastic_state(trainer.net),
            "jitter": platform_jitter_state(getattr(trainer, "platform", None)),
            "trace": (
                [e.to_dict() for e in trainer.trace.events]
                if trainer.trace is not None else None
            ),
        }

    def _restore(self) -> int:
        """Overwrite begun state from the newest valid checkpoint.

        ``begin()`` has already rebuilt all structure deterministically;
        this replaces its state wholesale (including the trace events and
        fault records ``begin`` just emitted). Returns the step to
        continue after.
        """
        from repro.durability.checkpoint import require_configured
        from repro.durability.state import (
            restore_network_stochastic_state,
            restore_platform_jitter_state,
        )

        data = require_configured(self.checkpointer).load_latest()
        meta = data.meta
        trainer = self.trainer
        self.sim_time = float(meta["sim_time"])
        self.records[:] = [TrainRecord(*rec) for rec in meta["records"]]
        self.breakdown.parts.update(meta["breakdown"]["parts"])
        self.breakdown.degraded_rounds = int(meta["breakdown"]["degraded_rounds"])
        self.strategy.load_state_dict({"arrays": data.arrays,
                                       "meta": meta["strategy"]})
        restore_network_stochastic_state(trainer.net, meta["network"])
        if meta["jitter"]:
            restore_platform_jitter_state(trainer.platform, meta["jitter"])
        log = trainer.fault_log
        log.reset()
        for rec in meta["fault_log"]:
            log.record(*rec)
        if trainer.trace is not None and meta["trace"] is not None:
            trainer.trace.events[:] = [
                TraceEvent.from_dict(d) for d in meta["trace"]
            ]
        return int(meta["step"])

    # -- result assembly -------------------------------------------------------
    def _assemble(self) -> RunResult:
        trainer = self.trainer
        records = self.records
        final_acc = records[-1].test_accuracy if records else 0.0
        extras = dict(self.strategy.extras())
        if self.checkpointer is not None:
            stats = self.checkpointer.stats
            # Observable durability overhead. Wall-clock cost lives here
            # (and only here): bit-identity comparisons must exclude the
            # checkpoint_* keys, which necessarily differ across a
            # straight run and a killed-and-resumed one.
            extras["checkpoint_writes"] = stats["writes"]
            extras["checkpoint_bytes"] = stats["bytes"]
            extras["checkpoint_write_seconds"] = stats["seconds"]
        return RunResult(
            method=trainer.name,
            records=records,
            breakdown=self.breakdown,
            iterations=records[-1].iteration if records else 0,
            sim_time=self.sim_time,
            final_accuracy=final_acc,
            extras=extras,
            fault_log=trainer.fault_log if trainer.faults is not None else None,
            trace=trainer.trace,
            backend=self.strategy.run_backend,
        )


def _make_checkpointer(trainer) -> Optional[object]:
    """Build the run's CheckpointManager from TrainerConfig, if configured."""
    cfg = trainer.config
    if cfg.checkpoint_dir is None:
        return None
    from repro.durability import CheckpointManager
    from repro.nn.serialize import structure_fingerprint

    return CheckpointManager(
        cfg.checkpoint_dir,
        every=cfg.checkpoint_every,
        keep=cfg.checkpoint_keep,
        fingerprint=structure_fingerprint(trainer.net),
    )


def run_training(trainer, iterations: int, resume: bool = False,
                 snapshotter=None) -> RunResult:
    """Run ``trainer`` for ``iterations`` steps through the pipeline.

    ``snapshotter`` attaches a serving-tier
    :class:`~repro.serving.ModelSnapshotter`: each completed step then
    publishes the packed eval vector for concurrent inference readers.
    """
    pipeline = StepPipeline(trainer, trainer.make_step(),
                            checkpointer=_make_checkpointer(trainer),
                            snapshotter=snapshotter)
    return pipeline.run(iterations, resume=resume)
