"""The step pipeline: one loop for every trainer family.

:class:`StepPipeline` owns everything the bespoke ``train()`` loops used
to duplicate — the iteration/event loop itself, the simulated clock, the
:class:`~repro.algorithms.base.TimeBreakdown`, the trajectory records,
the :class:`~repro.engine.policy.EvalPolicy` cadence, and
:class:`~repro.algorithms.base.RunResult` assembly. A trainer family
contributes only a step strategy (see :mod:`repro.engine.strategy`).

Two loop shapes cover all families:

- ``clock``: synchronous trainers advance the clock by a closed-form
  per-iteration time (:class:`ClockStepStrategy`).
- ``events``: the asynchronous parameter-server simulation pops events
  until one completes a logical step (:class:`EventStepStrategy`).
"""

from __future__ import annotations

from typing import List

from repro.algorithms.base import RunResult, TimeBreakdown, TrainRecord
from repro.engine.policy import EvalPolicy
from repro.engine.strategy import ClockStepStrategy, EventStepStrategy, StepStrategy

__all__ = ["StepPipeline", "run_training"]


class StepPipeline:
    """Drives one training run of ``trainer`` through its step strategy."""

    def __init__(self, trainer, strategy: StepStrategy) -> None:
        self.trainer = trainer
        self.strategy = strategy
        self.policy = EvalPolicy(every=trainer.config.eval_every)
        self.breakdown = TimeBreakdown()
        self.records: List[TrainRecord] = []
        self.sim_time = 0.0

    def run(self, iterations: int) -> RunResult:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        strategy = self.strategy
        strategy.begin(self)
        try:
            if isinstance(strategy, EventStepStrategy):
                self._run_events(strategy, iterations)
            else:
                self._run_clock(strategy, iterations)
        finally:
            strategy.cleanup(self)
        strategy.end(self)
        return self._assemble()

    # -- the two loop shapes ---------------------------------------------------
    def _run_clock(self, strategy: ClockStepStrategy, iterations: int) -> None:
        for t in range(1, iterations + 1):
            self.sim_time += strategy.step(self, t)
            if self.policy.due(t, iterations):
                if self.policy.snapshot(self, t):
                    break

    def _run_events(self, strategy: EventStepStrategy, iterations: int) -> None:
        t = 0
        while t < iterations and strategy.pending():
            if not strategy.advance(self, t + 1):
                continue
            t += 1
            if self.policy.due(t, iterations):
                if self.policy.snapshot(self, t):
                    break
        strategy.on_drained(self, t)
        if not self.records or self.records[-1].iteration != t:
            # Fault-truncated run (queue drained mid-stride): snapshot the
            # final state so the degraded trajectory is still analyzable.
            self.policy.snapshot(self, t)
        strategy.on_complete(self, t)

    # -- result assembly -------------------------------------------------------
    def _assemble(self) -> RunResult:
        trainer = self.trainer
        records = self.records
        final_acc = records[-1].test_accuracy if records else 0.0
        return RunResult(
            method=trainer.name,
            records=records,
            breakdown=self.breakdown,
            iterations=records[-1].iteration if records else 0,
            sim_time=self.sim_time,
            final_accuracy=final_acc,
            extras=self.strategy.extras(),
            fault_log=trainer.fault_log if trainer.faults is not None else None,
            trace=trainer.trace,
            backend=self.strategy.run_backend,
        )


def run_training(trainer, iterations: int) -> RunResult:
    """Run ``trainer`` for ``iterations`` steps through the pipeline."""
    return StepPipeline(trainer, trainer.make_step()).run(iterations)
