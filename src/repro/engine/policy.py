"""Evaluation cadence and trajectory snapshots, hoisted out of trainers.

Every trainer family used to end its iteration with the same copied
block::

    if t % cfg.eval_every == 0 or t == iterations:
        acc = self.evaluate_params(vec)
        records.append(TrainRecord(t, sim_time, last_loss, acc))
        if self.should_stop(acc):
            break

:class:`EvalPolicy` is that block. The pipeline asks :meth:`due` after
every completed step and :meth:`snapshot` when it answers yes; the stop
predicate (``train_to_accuracy``'s target) still lives on the trainer,
the policy merely consults it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.algorithms.base import TrainRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.pipeline import StepPipeline

__all__ = ["EvalPolicy"]


@dataclass
class EvalPolicy:
    """When to snapshot the trajectory, and what one snapshot does."""

    every: int

    def due(self, t: int, iterations: int) -> bool:
        """Snapshot at the cadence boundary and always at the final step."""
        return t % self.every == 0 or t == iterations

    def snapshot(self, pipeline: "StepPipeline", t: int) -> bool:
        """Evaluate, record a trajectory point, and report early-stop.

        The params are taken through :meth:`StepPipeline.eval_view`, not
        ``strategy.eval_params()`` directly: the strategy hands out a
        live reference, and when concurrent writers exist (a serving
        publisher, shared-memory workers) a direct read could observe a
        half-written vector.  The view is seqlock-guarded whenever a
        guard exists and falls back to the raw reference only in the
        strictly serial case.
        """
        trainer = pipeline.trainer
        acc = trainer.evaluate_params(pipeline.eval_view(t))
        pipeline.records.append(
            TrainRecord(t, pipeline.sim_time, pipeline.strategy.last_loss, acc)
        )
        return trainer.should_stop(acc)
