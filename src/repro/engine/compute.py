"""The shared "stage data -> local compute" phase of every simulated family.

Each synchronous trainer (Sync EASGD, Sync SGD, the KNL and multinode
cluster trainers) and the gossip family runs the same two sub-phases per
iteration: draw one batch per live worker and compute its gradient
(:func:`gather_gradients`), and cost the forward/backward passes with
per-worker straggler inflation (:func:`jittered_fwdbwd`). These used to
ride along in :mod:`repro.engine.strategy`; they live here so the
update/communication seam (strategy + parameter-server layers) carries
no compute plumbing. ``repro.engine.strategy`` and ``repro.engine``
keep re-exporting both names for compatibility.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["gather_gradients", "jittered_fwdbwd"]


def gather_gradients(
    trainer,
    samplers,
    live: Sequence[int],
    weights: Optional[Sequence[np.ndarray]] = None,
) -> Tuple[List[np.ndarray], List[float]]:
    """Stage one batch and compute one gradient per live worker.

    When ``weights`` is given each worker's replica is loaded before its
    pass (the EASGD families); when it is None the network keeps its
    current (shared) parameters (the Sync SGD family).
    """
    grads: List[np.ndarray] = []
    losses: List[float] = []
    for j in live:
        images, labels = samplers[j].next_batch()
        if weights is not None:
            trainer.net.set_params(weights[j])
        losses.append(trainer.net.gradient(images, labels, trainer.loss))
        grads.append(trainer.net.grads.copy())
    return grads, losses


def jittered_fwdbwd(
    platform,
    cost,
    batch_size: int,
    live: Sequence[int],
    plan,
    sim_time: float,
) -> List[float]:
    """Per-live-worker forward/backward seconds with straggler inflation."""
    return [
        platform.fwdbwd_time(cost, batch_size, worker=j)
        * (plan.slowdown(j, sim_time) if plan is not None else 1.0)
        for j in live
    ]
