"""The fault-injection and recovery subsystem (``repro.faults``).

Covers the ISSUE-1 acceptance scenarios: crash-before-first-update,
crash-of-all-workers, straggler-only runs, sync-tree rebuild after a
mid-run crash, rejoin-from-center, seeded determinism of fault runs, and
the in-process runtime's retrying fabric + ``DeadlockError``.
"""

import numpy as np
import pytest

from repro.algorithms import TrainerConfig
from repro.algorithms.async_ps import AsyncEASGDTrainer, AsyncSGDTrainer
from repro.algorithms.original_easgd import OriginalEASGDTrainer
from repro.algorithms.sync_easgd import SyncEASGDTrainer
from repro.algorithms.sync_sgd import SyncSGDTrainer
from repro.cluster import CostModel, GpuPlatform
from repro.comm.collectives import tree_reduce
from repro.comm.runtime import DeadlockError, InProcessCommunicator
from repro.faults import AllWorkersCrashedError, FaultError, FaultLog, FaultPlan, FaultRecord
from repro.harness.analysis import fault_degradation, fault_rate_curve
from repro.harness.results import result_to_dict, results_from_json, results_to_json
from repro.nn.models import build_mlp
from repro.nn.spec import LENET

pytestmark = pytest.mark.faults


def _trainer(cls, data, faults=None, seed=0, **kwargs):
    train, test = data
    cfg = TrainerConfig(
        batch_size=16, lr=0.05, rho=2.0, seed=seed, eval_every=10, eval_samples=128
    )
    return cls(
        build_mlp(seed=1),
        train,
        test,
        GpuPlatform(num_gpus=4, seed=0),
        cfg,
        CostModel.from_spec(LENET),
        faults=faults,
        **kwargs,
    )


@pytest.fixture(scope="module")
def async_baseline(mnist_tiny):
    """A healthy Async EASGD run — the yardstick for degradation checks."""
    return _trainer(AsyncEASGDTrainer, mnist_tiny).train(150)


@pytest.fixture(scope="module")
def sync_baseline(mnist_tiny):
    return _trainer(SyncEASGDTrainer, mnist_tiny).train(60)


class TestFaultPlanBuilders:
    def test_chaining_and_queries(self):
        plan = (
            FaultPlan(seed=3)
            .crash(1, at=0.5, rejoin_at=2.0)
            .straggler(2, factor=3.0)
            .stall(0, at=1.0, duration=0.5, factor=10.0)
            .drop_rate(0.05)
        )
        assert plan.crash_time(1) == 0.5
        assert plan.rejoin_time(1) == 2.0
        assert plan.crash_time(0) is None
        assert not plan.is_dead(1, 0.5)  # alive up to and at the instant
        assert plan.is_dead(1, 0.6)
        assert not plan.is_dead(1, 2.0)  # rejoined
        assert plan.slowdown(2, 0.0) == 3.0
        assert plan.slowdown(0, 1.2) == 10.0
        assert plan.slowdown(0, 2.0) == 1.0  # stall window over
        assert not plan.empty

    def test_builder_validation(self):
        with pytest.raises(ValueError, match="positive"):
            FaultPlan().crash(0, at=0.0)
        with pytest.raises(ValueError, match="positive"):
            FaultPlan().crash(0, at=-1.0)
        with pytest.raises(ValueError, match="rejoin_at"):
            FaultPlan().crash(0, at=1.0, rejoin_at=0.5)
        with pytest.raises(ValueError, match="already has a crash"):
            FaultPlan().crash(0, at=1.0).crash(0, at=2.0)
        with pytest.raises(ValueError, match="factor"):
            FaultPlan().straggler(0, factor=0.5)
        with pytest.raises(ValueError, match="duration"):
            FaultPlan().stall(0, at=1.0, duration=0.0)
        with pytest.raises(ValueError, match="drop_rate"):
            FaultPlan().drop_rate(1.0)
        with pytest.raises(ValueError, match="worker index"):
            FaultPlan().crash(-1, at=1.0)

    def test_validate_names_offending_event(self):
        plan = FaultPlan().crash(7, at=1.0)
        with pytest.raises(ValueError, match="worker 7"):
            plan.validate(4)
        plan.validate(8)  # in range: fine

    def test_drop_decisions_are_seeded_and_order_free(self):
        a, b = FaultPlan(seed=11).drop_rate(0.5), FaultPlan(seed=11).drop_rate(0.5)
        keys = [(s, d, t, q) for s in range(3) for d in range(3) for t in (0, 1) for q in range(20)]
        decisions_a = [a.should_drop(*k) for k in keys]
        # query b in reverse order: decisions must not depend on call order
        decisions_b = [b.should_drop(*k) for k in reversed(keys)][::-1]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)
        other = FaultPlan(seed=12).drop_rate(0.5)
        assert [other.should_drop(*k) for k in keys] != decisions_a

    def test_equality_and_fingerprint(self):
        mk = lambda: FaultPlan(seed=5).crash(1, at=0.5).drop_rate(0.1)  # noqa: E731
        assert mk() == mk()
        assert mk().fingerprint() == mk().fingerprint()
        assert mk() != FaultPlan(seed=6).crash(1, at=0.5).drop_rate(0.1)

    def test_from_spec(self):
        plan = FaultPlan.from_spec("crash:1@0.5>2.0; straggler:2x3.0@1.0; drop:0.05; seed:9")
        assert plan.seed == 9
        assert plan.crash_time(1) == 0.5 and plan.rejoin_time(1) == 2.0
        assert plan.slowdown(2, 0.5) == 1.0 and plan.slowdown(2, 1.5) == 3.0
        assert plan.drop_probability == 0.05
        stall = FaultPlan.from_spec("stall:0@1.0+0.25")
        assert stall.slowdown(0, 1.1) > 1.0
        delay = FaultPlan.from_spec("delay:1.0@0.5")
        assert delay.delay_seconds(0, 1, 0, 0) == 0.5

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ValueError, match="bad fault clause"):
            FaultPlan.from_spec("crash:1")
        with pytest.raises(ValueError, match="bad fault clause"):
            FaultPlan.from_spec("explode:3@1.0")
        with pytest.raises(ValueError, match="bad fault clause"):
            FaultPlan.from_spec("drop:nope")


class TestFaultLog:
    def test_record_count_and_equality(self):
        a, b = FaultLog(), FaultLog()
        for log in (a, b):
            log.record(1.0, "crash", "worker 1", "fail-stop")
            log.record(2.0, "drop", "worker 0 -> master")
        assert a == b and len(a) == 2
        assert a.count("crash") == 1 and a.count() == 2
        assert a.kinds()["drop"] == 1
        assert "crash=1" in a.summary()
        b.record(3.0, "evict", "worker 1")
        assert a != b

    def test_to_dicts(self):
        log = FaultLog()
        log.record(1.5, "rejoin", "worker 2", "re-pulled elastic center")
        (d,) = log.to_dicts()
        assert d == {"time": 1.5, "kind": "rejoin", "subject": "worker 2",
                     "detail": "re-pulled elastic center"}
        assert list(log) == [FaultRecord(1.5, "rejoin", "worker 2", "re-pulled elastic center")]


class TestLegacyFailuresDict:
    def test_zero_time_rejected_with_key(self, mnist_tiny):
        with pytest.raises(ValueError, match=r"failures\[1\] = 0\.0"):
            _trainer(AsyncEASGDTrainer, mnist_tiny, failures={1: 0.0})

    def test_negative_time_rejected_with_key(self, mnist_tiny):
        with pytest.raises(ValueError, match=r"failures\[2\]"):
            _trainer(AsyncEASGDTrainer, mnist_tiny, failures={2: -0.5})

    def test_out_of_range_worker_rejected_with_key(self, mnist_tiny):
        # worker index == num_workers (4) must not be accepted silently
        with pytest.raises(ValueError, match=r"failures\[4\]"):
            _trainer(AsyncEASGDTrainer, mnist_tiny, failures={4: 1.0})

    def test_failures_and_faults_mutually_exclusive(self, mnist_tiny):
        with pytest.raises(ValueError, match="not both"):
            _trainer(AsyncEASGDTrainer, mnist_tiny, faults=FaultPlan(),
                     failures={1: 1.0})

    def test_legacy_dict_becomes_fault_plan(self, mnist_tiny):
        trainer = _trainer(AsyncEASGDTrainer, mnist_tiny, failures={1: 0.5})
        assert trainer.faults is not None
        assert trainer.faults.crash_time(1) == 0.5


class TestAsyncFaults:
    def test_crash_before_first_update(self, mnist_tiny, async_baseline):
        plan = FaultPlan(seed=1).crash(0, at=async_baseline.sim_time * 1e-6)
        res = _trainer(AsyncEASGDTrainer, mnist_tiny, faults=plan).train(150)
        assert res.fault_log.count("crash") == 1
        assert res.final_accuracy > 0.7  # survivors carry the run

    def test_all_workers_crash_raises_gracefully(self, mnist_tiny):
        plan = FaultPlan(seed=1)
        for j in range(4):
            plan.crash(j, at=1e-9)
        with pytest.raises(AllWorkersCrashedError, match="all 4 workers"):
            _trainer(AsyncEASGDTrainer, mnist_tiny, faults=plan).train(100)
        assert issubclass(AllWorkersCrashedError, FaultError)

    def test_midrun_crash_degrades_gracefully(self, mnist_tiny, async_baseline):
        """Acceptance: a mid-run crash completes without hanging and lands
        within 5 accuracy points of the healthy run."""
        plan = FaultPlan(seed=2).crash(2, at=async_baseline.sim_time / 3)
        res = _trainer(AsyncEASGDTrainer, mnist_tiny, faults=plan).train(150)
        assert res.iterations == 150  # no silent worker-loss truncation
        assert fault_degradation(res, async_baseline) <= 0.05
        assert res.fault_log.count("crash") == 1
        assert res.extras["degraded_iterations"] > 0
        assert res.breakdown.degraded_rounds > 0

    def test_straggler_only_matches_no_fault_accuracy(self, mnist_tiny, async_baseline):
        # Factor must beat the overlap: in elastic mode the send does not
        # wait for the pass, so mild stragglers are absorbed entirely by
        # the master's service queue (sim_time stays identical). 10x is
        # slow enough that compute dominates the worker's cycle.
        plan = FaultPlan(seed=3).straggler(1, factor=10.0)
        res = _trainer(AsyncEASGDTrainer, mnist_tiny, faults=plan).train(150)
        # Stragglers perturb only the schedule, not the update math: the
        # run converges to the same neighborhood, just later.
        assert abs(res.final_accuracy - async_baseline.final_accuracy) <= 0.05
        assert res.sim_time > async_baseline.sim_time

    def test_crashed_worker_rejoins_from_center(self, mnist_tiny, async_baseline):
        t_total = async_baseline.sim_time
        plan = FaultPlan(seed=4).crash(1, at=t_total / 4, rejoin_at=t_total / 2)
        res = _trainer(AsyncEASGDTrainer, mnist_tiny, faults=plan).train(150)
        assert res.fault_log.count("rejoin") == 1
        assert res.extras["workers_rejoined"] == 1.0
        assert res.final_accuracy > 0.7

    def test_heartbeat_eviction(self, mnist_tiny, async_baseline):
        plan = FaultPlan(seed=5).crash(3, at=async_baseline.sim_time / 4)
        res = _trainer(
            AsyncEASGDTrainer, mnist_tiny, faults=plan,
            heartbeat_timeout=async_baseline.sim_time / 20,
        ).train(150)
        assert res.fault_log.count("evict") == 1
        assert res.extras["workers_evicted"] == 1.0

    def test_message_drops_are_retried(self, mnist_tiny):
        plan = FaultPlan(seed=6).drop_rate(0.2)
        res = _trainer(AsyncEASGDTrainer, mnist_tiny, faults=plan).train(150)
        assert res.iterations == 150  # every interaction eventually lands
        assert res.fault_log.count("drop") >= 1
        assert res.extras["messages_dropped"] >= 1.0

    def test_fault_run_is_bit_reproducible(self, mnist_tiny):
        """Acceptance: same plan + seed -> identical histories and logs."""

        def run():
            plan = FaultPlan(seed=9).crash(1, at=0.05).drop_rate(0.1).straggler(0, 2.0)
            return _trainer(AsyncEASGDTrainer, mnist_tiny, faults=plan).train(120)

        a, b = run(), run()
        assert a.records == b.records
        assert a.fault_log == b.fault_log
        assert a.extras == b.extras
        assert a.sim_time == b.sim_time

    def test_async_sgd_supports_faults_too(self, mnist_tiny):
        plan = FaultPlan(seed=7).crash(0, at=1e-6)
        res = _trainer(AsyncSGDTrainer, mnist_tiny, faults=plan).train(100)
        assert res.fault_log.count("crash") == 1
        assert res.iterations == 100

    def test_plan_validated_against_worker_count(self, mnist_tiny):
        with pytest.raises(ValueError, match="worker 11"):
            _trainer(AsyncEASGDTrainer, mnist_tiny, faults=FaultPlan().crash(11, at=1.0))


class TestSyncFaults:
    def test_midrun_crash_rebuilds_tree(self, mnist_tiny, sync_baseline):
        """Acceptance: Sync EASGD completes (no deadlock), rebuilds the
        reduction tree over survivors, and degrades within 5 points."""
        plan = FaultPlan(seed=1).crash(1, at=sync_baseline.sim_time / 3)
        res = _trainer(SyncEASGDTrainer, mnist_tiny, faults=plan).train(60)
        assert res.iterations == 60
        assert res.fault_log.count("tree-rebuild") == 1
        assert res.extras["degraded_rounds"] > 0
        assert res.breakdown.degraded_rounds > 0
        assert fault_degradation(res, sync_baseline) <= 0.05

    def test_all_crash_raises_not_hangs(self, mnist_tiny, sync_baseline):
        plan = FaultPlan(seed=2)
        for j in range(4):
            plan.crash(j, at=sync_baseline.sim_time / 10)
        with pytest.raises(AllWorkersCrashedError, match="all 4 workers"):
            _trainer(SyncEASGDTrainer, mnist_tiny, faults=plan).train(60)

    def test_straggler_only_is_numerically_identical(self, mnist_tiny, sync_baseline):
        """A straggler changes only the clock in the synchronous schedule:
        the weight trajectory (and hence accuracy) is bit-identical."""
        plan = FaultPlan(seed=3).straggler(2, factor=5.0)
        res = _trainer(SyncEASGDTrainer, mnist_tiny, faults=plan).train(60)
        assert res.final_accuracy == sync_baseline.final_accuracy
        assert [r.test_accuracy for r in res.records] == [
            r.test_accuracy for r in sync_baseline.records
        ]
        assert res.sim_time > sync_baseline.sim_time

    def test_degraded_rounds_are_cheaper_per_iteration(self, mnist_tiny, sync_baseline):
        """Fewer live ranks -> shallower tree + fewer gradient streams, so
        the crashed run must not cost *more* wall-clock than the full one."""
        plan = FaultPlan(seed=4).crash(0, at=sync_baseline.sim_time / 4)
        res = _trainer(SyncEASGDTrainer, mnist_tiny, faults=plan).train(60)
        assert res.sim_time < sync_baseline.sim_time

    def test_rejoin_restores_from_center(self, mnist_tiny, sync_baseline):
        t_total = sync_baseline.sim_time
        plan = FaultPlan(seed=5).crash(2, at=t_total / 4, rejoin_at=t_total / 2)
        res = _trainer(SyncEASGDTrainer, mnist_tiny, faults=plan).train(60)
        assert res.fault_log.count("rejoin") == 1
        assert res.fault_log.count("tree-rebuild") == 2  # shrink, then regrow
        assert abs(res.final_accuracy - sync_baseline.final_accuracy) <= 0.05

    def test_empty_plan_is_bitwise_no_op(self, mnist_tiny, sync_baseline):
        res = _trainer(SyncEASGDTrainer, mnist_tiny, faults=FaultPlan(seed=0)).train(60)
        assert res.records == sync_baseline.records
        assert res.sim_time == sync_baseline.sim_time

    def test_sync_sgd_crash_path(self, mnist_tiny):
        base = _trainer(SyncSGDTrainer, mnist_tiny).train(60)
        plan = FaultPlan(seed=6).crash(3, at=base.sim_time / 3)
        res = _trainer(SyncSGDTrainer, mnist_tiny, faults=plan).train(60)
        assert res.iterations == 60
        assert res.fault_log.count("tree-rebuild") == 1
        assert fault_degradation(res, base) <= 0.05

    def test_original_easgd_skips_dead_worker(self, mnist_tiny):
        base = _trainer(OriginalEASGDTrainer, mnist_tiny).train(80)
        plan = FaultPlan(seed=7).crash(1, at=base.sim_time / 3)
        res = _trainer(OriginalEASGDTrainer, mnist_tiny, faults=plan).train(80)
        assert res.iterations == 80
        assert res.fault_log.count("crash") == 1
        assert res.extras["degraded_rounds"] > 0
        assert fault_degradation(res, base) <= 0.05

    def test_original_easgd_all_crash_raises(self, mnist_tiny):
        plan = FaultPlan(seed=8)
        for j in range(4):
            plan.crash(j, at=1e-9)
        with pytest.raises(AllWorkersCrashedError):
            _trainer(OriginalEASGDTrainer, mnist_tiny, faults=plan).train(50)


class TestRuntimeFaults:
    def test_deadlock_error_carries_context(self):
        def prog(ctx):
            return ctx.recv(source=(ctx.rank + 1) % ctx.size, tag=17)

        with pytest.raises(DeadlockError) as exc_info:
            InProcessCommunicator(2, timeout=0.2).run(prog)
        err = exc_info.value
        assert isinstance(err, TimeoutError)  # backward compatible
        assert err.source == (err.rank + 1) % 2
        assert err.tag == 17
        assert "deadlock" in str(err)

    def test_timeout_is_per_communicator(self):
        import time as _time

        def prog(ctx):
            return ctx.recv(source=(ctx.rank + 1) % ctx.size)

        start = _time.monotonic()
        with pytest.raises(DeadlockError):
            InProcessCommunicator(2, timeout=0.15).run(prog)
        assert _time.monotonic() - start < 5.0  # nowhere near the 60s default

    def test_five_percent_drop_completes_collectives(self):
        """Acceptance: bcast + allreduce under a 5% drop plan completes via
        sender retransmission + receiver backoff, bit-identical result."""
        plan = FaultPlan(seed=42).drop_rate(0.05)
        comm = InProcessCommunicator(4, timeout=10.0, faults=plan, retry_backoff=0.0005)
        vecs = [np.full(8, float(r)) for r in range(4)]

        def prog(ctx):
            word = ctx.bcast("payload" if ctx.rank == 0 else None, root=0)
            total = ctx.allreduce(vecs[ctx.rank])
            return word, total

        results = comm.run(prog)
        expected = tree_reduce(vecs)
        for word, total in results:
            assert word == "payload"
            np.testing.assert_array_equal(total, expected)

    def test_heavy_drop_logs_retransmissions(self):
        plan = FaultPlan(seed=1).drop_rate(0.35)
        comm = InProcessCommunicator(4, timeout=10.0, faults=plan, retry_backoff=0.0005)
        vecs = [np.ones(4) * r for r in range(4)]
        results = comm.run(lambda ctx: ctx.allreduce(vecs[ctx.rank]))
        expected = tree_reduce(vecs)
        for r in results:
            np.testing.assert_array_equal(r, expected)
        assert comm.fault_log.count("drop") >= 1
        assert comm.fault_log.count("retransmit") >= 1

    def test_lost_forever_message_raises_deadlock_with_context(self):
        plan = FaultPlan(seed=0).lose_message(0, 1, 5)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.send("x", dest=1, tag=5)
                return None
            return ctx.recv(source=0, tag=5)

        comm = InProcessCommunicator(2, timeout=0.3, faults=plan)
        with pytest.raises(DeadlockError) as exc_info:
            comm.run(prog)
        assert (exc_info.value.rank, exc_info.value.source, exc_info.value.tag) == (1, 0, 5)
        assert comm.fault_log.count("lost") == 1

    def test_fault_free_fabric_unchanged(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send({"x": 42}, dest=1)
                return None
            return ctx.recv(source=0)

        comm = InProcessCommunicator(2)
        assert comm.run(prog)[1] == {"x": 42}
        assert len(comm.fault_log) == 0

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            InProcessCommunicator(2, max_retries=-1)
        with pytest.raises(ValueError):
            InProcessCommunicator(2, retry_backoff=0.0)


class TestAnalysisAndSerialization:
    def test_fault_rate_curve(self, mnist_tiny):
        runs = {
            p: _trainer(AsyncEASGDTrainer, mnist_tiny, faults=FaultPlan(seed=1).drop_rate(p)).train(60)
            for p in (0.0, 0.1)
        }
        rates, accs = fault_rate_curve(runs)
        assert list(rates) == [0.0, 0.1]
        assert accs.shape == (2,)
        with pytest.raises(ValueError):
            fault_rate_curve({})

    def test_result_serializes_fault_log(self, mnist_tiny, tmp_path):
        plan = FaultPlan(seed=2).crash(1, at=0.05)
        res = _trainer(AsyncEASGDTrainer, mnist_tiny, faults=plan).train(60)
        d = result_to_dict(res)
        assert d["fault_log"] and d["fault_log"][0]["kind"] == "crash"
        assert "degraded_rounds" in d
        path = tmp_path / "runs.json"
        results_to_json([res], path)
        (loaded,) = results_from_json(path)
        assert loaded["fault_log"] == d["fault_log"]

    def test_healthy_result_omits_fault_log(self, mnist_tiny):
        res = _trainer(AsyncEASGDTrainer, mnist_tiny).train(30)
        assert "fault_log" not in result_to_dict(res)
