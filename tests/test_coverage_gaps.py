"""Direct tests for paths previously exercised only through benchmarks."""

import numpy as np
import pytest

from repro.algorithms import TrainerConfig
from repro.algorithms.sync_sgd import SyncSGDTrainer
from repro.cluster import CostModel, GpuClusterPlatform, GpuPlatform, KnlPlatform
from repro.harness.figures import fig6_pairwise_series
from repro.knl import ChipPartitionTrainer, KnlChip, KnlSyncEASGDTrainer, McdramMode
from repro.knl.partition import CIFAR_COPY_BYTES
from repro.nn.models import build_mlp
from repro.nn.spec import ALEXNET, LENET


class TestQuantizedSyncSGD:
    def _trainer(self, mnist_tiny, bits):
        train, test = mnist_tiny
        cfg = TrainerConfig(batch_size=16, lr=0.03, rho=2.0, eval_every=10, eval_samples=128)
        return SyncSGDTrainer(
            build_mlp(seed=3),
            train,
            test,
            GpuPlatform(num_gpus=4, seed=0),
            cfg,
            CostModel.from_spec(LENET),
            quantize_bits=bits,
        )

    def test_quantized_still_learns(self, mnist_tiny):
        res = self._trainer(mnist_tiny, 4).train(60)
        assert res.final_accuracy > 0.7

    def test_quantized_is_faster_on_the_wire(self, mnist_tiny):
        full = self._trainer(mnist_tiny, None).train(10)
        q4 = self._trainer(mnist_tiny, 4).train(10)
        assert q4.sim_time < full.sim_time

    def test_one_bit_extreme_still_moves(self, mnist_tiny):
        res = self._trainer(mnist_tiny, 1).train(40)
        assert res.final_accuracy > 0.3  # crude but nonzero signal

    def test_name_reflects_bits(self, mnist_tiny):
        assert "4-bit" in self._trainer(mnist_tiny, 4).name

    def test_invalid_bits_rejected(self, mnist_tiny):
        with pytest.raises(ValueError):
            self._trainer(mnist_tiny, 0)
        with pytest.raises(ValueError):
            self._trainer(mnist_tiny, 32)


class TestKnlTrainerVariants:
    def _trainer(self, mnist_tiny, overlap):
        train, test = mnist_tiny
        cfg = TrainerConfig(batch_size=16, lr=0.05, rho=2.0, eval_every=10, eval_samples=128)
        return KnlSyncEASGDTrainer(
            build_mlp(seed=5),
            train,
            test,
            KnlPlatform(num_nodes=4, seed=0),
            cfg,
            CostModel.from_spec(LENET),
            overlap=overlap,
        )

    def test_overlap_is_faster(self, mnist_tiny):
        with_overlap = self._trainer(mnist_tiny, True).train(10)
        without = self._trainer(mnist_tiny, False).train(10)
        assert with_overlap.sim_time < without.sim_time

    def test_overlap_same_numerics(self, mnist_tiny):
        a = self._trainer(mnist_tiny, True).train(10)
        b = self._trainer(mnist_tiny, False).train(10)
        assert [r.test_accuracy for r in a.records] == [r.test_accuracy for r in b.records]


class TestClusterPlatformPieces:
    def test_intra_node_times_scale_with_gpus(self):
        cost = CostModel.from_spec(LENET)
        two = GpuClusterPlatform(num_nodes=2, gpus_per_node=2)
        eight = GpuClusterPlatform(num_nodes=2, gpus_per_node=8)
        assert two.intra_node_reduce_time(cost) < eight.intra_node_reduce_time(cost)

    def test_stage_time_independent_of_cluster_size(self):
        cost = CostModel.from_spec(LENET)
        small = GpuClusterPlatform(num_nodes=1, gpus_per_node=2)
        big = GpuClusterPlatform(num_nodes=16, gpus_per_node=2)
        assert small.stage_batch_time(cost, 32) == big.stage_batch_time(cost, 32)

    def test_jitter_free_compute_deterministic(self):
        cost = CostModel.from_spec(LENET)
        plat = GpuClusterPlatform(num_nodes=2, gpus_per_node=2, jitter_sigma=0.0)
        assert plat.fwdbwd_time(cost, 32, worker=0) == plat.fwdbwd_time(cost, 32, worker=1)


class TestFig6Builder:
    def test_builds_all_panels(self, mnist_tiny, fast_config):
        from repro.harness.experiment import ExperimentSpec

        train, test = mnist_tiny
        spec = ExperimentSpec(
            train_set=train,
            test_set=test,
            model_builder=lambda: build_mlp(seed=2),
            num_gpus=2,
            config=fast_config,
            cost_model=CostModel.from_spec(LENET),
            normalized=True,
        )
        panels = fig6_pairwise_series(spec, iterations=10, pairs=(("async-easgd", "async-sgd"),))
        assert set(panels) == {"6.1"}
        assert set(panels["6.1"]) == {"async-easgd", "async-sgd"}
        for times, accs in panels["6.1"].values():
            assert len(times) == len(accs) > 0


class TestPartitionWithCacheMode:
    def test_cache_mode_softens_the_spill(self, mnist_tiny):
        """In cache mode the 32-part working set degrades gradually instead
        of dropping to DDR4 speed — Figure 2's cache-vs-flat trade."""
        train, test = mnist_tiny
        cfg = TrainerConfig(batch_size=32, lr=0.05, eval_every=10, eval_samples=128)

        def iter_time(mode):
            trainer = ChipPartitionTrainer(
                build_mlp(input_shape=(1, 28, 28), seed=4),
                train,
                test,
                cfg,
                parts=32,
                chip=KnlChip(mcdram_mode=mode),
                cost_model=CostModel.from_spec(ALEXNET),
                data_bytes=CIFAR_COPY_BYTES,
            )
            return trainer._iter_time()

        assert iter_time(McdramMode.CACHE) < iter_time(McdramMode.FLAT)
