"""Direct tests for paths previously exercised only through benchmarks."""

import numpy as np
import pytest

from repro.algorithms import TrainerConfig
from repro.algorithms.sync_sgd import SyncSGDTrainer
from repro.cluster import CostModel, GpuClusterPlatform, GpuPlatform, KnlPlatform
from repro.harness.figures import fig6_pairwise_series
from repro.knl import ChipPartitionTrainer, KnlChip, KnlSyncEASGDTrainer, McdramMode
from repro.knl.partition import CIFAR_COPY_BYTES
from repro.nn.models import build_mlp
from repro.nn.spec import ALEXNET, LENET


class TestQuantizedSyncSGD:
    def _trainer(self, mnist_tiny, bits):
        train, test = mnist_tiny
        cfg = TrainerConfig(batch_size=16, lr=0.03, rho=2.0, eval_every=10, eval_samples=128)
        return SyncSGDTrainer(
            build_mlp(seed=3),
            train,
            test,
            GpuPlatform(num_gpus=4, seed=0),
            cfg,
            CostModel.from_spec(LENET),
            quantize_bits=bits,
        )

    def test_quantized_still_learns(self, mnist_tiny):
        res = self._trainer(mnist_tiny, 4).train(60)
        assert res.final_accuracy > 0.7

    def test_quantized_is_faster_on_the_wire(self, mnist_tiny):
        full = self._trainer(mnist_tiny, None).train(10)
        q4 = self._trainer(mnist_tiny, 4).train(10)
        assert q4.sim_time < full.sim_time

    def test_one_bit_extreme_still_moves(self, mnist_tiny):
        res = self._trainer(mnist_tiny, 1).train(40)
        assert res.final_accuracy > 0.3  # crude but nonzero signal

    def test_name_reflects_bits(self, mnist_tiny):
        assert "4-bit" in self._trainer(mnist_tiny, 4).name

    def test_invalid_bits_rejected(self, mnist_tiny):
        with pytest.raises(ValueError):
            self._trainer(mnist_tiny, 0)
        with pytest.raises(ValueError):
            self._trainer(mnist_tiny, 32)


class TestKnlTrainerVariants:
    def _trainer(self, mnist_tiny, overlap):
        train, test = mnist_tiny
        cfg = TrainerConfig(batch_size=16, lr=0.05, rho=2.0, eval_every=10, eval_samples=128)
        return KnlSyncEASGDTrainer(
            build_mlp(seed=5),
            train,
            test,
            KnlPlatform(num_nodes=4, seed=0),
            cfg,
            CostModel.from_spec(LENET),
            overlap=overlap,
        )

    def test_overlap_is_faster(self, mnist_tiny):
        with_overlap = self._trainer(mnist_tiny, True).train(10)
        without = self._trainer(mnist_tiny, False).train(10)
        assert with_overlap.sim_time < without.sim_time

    def test_overlap_same_numerics(self, mnist_tiny):
        a = self._trainer(mnist_tiny, True).train(10)
        b = self._trainer(mnist_tiny, False).train(10)
        assert [r.test_accuracy for r in a.records] == [r.test_accuracy for r in b.records]


class TestClusterPlatformPieces:
    def test_intra_node_times_scale_with_gpus(self):
        cost = CostModel.from_spec(LENET)
        two = GpuClusterPlatform(num_nodes=2, gpus_per_node=2)
        eight = GpuClusterPlatform(num_nodes=2, gpus_per_node=8)
        assert two.intra_node_reduce_time(cost) < eight.intra_node_reduce_time(cost)

    def test_stage_time_independent_of_cluster_size(self):
        cost = CostModel.from_spec(LENET)
        small = GpuClusterPlatform(num_nodes=1, gpus_per_node=2)
        big = GpuClusterPlatform(num_nodes=16, gpus_per_node=2)
        assert small.stage_batch_time(cost, 32) == big.stage_batch_time(cost, 32)

    def test_jitter_free_compute_deterministic(self):
        cost = CostModel.from_spec(LENET)
        plat = GpuClusterPlatform(num_nodes=2, gpus_per_node=2, jitter_sigma=0.0)
        assert plat.fwdbwd_time(cost, 32, worker=0) == plat.fwdbwd_time(cost, 32, worker=1)


class TestFig6Builder:
    def test_builds_all_panels(self, mnist_tiny, fast_config):
        from repro.harness.experiment import ExperimentSpec

        train, test = mnist_tiny
        spec = ExperimentSpec(
            train_set=train,
            test_set=test,
            model_builder=lambda: build_mlp(seed=2),
            num_gpus=2,
            config=fast_config,
            cost_model=CostModel.from_spec(LENET),
            normalized=True,
        )
        panels = fig6_pairwise_series(spec, iterations=10, pairs=(("async-easgd", "async-sgd"),))
        assert set(panels) == {"6.1"}
        assert set(panels["6.1"]) == {"async-easgd", "async-sgd"}
        for times, accs in panels["6.1"].values():
            assert len(times) == len(accs) > 0


class TestPartitionWithCacheMode:
    def test_cache_mode_softens_the_spill(self, mnist_tiny):
        """In cache mode the 32-part working set degrades gradually instead
        of dropping to DDR4 speed — Figure 2's cache-vs-flat trade."""
        train, test = mnist_tiny
        cfg = TrainerConfig(batch_size=32, lr=0.05, eval_every=10, eval_samples=128)

        def iter_time(mode):
            trainer = ChipPartitionTrainer(
                build_mlp(input_shape=(1, 28, 28), seed=4),
                train,
                test,
                cfg,
                parts=32,
                chip=KnlChip(mcdram_mode=mode),
                cost_model=CostModel.from_spec(ALEXNET),
                data_bytes=CIFAR_COPY_BYTES,
            )
            return trainer._iter_time()

        assert iter_time(McdramMode.CACHE) < iter_time(McdramMode.FLAT)


class TestQuantizeEdgeCases:
    """Contract tests for the uniform stochastic quantizer's boundaries."""

    def test_empty_gradient_round_trips(self):
        from repro.optim.quantize import quantize_gradient

        empty = np.array([], dtype=np.float32)
        q, scale = quantize_gradient(empty, 8)
        assert q.size == 0
        assert q.dtype == np.float32
        assert scale == 1.0

    def test_all_zero_gradient_is_identity(self):
        from repro.optim.quantize import quantize_gradient

        zeros = np.zeros(16, dtype=np.float64)
        q, scale = quantize_gradient(zeros, 4)
        np.testing.assert_array_equal(q, zeros)
        assert scale == 1.0
        assert q is not zeros  # a copy, never an alias

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_nonfinite_gradient_rejected(self, bad):
        from repro.optim.quantize import quantize_gradient

        grad = np.array([0.5, bad, -0.25], dtype=np.float32)
        with pytest.raises(ValueError, match="NaN or Inf"):
            quantize_gradient(grad, 8)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_dtype_preserved(self, dtype):
        from repro.optim.quantize import quantize_gradient

        rng = np.random.default_rng(3)
        grad = rng.normal(size=64).astype(dtype)
        det, _ = quantize_gradient(grad, 6)
        sto, _ = quantize_gradient(grad, 6, rng)
        assert det.dtype == dtype
        assert sto.dtype == dtype

    def test_level_count_bounded(self):
        from repro.optim.quantize import quantize_gradient

        rng = np.random.default_rng(4)
        grad = rng.normal(size=4096).astype(np.float32)
        bits = 3
        q, _ = quantize_gradient(grad, bits)
        # signed uniform grid: at most 2*(2^bits - 1) + 1 distinct values
        assert len(np.unique(q)) <= 2 * ((1 << bits) - 1) + 1

    @pytest.mark.parametrize("bits", [0, 17, -1])
    def test_bits_out_of_range(self, bits):
        from repro.optim.quantize import quantize_gradient

        with pytest.raises(ValueError, match="bits"):
            quantize_gradient(np.ones(4), bits)

    def test_stochastic_rounding_is_unbiased(self):
        from repro.optim.quantize import quantize_gradient

        rng = np.random.default_rng(5)
        grad = np.full(20_000, 0.3, dtype=np.float64)
        q, _ = quantize_gradient(grad, 2, rng)
        assert abs(float(q.mean()) - 0.3) < 0.01


class TestCheckpointRoundTrips:
    """Round-trip coverage for repro.nn.serialize beyond the happy path."""

    def test_values_and_dtype_survive(self, tmp_path):
        from repro.nn.serialize import load_checkpoint, save_checkpoint

        net = build_mlp(seed=8)
        rng = np.random.default_rng(8)
        net.set_params(rng.normal(size=net.params.size).astype(net.params.dtype))
        before = net.get_params().copy()
        save_checkpoint(net, tmp_path / "ck.npz", iteration=7)

        other = build_mlp(seed=99)  # different init, same architecture
        assert load_checkpoint(other, tmp_path / "ck.npz") == 7
        restored = other.get_params()
        np.testing.assert_array_equal(restored, before)
        assert restored.dtype == before.dtype

    def test_fingerprint_depends_on_structure_not_values(self):
        from repro.nn.serialize import structure_fingerprint

        a, b = build_mlp(seed=1), build_mlp(seed=2)
        assert structure_fingerprint(a) == structure_fingerprint(b)
        b.set_params(np.zeros_like(b.params))
        assert structure_fingerprint(a) == structure_fingerprint(b)

    def test_default_iteration_is_zero(self, tmp_path):
        from repro.nn.serialize import load_checkpoint, save_checkpoint

        net = build_mlp(seed=8)
        save_checkpoint(net, tmp_path / "ck.npz")
        assert load_checkpoint(build_mlp(seed=8), tmp_path / "ck.npz") == 0

    def test_mismatched_architecture_refused_without_mutation(self, tmp_path):
        from repro.nn.models import build_lenet
        from repro.nn.serialize import load_checkpoint, save_checkpoint

        save_checkpoint(build_lenet(seed=1), tmp_path / "ck.npz")
        target = build_mlp(seed=3)
        before = target.get_params().copy()
        with pytest.raises(ValueError, match="structure mismatch"):
            load_checkpoint(target, tmp_path / "ck.npz")
        np.testing.assert_array_equal(target.get_params(), before)
