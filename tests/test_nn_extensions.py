"""Extended nn features: grouped conv, LRN, residual blocks, ResNet mini."""

from conftest import check_network_gradients
import numpy as np
import pytest

from repro.nn.layers import Conv2D
from repro.nn.models import build_alexnet_mini, build_resnet_mini, ResidualBlock
from repro.nn.network import Network
from repro.nn.regularization import LocalResponseNorm


def _data(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)


class TestGroupedConv:
    def test_param_count_halved_by_two_groups(self):
        full = Network([Conv2D(8, 3)], input_shape=(4, 6, 6), seed=0)
        grouped = Network([Conv2D(8, 3, groups=2)], input_shape=(4, 6, 6), seed=0)
        # weight tensors: (8,4,3,3) vs (8,2,3,3)
        assert grouped.num_params < full.num_params
        assert grouped.layers[0].params["W"].shape == (8, 2, 3, 3)

    def test_groups_isolate_channels(self):
        """Group 0's output depends only on the first half of input channels."""
        net = Network([Conv2D(4, 1, groups=2)], input_shape=(4, 3, 3), seed=1)
        x = _data((1, 4, 3, 3), seed=2)
        y0 = net.forward(x)
        x2 = x.copy()
        x2[:, 2:] += 5.0  # perturb the second group's input only
        y1 = net.forward(x2)
        np.testing.assert_allclose(y0[:, :2], y1[:, :2], rtol=1e-6)
        assert not np.allclose(y0[:, 2:], y1[:, 2:])

    def test_gradcheck(self):
        net = Network([Conv2D(4, 3, pad=1, groups=2)], input_shape=(4, 4, 4), seed=3)
        check_network_gradients(net, _data((2, 4, 4, 4), 4), _data((2, 4, 4, 4), 5))

    def test_groups_one_matches_previous_behaviour(self):
        a = Network([Conv2D(3, 3, pad=1)], input_shape=(2, 4, 4), seed=6)
        b = Network([Conv2D(3, 3, pad=1, groups=1)], input_shape=(2, 4, 4), seed=6)
        x = _data((2, 2, 4, 4), seed=7)
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_flops_scale_inverse_with_groups(self):
        full = Network([Conv2D(8, 3)], input_shape=(4, 6, 6), seed=0)
        grouped = Network([Conv2D(8, 3, groups=2)], input_shape=(4, 6, 6), seed=0)
        assert grouped.layers[0].flops_per_sample() * 2 == full.layers[0].flops_per_sample()

    def test_validation(self):
        with pytest.raises(ValueError):
            Conv2D(8, 3, groups=3)  # does not divide out_channels
        with pytest.raises(ValueError):
            Network([Conv2D(4, 3, groups=2)], input_shape=(3, 5, 5), seed=0)  # C=3


class TestLocalResponseNorm:
    def test_shape_preserved(self):
        net = Network([LocalResponseNorm()], input_shape=(8, 5, 5), seed=0)
        x = _data((2, 8, 5, 5))
        assert net.forward(x).shape == x.shape

    def test_suppresses_high_activity_neighbourhoods(self):
        lrn = LocalResponseNorm(size=3, alpha=1.0, beta=0.75, k=1.0)
        net = Network([lrn], input_shape=(3, 1, 1), seed=0)
        quiet = np.zeros((1, 3, 1, 1), dtype=np.float32)
        quiet[0, 1] = 1.0
        busy = np.full((1, 3, 1, 1), 1.0, dtype=np.float32)
        y_quiet = net.forward(quiet)[0, 1, 0, 0]
        y_busy = net.forward(busy)[0, 1, 0, 0]
        assert y_busy < y_quiet  # same unit output shrinks amid active neighbours

    def test_window_sum_matches_naive(self):
        lrn = LocalResponseNorm(size=5)
        Network([lrn], input_shape=(7, 2, 2), seed=0)
        x = _data((3, 7, 2, 2), seed=8)
        fast = lrn._window_sum(x)
        naive = np.zeros_like(x)
        for i in range(7):
            lo, hi = max(0, i - 2), min(7, i + 3)
            naive[:, i] = x[:, lo:hi].sum(axis=1)
        np.testing.assert_allclose(fast, naive, rtol=1e-5, atol=1e-6)

    def test_gradcheck(self):
        net = Network([LocalResponseNorm(size=3)], input_shape=(4, 3, 3), seed=9)
        check_network_gradients(net, _data((2, 4, 3, 3), 10), _data((2, 4, 3, 3), 11))

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalResponseNorm(size=4)  # even
        with pytest.raises(ValueError):
            LocalResponseNorm(beta=0.0)

    def test_alexnet_lrn_option(self):
        plain = build_alexnet_mini(seed=1)
        with_lrn = build_alexnet_mini(seed=1, use_lrn=True)
        assert len(with_lrn.layers) == len(plain.layers) + 1


class TestResidualBlock:
    def test_identity_shortcut_shape(self):
        net = Network([ResidualBlock(4)], input_shape=(4, 6, 6), seed=0)
        assert net.output_shape == (4, 6, 6)
        assert not net.layers[0].shortcut  # identity: no projection layers

    def test_projection_shortcut_when_strided(self):
        net = Network([ResidualBlock(8, stride=2)], input_shape=(4, 6, 6), seed=0)
        assert net.output_shape == (8, 3, 3)
        assert net.layers[0].shortcut  # 1x1 projection present

    def test_skip_connection_carries_signal(self):
        """Zeroing the body weights leaves relu(identity) — a true skip."""
        net = Network([ResidualBlock(3)], input_shape=(3, 4, 4), seed=1)
        block = net.layers[0]
        for layer in block.body:
            for p in layer.params.values():
                p[...] = 0.0
        x = np.abs(_data((1, 3, 4, 4), seed=12))
        # body(x) = 0 (bn of zeros is zero), so y = relu(x) = x for x >= 0
        np.testing.assert_allclose(net.forward(x), x, atol=1e-5)

    def test_gradcheck(self):
        """Training-mode numeric probe: the block contains BatchNorm, whose
        inference path uses running statistics and would not match the
        training-mode analytic gradient."""
        from repro.nn.losses import MeanSquaredError

        from conftest import numeric_gradient

        net = Network([ResidualBlock(3)], input_shape=(3, 4, 4), seed=2)
        x = _data((2, 3, 4, 4), seed=13) + 0.2
        t = _data((2, 3, 4, 4), seed=14)
        loss = MeanSquaredError()

        def f():
            return loss.forward(net.forward(x, training=True), t)

        net.zero_grads()
        out = net.forward(x, training=True)
        loss.forward(out, t)
        net.backward(loss.backward())
        analytic = net.grads.copy()
        numeric = numeric_gradient(f, net.params)
        np.testing.assert_allclose(analytic, numeric, rtol=8e-2, atol=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResidualBlock(0)


class TestResNetMini:
    def test_forward_shape(self):
        net = build_resnet_mini(seed=0)
        y = net.forward(_data((2, 3, 32, 32), seed=15))
        assert y.shape == (2, 10)

    def test_learns(self):
        net = build_resnet_mini(seed=3)
        rng = np.random.default_rng(4)
        x = rng.normal(size=(16, 3, 32, 32)).astype(np.float32)
        y = rng.integers(0, 10, 16)
        first = net.gradient(x, y)
        for _ in range(50):
            net.gradient(x, y)
            net.params -= 0.05 * net.grads
        assert net.gradient(x, y) < first * 0.6

    def test_all_residual_params_packed(self):
        net = build_resnet_mini(seed=0)
        net.params[...] = 0.5
        block = net.layers[3]
        np.testing.assert_array_equal(block.body[0].params["W"], 0.5)
