"""Async parameter-server family: DES behaviour, locks, learning."""

import numpy as np
import pytest

from repro.algorithms import TrainerConfig
from repro.algorithms.async_ps import (
    AsyncEASGDTrainer,
    AsyncMEASGDTrainer,
    AsyncMSGDTrainer,
    AsyncSGDTrainer,
    HogwildEASGDTrainer,
    HogwildSGDTrainer,
)
from repro.cluster import CostModel, GpuPlatform
from repro.nn.models import build_mlp
from repro.nn.spec import LENET


def _make(cls, mnist_tiny, cfg, gpus=4, seed=1):
    train, test = mnist_tiny
    return cls(
        build_mlp(seed=seed),
        train,
        test,
        GpuPlatform(num_gpus=gpus, seed=cfg.seed),
        cfg,
        CostModel.from_spec(LENET),
    )


@pytest.fixture()
def async_config():
    return TrainerConfig(batch_size=16, lr=0.02, rho=2.0, seed=0, eval_every=20, eval_samples=128)


ALL_ASYNC = [
    AsyncSGDTrainer,
    HogwildSGDTrainer,
    AsyncEASGDTrainer,
    AsyncMEASGDTrainer,
    HogwildEASGDTrainer,
]


@pytest.mark.parametrize("cls", ALL_ASYNC)
class TestAsyncCommon:
    def test_learns(self, cls, mnist_tiny, async_config):
        res = _make(cls, mnist_tiny, async_config).train(150)
        assert res.final_accuracy > 0.6, f"{cls.__name__} did not learn"

    def test_deterministic(self, cls, mnist_tiny, async_config):
        a = _make(cls, mnist_tiny, async_config).train(60)
        b = _make(cls, mnist_tiny, async_config).train(60)
        assert [r.test_accuracy for r in a.records] == [r.test_accuracy for r in b.records]
        assert a.sim_time == b.sim_time

    def test_sim_time_monotone_in_iterations(self, cls, mnist_tiny, async_config):
        a = _make(cls, mnist_tiny, async_config).train(40)
        b = _make(cls, mnist_tiny, async_config).train(80)
        assert b.sim_time > a.sim_time

    def test_records_time_nondecreasing(self, cls, mnist_tiny, async_config):
        res = _make(cls, mnist_tiny, async_config).train(80)
        times = [r.sim_time for r in res.records]
        assert all(a <= b for a, b in zip(times, times[1:]))


class TestLockVsLockFree:
    def test_hogwild_is_faster_than_locked(self, mnist_tiny, async_config):
        """Removing the master lock removes queueing delay (the paper's
        Hogwild argument) — strictly fewer simulated seconds for the same
        number of interactions."""
        locked = _make(AsyncEASGDTrainer, mnist_tiny, async_config).train(200)
        lockfree = _make(HogwildEASGDTrainer, mnist_tiny, async_config).train(200)
        assert lockfree.sim_time <= locked.sim_time
        assert lockfree.extras["master_wait_seconds"] == 0.0
        assert locked.extras["master_wait_seconds"] >= 0.0

    def test_more_workers_more_queueing(self, mnist_tiny, async_config):
        w2 = _make(AsyncSGDTrainer, mnist_tiny, async_config, gpus=2).train(100)
        w8 = _make(AsyncSGDTrainer, mnist_tiny, async_config, gpus=8).train(100)
        assert w8.extras["master_wait_seconds"] >= w2.extras["master_wait_seconds"]


class TestElasticOverlap:
    def test_easgd_cycles_faster_than_sgd(self, mnist_tiny, async_config):
        """EASGD overlaps the pass with the exchange (Section 5.1 step 2),
        so the same interaction count takes less simulated time."""
        sgd = _make(AsyncSGDTrainer, mnist_tiny, async_config).train(200)
        easgd = _make(AsyncEASGDTrainer, mnist_tiny, async_config).train(200)
        assert easgd.sim_time < sgd.sim_time


class TestUpdateRules:
    def test_async_sgd_master_follows_gradients(self, mnist_tiny, async_config):
        tr = _make(AsyncSGDTrainer, mnist_tiny, async_config)
        init = tr.net.get_params()
        tr.train(30)
        assert not np.allclose(tr.master, init)

    def test_easgd_workers_stay_distinct_from_center(self, mnist_tiny, async_config):
        tr = _make(AsyncEASGDTrainer, mnist_tiny, async_config)
        tr.train(50)
        assert any(not np.allclose(w, tr.master) for w in tr.worker_w)

    def test_measgd_uses_velocity(self, mnist_tiny, async_config):
        tr = _make(AsyncMEASGDTrainer, mnist_tiny, async_config)
        tr.train(30)
        assert any(float(np.abs(v).sum()) > 0 for v in tr.worker_v)

    def test_msgd_uses_master_velocity(self, mnist_tiny, async_config):
        # mu=0.5 keeps master momentum stable at this scale.
        cfg = TrainerConfig(batch_size=16, lr=0.02, rho=2.0, mu=0.5, seed=0, eval_every=20)
        tr = _make(AsyncMSGDTrainer, mnist_tiny, cfg)
        tr.train(30)
        assert float(np.abs(tr.master_v).sum()) > 0

    def test_sgd_workers_track_master_exactly(self, mnist_tiny, async_config):
        """An SGD worker's weights after a reply are the master weights at
        that reply — they never drift independently."""
        tr = _make(AsyncSGDTrainer, mnist_tiny, async_config)
        tr.train(9)  # not a multiple of 4: last reply state differs per worker
        # At least the most recently served worker matches the master.
        assert any(np.allclose(w, tr.master) for w in tr.worker_w)
