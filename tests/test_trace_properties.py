"""Property-based trace tests: the paper's complexity claims, mechanically.

Hypothesis draws the worker count P from {2, 3, 4, 8} plus seeds and fault
plans, and asserts on the *traced* communication structure:

* Original EASGD's round-robin exchange is Theta(P): the master serially
  touches every worker every iteration.
* Sync EASGD's binomial-tree collectives are Theta(log P): at most
  ceil(log2 P) rounds and P - 1 edges per phase, regardless of seed.
* Send/recv conservation on the in-process runtime: every send is either
  received or accounted for by a loss fault event, including under
  drop/delay fault plans.
"""

import math

from hypothesis import given, HealthCheck, settings
from hypothesis import strategies as st
import pytest

from repro.algorithms import TrainerConfig
from repro.algorithms.original_easgd import OriginalEASGDTrainer
from repro.algorithms.sync_easgd import SyncEASGDTrainer
from repro.cluster import CostModel, GpuPlatform
from repro.comm.runtime import DeadlockError, InProcessCommunicator
from repro.faults import FaultPlan
from repro.nn.models import build_mlp
from repro.nn.spec import LENET
from repro.trace import MASTER, Trace
from repro.trace.check import (
    check_message_conservation,
    check_tree_message_bound,
    check_tree_round_bound,
)
from repro.trace.metrics import round_count

pytestmark = pytest.mark.trace

WORKER_COUNTS = st.sampled_from([2, 3, 4, 8])

ITERATIONS = 3

trainer_settings = settings(
    deadline=None,
    max_examples=6,
    suppress_health_check=[HealthCheck.too_slow],
)


def _run(trainer_cls, mnist_tiny, p, seed, iterations=ITERATIONS, **kw):
    train, test = mnist_tiny
    cfg = TrainerConfig(batch_size=16, seed=seed, eval_every=100,
                        eval_samples=64, trace=True)
    trainer = trainer_cls(
        build_mlp(seed=seed), train, test, GpuPlatform(num_gpus=p, seed=seed),
        cfg, CostModel.from_spec(LENET), **kw,
    )
    result = trainer.train(iterations)
    assert result.trace is not None
    return result.trace


class TestComplexityClaims:
    @trainer_settings
    @given(p=WORKER_COUNTS, seed=st.integers(0, 2**16))
    def test_original_easgd_is_theta_p(self, mnist_tiny, p, seed):
        """Round-robin: one worker per iteration, so a full sweep costs P.

        Theta(P) here is *staleness*: each iteration carries exactly one
        down + up exchange with the master, and only after P iterations has
        every worker been refreshed once.
        """
        trace = _run(OriginalEASGDTrainer, mnist_tiny, p, seed, iterations=p)
        mpe = trace.meta["messages_per_exchange"]
        served = []
        for t in trace.iterations():
            sends = [e for e in trace.sends() if e.iteration == t]
            assert len(sends) == 2 * mpe  # one exchange per iteration, serial
            assert all(MASTER in (e.rank, e.peer) for e in sends)
            served.extend(e.peer for e in sends if e.rank == MASTER)
        # a window of P iterations touches each of the P workers exactly once
        assert sorted(set(served)) == list(range(p))
        assert len(served) == p * mpe
        check_message_conservation(trace)

    @trainer_settings
    @given(p=WORKER_COUNTS, seed=st.integers(0, 2**16),
           variant=st.sampled_from([1, 2, 3]))
    def test_sync_easgd_is_theta_log_p(self, mnist_tiny, p, seed, variant):
        """Binomial tree: <= ceil(log2 P) rounds, P - 1 edges per phase."""
        trace = _run(SyncEASGDTrainer, mnist_tiny, p, seed, variant=variant)
        depth = math.ceil(math.log2(p))
        for op in ("tree-bcast", "tree-reduce"):
            assert round_count(trace, op, iteration=1) <= depth
            edges = {(e.rank, e.peer)
                     for e in trace.sends(op) if e.iteration == 1}
            assert len(edges) == p - 1
        check_tree_round_bound(trace)
        check_tree_message_bound(trace)
        check_message_conservation(trace)

    @trainer_settings
    @given(p=st.sampled_from([4, 8]), seed=st.integers(0, 2**16))
    def test_tree_beats_round_robin_in_refresh_latency(self, mnist_tiny, p, seed):
        """The paper's Section 4 claim: a tree refreshes all P workers every
        iteration in <= ceil(log2 P) rounds; round-robin needs P iterations."""
        orig = _run(OriginalEASGDTrainer, mnist_tiny, p, seed, iterations=p)
        sync = _run(SyncEASGDTrainer, mnist_tiny, p, seed, variant=1)
        # round-robin: iterations until every worker has talked to the master
        touched, sweep = set(), 0
        for t in orig.iterations():
            sweep = t
            touched.update(e.peer for e in orig.sends()
                           if e.iteration == t and e.rank == MASTER)
            if len(touched) == p:
                break
        assert sweep == p  # linear refresh latency
        # tree: all P workers synchronized within one iteration, log depth
        edges = {(e.rank, e.peer) for e in sync.sends("tree-bcast")
                 if e.iteration == 1}
        assert {d for _, d in edges} | {sync.meta.get("root", 0)} >= set(range(p)) - {0}
        tree_depth = max(round_count(sync, "tree-bcast", iteration=1),
                         round_count(sync, "tree-reduce", iteration=1))
        assert tree_depth <= math.ceil(math.log2(p)) < p == sweep


def _ring_program(ctx, rounds):
    """Each rank sends `rounds` messages right and receives from the left."""
    right = (ctx.rank + 1) % ctx.size
    left = (ctx.rank - 1) % ctx.size
    got = 0
    for t in range(rounds):
        ctx.trace_iteration = t
        ctx.send(("m", ctx.rank, t), right, tag=9)
    for _ in range(rounds):
        try:
            ctx.recv(left, tag=9)
            got += 1
        except DeadlockError:
            break  # a lost channel: the trace must account for it
    return got


class TestRuntimeConservation:
    @settings(deadline=None, max_examples=10)
    @given(p=WORKER_COUNTS, rounds=st.integers(1, 4))
    def test_reliable_fabric_conserves_exactly(self, p, rounds):
        trace = Trace()
        comm = InProcessCommunicator(p, trace=trace)
        comm.run(_ring_program, rounds)
        sends, recvs = trace.sends(), trace.recvs()
        assert len(sends) == len(recvs) == p * rounds
        assert {e.channel() for e in sends} == {e.channel() for e in recvs}
        check_message_conservation(trace)

    @settings(deadline=None, max_examples=8,
              suppress_health_check=[HealthCheck.too_slow])
    @given(p=st.sampled_from([2, 3, 4]),
           seed=st.integers(0, 2**16),
           drop=st.floats(0.0, 0.5),
           delay_p=st.floats(0.0, 0.5))
    def test_conservation_survives_drop_and_delay_faults(self, p, seed, drop, delay_p):
        """Dropped and delayed messages show up as fault events, never vanish."""
        plan = FaultPlan(seed=seed).drop_rate(drop).delay(delay_p, 0.002)
        trace = Trace()
        comm = InProcessCommunicator(p, timeout=0.5, faults=plan, trace=trace)
        comm.run(_ring_program, 3)
        check_message_conservation(trace)

    @settings(deadline=None, max_examples=5)
    @given(p=st.sampled_from([2, 4]), seed=st.integers(0, 2**16))
    def test_lost_channel_leaves_a_fault_event(self, p, seed):
        """A lost-forever link never produces a send, only a 'lost' fault."""
        plan = FaultPlan(seed=seed).lose_message(0, 1, 9)
        trace = Trace()
        comm = InProcessCommunicator(p, timeout=0.4, faults=plan, trace=trace)
        comm.run(_ring_program, 2)
        lost = [e for e in trace.by_kind("fault") if e.op == "lost"]
        assert len(lost) == 2 and all(e.rank == 0 and e.peer == 1 for e in lost)
        assert not [e for e in trace.sends() if e.rank == 0 and e.peer == 1]
        check_message_conservation(trace)
