"""Update rules: SGD, momentum, the EASGD equations, schedules, quantization."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.optim import (
    ConstantLR,
    EASGDHyper,
    elastic_center_update,
    elastic_center_update_single,
    elastic_momentum_worker_update,
    elastic_worker_update,
    InverseScalingLR,
    MomentumRule,
    quantize_gradient,
    SGDRule,
    StepDecayLR,
)


def _vec(seed=0, n=16):
    return np.random.default_rng(seed).normal(size=n).astype(np.float32)


class TestSGD:
    def test_step(self):
        p, g = np.ones(4, dtype=np.float32), np.full(4, 2.0, dtype=np.float32)
        SGDRule(lr=0.1).apply(p, g)
        np.testing.assert_allclose(p, 0.8)

    def test_in_place(self):
        p = np.ones(4, dtype=np.float32)
        ref = p
        SGDRule(lr=0.1).apply(p, np.ones(4, dtype=np.float32))
        assert ref is p

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGDRule(lr=0.0)


class TestMomentum:
    def test_mu_zero_equals_sgd(self):
        p1, p2 = _vec(1).copy(), _vec(1).copy()
        g = _vec(2)
        sgd, mom = SGDRule(lr=0.1), MomentumRule(lr=0.1, mu=0.0)
        for _ in range(5):
            sgd.apply(p1, g)
            mom.apply(p2, g)
        np.testing.assert_allclose(p1, p2, rtol=1e-6)

    def test_velocity_accumulates(self):
        p = np.zeros(2, dtype=np.float32)
        g = np.ones(2, dtype=np.float32)
        mom = MomentumRule(lr=1.0, mu=0.5)
        mom.apply(p, g)  # v=-1, p=-1
        mom.apply(p, g)  # v=-1.5, p=-2.5
        np.testing.assert_allclose(p, -2.5)

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            MomentumRule(lr=0.1, mu=1.0)


class TestEASGDHyper:
    def test_alpha(self):
        assert EASGDHyper(lr=0.05, rho=2.0).alpha == pytest.approx(0.1)

    def test_stability_check(self):
        with pytest.raises(ValueError):
            EASGDHyper(lr=1.0, rho=2.0)  # alpha = 2 > 1

    def test_rho_zero_allowed(self):
        assert EASGDHyper(lr=0.1, rho=0.0).alpha == 0.0


class TestElasticUpdates:
    def test_worker_update_hand_computed(self):
        # W=2, grad=1, center=0, lr=0.1, rho=2 -> alpha=0.2
        # W' = 2 - 0.1*1 - 0.2*(2-0) = 2 - 0.1 - 0.4 = 1.5
        w = np.array([2.0], dtype=np.float32)
        elastic_worker_update(
            w, np.array([1.0], dtype=np.float32), np.zeros(1, dtype=np.float32),
            EASGDHyper(lr=0.1, rho=2.0),
        )
        assert w[0] == pytest.approx(1.5)

    def test_center_update_hand_computed(self):
        # center=0, workers [1, 3], alpha=0.1: center += 0.1*((1+3) - 2*0) = 0.4
        c = np.zeros(1, dtype=np.float32)
        elastic_center_update(
            c,
            [np.array([1.0], dtype=np.float32), np.array([3.0], dtype=np.float32)],
            EASGDHyper(lr=0.05, rho=2.0),
        )
        assert c[0] == pytest.approx(0.4)

    def test_center_single_matches_full_for_one_worker(self):
        c1, c2 = _vec(3).copy(), _vec(3).copy()
        w = _vec(4)
        h = EASGDHyper(lr=0.05, rho=2.0)
        elastic_center_update(c1, [w], h)
        elastic_center_update_single(c2, w, h)
        np.testing.assert_allclose(c1, c2, rtol=1e-6)

    def test_zero_gradient_pure_elastic_contraction(self):
        """With no gradient, worker moves toward center by factor (1-alpha)."""
        w = np.array([10.0], dtype=np.float32)
        c = np.zeros(1, dtype=np.float32)
        h = EASGDHyper(lr=0.05, rho=2.0)
        elastic_worker_update(w, np.zeros(1, dtype=np.float32), c, h)
        assert w[0] == pytest.approx(10.0 * (1 - h.alpha))

    def test_momentum_worker_mu_zero_matches_plain(self):
        h = EASGDHyper(lr=0.05, rho=2.0, mu=0.0)
        w1, w2 = _vec(5).copy(), _vec(5).copy()
        v = np.zeros_like(w1)
        g, c = _vec(6), _vec(7)
        elastic_worker_update(w1, g, c, h)
        elastic_momentum_worker_update(w2, v, g, c, h)
        np.testing.assert_allclose(w1, w2, rtol=1e-5, atol=1e-6)

    def test_center_update_requires_workers(self):
        with pytest.raises(ValueError):
            elastic_center_update(np.zeros(2), [], EASGDHyper(lr=0.1, rho=1.0))

    def test_center_update_rejects_unstable_alpha(self):
        # 8 workers at alpha=0.5 -> P*alpha = 4 >= 2: guaranteed divergence.
        h = EASGDHyper(lr=0.25, rho=2.0)
        workers = [np.ones(2, dtype=np.float32)] * 8
        with pytest.raises(ValueError, match="unstable"):
            elastic_center_update(np.zeros(2, dtype=np.float32), workers, h)

    @settings(max_examples=30, deadline=None)
    @given(
        lr=st.floats(0.001, 0.4), rho=st.floats(0.1, 2.0), seed=st.integers(0, 100)
    )
    def test_consensus_property(self, lr, rho, seed):
        """With zero gradients, workers and center converge to consensus.

        Monotone contraction needs P*alpha <= 1 (4 workers here); the
        library additionally rejects P*alpha >= 2 outright — covered by
        test_center_update_rejects_unstable_alpha.
        """
        if not 0 < 4 * lr * rho <= 1:
            return
        h = EASGDHyper(lr=lr, rho=rho)
        rng = np.random.default_rng(seed)
        workers = [rng.normal(size=8).astype(np.float32) for _ in range(4)]
        center = rng.normal(size=8).astype(np.float32)
        zero = np.zeros(8, dtype=np.float32)
        spread0 = max(float(np.abs(w - center).max()) for w in workers)
        for _ in range(200):
            snapshot = [w.copy() for w in workers]
            for w in workers:
                elastic_worker_update(w, zero, center, h)
            elastic_center_update(center, snapshot, h)
        spread = max(float(np.abs(w - center).max()) for w in workers)
        # Never expands; contracts decisively once alpha is non-trivial.
        assert spread <= spread0 + 1e-5
        if h.alpha >= 0.01:
            assert spread < spread0 * 0.5 + 1e-5


class TestSchedules:
    def test_constant(self):
        assert ConstantLR(0.1)(999) == 0.1

    def test_step_decay(self):
        s = StepDecayLR(1.0, step_size=10, gamma=0.1)
        assert s(0) == 1.0
        assert s(10) == pytest.approx(0.1)
        assert s(25) == pytest.approx(0.01)

    def test_inverse_scaling_monotone(self):
        s = InverseScalingLR(1.0, gamma=0.01, power=0.5)
        values = [s(i) for i in range(0, 1000, 100)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(0)
        with pytest.raises(ValueError):
            StepDecayLR(0.1, step_size=0)


class TestQuantize:
    def test_roundtrip_error_bounded(self):
        g = _vec(8, n=1000)
        q, scale = quantize_gradient(g, bits=8)
        assert np.abs(q - g).max() <= scale / 2 + 1e-7

    def test_one_bit_has_three_levels(self):
        g = _vec(9, n=1000)
        q, _ = quantize_gradient(g, bits=1)
        assert len(np.unique(q)) <= 3

    def test_zero_gradient(self):
        q, scale = quantize_gradient(np.zeros(10, dtype=np.float32), bits=4)
        np.testing.assert_array_equal(q, 0.0)

    def test_stochastic_unbiased(self):
        g = np.full(20000, 0.3_3, dtype=np.float32)
        rng = np.random.default_rng(0)
        q, _ = quantize_gradient(g, bits=2, rng=rng)
        assert q.mean() == pytest.approx(0.33, abs=0.01)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_gradient(np.ones(4), bits=0)
