"""The float16 wire format: codec edge cases and end-to-end divergence.

``encode_wire``/``decode_wire`` are IEEE format conversions, not the
stochastic quantizer: they must survive the values ``quantize_gradient``
rejects (NaN, Inf) with the standard IEEE outcomes — NaN stays NaN,
overflow saturates to the correctly-signed infinity, sub-half-denormal
magnitudes flush toward signed zero — and round-trip exactly for values
half represents exactly.

End to end, a float16 wire rounds every message of every iteration, so
the trajectory *diverges* from float32 — but boundedly: the paper's
half-precision-communication trade is useful only if the loss stays in
family. The e2e test pins that bound for Sync EASGD3 on threads.
"""

import numpy as np
import pytest

from repro.algorithms.mpi_easgd import run_mpi_sync_easgd
from repro.algorithms.mpi_sgd import run_mpi_sync_sgd
from repro.comm.runtime import InProcessCommunicator
from repro.optim.quantize import (
    decode_wire,
    encode_wire,
    validate_wire_dtype,
    WIRE_DTYPES,
)

RANKS = 4
ITERATIONS = 6


class TestCodec:
    def test_float32_is_identity_no_copy(self):
        arr = np.arange(8, dtype=np.float32)
        assert encode_wire(arr, "float32") is arr
        assert decode_wire(arr, "float32") is arr

    def test_half_exact_values_round_trip(self):
        # Integers up to 2048 and powers of two across half's range are
        # exactly representable: encode/decode must be lossless on them.
        exact = np.array(
            [0.0, -0.0, 1.0, -1.0, 2048.0, 0.5, 2.0**-14, 2.0**15, 65504.0],
            dtype=np.float32,
        )
        out = decode_wire(encode_wire(exact, "float16"), "float16")
        np.testing.assert_array_equal(out, exact)
        assert np.signbit(out[1]) and not np.signbit(out[0])

    def test_nan_stays_nan(self):
        arr = np.array([np.nan, 1.0, -np.nan], dtype=np.float32)
        out = decode_wire(encode_wire(arr, "float16"), "float16")
        assert np.isnan(out[0]) and np.isnan(out[2])
        assert out[1] == 1.0

    def test_overflow_saturates_to_signed_inf(self):
        # Above half's max finite (65504) the IEEE conversion overflows
        # to infinity, preserving sign; infinities pass through.
        with np.errstate(over="ignore"):
            arr = np.array([1e38, -1e38, np.inf, -np.inf], dtype=np.float32)
            out = decode_wire(encode_wire(arr, "float16"), "float16")
        assert np.isposinf(out[0]) and np.isneginf(out[1])
        assert np.isposinf(out[2]) and np.isneginf(out[3])

    def test_denormals_flush_or_survive(self):
        # float32 denormals sit far below half's smallest subnormal
        # (2^-24): they flush to signed zero. Half's own subnormal range
        # survives the trip.
        with np.errstate(under="ignore"):
            tiny = np.array([1e-40, -1e-40], dtype=np.float32)
            out = decode_wire(encode_wire(tiny, "float16"), "float16")
        np.testing.assert_array_equal(out, np.array([0.0, -0.0], dtype=np.float32))
        assert not np.signbit(out[0]) and np.signbit(out[1])
        half_sub = np.array([2.0**-24, -(2.0**-24)], dtype=np.float32)
        np.testing.assert_array_equal(
            decode_wire(encode_wire(half_sub, "float16"), "float16"), half_sub
        )

    def test_decode_always_float32(self):
        out = decode_wire(encode_wire(np.ones(3, dtype=np.float32), "float16"),
                          "float16")
        assert out.dtype == np.float32

    def test_validate(self):
        for w in WIRE_DTYPES:
            assert validate_wire_dtype(w) == w
        with pytest.raises(ValueError):
            validate_wire_dtype("bfloat16")


class TestRuntimeWire:
    def test_f16_allreduce_close_not_equal(self):
        """A half wire rounds the sums but stays within half's ulp."""
        rng = np.random.default_rng(3)
        vectors = [rng.normal(size=501).astype(np.float32) for _ in range(RANKS)]

        def prog(ctx):
            return ctx.allreduce(vectors[ctx.rank].copy())

        exact = InProcessCommunicator(RANKS).run(prog)
        for wire in ("float16",):
            for collective in ("tree", "ring"):
                comm = InProcessCommunicator(
                    RANKS, wire_dtype=wire, collective=collective
                )
                results = comm.run(prog)
                for out, ref in zip(results, exact):
                    # Relative tolerance ~ half epsilon per hop; a wrong
                    # decode (e.g. double scaling) trips this instantly.
                    np.testing.assert_allclose(out, ref, rtol=2e-2, atol=1e-2)

    def test_f16_cross_rank_identical(self):
        """Rounding must not desynchronise the group: every rank sees the
        *same* (rounded) total, for both schedules."""
        rng = np.random.default_rng(4)
        vectors = [rng.normal(size=77).astype(np.float32) for _ in range(RANKS)]
        for collective in ("tree", "ring"):
            comm = InProcessCommunicator(
                RANKS, wire_dtype="float16", collective=collective
            )
            results = comm.run(lambda ctx: ctx.allreduce(vectors[ctx.rank].copy()))
            for out in results[1:]:
                np.testing.assert_array_equal(out, results[0])


class TestEndToEnd:
    def test_easgd3_bounded_divergence(self, mnist_tiny):
        from repro.nn.models import build_mlp

        train, _ = mnist_tiny
        net = build_mlp(seed=7)
        net.forward(train.images[:1])
        runs = {
            wire: run_mpi_sync_easgd(
                net, train, ranks=RANKS, iterations=ITERATIONS, batch_size=16,
                seed=0, backend="threads", variant=3, wire_dtype=wire,
            )
            for wire in ("float32", "float16")
        }
        c32, c16 = runs["float32"].center, runs["float16"].center
        assert not np.array_equal(c32, c16), "half wire should round something"
        # Bounded divergence: the rounded trajectory stays in family.
        denom = np.linalg.norm(c32)
        assert np.linalg.norm(c32 - c16) / denom < 0.05
        assert np.all(np.isfinite(c16))

    def test_sgd_f16_losses_track_f32(self, mnist_tiny):
        train, _ = mnist_tiny
        from repro.nn.models import build_mlp

        net = build_mlp(seed=7)
        net.forward(train.images[:1])
        runs = {
            wire: run_mpi_sync_sgd(
                net, train, ranks=RANKS, iterations=ITERATIONS, batch_size=16,
                seed=0, backend="threads", wire_dtype=wire,
            )
            for wire in ("float32", "float16")
        }
        l32 = np.array(runs["float32"].mean_losses)
        l16 = np.array(runs["float16"].mean_losses)
        assert np.all(np.isfinite(l16))
        np.testing.assert_allclose(l16, l32, rtol=0.1)
