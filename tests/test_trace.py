"""repro.trace: event model, metrics, exporters, and invariant checks.

Unit-level coverage of the tracing subsystem itself; the algorithm-level
guarantees (Theta(P) vs Theta(log P), conservation under faults, golden
replays) live in ``test_trace_properties.py`` and ``test_trace_golden.py``.
"""

import json

import numpy as np
import pytest

from repro.algorithms import TrainerConfig
from repro.algorithms.async_ps import AsyncEASGDTrainer, HogwildSGDTrainer
from repro.algorithms.original_easgd import OriginalEASGDTrainer
from repro.algorithms.sync_easgd import SyncEASGDTrainer
from repro.algorithms.sync_sgd import SyncSGDTrainer
from repro.cluster import CostModel, GpuPlatform
from repro.nn.models import build_mlp
from repro.nn.spec import LENET
from repro.trace import from_jsonl, MASTER, to_chrome, to_jsonl, Trace, TraceEvent
from repro.trace.check import (
    check_all,
    check_fcfs_service,
    check_message_conservation,
    check_no_overlap,
    check_overlap,
    check_packed_single_message,
    check_tree_message_bound,
    check_tree_round_bound,
    InvariantViolation,
)
from repro.trace.export import chrome_events
from repro.trace.metrics import (
    bytes_by_rank,
    comm_compute_ratio,
    comm_seconds,
    compute_seconds,
    critical_path_seconds,
    message_counts,
    overlap_fraction,
    round_count,
    staleness_stats,
    summarize,
)
from repro.trace.schedule import emit_p2p, emit_tree_phase, tree_edge_rounds

pytestmark = pytest.mark.trace


def _trace_for(method, mnist_tiny, iterations=10, **kw):
    """Run a tiny traced 4-rank experiment and return its trace."""
    train, test = mnist_tiny
    cfg = TrainerConfig(batch_size=16, seed=0, eval_every=5, eval_samples=64, trace=True)
    plat = GpuPlatform(num_gpus=4, seed=0)
    cost = CostModel.from_spec(LENET)
    cls = {
        "original": OriginalEASGDTrainer,
        "sync": SyncEASGDTrainer,
        "sgd": SyncSGDTrainer,
        "async": AsyncEASGDTrainer,
        "hogwild": HogwildSGDTrainer,
    }[method]
    result = cls(build_mlp(seed=0), train, test, plat, cfg, cost, **kw).train(iterations)
    assert result.trace is not None
    return result


class TestEventModel:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            TraceEvent("teleport", 0, 0.0, 1.0)

    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            TraceEvent("compute", 0, 2.0, 1.0)

    def test_channel_identity_shared_by_send_and_recv(self):
        s = TraceEvent("send", 0, 0.0, 1.0, peer=3, tag=7, seq=2)
        r = TraceEvent("recv", 3, 1.0, 1.0, peer=0, tag=7, seq=2)
        assert s.channel() == r.channel() == (0, 3, 7, 2)

    def test_channel_only_for_p2p(self):
        with pytest.raises(ValueError):
            TraceEvent("compute", 0, 0.0, 1.0).channel()

    def test_dict_round_trip(self):
        e = TraceEvent("send", 1, 0.5, 0.75, op="x", peer=2, tag=3, nbytes=9, seq=4,
                       round=1, iteration=6, value=2.5)
        assert TraceEvent.from_dict(e.to_dict()) == e

    def test_trace_queries(self):
        tr = Trace(meta={"ranks": 2})
        tr.send(0, 1, 0.0, 1.0, op="a", seq=0)
        tr.recv(1, 0, 1.0, 1.0, op="a", seq=0)
        tr.span("compute", 1, 1.0, 2.0, iteration=3)
        assert len(tr) == 3
        assert [e.kind for e in tr.by_kind("send", "recv")] == ["send", "recv"]
        assert len(tr.sends("a")) == 1 and not tr.sends("b")
        assert tr.iterations() == [3]
        assert tr.ranks() == [0, 1]


class TestSchedule:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8, 9])
    def test_tree_edges_cover_every_rank_once(self, p):
        rounds = tree_edge_rounds(p)
        dests = [d for edges in rounds for _, d in edges]
        assert sorted(dests) == list(range(1, p))  # each non-root reached once
        assert len(rounds) == (0 if p == 1 else int(np.ceil(np.log2(p))))

    def test_reduce_reverses_bcast(self):
        bc, red = Trace(meta={"ranks": 4}), Trace(meta={"ranks": 4})
        emit_tree_phase(bc, "tree-bcast", [0, 1, 2, 3], 0.0, 1.0, nbytes=8, tag=1)
        emit_tree_phase(red, "tree-reduce", [0, 1, 2, 3], 0.0, 1.0, nbytes=8, tag=2,
                        reduce=True)
        bc_edges = {(e.rank, e.peer) for e in bc.sends()}
        red_edges = {(e.peer, e.rank) for e in red.sends()}
        assert bc_edges == red_edges  # same tree, arrows flipped

    def test_per_layer_mode_multiplies_messages(self):
        tr = Trace(meta={"ranks": 4})
        emit_tree_phase(tr, "tree-bcast", [0, 1, 2, 3], 0.0, 1.0, nbytes=12,
                        messages_per_edge=3, tag=1)
        assert len(tr.sends()) == 3 * 3  # 3 edges x 3 blobs
        assert all(e.nbytes == 4 for e in tr.sends())

    def test_p2p_seq_spacing_keeps_channels_distinct(self):
        tr = Trace(meta={"ranks": 2})
        emit_p2p(tr, 0, 1, 0.0, 1.0, op="x", nbytes=6, messages=3, seq=0)
        emit_p2p(tr, 0, 1, 1.0, 2.0, op="x", nbytes=6, messages=3, seq=1)
        assert len({e.channel() for e in tr.sends()}) == 6


class TestMetrics:
    def _toy(self):
        tr = Trace(meta={"ranks": 2})
        tr.span("compute", 0, 0.0, 4.0, iteration=1)
        tr.send(0, 1, 1.0, 3.0, tag=1, nbytes=100, seq=0, op="m", iteration=1)
        tr.recv(1, 0, 3.0, 3.0, tag=1, nbytes=100, seq=0, op="m", iteration=1)
        tr.span("compute", 1, 3.0, 5.0, iteration=1)
        return tr

    def test_counts_and_bytes(self):
        tr = self._toy()
        assert message_counts(tr) == {0: 1}
        assert bytes_by_rank(tr) == {0: 100}

    def test_union_semantics(self):
        tr = self._toy()
        assert comm_seconds(tr) == pytest.approx(2.0)
        assert compute_seconds(tr) == pytest.approx(5.0)  # [0,4] u [3,5]
        assert comm_compute_ratio(tr) == pytest.approx(2.0 / 7.0)

    def test_overlap_fraction_counts_hidden_comm_once(self):
        tr = Trace(meta={"ranks": 1})
        tr.send(0, 0, 0.0, 2.0, seq=0)
        tr.recv(0, 0, 2.0, 2.0, seq=0)
        # two compute spans both covering the send must not double-count
        tr.span("compute", 0, 0.0, 1.5)
        tr.span("staging", 0, 1.0, 2.0)
        assert overlap_fraction(tr) == pytest.approx(1.0)

    def test_critical_path_spans_message_edges(self):
        tr = self._toy()
        # compute(4) -> send tail(2, overlapping from 1) -> recv(0) -> compute(2)
        assert critical_path_seconds(tr) == pytest.approx(4.0 + 2.0 + 0.0 + 2.0)

    def test_round_count(self):
        tr = Trace(meta={"ranks": 8})
        emit_tree_phase(tr, "tree-bcast", list(range(8)), 0.0, 1.0, nbytes=8,
                        tag=1, iteration=1)
        assert round_count(tr, "tree-bcast") == 3

    def test_staleness_stats(self):
        tr = Trace(meta={"ranks": 2})
        tr.span("update", 0, 0.0, 1.0, op="elastic-update", value=2.0)
        tr.span("update", 1, 1.0, 2.0, op="elastic-update", value=4.0)
        stats = staleness_stats(tr)
        assert stats == {"mean": 3.0, "max": 4.0, "count": 2.0}
        assert staleness_stats(Trace())["count"] == 0.0

    def test_summarize_keys(self):
        digest = summarize(self._toy())
        assert set(digest) >= {"events", "messages", "bytes", "comm_seconds",
                               "compute_seconds", "comm_compute_ratio",
                               "overlap_fraction", "critical_path_seconds", "faults"}


class TestExport:
    def test_jsonl_round_trip(self):
        tr = self._sample()
        back = from_jsonl(to_jsonl(tr))
        assert back.meta == tr.meta
        assert back.events == tr.events

    def test_jsonl_is_byte_stable(self):
        assert to_jsonl(self._sample()) == to_jsonl(self._sample())

    def test_jsonl_file_io(self, tmp_path):
        path = tmp_path / "t.jsonl"
        to_jsonl(self._sample(), path)
        assert from_jsonl(path).events == self._sample().events

    def test_from_jsonl_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown record type"):
            from_jsonl('{"type": "mystery"}')
        with pytest.raises(ValueError, match="empty trace"):
            from_jsonl("")
        doc = to_jsonl(self._sample())
        with pytest.raises(ValueError, match="duplicate meta"):
            from_jsonl(doc + doc)

    def test_chrome_structure(self):
        doc = json.loads(to_chrome(self._sample()))
        events = doc["traceEvents"]
        names = {e.get("ph") for e in events}
        assert {"M", "X", "s", "f"} <= names  # threads, slices, flow arrows
        # master maps to tid 0, rank j to j+1; ts are microseconds
        slices = [e for e in events if e.get("ph") == "X"]
        assert any(e["tid"] == 0 for e in slices)
        assert all(e["ts"] >= 0 and e["dur"] > 0 for e in slices)
        assert doc["otherData"]["ranks"] == 2

    def test_chrome_fault_is_instant(self):
        tr = self._sample()
        tr.fault(1, 0.5, "drop", peer=0, seq=9)
        instants = [e for e in chrome_events(tr) if e.get("ph") == "i"]
        assert len(instants) == 1 and instants[0]["name"] == "drop"

    def _sample(self):
        tr = Trace(meta={"ranks": 2, "method": "toy"})
        tr.span("compute", MASTER, 0.0, 1.0, iteration=1)
        tr.send(0, 1, 1.0, 2.0, tag=5, nbytes=64, seq=0, op="m", iteration=1)
        tr.recv(1, 0, 2.0, 2.0, tag=5, nbytes=64, seq=0, op="m", iteration=1)
        return tr


class TestChecks:
    def test_conservation_passes_and_fails(self):
        tr = Trace(meta={"ranks": 2})
        tr.send(0, 1, 0.0, 1.0, tag=1, seq=0)
        tr.recv(1, 0, 1.0, 1.0, tag=1, seq=0)
        check_message_conservation(tr)
        tr.send(0, 1, 2.0, 3.0, tag=1, seq=1)  # never received
        with pytest.raises(InvariantViolation, match="no matching recv"):
            check_message_conservation(tr)
        tr.fault(0, 3.0, "drop", peer=1, tag=1, seq=1)  # loss accounted
        check_message_conservation(tr)

    def test_ghost_recv_always_fails(self):
        tr = Trace(meta={"ranks": 2})
        tr.recv(1, 0, 1.0, 1.0, tag=1, seq=0)
        with pytest.raises(InvariantViolation, match="never sent"):
            check_message_conservation(tr)

    def test_retransmission_conserves(self):
        tr = Trace(meta={"ranks": 2})
        tr.send(0, 1, 0.0, 1.0, tag=1, seq=0)
        tr.send(0, 1, 1.0, 2.0, tag=1, seq=0)  # retransmit, same channel
        tr.recv(1, 0, 2.0, 2.0, tag=1, seq=0)
        check_message_conservation(tr)

    def test_tree_bounds(self):
        tr = Trace(meta={"ranks": 4})
        emit_tree_phase(tr, "tree-bcast", [0, 1, 2, 3], 0.0, 1.0, nbytes=8,
                        tag=1, iteration=1)
        check_tree_message_bound(tr)
        check_tree_round_bound(tr)
        # a flat Theta(P) schedule mislabelled as a tree trips the round bound
        flat = Trace(meta={"ranks": 4})
        for j in range(1, 4):
            flat.send(0, j, float(j), j + 1.0, tag=1, seq=0, op="tree-bcast",
                      round=j - 1, iteration=1)
        check_tree_message_bound(flat)  # 3 edges <= 8: fine
        with pytest.raises(InvariantViolation, match="rounds"):
            check_tree_round_bound(flat)

    def test_packed_single_message(self):
        tr = Trace(meta={"ranks": 4, "packed": True})
        emit_tree_phase(tr, "tree-bcast", [0, 1, 2, 3], 0.0, 1.0, nbytes=8, tag=1,
                        iteration=1)
        check_packed_single_message(tr)
        per_layer = Trace(meta={"ranks": 4, "packed": True})
        emit_tree_phase(per_layer, "tree-bcast", [0, 1, 2, 3], 0.0, 1.0, nbytes=8,
                        tag=1, iteration=1, messages_per_edge=4)
        with pytest.raises(InvariantViolation, match="packed"):
            check_packed_single_message(per_layer)

    def test_overlap_checks(self):
        tr = Trace(meta={"ranks": 1})
        tr.send(0, 0, 0.0, 1.0, seq=0)
        tr.recv(0, 0, 1.0, 1.0, seq=0)
        tr.span("compute", 0, 2.0, 3.0)
        check_no_overlap(tr)
        with pytest.raises(InvariantViolation, match="not hidden"):
            check_overlap(tr)
        tr.span("compute", 0, 0.0, 1.0)
        check_overlap(tr)
        with pytest.raises(InvariantViolation, match="serial"):
            check_no_overlap(tr)

    def test_fcfs_service(self):
        ok = Trace(meta={"ranks": 2})
        ok.span("service", MASTER, 1.0, 2.0, op="ps-serve", value=0.5)
        ok.span("service", MASTER, 2.0, 3.0, op="ps-serve", value=1.5)
        check_fcfs_service(ok)
        bad = Trace(meta={"ranks": 2})
        bad.span("service", MASTER, 1.0, 2.0, op="ps-serve", value=1.5)
        bad.span("service", MASTER, 2.0, 3.0, op="ps-serve", value=0.5)
        with pytest.raises(InvariantViolation, match="not FCFS"):
            check_fcfs_service(bad)
        overlapping = Trace(meta={"ranks": 2})
        overlapping.span("service", MASTER, 1.0, 3.0, op="ps-serve", value=0.5)
        overlapping.span("service", MASTER, 2.0, 4.0, op="ps-serve", value=1.0)
        with pytest.raises(InvariantViolation, match="overlap"):
            check_fcfs_service(overlapping)

    def test_check_all_dispatch(self):
        tr = Trace(meta={"ranks": 4, "pattern": "tree", "variant": 3, "packed": True})
        emit_tree_phase(tr, "tree-reduce", [0, 1, 2, 3], 0.0, 1.0, nbytes=8, tag=2,
                        iteration=1, reduce=True)
        tr.span("compute", 0, 0.0, 1.0, iteration=1)
        ran = check_all(tr)
        assert "comm-compute-overlap" in ran and "message-conservation" in ran
        assert "fcfs-service" not in ran

    def test_check_all_requires_ranks(self):
        with pytest.raises(InvariantViolation, match="ranks"):
            check_all(Trace(meta={"pattern": "tree"}))


class TestTrainerIntegration:
    """Every trainer family produces a valid, checkable trace at P=4."""

    @pytest.mark.parametrize("method,kw", [
        ("original", {}),
        ("sync", {"variant": 1}),
        ("sync", {"variant": 3}),
        ("sgd", {}),
        ("async", {}),
    ])
    def test_trace_passes_own_invariants(self, mnist_tiny, method, kw):
        result = _trace_for(method, mnist_tiny, **kw)
        ran = check_all(result.trace)
        assert "message-conservation" in ran

    def test_trace_off_means_none(self, mnist_tiny):
        train, test = mnist_tiny
        cfg = TrainerConfig(batch_size=16, seed=0, eval_every=5, eval_samples=64)
        res = SyncEASGDTrainer(
            build_mlp(seed=0), train, test, GpuPlatform(num_gpus=4, seed=0), cfg,
            CostModel.from_spec(LENET), variant=3,
        ).train(5)
        assert res.trace is None

    def test_easgd3_overlaps_and_serial_variants_do_not(self, mnist_tiny):
        v3 = _trace_for("sync", mnist_tiny, variant=3).trace
        v1 = _trace_for("sync", mnist_tiny, variant=1).trace
        assert overlap_fraction(v3) > 0.5
        assert overlap_fraction(v1) == pytest.approx(0.0, abs=1e-9)

    def test_original_easgd_is_master_bound(self, mnist_tiny):
        """Every round-robin message has the master as one endpoint."""
        tr = _trace_for("original", mnist_tiny).trace
        for e in tr.sends("round-robin"):
            assert MASTER in (e.rank, e.peer)

    def test_async_fcfs_vs_hogwild(self, mnist_tiny):
        fcfs = _trace_for("async", mnist_tiny).trace
        assert "fcfs-service" in check_all(fcfs)
        hog = _trace_for("hogwild", mnist_tiny).trace
        assert "fcfs-service" not in check_all(hog)

    def test_elastic_updates_carry_staleness(self, mnist_tiny):
        tr = _trace_for("async", mnist_tiny).trace
        assert staleness_stats(tr)["count"] > 0

    def test_results_schema_gains_trace_summary(self, mnist_tiny):
        from repro.harness.results import result_to_dict

        traced = _trace_for("sync", mnist_tiny, variant=3)
        doc = result_to_dict(traced)
        assert doc["trace_summary"]["messages"] > 0
        train, test = mnist_tiny
        cfg = TrainerConfig(batch_size=16, seed=0, eval_every=5, eval_samples=64)
        plain = SyncEASGDTrainer(
            build_mlp(seed=0), train, test, GpuPlatform(num_gpus=4, seed=0), cfg,
            CostModel.from_spec(LENET), variant=3,
        ).train(5)
        assert "trace_summary" not in result_to_dict(plain)

    def test_analysis_helpers(self, mnist_tiny):
        from repro.harness.analysis import comm_ratio_from_trace, trace_digest

        orig = _trace_for("original", mnist_tiny)
        sync3 = _trace_for("sync", mnist_tiny, variant=3)
        # the paper's headline: the baseline is communication-bound, the
        # codesigned variant is not
        assert comm_ratio_from_trace(orig) > comm_ratio_from_trace(sync3)
        assert trace_digest(orig)["messages"] > 0
        train, test = mnist_tiny
        cfg = TrainerConfig(batch_size=16, seed=0, eval_every=5, eval_samples=64)
        plain = SyncEASGDTrainer(
            build_mlp(seed=0), train, test, GpuPlatform(num_gpus=4, seed=0), cfg,
            CostModel.from_spec(LENET), variant=3,
        ).train(5)
        with pytest.raises(ValueError, match="no trace"):
            trace_digest(plain)

    def test_chrome_export_of_each_method(self, mnist_tiny, tmp_path):
        """Acceptance: a 4-rank run of each family yields a loadable trace."""
        for method, kw in [("original", {}), ("sync", {"variant": 3}),
                           ("sgd", {}), ("async", {})]:
            res = _trace_for(method, mnist_tiny, iterations=5, **kw)
            path = tmp_path / f"{method}.json"
            doc = json.loads(to_chrome(res.trace, path))
            assert doc["traceEvents"]
            assert path.stat().st_size > 0


class TestCliTrace:
    def test_run_with_trace_flag(self, tmp_path, capsys):
        from repro.harness.cli import main

        out = tmp_path / "run.jsonl"
        rc = main(["run", "--method", "sync-easgd3", "--iterations", "10",
                   "--train-samples", "256", "--trace", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "trace invariants OK" in printed
        replay = from_jsonl(out)
        assert check_all(replay)

    def test_chrome_extension_selects_format(self, tmp_path, capsys):
        from repro.harness.cli import main

        out = tmp_path / "run.json"
        assert main(["run", "--method", "original-easgd", "--iterations", "6",
                     "--train-samples", "256", "--trace", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
