"""Model specs: the paper's quoted sizes and internal consistency."""

import pytest

from repro.nn.spec import ALEXNET, GOOGLENET, LayerSpec, LENET, MODEL_SPECS, VGG19


class TestQuotedSizes:
    def test_alexnet_close_to_249mb(self):
        # Section 6.1.1: "the weights of AlexNet are 249 MB". Our blob table
        # gives ~233 MiB; the paper's figure includes framework overhead.
        assert ALEXNET.nbytes == pytest.approx(249e6, rel=0.03)

    def test_vgg19_close_to_575mb(self):
        # Section 6.1.2: "VGG-19 is 575 MB".
        assert VGG19.nbytes == pytest.approx(575e6, rel=0.01)

    def test_alexnet_param_count(self):
        # ~61 M parameters (Krizhevsky et al. report 60M+).
        assert 60e6 < ALEXNET.num_params < 62e6

    def test_vgg19_param_count(self):
        assert 143e6 < VGG19.num_params < 145e6

    def test_googlenet_param_count(self):
        # Inception v1 is famously ~7 M params.
        assert 6e6 < GOOGLENET.num_params < 8e6

    def test_lenet_param_count(self):
        assert 400e3 < LENET.num_params < 450e3


class TestConsistency:
    @pytest.mark.parametrize("spec", list(MODEL_SPECS.values()), ids=lambda s: s.name)
    def test_blob_messages_sum_to_total(self, spec):
        assert sum(spec.layer_messages()) == spec.nbytes

    @pytest.mark.parametrize("spec", list(MODEL_SPECS.values()), ids=lambda s: s.name)
    def test_flops_positive(self, spec):
        assert spec.flops_per_sample > 0

    def test_vgg_flops_exceed_googlenet(self):
        # VGG-19 is far more compute-heavy than GoogleNet (the reason the
        # paper's GoogleNet scales better: less compute per byte moved).
        assert VGG19.flops_per_sample > 2 * GOOGLENET.flops_per_sample

    def test_fc_layers_dominate_alexnet_bytes(self):
        fc_bytes = sum(l.nbytes for l in ALEXNET.layers if l.kind == "fc")
        assert fc_bytes > 0.9 * ALEXNET.nbytes

    def test_blob_validation(self):
        with pytest.raises(ValueError):
            LayerSpec("bad", "conv", params=10, flops_per_sample=1, blobs=(4, 4))

    def test_blob_default_single_message(self):
        spec = LayerSpec("x", "conv", params=10, flops_per_sample=1)
        assert spec.blob_sizes == (40,)

    def test_zero_param_layer_has_no_blobs(self):
        spec = LayerSpec("pool", "pool", params=0, flops_per_sample=5)
        assert spec.blob_sizes == ()
